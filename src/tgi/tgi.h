// Convenience facade bundling the Temporal Graph Index's write path
// (TGIBuilder) and read path (TGIQueryManager) over one key-value cluster.
// Examples and benches that don't need fine-grained control start here.

#ifndef HGS_TGI_TGI_H_
#define HGS_TGI_TGI_H_

#include <memory>
#include <vector>

#include "kvstore/cluster.h"
#include "tgi/builder.h"
#include "tgi/query.h"

namespace hgs {

class TGI {
 public:
  TGI(Cluster* cluster, TGIOptions options)
      : cluster_(cluster), options_(options), builder_(cluster, options) {}

  /// Ingests a complete chronological event history and publishes metadata.
  Status BuildFrom(const std::vector<Event>& events) {
    HGS_RETURN_NOT_OK(builder_.Ingest(events));
    return builder_.Finish();
  }

  /// Appends a batch of later events (the paper's batched update path) and
  /// re-publishes metadata.
  Status AppendBatch(const std::vector<Event>& events) {
    HGS_RETURN_NOT_OK(builder_.Ingest(events));
    return builder_.Finish();
  }

  /// Backfill path for complete histories: builds timespans bottom-up
  /// across the worker pool and publishes metadata once at the end.
  /// Byte-identical storage contents to BuildFrom over the same stream.
  Status BulkLoad(const std::vector<Event>& events) {
    return builder_.BulkLoad(events);
  }

  /// Opens a query manager with `fetch_parallelism` parallel fetch clients
  /// and the read-cache configuration of this index's options.
  Result<std::unique_ptr<TGIQueryManager>> OpenQueryManager(
      size_t fetch_parallelism = 1) {
    auto qm = std::make_unique<TGIQueryManager>(
        cluster_, fetch_parallelism, options_.read_cache_bytes,
        options_.read_cache_shards, options_.decoded_cache_bytes,
        options_.cache_tinylfu_admission);
    HGS_RETURN_NOT_OK(qm->Open());
    return qm;
  }

  TGIBuilder* builder() { return &builder_; }
  Cluster* cluster() { return cluster_; }
  const TGIOptions& options() const { return options_; }

 private:
  Cluster* cluster_;
  TGIOptions options_;
  TGIBuilder builder_;
};

}  // namespace hgs

#endif  // HGS_TGI_TGI_H_
