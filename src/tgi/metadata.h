// Metadata records of the TGI: timespan descriptors (with the temporal
// hierarchy's tree shape), version-chain segments, and the global graph
// descriptor. All are serialized into the corresponding KV tables.

#ifndef HGS_TGI_METADATA_H_
#define HGS_TGI_METADATA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "partition/dynamic_partitioner.h"
#include "tgi/options.h"

namespace hgs::tgi {

/// One node of the temporal-compression tree. Index in TimespanMeta::tree is
/// the node's did. The root has parent == -1; leaves carry the index of the
/// checkpoint they reconstruct.
struct TreeNode {
  int32_t parent = -1;
  int32_t checkpoint_index = -1;  // -1 for internal nodes

  bool operator==(const TreeNode& o) const = default;
};

/// Descriptor of one timespan (row of the paper's Timespans table).
struct TimespanMeta {
  TimespanId tsid = 0;
  Timestamp start = 0;  ///< time of the first event in the span
  Timestamp end = 0;    ///< time of the last event in the span
  uint64_t event_count = 0;
  uint32_t eventlist_size = 0;        ///< l
  uint32_t checkpoint_interval = 0;   ///< events between checkpoints
  uint32_t num_micro_partitions = 0;  ///< k_parts for this span
  uint8_t strategy = 0;               ///< PartitionStrategy
  /// Checkpoint timestamps; checkpoint 0 is the span-start state, checkpoint
  /// i>0 is the state after the first i*checkpoint_interval events.
  std::vector<Timestamp> checkpoints;
  /// (first, last) event time per eventlist, for time -> eventlist routing.
  std::vector<std::pair<Timestamp, Timestamp>> eventlist_bounds;
  /// Temporal-compression tree; indices are dids.
  std::vector<TreeNode> tree;

  /// Dids from the root to the leaf of `checkpoint_index`, root first.
  std::vector<DeltaId> PathToCheckpoint(int32_t checkpoint_index) const;

  /// Largest checkpoint index whose time is <= t (-1 if none).
  int32_t CheckpointBefore(Timestamp t) const;

  /// Index of the last eventlist whose first event time is <= t (-1 if
  /// none).
  int32_t EventlistCovering(Timestamp t) const;

  void SerializeTo(BinaryWriter* w) const;
  static Result<TimespanMeta> DeserializeFrom(BinaryReader* r);

  bool operator==(const TimespanMeta& o) const = default;
};

/// One version-chain segment: the changes a node underwent within one
/// eventlist of one timespan (row fragment of the Versions table).
struct VersionEntry {
  TimespanId tsid = 0;
  uint32_t eventlist_index = 0;
  MicroPartitionId pid = 0;  ///< the node's micro-partition in this span
  Timestamp first_time = 0;
  Timestamp last_time = 0;
  uint32_t event_count = 0;

  bool operator==(const VersionEntry& o) const = default;
};

/// The per-(node, timespan) row: all eventlists of the span that touch the
/// node.
struct VersionChainSegment {
  NodeId node = kInvalidNodeId;
  TimespanId tsid = 0;
  MicroPartitionId pid = 0;
  std::vector<VersionEntry> entries;

  std::string Serialize() const;
  static Result<VersionChainSegment> Deserialize(std::string_view data);

  bool operator==(const VersionChainSegment& o) const = default;
};

/// Global descriptor (row of the paper's Graph table).
struct GraphMeta {
  Timestamp start = 0;
  Timestamp end = 0;
  uint64_t event_count = 0;
  uint32_t timespan_count = 0;
  uint32_t num_horizontal_partitions = 1;
  uint8_t clustering_order = 0;
  bool replicate_one_hop = false;
  uint32_t micropartition_buckets = 64;

  std::string Serialize() const;
  static Result<GraphMeta> Deserialize(std::string_view data);

  bool operator==(const GraphMeta& o) const = default;
};

/// Serialized bucket of the Micropartitions table: (nid, pid) pairs.
std::string SerializeMicropartBucket(
    const std::vector<std::pair<NodeId, MicroPartitionId>>& entries);
Result<std::vector<std::pair<NodeId, MicroPartitionId>>>
DeserializeMicropartBucket(std::string_view data);

}  // namespace hgs::tgi

#endif  // HGS_TGI_METADATA_H_
