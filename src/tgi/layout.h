// Physical layout of TGI data in the key-value store (Section 4.4).
//
// Five tables mirror the paper's Cassandra schema:
//   deltas(tsid, sid, did, pid, dval)   — micro-deltas and micro-eventlists
//   versions(nid, tsid)                 — per-node version chains
//   timespans(tsid)                     — timespan metadata
//   graph()                             — global graph/index metadata
//   microparts(tsid, bucket)            — node -> micro-partition maps
//
// A micro-delta's full key is {tsid, sid, did, pid}; its placement key is
// {tsid, sid}. did values: tree deltas take [0, tree_size); eventlist j takes
// kEventlistDidBase + j. The aux byte separates 1-hop replication rows so
// snapshot scans never read them.

#ifndef HGS_TGI_LAYOUT_H_
#define HGS_TGI_LAYOUT_H_

#include <string>

#include "common/types.h"
#include "kvstore/kv_types.h"
#include "tgi/options.h"

namespace hgs::tgi {

inline constexpr std::string_view kDeltasTable = "deltas";
inline constexpr std::string_view kVersionsTable = "versions";
inline constexpr std::string_view kTimespansTable = "timespans";
inline constexpr std::string_view kGraphTable = "graph";
inline constexpr std::string_view kMicropartsTable = "microparts";

/// did namespace split: tree deltas below, eventlists at base + index.
inline constexpr DeltaId kEventlistDidBase = 1u << 20;

inline DeltaId EventlistDid(size_t eventlist_index) {
  return kEventlistDidBase + static_cast<DeltaId>(eventlist_index);
}

/// Placement partition for the deltas table: {tsid, sid}.
inline uint64_t DeltaPlacement(TimespanId tsid, PartitionId sid,
                               size_t num_horizontal) {
  return static_cast<uint64_t>(tsid) * num_horizontal + sid;
}

/// Horizontal partition of a micro-partition id.
inline PartitionId SidOf(MicroPartitionId pid, size_t num_horizontal) {
  return static_cast<PartitionId>(pid % num_horizontal);
}

/// Logical row key of a micro-delta within its (tsid, sid) partition.
std::string DeltaRowKey(ClusteringOrder order, DeltaId did,
                        MicroPartitionId pid, bool aux);

/// Prefix matching every non-aux micro-partition of delta `did`
/// (delta-major order only).
std::string DeltaScanPrefix(DeltaId did);

/// Prefix matching every non-aux delta of micro-partition `pid`
/// (partition-major order only).
std::string PartitionScanPrefix(MicroPartitionId pid);

/// Parses a row key previously built by DeltaRowKey. Returns false on
/// malformed keys.
bool ParseDeltaRowKey(ClusteringOrder order, std::string_view key,
                      DeltaId* did, MicroPartitionId* pid, bool* aux);

/// Placement partition for per-node tables (versions).
inline uint64_t NodePlacement(NodeId id) {
  uint64_t h = id * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 31;
  return h;
}

/// Row key of a node's version-chain segment for one timespan.
std::string VersionRowKey(NodeId id, TimespanId tsid);
/// Prefix matching all version-chain segments of a node.
std::string VersionScanPrefix(NodeId id);

/// Row key of a timespan's metadata row in the Timespans table.
std::string TimespanRowKey(TimespanId tsid);

/// Row key of one bucket of the Micropartitions table.
std::string MicropartBucketRowKey(uint32_t bucket);

}  // namespace hgs::tgi

#endif  // HGS_TGI_LAYOUT_H_
