#include "tgi/layout.h"

namespace hgs::tgi {

namespace {

uint32_t ReadOrdered32(std::string_view s, size_t pos) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(s[pos])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 3]));
}

}  // namespace

std::string DeltaRowKey(ClusteringOrder order, DeltaId did,
                        MicroPartitionId pid, bool aux) {
  std::string key;
  key.reserve(9);
  if (order == ClusteringOrder::kDeltaMajor) {
    AppendOrdered32(&key, did);
    key.push_back(aux ? '\1' : '\0');
    AppendOrdered32(&key, pid);
  } else {
    AppendOrdered32(&key, pid);
    key.push_back(aux ? '\1' : '\0');
    AppendOrdered32(&key, did);
  }
  return key;
}

std::string DeltaScanPrefix(DeltaId did) {
  std::string key;
  key.reserve(5);
  AppendOrdered32(&key, did);
  key.push_back('\0');  // aux == false only
  return key;
}

std::string PartitionScanPrefix(MicroPartitionId pid) {
  std::string key;
  key.reserve(5);
  AppendOrdered32(&key, pid);
  key.push_back('\0');
  return key;
}

bool ParseDeltaRowKey(ClusteringOrder order, std::string_view key,
                      DeltaId* did, MicroPartitionId* pid, bool* aux) {
  if (key.size() != 9) return false;
  uint32_t first = ReadOrdered32(key, 0);
  uint32_t second = ReadOrdered32(key, 5);
  *aux = key[4] != '\0';
  if (order == ClusteringOrder::kDeltaMajor) {
    *did = first;
    *pid = second;
  } else {
    *pid = first;
    *did = second;
  }
  return true;
}

std::string VersionRowKey(NodeId id, TimespanId tsid) {
  std::string key;
  key.reserve(12);
  AppendOrdered64(&key, id);
  AppendOrdered32(&key, tsid);
  return key;
}

std::string VersionScanPrefix(NodeId id) {
  std::string key;
  key.reserve(8);
  AppendOrdered64(&key, id);
  return key;
}

std::string TimespanRowKey(TimespanId tsid) {
  std::string key;
  key.reserve(4);
  AppendOrdered32(&key, tsid);
  return key;
}

std::string MicropartBucketRowKey(uint32_t bucket) {
  std::string key;
  key.reserve(4);
  AppendOrdered32(&key, bucket);
  return key;
}

}  // namespace hgs::tgi
