// TGIQueryManager: the read side of the Temporal Graph Index (Section 4.6).
// Implements the paper's retrieval primitives:
//   * GetSnapshot            — Algorithm 1 (graph as of time t)
//   * GetNodeStateDelta      — static vertex (node + incident edges at t)
//   * GetNodeHistory         — Algorithm 2 (version chains + eventlists)
//   * GetKHopNeighborhood    — Algorithm 4 (expansion; replication-aware)
//   * GetOneHopHistory       — Algorithm 5
//
// All fetches are decomposed into independent micro-delta reads executed by
// `fetch_parallelism` concurrent clients (the paper's c).

#ifndef HGS_TGI_QUERY_H_
#define HGS_TGI_QUERY_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "delta/eventlist.h"
#include "graph/graph.h"
#include "kvstore/cluster.h"
#include "tgi/metadata.h"
#include "tgi/options.h"

namespace hgs {

/// Read-cost accounting for one retrieval call (the currency of Table 1).
struct FetchStats {
  uint64_t kv_requests = 0;    ///< point gets + scans issued
  uint64_t micro_deltas = 0;   ///< values deserialized
  uint64_t bytes = 0;          ///< raw value bytes fetched
  double wall_seconds = 0.0;

  void Merge(const FetchStats& o) {
    kv_requests += o.kv_requests;
    micro_deltas += o.micro_deltas;
    bytes += o.bytes;
    wall_seconds += o.wall_seconds;
  }
};

/// A node's evolution over (from, to]: its state at `from` plus every event
/// touching it afterwards. This is also the wire format TAF's NodeT wraps.
struct NodeHistory {
  NodeId node = kInvalidNodeId;
  Timestamp from = 0;
  Timestamp to = 0;
  Delta initial;     ///< node record + incident edges as of `from`
  EventList events;  ///< events touching the node, chronological

  /// Change-point count (the paper's "version changes").
  size_t VersionCount() const { return events.size(); }

  /// Materialized per-version states: (time, node+edges delta), starting
  /// with the initial state at `from`.
  std::vector<std::pair<Timestamp, Delta>> Materialize() const;
};

/// Result of Algorithm 5: the center's history plus the histories of every
/// node that was a neighbor at some point in the interval.
struct OneHopHistory {
  NodeHistory center;
  std::vector<NodeHistory> neighbors;
};

class TGIQueryManager {
 public:
  explicit TGIQueryManager(Cluster* cluster, size_t fetch_parallelism = 1);

  /// Loads graph + timespan metadata (cached for the manager's lifetime).
  Status Open();

  // -- retrieval primitives (Section 4.6) ---------------------------------
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats = nullptr);
  Result<Delta> GetSnapshotDelta(Timestamp t, FetchStats* stats = nullptr);

  /// Multipoint snapshot retrieval (Fig 1): the graph at each timepoint.
  /// Consecutive points within one timespan reuse the previous state and
  /// replay only the eventlists in between, rather than re-walking the tree.
  Result<std::vector<Graph>> GetMultipointSnapshots(
      const std::vector<Timestamp>& times, FetchStats* stats = nullptr);

  /// The state of one node (record + incident edges) as of t. The returned
  /// delta is empty if the node does not exist at t.
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats = nullptr);

  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats = nullptr);

  /// Materialized node versions in (from, to]: GetNodeHistory + replay.
  Result<std::vector<std::pair<Timestamp, Delta>>> GetNodeVersions(
      NodeId id, Timestamp from, Timestamp to, FetchStats* stats = nullptr);

  /// k-hop neighborhood at time t (Algorithm 4: iterative expansion). With
  /// 1-hop replication enabled in the index, the last expansion level is
  /// served from auxiliary micro-deltas without extra partition fetches.
  Result<Graph> GetKHopNeighborhood(NodeId id, Timestamp t, int k,
                                    FetchStats* stats = nullptr);

  Result<OneHopHistory> GetOneHopHistory(NodeId id, Timestamp from,
                                         Timestamp to,
                                         FetchStats* stats = nullptr);

  /// Every event in (from, to], across all timespans and partitions, in
  /// chronological order. This is the full-log scan primitive (used by the
  /// DeltaGraph baseline's version queries and by whole-graph evolution
  /// analyses); its cost is proportional to the range's change volume.
  Result<std::vector<Event>> GetEventsInRange(Timestamp from, Timestamp to,
                                              FetchStats* stats = nullptr);

  // -- metadata ------------------------------------------------------------
  Timestamp HistoryStart() const { return graph_meta_.start; }
  Timestamp HistoryEnd() const { return graph_meta_.end; }
  uint64_t EventCount() const { return graph_meta_.event_count; }
  size_t fetch_parallelism() const { return fetch_parallelism_; }
  void set_fetch_parallelism(size_t c) {
    fetch_parallelism_ = c == 0 ? 1 : c;
  }

 private:
  /// Timespan whose range covers t (last span with start <= t), or nullptr
  /// when t precedes all history.
  const tgi::TimespanMeta* SpanFor(Timestamp t) const;

  /// Micro-partition of `id` during a span (Micropartitions table lookup for
  /// locality spans, hash for random spans).
  Result<MicroPartitionId> PidOf(NodeId id, const tgi::TimespanMeta& span,
                                 FetchStats* stats);

  /// Reconstructed state of one micro-partition at time t: tree path point
  /// reads + eventlist replay, optionally including aux replication rows.
  Result<Delta> FetchMicroStateAt(const tgi::TimespanMeta& span,
                                  MicroPartitionId pid, Timestamp t,
                                  bool include_aux, FetchStats* stats);

  /// Fetches one value; NotFound is mapped to "absent" (nullopt).
  Result<std::optional<std::string>> FetchValue(std::string_view table,
                                                uint64_t partition,
                                                std::string_view key,
                                                FetchStats* stats);

  Cluster* cluster_;
  size_t fetch_parallelism_;
  bool opened_ = false;
  tgi::GraphMeta graph_meta_;
  std::vector<tgi::TimespanMeta> spans_;

  std::mutex micropart_mu_;
  // (tsid, bucket) -> node -> pid cache of the Micropartitions table.
  std::unordered_map<uint64_t,
                     std::unordered_map<NodeId, MicroPartitionId>>
      micropart_cache_;
};

}  // namespace hgs

#endif  // HGS_TGI_QUERY_H_
