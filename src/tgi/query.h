// TGIQueryManager: the read side of the Temporal Graph Index (Section 4.6).
// Implements the paper's retrieval primitives:
//   * GetSnapshot            — Algorithm 1 (graph as of time t)
//   * GetNodeStateDelta      — static vertex (node + incident edges at t)
//   * GetNodeHistory         — Algorithm 2 (version chains + eventlists)
//   * GetNodeHistories       — set-at-a-time Algorithm 2 (bulk retrieval)
//   * GetKHopNeighborhood    — Algorithm 4 (expansion; replication-aware)
//   * GetOneHopHistory       — Algorithm 5
//
// GetNodeHistories is the set-at-a-time primitive behind TAF's parallel
// fetch protocol (Fig 10): instead of one version-chain scan and one
// eventlist fetch per node, it groups the requested ids by placement, runs
// one scan per touched versions partition, unions every version-chain
// reference into a single deduplicated eventlist batch (an eventlist shared
// by many members is fetched and deserialized once, then demultiplexed per
// node), and batches the initial-state fetches per micro-partition. Its
// cost is therefore bounded by partitions touched, not nodes requested.
//
// All fetches are decomposed into independent micro-delta reads. Point
// reads are batched per query through Cluster::MultiGet (one node round
// trip per storage node instead of one per key); partition scans run on
// `fetch_parallelism` concurrent clients (the paper's c). Both kinds of
// read pass through a sharded LRU partition-delta cache, so overlapping
// retrievals skip the simulated fetch round trips entirely. The cache is
// invalidated when index metadata is re-published (AppendBatch).

#ifndef HGS_TGI_QUERY_H_
#define HGS_TGI_QUERY_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/result.h"
#include "delta/eventlist.h"
#include "graph/graph.h"
#include "kvstore/cluster.h"
#include "tgi/metadata.h"
#include "tgi/options.h"

namespace hgs {

/// Read-cost accounting for one retrieval call (the currency of Table 1).
/// Logical counters (kv_requests, micro_deltas, bytes) count every value
/// the query consumed whether it came from the cluster or the read cache;
/// kv_batches counts the physical node round trips actually issued, which
/// is what batching and caching reduce.
struct FetchStats {
  uint64_t kv_requests = 0;    ///< logical point gets + scans requested
  uint64_t kv_batches = 0;     ///< physical node round trips issued
  uint64_t cache_hits = 0;     ///< reads served by the partition-delta cache
  uint64_t cache_misses = 0;   ///< reads that had to go to the cluster
  uint64_t micro_deltas = 0;   ///< values deserialized
  uint64_t bytes = 0;          ///< raw value bytes fetched
  // Node-history retrieval accounting (GetNodeHistory / GetNodeHistories).
  // The logical/physical split shows the set-at-a-time win: node_requests
  // and eventlist_refs count what the query asked for, version_scans and
  // eventlist_fetches what actually hit the index after grouping + dedup.
  uint64_t node_requests = 0;      ///< logical node histories requested
  uint64_t version_scans = 0;      ///< versions-table partition scans issued
  uint64_t eventlist_refs = 0;     ///< version-chain eventlist references
  uint64_t eventlist_fetches = 0;  ///< deduplicated eventlist rows fetched
  // Decoded-tier accounting. Every value the query consumes is either
  // decoded from raw bytes (decodes; decoded_bytes counts the input) or
  // served as a ready-to-apply object from the decoded cache (decode_hits,
  // zero deserialization). A fully warm decoded cache drives decodes to 0.
  uint64_t decode_hits = 0;    ///< values served decoded (incl. micropart
                               ///< buckets and cached "absent" rows)
  uint64_t decodes = 0;        ///< Deserialize calls actually performed
  uint64_t decoded_bytes = 0;  ///< raw bytes those decodes consumed
  // Zero-copy accounting: `bytes` above counts bytes *viewed* (every value
  // byte the query consumed, wherever it came from); value_copies counts
  // values whose bytes actually *moved* into a fresh buffer. On the
  // shared-buffer path the only copies left are LZ-block materializations,
  // so uncompressed reads — and every warm read — report 0.
  uint64_t value_copies = 0;   ///< values materialized rather than viewed
  // Set-at-a-time merge accounting (GetMergedMemberEvents): per-eventlist
  // chunks combined by the k-way merge — which exploits that each member's
  // picked events are already chronological — instead of a whole-chunk
  // re-sort. Same-timestamp runs still sort, so the count below is chunks
  // whose full comparison sort was skipped.
  uint64_t taf_merge_skipped_sorts = 0;
  // Invalidation precision: when this query observed a re-publish and
  // refreshed, how many cache entries (both tiers + micropart buckets) the
  // sweep kept warm vs evicted. A partition-scoped publish retains every
  // scope it didn't touch; the old global bump evicted everything.
  uint64_t cache_entries_retained = 0;
  uint64_t cache_entries_invalidated = 0;
  // Resilience accounting, surfaced from the cluster client: what the
  // fault-tolerance machinery did on this query's behalf. All zero on a
  // healthy cluster.
  uint64_t failovers = 0;          ///< replicas abandoned for another
  uint64_t retries = 0;            ///< transient-error retries
  uint64_t hedges = 0;             ///< second-chance requests fired
  uint64_t hedge_wins = 0;         ///< hedged answers actually used
  uint64_t checksum_failures = 0;  ///< values rejected by the checksum
  double wall_seconds = 0.0;

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  void Merge(const FetchStats& o) {
    kv_requests += o.kv_requests;
    kv_batches += o.kv_batches;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    micro_deltas += o.micro_deltas;
    bytes += o.bytes;
    node_requests += o.node_requests;
    version_scans += o.version_scans;
    eventlist_refs += o.eventlist_refs;
    eventlist_fetches += o.eventlist_fetches;
    decode_hits += o.decode_hits;
    decodes += o.decodes;
    decoded_bytes += o.decoded_bytes;
    value_copies += o.value_copies;
    taf_merge_skipped_sorts += o.taf_merge_skipped_sorts;
    cache_entries_retained += o.cache_entries_retained;
    cache_entries_invalidated += o.cache_entries_invalidated;
    failovers += o.failovers;
    retries += o.retries;
    hedges += o.hedges;
    hedge_wins += o.hedge_wins;
    checksum_failures += o.checksum_failures;
    wall_seconds += o.wall_seconds;
  }
};

/// A node's evolution over (from, to]: its state at `from` plus every event
/// touching it afterwards. This is also the wire format TAF's NodeT wraps.
struct NodeHistory {
  NodeId node = kInvalidNodeId;
  Timestamp from = 0;
  Timestamp to = 0;
  Delta initial;     ///< node record + incident edges as of `from`
  EventList events;  ///< events touching the node, chronological

  /// Change-point count (the paper's "version changes").
  size_t VersionCount() const { return events.size(); }

  /// Materialized per-version states: (time, node+edges delta), starting
  /// with the initial state at `from`.
  std::vector<std::pair<Timestamp, Delta>> Materialize() const;
};

/// Result of Algorithm 5: the center's history plus the histories of every
/// node that was a neighbor at some point in the interval.
struct OneHopHistory {
  NodeHistory center;
  std::vector<NodeHistory> neighbors;
};

class TGIQueryManager {
 public:
  /// `read_cache_bytes` is the partition-delta (raw byte) cache budget and
  /// `decoded_cache_bytes` the decoded-object cache budget (0 disables
  /// either tier; TGI::OpenQueryManager passes the TGIOptions knobs). The
  /// two tiers are independent: bytes serve re-fetches without round trips,
  /// decoded objects serve repeats without deserialization.
  /// `tinylfu_admission` enables the TinyLFU admission filter on both tiers.
  explicit TGIQueryManager(Cluster* cluster, size_t fetch_parallelism = 1,
                           size_t read_cache_bytes = 0,
                           size_t read_cache_shards = 16,
                           size_t decoded_cache_bytes = 0,
                           bool tinylfu_admission = false);

  /// Loads graph + timespan metadata. Metadata and the read cache refresh
  /// automatically when the cluster's publish epoch changes (AppendBatch).
  Status Open();

  // -- retrieval primitives (Section 4.6) ---------------------------------
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats = nullptr);
  Result<Delta> GetSnapshotDelta(Timestamp t, FetchStats* stats = nullptr);

  /// Multipoint snapshot retrieval (Fig 1): the graph at each timepoint.
  /// Consecutive points within one timespan reuse the previous state and
  /// replay only the eventlists in between, rather than re-walking the tree.
  Result<std::vector<Graph>> GetMultipointSnapshots(
      const std::vector<Timestamp>& times, FetchStats* stats = nullptr);

  /// The state of one node (record + incident edges) as of t. The returned
  /// delta is empty if the node does not exist at t.
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats = nullptr);

  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats = nullptr);

  /// Set-at-a-time node-history retrieval (the TAF parallel fetch
  /// primitive). Returns one NodeHistory per input id, in input order;
  /// ids absent from the history yield an empty history (no initial state,
  /// no events), and duplicated ids yield duplicated results. Results are
  /// identical to per-id GetNodeHistory calls, but the physical work is
  /// bounded by partitions touched: one versions-table scan per touched
  /// placement partition, one deduplicated eventlist batch shared by all
  /// requested nodes, and batched initial-state fetches. FetchStats
  /// reports the grouping win as node_requests / eventlist_refs (logical)
  /// vs. version_scans / eventlist_fetches (physical).
  Result<std::vector<NodeHistory>> GetNodeHistories(
      const std::vector<NodeId>& ids, Timestamp from, Timestamp to,
      FetchStats* stats = nullptr);

  /// The union of the member set's events in (from, to], globally
  /// time-ordered and deduplicated — the retrieval behind TAF's subgraph
  /// histories. Reuses GetNodeHistories' set-at-a-time machinery (merged
  /// version chains, one deduplicated eventlist batch, each row scanned
  /// once), but instead of demultiplexing per node it merges by eventlist:
  /// rows are grouped by (timespan, eventlist index) — a chunk of the
  /// original chronological stream — so only each group needs a local
  /// sort + unique (duplicates of an internal edge event all live in the
  /// same chunk), and the groups concatenate in chunk order. No global
  /// sort over the union, and no initial-state fetches.
  Result<std::vector<Event>> GetMergedMemberEvents(
      const std::vector<NodeId>& ids, Timestamp from, Timestamp to,
      FetchStats* stats = nullptr);

  /// Materialized node versions in (from, to]: GetNodeHistory + replay.
  Result<std::vector<std::pair<Timestamp, Delta>>> GetNodeVersions(
      NodeId id, Timestamp from, Timestamp to, FetchStats* stats = nullptr);

  /// k-hop neighborhood at time t (Algorithm 4: iterative expansion). With
  /// 1-hop replication enabled in the index, the last expansion level is
  /// served from auxiliary micro-deltas without extra partition fetches.
  Result<Graph> GetKHopNeighborhood(NodeId id, Timestamp t, int k,
                                    FetchStats* stats = nullptr);

  Result<OneHopHistory> GetOneHopHistory(NodeId id, Timestamp from,
                                         Timestamp to,
                                         FetchStats* stats = nullptr);

  /// Every event in (from, to], across all timespans and partitions, in
  /// chronological order. This is the full-log scan primitive (used by the
  /// DeltaGraph baseline's version queries and by whole-graph evolution
  /// analyses); its cost is proportional to the range's change volume.
  Result<std::vector<Event>> GetEventsInRange(Timestamp from, Timestamp to,
                                              FetchStats* stats = nullptr);

  // -- metadata ------------------------------------------------------------
  Timestamp HistoryStart() const;
  Timestamp HistoryEnd() const;
  uint64_t EventCount() const;
  size_t fetch_parallelism() const {
    return fetch_parallelism_.load(std::memory_order_relaxed);
  }
  /// Safe to call concurrently with running queries: each query reads the
  /// parallelism once per fetch loop through the atomic.
  void set_fetch_parallelism(size_t c) {
    fetch_parallelism_.store(c == 0 ? 1 : c, std::memory_order_relaxed);
  }

  /// Lifetime counters of the partition-delta cache (zeros when disabled).
  LruCacheCounters ReadCacheCounters() const {
    return read_cache_ != nullptr ? read_cache_->Counters()
                                  : LruCacheCounters{};
  }

  /// Lifetime counters of the decoded-object cache (zeros when disabled).
  LruCacheCounters DecodedCacheCounters() const {
    return decoded_cache_ != nullptr ? decoded_cache_->Counters()
                                     : LruCacheCounters{};
  }

  /// Lifetime invalidation-precision counters: cache entries kept warm vs
  /// evicted across every publish-triggered refresh this manager ran.
  uint64_t CacheEntriesRetained() const {
    return entries_retained_.load(std::memory_order_relaxed);
  }
  uint64_t CacheEntriesInvalidated() const {
    return entries_invalidated_.load(std::memory_order_relaxed);
  }

 private:
  /// One cached read: either a point-read value (possibly a cached
  /// "absent") or the pairs of a partition scan. Values are SharedValues —
  /// the cache shares the storage node's buffer on fill and hands out
  /// views on hit, so neither direction copies value bytes.
  struct ReadCacheEntry {
    bool found = false;          ///< point reads: value present
    SharedValue value;           ///< point-read payload (zero-copy view)
    std::vector<KVPair> pairs;   ///< scan payload (zero-copy views)
  };
  using ReadCache =
      ShardedLruCache<std::string, std::shared_ptr<const ReadCacheEntry>>;

  /// One decoded-tier entry: an immutable decoded object shared between the
  /// cache and every in-flight query that fetched it (nullptr caches a
  /// known-absent row), plus the raw byte size it was decoded from so the
  /// logical byte accounting is identical between decode hits and misses.
  /// The concrete type behind `obj` is fixed by the kind byte of the cache
  /// key (one kind per decoded type), so a cast back can never mismatch.
  struct DecodedEntry {
    std::shared_ptr<const void> obj;
    size_t raw_bytes = 0;
  };
  using DecodedCache = ShardedLruCache<std::string, DecodedEntry>;

  /// One row of a scan-granularity decoded entry: the shared decoded object
  /// plus the raw size it decoded from (for the logical byte accounting).
  struct DecodedScanRow {
    std::shared_ptr<const void> obj;
    size_t raw_bytes = 0;
  };
  /// Scan-granularity decoded entry (cache kind 'C'): every decoded row of
  /// one (table, partition, prefix) scan, in key order. A warm delta-major
  /// scan costs exactly one decoded-tier probe for the whole prefix instead
  /// of one byte-cache probe plus one decoded probe per row. The row type
  /// (Delta vs EventList) is fixed by the scan prefix's did, so a single
  /// kind byte cannot alias two row types under one key.
  struct DecodedScan {
    std::vector<DecodedScanRow> rows;
  };
  using DecodedScanRef = std::shared_ptr<const DecodedScan>;

  /// Per-node merged version chain (cache kind 'V'): the concatenation of
  /// every VersionChainSegment of one node, in chain (tsid) order and
  /// unfiltered by time, so hub nodes with many segments cost one decoded
  /// entry — and one probe — instead of one per segment. segment_count and
  /// raw_bytes carry the logical accounting a rebuild would have reported.
  struct MergedVersionChain {
    std::vector<tgi::VersionEntry> entries;
    size_t segment_count = 0;
    size_t raw_bytes = 0;
  };

  /// An immutable snapshot of the index metadata at one publish epoch,
  /// pinning the whole epoch map (`epochs`). Every query grabs one
  /// shared_ptr at entry and runs entirely against it, so a concurrent
  /// refresh (AppendBatch in another thread) can swap in new metadata
  /// without invalidating in-flight queries. Each cache key the query
  /// writes embeds its scope's sub-epoch, so late inserts from an
  /// old-epoch query can never be served to a new-epoch one — and a
  /// publish leaves every untouched scope's entries valid.
  struct MetaState {
    uint64_t epoch = 0;     ///< global epoch (== epochs->global when set)
    EpochVectorRef epochs;  ///< pinned sub-epoch map of this snapshot
    tgi::GraphMeta graph;
    std::vector<tgi::TimespanMeta> spans;

    /// Sub-epoch of one (table, partition) scope under the pinned map.
    uint64_t SubEpochFor(std::string_view table, uint64_t partition) const {
      return epochs == nullptr
                 ? epoch
                 : epochs->SubEpoch(MakeEpochKey(table, partition));
    }
  };
  using MetaRef = std::shared_ptr<const MetaState>;

  /// Timespan of `meta` whose range covers t (last span with start <= t),
  /// or nullptr when t precedes all history.
  static const tgi::TimespanMeta* SpanFor(const MetaState& meta, Timestamp t);

  /// Loads graph + timespan metadata from the cluster, pinned to `epochs`.
  Result<MetaRef> LoadMetadata(EpochVectorRef epochs) const;

  /// Timespans-table rows, parsed and sorted by tsid.
  Result<std::vector<tgi::TimespanMeta>> LoadSpans() const;

  /// Fails before Open(); otherwise returns the metadata snapshot to run
  /// the query against. When the cluster's publish epoch moved
  /// (AppendBatch) it reloads only the re-published metadata rows and
  /// sweeps the cache tiers entry-by-entry, evicting exactly the entries
  /// whose (table, partition) sub-epoch changed; the retain/evict counts
  /// land in `stats` and the lifetime counters.
  Result<MetaRef> EnsureFresh(FetchStats* stats = nullptr);

  /// The current metadata snapshot (for the metadata accessors).
  MetaRef CurrentMeta() const;

  /// Micro-partition of `id` during a span (Micropartitions table lookup for
  /// locality spans, hash for random spans).
  Result<MicroPartitionId> PidOf(const MetaState& meta, NodeId id,
                                 const tgi::TimespanMeta& span,
                                 FetchStats* stats);

  /// Reconstructed state of micro-partitions at time t (one Delta per input
  /// pid): tree path point reads + eventlist replay, optionally including
  /// aux replication rows. All pids' point reads go out as one MultiGet.
  Result<std::vector<Delta>> FetchMicroStatesAt(
      const MetaState& meta, const tgi::TimespanMeta& span,
      const std::vector<MicroPartitionId>& pids, Timestamp t, bool include_aux,
      FetchStats* stats);

  /// Single-pid convenience over FetchMicroStatesAt.
  Result<Delta> FetchMicroStateAt(const MetaState& meta,
                                  const tgi::TimespanMeta& span,
                                  MicroPartitionId pid, Timestamp t,
                                  bool include_aux, FetchStats* stats);

  /// Batched, cached point reads: cache lookups first, then one MultiGet
  /// for the misses. One entry per input key; NotFound maps to nullopt.
  /// Values are zero-copy views shared with the byte cache.
  Result<std::vector<std::optional<SharedValue>>> FetchValues(
      const MetaState& meta, std::string_view table,
      const std::vector<MultiGetKey>& keys, FetchStats* stats);

  /// Fetches one value; NotFound is mapped to "absent" (nullopt).
  Result<std::optional<SharedValue>> FetchValue(const MetaState& meta,
                                                std::string_view table,
                                                uint64_t partition,
                                                std::string_view key,
                                                FetchStats* stats);

  /// Cached partition prefix scan. The returned entry is shared with the
  /// cache; callers must not mutate it.
  Result<std::shared_ptr<const ReadCacheEntry>> CachedScan(
      const MetaState& meta, std::string_view table, uint64_t partition,
      std::string_view prefix, FetchStats* stats);

  // -- decoded tier --------------------------------------------------------
  // All Delta / EventList / VersionChainSegment deserialization on the read
  // path funnels through these two helpers, so a decoded object is produced
  // at most once per epoch and shared (immutable, by shared_ptr) between
  // the cache and every consumer. Micropart buckets keep their own decoded
  // map in micropart_cache_ (always on — PidOf is called per node and must
  // not re-decode a bucket even when the byte-budgeted tiers are disabled).

  /// Decoded-tier batched point reads ("decode-first" pipeline): probe the
  /// decoded cache per row — a hit skips the byte fetch and the decode
  /// entirely — then fetch the missing rows' bytes in one batched
  /// FetchValues and decode each miss exactly once, in parallel. kinds[i]
  /// is the decoded-type tag of keys[i] (see DecodedKindOf in query.cc).
  /// An absent row yields a null obj (and is negatively cached).
  Result<std::vector<DecodedEntry>> FetchDecodedRows(
      const MetaState& meta, std::string_view table,
      const std::vector<MultiGetKey>& keys, const std::vector<char>& kinds,
      FetchStats* stats);

  /// Uniform-type wrapper over FetchDecodedRows.
  template <typename T>
  Result<std::vector<std::shared_ptr<const T>>> FetchDecodedValues(
      const MetaState& meta, std::string_view table,
      const std::vector<MultiGetKey>& keys, FetchStats* stats);

  /// Decoded-tier lookup for one row whose raw bytes are already in hand
  /// (a partition-scan result): returns the shared decoded object, decoding
  /// `raw` only when the cache has no entry for (table, partition, row).
  template <typename T>
  Result<std::shared_ptr<const T>> DecodeShared(const MetaState& meta,
                                                std::string_view table,
                                                uint64_t partition,
                                                std::string_view row,
                                                std::string_view raw,
                                                FetchStats* stats);

  /// Scan-granularity decoded fetch: one decoded-tier probe serves every
  /// row of the (table, partition, prefix) scan as ready-to-apply objects.
  /// On a miss the scan's bytes come through CachedScan, each row decodes
  /// (or decode-hits) through DecodeShared — publishing row-level entries
  /// for the point-read paths — and the assembled row vector is published
  /// under the scan's own key. `row_kind` is the decoded type of every row
  /// (scans here are per-did, so one scan is single-typed).
  Result<DecodedScanRef> FetchDecodedScan(const MetaState& meta,
                                          std::string_view table,
                                          uint64_t partition,
                                          std::string_view prefix,
                                          char row_kind, FetchStats* stats);

  /// Per-node merged version chains for `ids` (see MergedVersionChain):
  /// probes the decoded tier per node, scans only the versions partitions
  /// that still have a node missing, and publishes rebuilt chains. One
  /// entry per input id, never null (a node without version rows yields an
  /// empty chain, negatively cached).
  Result<std::vector<std::shared_ptr<const MergedVersionChain>>>
  FetchVersionChains(const MetaState& meta, const std::vector<NodeId>& ids,
                     FetchStats* stats);

  // Internal (no-refresh) bodies of the public primitives, so composite
  // queries run every leg against one metadata snapshot.
  Result<Delta> GetSnapshotDeltaWith(const MetaState& meta, Timestamp t,
                                     FetchStats* stats);
  Result<Delta> GetNodeStateDeltaWith(const MetaState& meta, NodeId id,
                                      Timestamp t, FetchStats* stats);
  Result<NodeHistory> GetNodeHistoryWith(const MetaState& meta, NodeId id,
                                         Timestamp from, Timestamp to,
                                         FetchStats* stats);
  /// Bulk body shared by GetNodeHistories and (with one id) GetNodeHistory,
  /// so single and set retrievals are the same code path by construction.
  Result<std::vector<NodeHistory>> GetNodeHistoriesWith(
      const MetaState& meta, const std::vector<NodeId>& ids, Timestamp from,
      Timestamp to, FetchStats* stats);

  Cluster* cluster_;
  /// Atomic so set_fetch_parallelism can race in-flight queries (each fetch
  /// loop samples it once); plain size_t here was a data race under TSan.
  std::atomic<size_t> fetch_parallelism_;
  /// Atomic for the same reason: Open() may race EnsureFresh readers.
  std::atomic<bool> opened_{false};

  mutable Mutex meta_mu_;  ///< guards meta_ swaps/reads
  MetaRef meta_ GUARDED_BY(meta_mu_);

  /// Partition-delta cache over point reads and scans of the immutable
  /// index tables, keyed by (kind, epoch, table, partition, row key).
  std::unique_ptr<ReadCache> read_cache_;
  /// Decoded-object cache over the same coordinates (distinct kind bytes),
  /// holding immutable shared Delta / EventList / VersionChainSegment
  /// values charged by their decoded footprint.
  std::unique_ptr<DecodedCache> decoded_cache_;
  /// Serializes publish-triggered refreshes (metadata reload + cache
  /// sweep). Acquired before meta_mu_ / cache shard locks, never inside
  /// them — see the lock hierarchy in common/mutex.h.
  Mutex refresh_mu_;

  Mutex micropart_mu_;
  /// One decoded Micropartitions bucket, tagged with the sub-epoch of its
  /// partition at fill time so a stale fill (an in-flight old-epoch query
  /// racing a publish) is treated as a miss rather than served.
  struct MicropartBucket {
    uint64_t epoch = 0;
    std::unordered_map<NodeId, MicroPartitionId> map;
  };
  // (tsid * buckets + bucket) -> decoded bucket; the key is the bucket
  // row's Micropartitions-table partition.
  std::unordered_map<uint64_t, MicropartBucket> micropart_cache_
      GUARDED_BY(micropart_mu_);

  std::atomic<uint64_t> entries_retained_{0};
  std::atomic<uint64_t> entries_invalidated_{0};
};

}  // namespace hgs

#endif  // HGS_TGI_QUERY_H_
