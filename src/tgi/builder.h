// TGIBuilder: constructs the Temporal Graph Index from a chronological event
// stream (Section 4.4, "Construction and Update").
//
// Per timespan (a fixed number of events), the builder:
//   1. computes the span's node -> micro-partition assignment (random hash or
//      Ω-collapse + locality min-cut),
//   2. chunks the events into eventlists of size l, micro-partitioned by the
//      touched nodes' pids (edge events go to both endpoints' pids),
//   3. captures snapshot checkpoints every `checkpoint_interval` events and
//      compresses them into a DeltaGraph-style intersection tree: the stored
//      deltas are the root (span-stable state plus the intersection of all
//      checkpoint residues) and the derived deltas child - parent,
//   4. accumulates per-node version chains pointing at the eventlists that
//      touch each node,
//   5. when 1-hop replication is on, emits auxiliary micro-deltas carrying
//      the records of out-of-partition neighbors.
//
// The build of one timespan is a two-phase pipeline. A serial streaming
// phase performs the order-sensitive work: event routing, checkpoint
// placement and version-chain accumulation. A parallel encode phase then
// shards the hot work — leaf compaction, intersection-tree algebra,
// micro-partition splits, row serialization — across
// TGIOptions::ingest_threads workers and group-commits the encoded rows per
// storage node through Cluster::MultiPut. Parallel ingest produces
// byte-identical storage contents to serial ingest.
//
// Event streams must have non-decreasing timestamps (a transaction-time
// order), and RemoveEdge events must precede the RemoveNode of an endpoint.

#ifndef HGS_TGI_BUILDER_H_
#define HGS_TGI_BUILDER_H_

#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "delta/eventlist.h"
#include "graph/graph.h"
#include "kvstore/cluster.h"
#include "tgi/metadata.h"
#include "tgi/options.h"

namespace hgs {

class TGIBuilder {
 public:
  TGIBuilder(Cluster* cluster, TGIOptions options);

  /// Appends events (chronological, non-decreasing timestamps; must also be
  /// after everything previously ingested). The whole batch is validated up
  /// front — an invalid batch is rejected atomically, before any event is
  /// buffered. Complete timespans are built and persisted as they fill up.
  Status Ingest(const std::vector<Event>& events);

  /// Builds the final partial timespan and writes the global metadata.
  /// Further Ingest calls continue the index (batch updates); call Finish
  /// again to re-publish metadata.
  Status Finish();

  /// Backfill path for Friendster-scale histories: validates the whole
  /// stream once, splits it into timespans, builds independent spans
  /// bottom-up across the worker pool (each span's start state is replayed
  /// ahead sequentially, then the spans encode and group-commit their rows
  /// concurrently), and publishes the global metadata exactly once at the
  /// end. Produces byte-identical storage contents to Ingest + Finish over
  /// the same stream. Requires timespan-aligned state: no partial span may
  /// be pending (a fresh builder, or one whose ingested event count is a
  /// multiple of events_per_timespan). On failure the builder state is
  /// unspecified.
  Status BulkLoad(const std::vector<Event>& events);

  /// State of the graph after everything ingested so far.
  const Graph& current_state() const { return state_; }

  uint64_t total_events() const { return total_events_; }
  uint32_t timespans_built() const {
    return static_cast<uint32_t>(next_tsid_);
  }

 private:
  /// One prepass over a batch: timestamps must be non-decreasing and start
  /// at or after everything previously ingested. Reports the offending
  /// batch index, so span builds never see invalid input mid-flight.
  Status ValidateBatch(const std::vector<Event>& events) const;

  /// ingest_threads with the 0 = hardware-concurrency default applied.
  size_t EffectiveIngestThreads() const;

  Status BuildTimespan(const std::vector<Event>& events);

  /// Builds and stores timespan `tsid` from `events`, which start from
  /// graph state `span_start`. On success, `*end_state` (when non-null)
  /// receives the graph state after the span; `end_state` may alias a
  /// member the caller passes as `span_start` (it is only written last).
  Status BuildTimespanFrom(std::span<const Event> events, TimespanId tsid,
                           const Graph& span_start, Graph* end_state);

  Cluster* cluster_;
  TGIOptions options_;
  Graph state_;  // graph state at the start of the pending buffer
  std::vector<Event> pending_;
  Timestamp last_time_ = kMinTimestamp;
  Timestamp first_time_ = kMaxTimestamp;
  uint64_t total_events_ = 0;
  size_t next_tsid_ = 0;
  /// Epoch scopes written since the last publish. Every span build records
  /// the (table, partition) of each row it committed; Finish() publishes
  /// the accumulated set through Cluster::PublishTouched so readers
  /// invalidate exactly these scopes. Guarded because BulkLoad builds
  /// spans concurrently.
  Mutex touched_mu_;
  std::vector<EpochKey> touched_scopes_ GUARDED_BY(touched_mu_);
};

}  // namespace hgs

#endif  // HGS_TGI_BUILDER_H_
