// TGIBuilder: constructs the Temporal Graph Index from a chronological event
// stream (Section 4.4, "Construction and Update").
//
// Per timespan (a fixed number of events), the builder:
//   1. computes the span's node -> micro-partition assignment (random hash or
//      Ω-collapse + locality min-cut),
//   2. chunks the events into eventlists of size l, micro-partitioned by the
//      touched nodes' pids (edge events go to both endpoints' pids),
//   3. captures snapshot checkpoints every `checkpoint_interval` events and
//      compresses them into a DeltaGraph-style intersection tree: the stored
//      deltas are the root (span-stable state plus the intersection of all
//      checkpoint residues) and the derived deltas child - parent,
//   4. accumulates per-node version chains pointing at the eventlists that
//      touch each node,
//   5. when 1-hop replication is on, emits auxiliary micro-deltas carrying
//      the records of out-of-partition neighbors.
//
// Event streams must have strictly increasing timestamps (a transaction-time
// order), and RemoveEdge events must precede the RemoveNode of an endpoint.

#ifndef HGS_TGI_BUILDER_H_
#define HGS_TGI_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "delta/eventlist.h"
#include "graph/graph.h"
#include "kvstore/cluster.h"
#include "tgi/metadata.h"
#include "tgi/options.h"

namespace hgs {

class TGIBuilder {
 public:
  TGIBuilder(Cluster* cluster, TGIOptions options);

  /// Appends events (chronological, strictly increasing timestamps; must
  /// also be after everything previously ingested). Complete timespans are
  /// built and persisted as they fill up.
  Status Ingest(const std::vector<Event>& events);

  /// Builds the final partial timespan and writes the global metadata.
  /// Further Ingest calls continue the index (batch updates); call Finish
  /// again to re-publish metadata.
  Status Finish();

  /// State of the graph after everything ingested so far.
  const Graph& current_state() const { return state_; }

  uint64_t total_events() const { return total_events_; }
  uint32_t timespans_built() const {
    return static_cast<uint32_t>(next_tsid_);
  }

 private:
  Status BuildTimespan(const std::vector<Event>& events);

  Cluster* cluster_;
  TGIOptions options_;
  Graph state_;  // graph state at the start of the pending buffer
  std::vector<Event> pending_;
  Timestamp last_time_ = kMinTimestamp;
  Timestamp first_time_ = kMaxTimestamp;
  uint64_t total_events_ = 0;
  size_t next_tsid_ = 0;
};

}  // namespace hgs

#endif  // HGS_TGI_BUILDER_H_
