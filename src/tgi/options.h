// Tuning knobs of the Temporal Graph Index (Section 4.4: "TGI is a tunable
// index structure"). The evaluation sweeps eventlist size (l), micro-delta
// partition size (ps), horizontal partition count, partitioning strategy and
// replication; all are surfaced here.

#ifndef HGS_TGI_OPTIONS_H_
#define HGS_TGI_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/compression.h"
#include "partition/dynamic_partitioner.h"

namespace hgs {

/// Clustering order of micro-delta keys (Section 4.4, item 5).
enum class ClusteringOrder {
  /// did | aux | pid — all micro-partitions of one delta are contiguous;
  /// snapshot scans cost one seek per (delta, storage partition).
  kDeltaMajor,
  /// pid | aux | did — all deltas of one micro-partition are contiguous;
  /// entity-centric fetches cost one seek per micro-partition.
  kPartitionMajor,
};

struct TGIOptions {
  /// Events per timespan (the partitioning is recomputed at span
  /// boundaries; uniform span length "in numbers of events" per §4.5).
  size_t events_per_timespan = 20'000;

  /// Eventlist size l: events per eventlist delta.
  size_t eventlist_size = 250;

  /// Events between snapshot checkpoints (leaves of the temporal
  /// hierarchy). Must be a multiple of eventlist_size; 0 derives
  /// max(eventlist_size, events_per_timespan / 16).
  size_t checkpoint_interval = 0;

  /// Micro-delta partition size ps: target node count per micro-partition.
  size_t micro_delta_size = 500;

  /// Arity of the temporal-compression hierarchy (DeltaGraph's k).
  uint32_t hierarchy_arity = 2;

  /// Horizontal partitions (the paper's ns / sid domain): placement spread.
  size_t num_horizontal_partitions = 4;

  /// Node -> micro-partition strategy (Fig 15a: Random vs "Maxflow").
  PartitionStrategy partition_strategy = PartitionStrategy::kRandom;

  /// Ω-collapse configuration for locality partitioning.
  CollapseOptions collapse;

  /// 1-hop edge-cut replication into auxiliary micro-deltas (Fig 5d).
  bool replicate_one_hop = false;

  ClusteringOrder clustering_order = ClusteringOrder::kDeltaMajor;

  /// Buckets of the Micropartitions table (locality partitioning only).
  size_t micropartition_buckets = 64;

  /// Byte budget of the read-side partition-delta cache used by query
  /// managers opened through TGI::OpenQueryManager. Fetched micro-delta
  /// rows and partition scans are cached keyed by their (table, partition,
  /// row) coordinates, with LRU byte-budget eviction, so repeated and
  /// overlapping retrievals skip the simulated fetch round trips entirely.
  /// The cache is invalidated whenever index metadata is re-published
  /// (BuildFrom / AppendBatch), keeping batched updates correct. 0 disables
  /// caching.
  size_t read_cache_bytes = 64ull << 20;

  /// Shard count of the read cache; each shard has its own lock, so this
  /// bounds lock contention between parallel fetch clients.
  size_t read_cache_shards = 16;

  /// Byte budget of the decoded-object cache (second read-side tier). Where
  /// the partition-delta cache saves round trips, this tier saves CPU: it
  /// holds immutable decoded Delta / EventList / version-chain objects
  /// keyed by the same epoch-scoped row coordinates, so a repeated read
  /// costs neither a fetch nor a Deserialize — the dominant term once
  /// fetches are batched and cached. Budgeted by decoded footprint
  /// (SerializedSizeBytes), invalidated with the byte cache on republish,
  /// sharded like read_cache_shards. 0 disables the tier.
  size_t decoded_cache_bytes = 32ull << 20;

  /// Worker parallelism of the ingest pipeline. The event stream of a
  /// timespan is still sequenced on one thread (routing, checkpoint
  /// placement, version-chain accumulation are order-sensitive), but the
  /// hot work — leaf compaction, intersection-tree algebra, micro-partition
  /// splits, row serialization — is sharded across this many workers of the
  /// shared pool, and encoded rows are group-committed per storage node via
  /// Cluster::MultiPut. BulkLoad additionally builds this many timespans
  /// concurrently. Parallel ingest produces byte-identical storage contents
  /// to serial ingest (asserted by ingest_determinism_test). 0 = one worker
  /// per hardware thread; 1 = fully serial.
  size_t ingest_threads = 0;

  /// Commit encoded rows via Cluster::MultiPut group batches (one batched
  /// submission per storage node per table). false falls back to
  /// row-at-a-time Cluster::Put — the pre-pipeline write contract, kept as
  /// the measured baseline of bench_ingest. Storage contents are identical
  /// either way.
  bool group_commit_puts = true;

  /// Publish metadata with the blanket global-epoch bump instead of the
  /// partition-scoped PublishTouched. A blanket publish colds every
  /// reader's cache tiers on the next query; the scoped publish (default)
  /// invalidates only the (table, partition) scopes the writer touched.
  /// Kept as bench_mixed_workload's measured baseline.
  bool coarse_publish_epoch = false;

  /// Per-table-family compression overrides. When set, builder writes of
  /// the matching row family are sealed with this codec instead of the
  /// cluster-wide ClusterOptions::compression: `row_compression` covers the
  /// Deltas-table rows (tree deltas and micro-deltas — ValueSchema::kDelta),
  /// `eventlist_compression` the eventlist rows (kEventList) and
  /// `versions_compression` the version-chain rows (kVersionChain).
  /// kColumnar here is always safe: blocks where the columnar form loses
  /// (or that a schema cannot represent) fall back per block to kLz/stored.
  std::optional<CompressionKind> row_compression;
  std::optional<CompressionKind> eventlist_compression;
  std::optional<CompressionKind> versions_compression;

  /// TinyLFU-style admission on both read-side cache tiers: a doorkeeper
  /// bit array plus a small frequency sketch gate inserts that would evict,
  /// so one cold snapshot scan over the whole key space cannot flush a hot
  /// node-history working set. Off by default (pure LRU admission).
  bool cache_tinylfu_admission = false;

  /// Effective checkpoint interval after defaulting rules.
  size_t EffectiveCheckpointInterval() const {
    size_t cp = checkpoint_interval;
    if (cp == 0) {
      cp = events_per_timespan / 16;
      if (cp < eventlist_size) cp = eventlist_size;
    }
    // Round up to a multiple of the eventlist size.
    size_t l = eventlist_size == 0 ? 1 : eventlist_size;
    cp = ((cp + l - 1) / l) * l;
    return cp;
  }
};

}  // namespace hgs

#endif  // HGS_TGI_OPTIONS_H_
