#include "tgi/metadata.h"

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>

#include "common/columnar.h"
#include "common/compression.h"

namespace hgs::tgi {

namespace {

// -- kVersionChain columnar schema ------------------------------------------
// All-numeric columns, no dictionaries (see common/columnar.h):
//   0 head   : varint node, varint32 tsid, varint32 pid, varint entry count
//   1 elidx  : zigzag varint deltas of eventlist_index (near-monotone)
//   2 pids   : varint32 per entry
//   3 first  : zigzag varint deltas of first_time (chronological entries)
//   4 last   : zigzag varint (last_time - first_time) per entry
//   5 counts : varint32 event_count per entry
constexpr size_t kVcColHead = 0;
constexpr size_t kVcColElIdx = 1;
constexpr size_t kVcColPids = 2;
constexpr size_t kVcColFirst = 3;
constexpr size_t kVcColLast = 4;
constexpr size_t kVcColCounts = 5;

std::string EncodeColumnarSegmentPayload(const VersionChainSegment& seg) {
  BinaryWriter head;
  head.PutVarint64(seg.node);
  head.PutVarint32(seg.tsid);
  head.PutVarint32(seg.pid);
  head.PutVarint64(seg.entries.size());

  BinaryWriter elidx;
  BinaryWriter pids;
  BinaryWriter firsts;
  BinaryWriter lasts;
  BinaryWriter counts;
  DeltaInt64Encoder el_enc;
  DeltaInt64Encoder first_enc;
  for (const VersionEntry& e : seg.entries) {
    el_enc.Put(&elidx, e.eventlist_index);
    pids.PutVarint32(e.pid);
    first_enc.Put(&firsts, e.first_time);
    lasts.PutSigned64(e.last_time - e.first_time);
    counts.PutVarint32(e.event_count);
  }

  ColumnarBlockWriter block(ValueSchema::kVersionChain);
  block.AddColumn(head.Finish());
  block.AddColumn(elidx.Finish());
  block.AddColumn(pids.Finish());
  block.AddColumn(firsts.Finish());
  block.AddColumn(lasts.Finish());
  block.AddColumn(counts.Finish());
  return block.Finish();
}

Result<VersionChainSegment> DecodeColumnarSegment(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(
      ColumnarBlockReader block,
      ColumnarBlockReader::Parse(payload, ValueSchema::kVersionChain));
  HGS_ASSIGN_OR_RETURN(std::string_view head_col, block.Column(kVcColHead));
  HGS_ASSIGN_OR_RETURN(std::string_view el_col, block.Column(kVcColElIdx));
  HGS_ASSIGN_OR_RETURN(std::string_view pid_col, block.Column(kVcColPids));
  HGS_ASSIGN_OR_RETURN(std::string_view first_col,
                       block.Column(kVcColFirst));
  HGS_ASSIGN_OR_RETURN(std::string_view last_col, block.Column(kVcColLast));
  HGS_ASSIGN_OR_RETURN(std::string_view count_col,
                       block.Column(kVcColCounts));

  BinaryReader head(head_col);
  VersionChainSegment seg;
  seg.node = head.ReadVarint64();
  seg.tsid = static_cast<TimespanId>(head.ReadVarint64());
  seg.pid = static_cast<MicroPartitionId>(head.ReadVarint64());
  uint64_t n = head.ReadVarint64();
  if (head.failed()) return head.BulkStatus();

  BinaryReader els(el_col);
  BinaryReader pids(pid_col);
  BinaryReader firsts(first_col);
  BinaryReader lasts(last_col);
  BinaryReader counts(count_col);
  DeltaInt64Decoder el_dec;
  DeltaInt64Decoder first_dec;
  seg.entries.reserve(std::min<uint64_t>(n, payload.size()));
  for (uint64_t i = 0; i < n; ++i) {
    VersionEntry e;
    e.tsid = seg.tsid;
    e.eventlist_index = static_cast<uint32_t>(el_dec.Next(&els));
    e.pid = static_cast<MicroPartitionId>(pids.ReadVarint64());
    e.first_time = first_dec.Next(&firsts);
    e.last_time = e.first_time + lasts.ReadSigned64();
    e.event_count = static_cast<uint32_t>(counts.ReadVarint64());
    if (els.failed() || pids.failed() || firsts.failed() || lasts.failed() ||
        counts.failed()) {
      return Status::Corruption("columnar version chain: truncated column");
    }
    seg.entries.push_back(e);
  }
  return seg;
}

std::optional<std::string> ColumnarEncodeSegment(std::string_view payload) {
  Result<VersionChainSegment> parsed = VersionChainSegment::Deserialize(payload);
  if (!parsed.ok()) return std::nullopt;
  // Only canonical serializations are eligible (see the eventlist codec).
  if (parsed->Serialize() != payload) return std::nullopt;
  return EncodeColumnarSegmentPayload(*parsed);
}

Result<std::string> ColumnarReencodeSegment(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(VersionChainSegment seg,
                       VersionChainSegment::Deserialize(payload));
  return seg.Serialize();
}

[[maybe_unused]] const bool kVersionChainCodecRegistered = [] {
  RegisterColumnarCodec(ValueSchema::kVersionChain, &ColumnarEncodeSegment,
                        &ColumnarReencodeSegment);
  return true;
}();

}  // namespace

std::vector<DeltaId> TimespanMeta::PathToCheckpoint(
    int32_t checkpoint_index) const {
  // Locate the leaf for the checkpoint, then climb to the root.
  int32_t leaf = -1;
  for (size_t i = 0; i < tree.size(); ++i) {
    if (tree[i].checkpoint_index == checkpoint_index) {
      leaf = static_cast<int32_t>(i);
      break;
    }
  }
  std::vector<DeltaId> path;
  if (leaf < 0) return path;
  for (int32_t cur = leaf; cur >= 0; cur = tree[static_cast<size_t>(cur)].parent) {
    path.push_back(static_cast<DeltaId>(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int32_t TimespanMeta::CheckpointBefore(Timestamp t) const {
  int32_t best = -1;
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    if (checkpoints[i] <= t) best = static_cast<int32_t>(i);
  }
  return best;
}

int32_t TimespanMeta::EventlistCovering(Timestamp t) const {
  int32_t best = -1;
  for (size_t i = 0; i < eventlist_bounds.size(); ++i) {
    if (eventlist_bounds[i].first <= t) best = static_cast<int32_t>(i);
  }
  return best;
}

void TimespanMeta::SerializeTo(BinaryWriter* w) const {
  w->PutVarint32(tsid);
  w->PutSigned64(start);
  w->PutSigned64(end);
  w->PutVarint64(event_count);
  w->PutVarint32(eventlist_size);
  w->PutVarint32(checkpoint_interval);
  w->PutVarint32(num_micro_partitions);
  w->PutFixed8(strategy);
  w->PutVarint64(checkpoints.size());
  for (Timestamp c : checkpoints) w->PutSigned64(c);
  w->PutVarint64(eventlist_bounds.size());
  for (const auto& [first, last] : eventlist_bounds) {
    w->PutSigned64(first);
    w->PutSigned64(last);
  }
  w->PutVarint64(tree.size());
  for (const TreeNode& n : tree) {
    w->PutSigned64(n.parent);
    w->PutSigned64(n.checkpoint_index);
  }
}

Result<TimespanMeta> TimespanMeta::DeserializeFrom(BinaryReader* r) {
  TimespanMeta m;
  HGS_ASSIGN_OR_RETURN(m.tsid, r->GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.start, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(m.end, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(m.event_count, r->GetVarint64());
  HGS_ASSIGN_OR_RETURN(m.eventlist_size, r->GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.checkpoint_interval, r->GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.num_micro_partitions, r->GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.strategy, r->GetFixed8());
  HGS_ASSIGN_OR_RETURN(uint64_t n_cp, r->GetVarint64());
  m.checkpoints.reserve(n_cp);
  for (uint64_t i = 0; i < n_cp; ++i) {
    HGS_ASSIGN_OR_RETURN(Timestamp t, r->GetSigned64());
    m.checkpoints.push_back(t);
  }
  HGS_ASSIGN_OR_RETURN(uint64_t n_el, r->GetVarint64());
  m.eventlist_bounds.reserve(n_el);
  for (uint64_t i = 0; i < n_el; ++i) {
    HGS_ASSIGN_OR_RETURN(Timestamp first, r->GetSigned64());
    HGS_ASSIGN_OR_RETURN(Timestamp last, r->GetSigned64());
    m.eventlist_bounds.emplace_back(first, last);
  }
  HGS_ASSIGN_OR_RETURN(uint64_t n_tree, r->GetVarint64());
  m.tree.reserve(n_tree);
  for (uint64_t i = 0; i < n_tree; ++i) {
    TreeNode node;
    HGS_ASSIGN_OR_RETURN(int64_t parent, r->GetSigned64());
    HGS_ASSIGN_OR_RETURN(int64_t cp, r->GetSigned64());
    node.parent = static_cast<int32_t>(parent);
    node.checkpoint_index = static_cast<int32_t>(cp);
    m.tree.push_back(node);
  }
  return m;
}

std::string VersionChainSegment::Serialize() const {
  BinaryWriter w;
  w.PutVarint64(node);
  w.PutVarint32(tsid);
  w.PutVarint32(pid);
  w.PutVarint64(entries.size());
  for (const VersionEntry& e : entries) {
    w.PutVarint32(e.eventlist_index);
    w.PutVarint32(e.pid);
    w.PutSigned64(e.first_time);
    w.PutSigned64(e.last_time);
    w.PutVarint32(e.event_count);
  }
  return w.FinishWithChecksum();
}

Result<VersionChainSegment> VersionChainSegment::Deserialize(
    std::string_view data) {
  // A columnar payload (alternative serialization; see common/columnar.h)
  // routes on its magic — legacy payloads can never start with those bytes.
  if (IsColumnarPayload(data)) return DecodeColumnarSegment(data);
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  VersionChainSegment seg;
  HGS_ASSIGN_OR_RETURN(seg.node, r.GetVarint64());
  HGS_ASSIGN_OR_RETURN(seg.tsid, r.GetVarint32());
  HGS_ASSIGN_OR_RETURN(seg.pid, r.GetVarint32());
  HGS_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint64());
  seg.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VersionEntry e;
    e.tsid = seg.tsid;
    HGS_ASSIGN_OR_RETURN(e.eventlist_index, r.GetVarint32());
    HGS_ASSIGN_OR_RETURN(e.pid, r.GetVarint32());
    HGS_ASSIGN_OR_RETURN(e.first_time, r.GetSigned64());
    HGS_ASSIGN_OR_RETURN(e.last_time, r.GetSigned64());
    HGS_ASSIGN_OR_RETURN(e.event_count, r.GetVarint32());
    seg.entries.push_back(e);
  }
  return seg;
}

std::string GraphMeta::Serialize() const {
  BinaryWriter w;
  w.PutSigned64(start);
  w.PutSigned64(end);
  w.PutVarint64(event_count);
  w.PutVarint32(timespan_count);
  w.PutVarint32(num_horizontal_partitions);
  w.PutFixed8(clustering_order);
  w.PutBool(replicate_one_hop);
  w.PutVarint32(micropartition_buckets);
  return w.FinishWithChecksum();
}

Result<GraphMeta> GraphMeta::Deserialize(std::string_view data) {
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  GraphMeta m;
  HGS_ASSIGN_OR_RETURN(m.start, r.GetSigned64());
  HGS_ASSIGN_OR_RETURN(m.end, r.GetSigned64());
  HGS_ASSIGN_OR_RETURN(m.event_count, r.GetVarint64());
  HGS_ASSIGN_OR_RETURN(m.timespan_count, r.GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.num_horizontal_partitions, r.GetVarint32());
  HGS_ASSIGN_OR_RETURN(m.clustering_order, r.GetFixed8());
  HGS_ASSIGN_OR_RETURN(m.replicate_one_hop, r.GetBool());
  HGS_ASSIGN_OR_RETURN(m.micropartition_buckets, r.GetVarint32());
  return m;
}

std::string SerializeMicropartBucket(
    const std::vector<std::pair<NodeId, MicroPartitionId>>& entries) {
  BinaryWriter w;
  w.PutVarint64(entries.size());
  for (const auto& [nid, pid] : entries) {
    w.PutVarint64(nid);
    w.PutVarint32(pid);
  }
  return w.FinishWithChecksum();
}

Result<std::vector<std::pair<NodeId, MicroPartitionId>>>
DeserializeMicropartBucket(std::string_view data) {
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  HGS_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint64());
  std::vector<std::pair<NodeId, MicroPartitionId>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HGS_ASSIGN_OR_RETURN(NodeId nid, r.GetVarint64());
    HGS_ASSIGN_OR_RETURN(MicroPartitionId pid, r.GetVarint32());
    out.emplace_back(nid, pid);
  }
  return out;
}

}  // namespace hgs::tgi
