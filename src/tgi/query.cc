#include "tgi/query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_set>

#include "common/thread_pool.h"
#include "tgi/layout.h"

namespace hgs {

namespace {

class WallTimer {
 public:
  explicit WallTimer(FetchStats* stats) : stats_(stats) {}
  ~WallTimer() {
    if (stats_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    stats_->wall_seconds +=
        std::chrono::duration<double>(end - start_).count();
  }

 private:
  FetchStats* stats_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

// Thread-safe accumulation of fetch counters during a parallel fetch.
struct AtomicStats {
  std::atomic<uint64_t> kv_requests{0};
  std::atomic<uint64_t> micro_deltas{0};
  std::atomic<uint64_t> bytes{0};

  void FlushInto(FetchStats* stats) const {
    if (stats == nullptr) return;
    stats->kv_requests += kv_requests.load();
    stats->micro_deltas += micro_deltas.load();
    stats->bytes += bytes.load();
  }
};

}  // namespace

std::vector<std::pair<Timestamp, Delta>> NodeHistory::Materialize() const {
  std::vector<std::pair<Timestamp, Delta>> out;
  Delta state = initial;
  out.emplace_back(from, state);
  for (const Event& e : events.events()) {
    state.ApplyEvent(e);
    out.emplace_back(e.time, state);
  }
  return out;
}

TGIQueryManager::TGIQueryManager(Cluster* cluster, size_t fetch_parallelism)
    : cluster_(cluster),
      fetch_parallelism_(fetch_parallelism == 0 ? 1 : fetch_parallelism) {}

Status TGIQueryManager::Open() {
  auto meta_raw = cluster_->Get(tgi::kGraphTable, 0, "meta");
  if (!meta_raw.ok()) return meta_raw.status();
  HGS_ASSIGN_OR_RETURN(graph_meta_, tgi::GraphMeta::Deserialize(*meta_raw));
  auto spans_raw = cluster_->Scan(tgi::kTimespansTable, 0, "");
  if (!spans_raw.ok()) return spans_raw.status();
  spans_.clear();
  spans_.reserve(spans_raw->size());
  for (const KVPair& kv : *spans_raw) {
    BinaryReader r(kv.value);
    HGS_RETURN_NOT_OK(r.VerifyChecksum());
    HGS_ASSIGN_OR_RETURN(tgi::TimespanMeta meta,
                         tgi::TimespanMeta::DeserializeFrom(&r));
    spans_.push_back(std::move(meta));
  }
  std::sort(spans_.begin(), spans_.end(),
            [](const tgi::TimespanMeta& a, const tgi::TimespanMeta& b) {
              return a.tsid < b.tsid;
            });
  opened_ = true;
  return Status::OK();
}

const tgi::TimespanMeta* TGIQueryManager::SpanFor(Timestamp t) const {
  const tgi::TimespanMeta* best = nullptr;
  for (const auto& span : spans_) {
    if (span.start <= t) {
      best = &span;
    } else {
      break;
    }
  }
  return best;
}

Result<std::optional<std::string>> TGIQueryManager::FetchValue(
    std::string_view table, uint64_t partition, std::string_view key,
    FetchStats* stats) {
  auto res = cluster_->Get(table, partition, key);
  if (stats != nullptr) ++stats->kv_requests;
  if (!res.ok()) {
    if (res.status().IsNotFound()) return std::optional<std::string>();
    return res.status();
  }
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += res->size();
  }
  return std::optional<std::string>(std::move(*res));
}

Result<MicroPartitionId> TGIQueryManager::PidOf(NodeId id,
                                                const tgi::TimespanMeta& span,
                                                FetchStats* stats) {
  if (span.strategy == static_cast<uint8_t>(PartitionStrategy::kRandom)) {
    return Partitioning::Random(span.num_micro_partitions).Of(id);
  }
  size_t buckets = std::max<uint32_t>(1, graph_meta_.micropartition_buckets);
  uint64_t bucket = tgi::NodePlacement(id) % buckets;
  uint64_t cache_key = static_cast<uint64_t>(span.tsid) * buckets + bucket;
  {
    std::lock_guard<std::mutex> lock(micropart_mu_);
    auto it = micropart_cache_.find(cache_key);
    if (it != micropart_cache_.end()) {
      auto hit = it->second.find(id);
      if (hit != it->second.end()) return hit->second;
      return Partitioning::Random(span.num_micro_partitions).HashFallback(id);
    }
  }
  std::string key;
  AppendOrdered32(&key, static_cast<uint32_t>(bucket));
  HGS_ASSIGN_OR_RETURN(
      std::optional<std::string> raw,
      FetchValue(tgi::kMicropartsTable, cache_key, key, stats));
  std::unordered_map<NodeId, MicroPartitionId> map;
  if (raw.has_value()) {
    HGS_ASSIGN_OR_RETURN(auto entries, tgi::DeserializeMicropartBucket(*raw));
    map.reserve(entries.size());
    for (const auto& [nid, pid] : entries) map[nid] = pid;
  }
  MicroPartitionId result;
  auto hit = map.find(id);
  if (hit != map.end()) {
    result = hit->second;
  } else {
    result = Partitioning::Random(span.num_micro_partitions).HashFallback(id);
  }
  {
    std::lock_guard<std::mutex> lock(micropart_mu_);
    micropart_cache_[cache_key] = std::move(map);
  }
  return result;
}

Result<Delta> TGIQueryManager::GetSnapshotDelta(Timestamp t,
                                                FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  const tgi::TimespanMeta* span = SpanFor(t);
  if (span == nullptr) return Delta();  // before all history

  int32_t cpi = span->CheckpointBefore(t);
  if (cpi < 0) cpi = 0;
  std::vector<DeltaId> path = span->PathToCheckpoint(cpi);
  size_t evl_from = static_cast<size_t>(cpi) * span->checkpoint_interval /
                    span->eventlist_size;
  int32_t evl_to = span->EventlistCovering(t);

  // Assemble the fetch units: tree deltas along the path, then eventlists.
  struct Unit {
    DeltaId did;
    size_t order;    // merge order
    bool eventlist;  // value decode type
    PartitionId sid;          // delta-major scan target
    MicroPartitionId pid;     // partition-major get target
  };
  const size_t ns = graph_meta_.num_horizontal_partitions;
  const auto order =
      static_cast<ClusteringOrder>(graph_meta_.clustering_order);
  std::vector<DeltaId> dids;
  std::vector<bool> is_evl;
  for (DeltaId did : path) {
    dids.push_back(did);
    is_evl.push_back(false);
  }
  if (evl_to >= 0) {
    for (size_t j = evl_from; j <= static_cast<size_t>(evl_to); ++j) {
      dids.push_back(tgi::EventlistDid(j));
      is_evl.push_back(true);
    }
  }

  std::vector<Unit> units;
  if (order == ClusteringOrder::kDeltaMajor) {
    for (size_t i = 0; i < dids.size(); ++i) {
      for (size_t sid = 0; sid < ns; ++sid) {
        units.push_back(Unit{dids[i], i, is_evl[i],
                             static_cast<PartitionId>(sid), 0});
      }
    }
  } else {
    for (size_t i = 0; i < dids.size(); ++i) {
      for (MicroPartitionId pid = 0; pid < span->num_micro_partitions;
           ++pid) {
        units.push_back(Unit{dids[i], i, is_evl[i], 0, pid});
      }
    }
  }

  // Parallel fetch into per-order slots. Deserialization happens inside the
  // fetch tasks — the paper's query processors "process the raw deltas" in
  // parallel; only the ordered merge below is sequential.
  std::vector<std::vector<Delta>> slot_deltas(dids.size());
  std::vector<std::vector<EventList>> slot_evls(dids.size());
  std::vector<std::mutex> slot_mu(dids.size());
  AtomicStats astats;
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  auto fail_with = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!failed.exchange(true)) first_error = s;
  };
  ParallelFor(units.size(), fetch_parallelism_, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const Unit& u = units[i];
    std::vector<std::string> raws;
    if (order == ClusteringOrder::kDeltaMajor) {
      auto res = cluster_->Scan(tgi::kDeltasTable,
                                tgi::DeltaPlacement(span->tsid, u.sid, ns),
                                tgi::DeltaScanPrefix(u.did));
      astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
      if (!res.ok()) {
        fail_with(res.status());
        return;
      }
      for (KVPair& kv : *res) raws.push_back(std::move(kv.value));
    } else {
      PartitionId sid = tgi::SidOf(u.pid, ns);
      auto res = cluster_->Get(tgi::kDeltasTable,
                               tgi::DeltaPlacement(span->tsid, sid, ns),
                               tgi::DeltaRowKey(order, u.did, u.pid, false));
      astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
      if (!res.ok()) {
        if (res.status().IsNotFound()) return;  // empty micro-partition
        fail_with(res.status());
        return;
      }
      raws.push_back(std::move(*res));
    }
    std::vector<Delta> deltas;
    std::vector<EventList> evls;
    for (const std::string& raw : raws) {
      astats.micro_deltas.fetch_add(1, std::memory_order_relaxed);
      astats.bytes.fetch_add(raw.size(), std::memory_order_relaxed);
      if (!u.eventlist) {
        auto d = Delta::Deserialize(raw);
        if (!d.ok()) {
          fail_with(d.status());
          return;
        }
        deltas.push_back(std::move(*d));
      } else {
        auto evl = EventList::Deserialize(raw);
        if (!evl.ok()) {
          fail_with(evl.status());
          return;
        }
        evls.push_back(std::move(*evl));
      }
    }
    std::lock_guard<std::mutex> lock(slot_mu[u.order]);
    for (auto& d : deltas) slot_deltas[u.order].push_back(std::move(d));
    for (auto& e : evls) slot_evls[u.order].push_back(std::move(e));
  });
  astats.FlushInto(stats);
  if (failed.load()) return first_error;

  // Merge: tree deltas root-to-leaf, then eventlists in order, up to t.
  Delta acc;
  for (size_t i = 0; i < dids.size(); ++i) {
    if (!is_evl[i]) {
      for (const Delta& d : slot_deltas[i]) acc.Add(d);
    } else {
      for (const EventList& evl : slot_evls[i]) evl.ApplyUpTo(t, &acc);
    }
  }
  return acc;
}

Result<Graph> TGIQueryManager::GetSnapshot(Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Delta d, GetSnapshotDelta(t, stats));
  return d.ToGraph();
}

Result<std::vector<Graph>> TGIQueryManager::GetMultipointSnapshots(
    const std::vector<Timestamp>& times, FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  std::vector<Timestamp> sorted = times;
  std::sort(sorted.begin(), sorted.end());

  std::vector<Graph> by_sorted_index;
  by_sorted_index.reserve(sorted.size());
  Delta state;
  const tgi::TimespanMeta* state_span = nullptr;
  Timestamp state_time = kMinTimestamp;
  int32_t state_cpi = -1;

  for (Timestamp t : sorted) {
    const tgi::TimespanMeta* span = SpanFor(t);
    bool can_roll_forward = span != nullptr && span == state_span &&
                            t >= state_time &&
                            span->CheckpointBefore(t) == state_cpi;
    if (!can_roll_forward) {
      FetchStats inner;
      auto delta = GetSnapshotDelta(t, &inner);
      inner.wall_seconds = 0;
      if (stats != nullptr) stats->Merge(inner);
      if (!delta.ok()) return delta.status();
      state = std::move(*delta);
      state_span = span;
      state_cpi = span == nullptr ? -1 : span->CheckpointBefore(t);
    } else {
      // Same span, same checkpoint: replay only the eventlists covering
      // (state_time, t].
      int32_t evl_from = span->EventlistCovering(state_time);
      if (evl_from < 0) evl_from = 0;
      int32_t evl_to = span->EventlistCovering(t);
      const size_t ns = graph_meta_.num_horizontal_partitions;
      for (int32_t j = evl_from; j <= evl_to; ++j) {
        for (size_t sid = 0; sid < ns; ++sid) {
          auto res = cluster_->Scan(
              tgi::kDeltasTable,
              tgi::DeltaPlacement(span->tsid, static_cast<PartitionId>(sid),
                                  ns),
              tgi::DeltaScanPrefix(
                  tgi::EventlistDid(static_cast<size_t>(j))));
          if (stats != nullptr) ++stats->kv_requests;
          if (!res.ok()) return res.status();
          for (const KVPair& kv : *res) {
            if (stats != nullptr) {
              ++stats->micro_deltas;
              stats->bytes += kv.value.size();
            }
            HGS_ASSIGN_OR_RETURN(EventList evl,
                                 EventList::Deserialize(kv.value));
            // Skip events already applied, stop at t.
            for (const Event& e : evl.events()) {
              if (e.time > state_time && e.time <= t) state.ApplyEvent(e);
            }
          }
        }
      }
    }
    state_time = t;
    by_sorted_index.push_back(state.ToGraph());
  }

  // Restore the caller's ordering.
  std::vector<Graph> out(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), times[i]);
    out[i] = by_sorted_index[static_cast<size_t>(it - sorted.begin())];
  }
  return out;
}

Result<Delta> TGIQueryManager::FetchMicroStateAt(const tgi::TimespanMeta& span,
                                                 MicroPartitionId pid,
                                                 Timestamp t, bool include_aux,
                                                 FetchStats* stats) {
  int32_t cpi = span.CheckpointBefore(t);
  if (cpi < 0) cpi = 0;
  std::vector<DeltaId> path = span.PathToCheckpoint(cpi);
  size_t evl_from = static_cast<size_t>(cpi) * span.checkpoint_interval /
                    span.eventlist_size;
  int32_t evl_to = span.EventlistCovering(t);

  const size_t ns = graph_meta_.num_horizontal_partitions;
  const auto order =
      static_cast<ClusteringOrder>(graph_meta_.clustering_order);
  const PartitionId sid = tgi::SidOf(pid, ns);
  const uint64_t placement = tgi::DeltaPlacement(span.tsid, sid, ns);

  std::vector<DeltaId> dids;
  std::vector<bool> is_evl;
  for (DeltaId did : path) {
    dids.push_back(did);
    is_evl.push_back(false);
  }
  if (evl_to >= 0) {
    for (size_t j = evl_from; j <= static_cast<size_t>(evl_to); ++j) {
      dids.push_back(tgi::EventlistDid(j));
      is_evl.push_back(true);
    }
  }

  // Values per did (regular row + optional aux row).
  std::vector<std::optional<std::string>> regular(dids.size());
  std::vector<std::optional<std::string>> aux(dids.size());

  if (order == ClusteringOrder::kPartitionMajor) {
    // One contiguous scan yields every did of this micro-partition; filter
    // to the ones we need (Section 4.4's entity-centric clustering payoff).
    auto res = cluster_->Scan(tgi::kDeltasTable, placement,
                              tgi::PartitionScanPrefix(pid));
    if (stats != nullptr) ++stats->kv_requests;
    if (!res.ok()) return res.status();
    std::unordered_map<DeltaId, size_t> want;
    for (size_t i = 0; i < dids.size(); ++i) want[dids[i]] = i;
    for (KVPair& kv : *res) {
      DeltaId did;
      MicroPartitionId parsed_pid;
      bool is_aux;
      if (!tgi::ParseDeltaRowKey(order, kv.key, &did, &parsed_pid, &is_aux)) {
        continue;
      }
      auto it = want.find(did);
      if (it == want.end()) continue;
      if (stats != nullptr) {
        ++stats->micro_deltas;
        stats->bytes += kv.value.size();
      }
      regular[it->second] = std::move(kv.value);
    }
    if (include_aux) {
      for (size_t i = 0; i < dids.size(); ++i) {
        HGS_ASSIGN_OR_RETURN(
            aux[i],
            FetchValue(tgi::kDeltasTable, placement,
                       tgi::DeltaRowKey(order, dids[i], pid, true), stats));
      }
    }
  } else {
    AtomicStats astats;
    std::atomic<bool> failed{false};
    Status first_error;
    std::mutex error_mu;
    size_t total_units = dids.size() * (include_aux ? 2 : 1);
    ParallelFor(total_units, fetch_parallelism_, [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) return;
      size_t idx = i % dids.size();
      bool want_aux = i >= dids.size();
      auto res = cluster_->Get(
          tgi::kDeltasTable, placement,
          tgi::DeltaRowKey(order, dids[idx], pid, want_aux));
      astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
      if (!res.ok()) {
        if (res.status().IsNotFound()) return;
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) first_error = res.status();
        return;
      }
      astats.micro_deltas.fetch_add(1, std::memory_order_relaxed);
      astats.bytes.fetch_add(res->size(), std::memory_order_relaxed);
      (want_aux ? aux : regular)[idx] = std::move(*res);
    });
    astats.FlushInto(stats);
    if (failed.load()) return first_error;
  }

  Delta acc;
  for (size_t i = 0; i < dids.size(); ++i) {
    if (!is_evl[i]) {
      if (regular[i].has_value()) {
        HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(*regular[i]));
        acc.Add(d);
      }
      if (aux[i].has_value()) {
        HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(*aux[i]));
        acc.Add(d);
      }
    } else {
      if (regular[i].has_value()) {
        HGS_ASSIGN_OR_RETURN(EventList evl,
                             EventList::Deserialize(*regular[i]));
        evl.ApplyUpTo(t, &acc);
      }
      if (aux[i].has_value()) {
        HGS_ASSIGN_OR_RETURN(EventList evl, EventList::Deserialize(*aux[i]));
        evl.ApplyUpTo(t, &acc);
      }
    }
  }
  return acc;
}

Result<Delta> TGIQueryManager::GetNodeStateDelta(NodeId id, Timestamp t,
                                                 FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  const tgi::TimespanMeta* span = SpanFor(t);
  if (span == nullptr) return Delta();
  HGS_ASSIGN_OR_RETURN(MicroPartitionId pid, PidOf(id, *span, stats));
  HGS_ASSIGN_OR_RETURN(Delta micro,
                       FetchMicroStateAt(*span, pid, t, false, stats));
  return micro.FilterById(id);
}

Result<NodeHistory> TGIQueryManager::GetNodeHistory(NodeId id, Timestamp from,
                                                    Timestamp to,
                                                    FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);

  {
    FetchStats inner;
    auto initial = GetNodeStateDelta(id, from, &inner);
    inner.wall_seconds = 0;  // absorbed into this call's timer
    if (stats != nullptr) stats->Merge(inner);
    if (!initial.ok()) return initial.status();
    out.initial = std::move(*initial);
  }

  // Version chain: every (timespan, eventlist) that touched the node.
  auto segments_raw =
      cluster_->Scan(tgi::kVersionsTable, tgi::NodePlacement(id),
                     tgi::VersionScanPrefix(id));
  if (stats != nullptr) ++stats->kv_requests;
  if (!segments_raw.ok()) return segments_raw.status();

  struct Ref {
    TimespanId tsid;
    uint32_t eventlist_index;
    MicroPartitionId pid;
  };
  std::vector<Ref> refs;
  for (const KVPair& kv : *segments_raw) {
    if (stats != nullptr) {
      ++stats->micro_deltas;
      stats->bytes += kv.value.size();
    }
    HGS_ASSIGN_OR_RETURN(tgi::VersionChainSegment seg,
                         tgi::VersionChainSegment::Deserialize(kv.value));
    for (const tgi::VersionEntry& e : seg.entries) {
      if (e.last_time <= from || e.first_time > to) continue;
      refs.push_back(Ref{e.tsid, e.eventlist_index, e.pid});
    }
  }

  const size_t ns = graph_meta_.num_horizontal_partitions;
  const auto order =
      static_cast<ClusteringOrder>(graph_meta_.clustering_order);
  std::vector<std::optional<std::string>> values(refs.size());
  AtomicStats astats;
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  ParallelFor(refs.size(), fetch_parallelism_, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const Ref& ref = refs[i];
    PartitionId sid = tgi::SidOf(ref.pid, ns);
    auto res = cluster_->Get(
        tgi::kDeltasTable, tgi::DeltaPlacement(ref.tsid, sid, ns),
        tgi::DeltaRowKey(order, tgi::EventlistDid(ref.eventlist_index),
                         ref.pid, false));
    astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
    if (!res.ok()) {
      if (res.status().IsNotFound()) return;
      std::lock_guard<std::mutex> lock(error_mu);
      if (!failed.exchange(true)) first_error = res.status();
      return;
    }
    astats.micro_deltas.fetch_add(1, std::memory_order_relaxed);
    astats.bytes.fetch_add(res->size(), std::memory_order_relaxed);
    values[i] = std::move(*res);
  });
  astats.FlushInto(stats);
  if (failed.load()) return first_error;

  for (const auto& raw : values) {
    if (!raw.has_value()) continue;
    HGS_ASSIGN_OR_RETURN(EventList evl, EventList::Deserialize(*raw));
    for (const Event& e : evl.events()) {
      if (e.Touches(id) && e.time > from && e.time <= to) {
        out.events.Append(e);
      }
    }
  }
  out.events.Sort();
  return out;
}

Result<std::vector<std::pair<Timestamp, Delta>>>
TGIQueryManager::GetNodeVersions(NodeId id, Timestamp from, Timestamp to,
                                 FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(NodeHistory history,
                       GetNodeHistory(id, from, to, stats));
  return history.Materialize();
}

Result<Graph> TGIQueryManager::GetKHopNeighborhood(NodeId id, Timestamp t,
                                                   int k, FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  const tgi::TimespanMeta* span = SpanFor(t);
  if (span == nullptr) return Graph();
  const bool replicated = graph_meta_.replicate_one_hop;

  HGS_ASSIGN_OR_RETURN(MicroPartitionId center_pid, PidOf(id, *span, stats));
  HGS_ASSIGN_OR_RETURN(
      Delta acc, FetchMicroStateAt(*span, center_pid, t, replicated, stats));

  std::unordered_set<MicroPartitionId> fetched_pids{center_pid};
  std::unordered_set<NodeId> visited{id};
  std::vector<NodeId> frontier{id};

  for (int hop = 1; hop <= k && !frontier.empty(); ++hop) {
    // Discover the next ring from edges incident to the frontier.
    std::unordered_set<NodeId> next;
    for (NodeId u : frontier) {
      acc.ForEachEdgeEntry([&](const EdgeKey& key,
                               const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        NodeId other;
        if (key.u == u) {
          other = key.v;
        } else if (key.v == u) {
          other = key.u;
        } else {
          return;
        }
        if (!visited.contains(other)) next.insert(other);
      });
    }
    const bool last_hop = hop == k;
    // Records for the new ring. On the last hop, nodes whose records are
    // already known — via their own partition or via aux replication rows —
    // need no further fetches (the paper's early termination).
    std::vector<MicroPartitionId> missing;
    for (NodeId n : next) {
      const auto* rec = acc.FindNode(n);
      bool have_record = rec != nullptr && rec->has_value();
      if (last_hop && have_record) continue;
      HGS_ASSIGN_OR_RETURN(MicroPartitionId pid, PidOf(n, *span, stats));
      if (!fetched_pids.contains(pid)) missing.push_back(pid);
    }
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
    std::vector<Delta> fetched(missing.size());
    std::atomic<bool> failed{false};
    Status first_error;
    std::mutex merge_mu;
    ParallelFor(missing.size(), fetch_parallelism_, [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) return;
      FetchStats local;
      auto res = FetchMicroStateAt(*span, missing[i], t, replicated, &local);
      std::lock_guard<std::mutex> lock(merge_mu);
      if (stats != nullptr) {
        local.wall_seconds = 0;
        stats->Merge(local);
      }
      if (!res.ok()) {
        if (!failed.exchange(true)) first_error = res.status();
        return;
      }
      fetched[i] = std::move(*res);
    });
    if (failed.load()) return first_error;
    for (size_t i = 0; i < missing.size(); ++i) {
      acc.Add(fetched[i]);
      fetched_pids.insert(missing[i]);
    }
    for (NodeId n : next) visited.insert(n);
    frontier.assign(next.begin(), next.end());
  }

  // Induced subgraph on the visited set, from whatever the fetch saw.
  Graph out;
  for (NodeId n : visited) {
    const auto* rec = acc.FindNode(n);
    if (rec != nullptr && rec->has_value()) out.AddNode(n, (*rec)->attrs);
  }
  acc.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        if (visited.contains(key.u) && visited.contains(key.v) &&
            out.HasNode(key.u) && out.HasNode(key.v)) {
          out.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
        }
      });
  return out;
}

Result<std::vector<Event>> TGIQueryManager::GetEventsInRange(
    Timestamp from, Timestamp to, FetchStats* stats) {
  WallTimer timer(stats);
  if (!opened_) return Status::FailedPrecondition("Open() not called");
  const size_t ns = graph_meta_.num_horizontal_partitions;

  // Collect the (tsid, eventlist, sid) scan units overlapping the range.
  struct Unit {
    TimespanId tsid;
    size_t eventlist_index;
    PartitionId sid;
  };
  std::vector<Unit> units;
  for (const auto& span : spans_) {
    if (span.end <= from || span.start > to) continue;
    for (size_t j = 0; j < span.eventlist_bounds.size(); ++j) {
      const auto& [first, last] = span.eventlist_bounds[j];
      if (last <= from || first > to) continue;
      for (size_t sid = 0; sid < ns; ++sid) {
        units.push_back(Unit{span.tsid, j, static_cast<PartitionId>(sid)});
      }
    }
  }

  const auto order =
      static_cast<ClusteringOrder>(graph_meta_.clustering_order);
  std::vector<std::vector<Event>> per_unit(units.size());
  AtomicStats astats;
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  ParallelFor(units.size(), fetch_parallelism_, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const Unit& u = units[i];
    // In delta-major order the eventlist's micro-partitions are contiguous
    // under a scan prefix; in partition-major order issue per-pid gets.
    std::vector<std::string> raws;
    if (order == ClusteringOrder::kDeltaMajor) {
      auto res = cluster_->Scan(
          tgi::kDeltasTable, tgi::DeltaPlacement(u.tsid, u.sid, ns),
          tgi::DeltaScanPrefix(tgi::EventlistDid(u.eventlist_index)));
      astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
      if (!res.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) first_error = res.status();
        return;
      }
      for (KVPair& kv : *res) raws.push_back(std::move(kv.value));
    } else {
      const auto& span = spans_[u.tsid];
      for (MicroPartitionId pid = u.sid; pid < span.num_micro_partitions;
           pid += ns) {
        auto res = cluster_->Get(
            tgi::kDeltasTable, tgi::DeltaPlacement(u.tsid, u.sid, ns),
            tgi::DeltaRowKey(order, tgi::EventlistDid(u.eventlist_index), pid,
                             false));
        astats.kv_requests.fetch_add(1, std::memory_order_relaxed);
        if (!res.ok()) {
          if (res.status().IsNotFound()) continue;
          std::lock_guard<std::mutex> lock(error_mu);
          if (!failed.exchange(true)) first_error = res.status();
          return;
        }
        raws.push_back(std::move(*res));
      }
    }
    std::vector<Event>& out = per_unit[i];
    for (const std::string& raw : raws) {
      astats.micro_deltas.fetch_add(1, std::memory_order_relaxed);
      astats.bytes.fetch_add(raw.size(), std::memory_order_relaxed);
      auto evl = EventList::Deserialize(raw);
      if (!evl.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!failed.exchange(true)) first_error = evl.status();
        return;
      }
      for (const Event& e : evl->events()) {
        if (e.time > from && e.time <= to) out.push_back(e);
      }
    }
  });
  astats.FlushInto(stats);
  if (failed.load()) return first_error;

  std::vector<Event> merged;
  for (auto& part : per_unit) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  // Edge events are stored with both endpoints' partitions: deduplicate
  // identical adjacent events (timestamps are unique per event).
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<OneHopHistory> TGIQueryManager::GetOneHopHistory(NodeId id,
                                                        Timestamp from,
                                                        Timestamp to,
                                                        FetchStats* stats) {
  WallTimer timer(stats);
  OneHopHistory out;
  {
    FetchStats inner;
    auto center = GetNodeHistory(id, from, to, &inner);
    inner.wall_seconds = 0;
    if (stats != nullptr) stats->Merge(inner);
    if (!center.ok()) return center.status();
    out.center = std::move(*center);
  }

  // Neighbor activity intervals: initial edges are active from `from`; edge
  // events extend / bound them (Algorithm 5's UpdateNeighborInfo).
  std::unordered_map<NodeId, std::pair<Timestamp, Timestamp>> active;
  out.center.initial.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        NodeId nbr = key.u == id ? key.v : key.u;
        active[nbr] = {from, to};
      });
  for (const Event& e : out.center.events.events()) {
    if (!e.IsEdgeEvent()) continue;
    NodeId nbr = e.u == id ? e.v : e.u;
    if (e.type == EventType::kAddEdge) {
      auto it = active.find(nbr);
      if (it == active.end()) {
        active[nbr] = {e.time, to};
      } else {
        it->second.second = to;  // re-activated: extend to the end
      }
    } else if (e.type == EventType::kRemoveEdge) {
      auto it = active.find(nbr);
      if (it != active.end()) it->second.second = e.time;
    }
  }

  std::vector<std::pair<NodeId, std::pair<Timestamp, Timestamp>>> nbrs(
      active.begin(), active.end());
  std::sort(nbrs.begin(), nbrs.end());
  out.neighbors.resize(nbrs.size());
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex mu;
  ParallelFor(nbrs.size(), fetch_parallelism_, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    FetchStats local;
    auto res = GetNodeHistory(nbrs[i].first, nbrs[i].second.first,
                              nbrs[i].second.second, &local);
    std::lock_guard<std::mutex> lock(mu);
    if (stats != nullptr) {
      local.wall_seconds = 0;
      stats->Merge(local);
    }
    if (!res.ok()) {
      if (!failed.exchange(true)) first_error = res.status();
      return;
    }
    out.neighbors[i] = std::move(*res);
  });
  if (failed.load()) return first_error;
  return out;
}

}  // namespace hgs
