#include "tgi/query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_set>

#include "common/thread_pool.h"
#include "tgi/layout.h"

namespace hgs {

namespace {

class WallTimer {
 public:
  explicit WallTimer(FetchStats* stats) : stats_(stats) {}
  ~WallTimer() {
    if (stats_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    stats_->wall_seconds +=
        std::chrono::duration<double>(end - start_).count();
  }

 private:
  FetchStats* stats_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

// Folds one cluster read's resilience accounting into the query's stats.
void MergeCallStats(FetchStats* stats, const ReadCallStats& call) {
  if (stats == nullptr) return;
  stats->failovers += call.failovers;
  stats->retries += call.retries;
  stats->hedges += call.hedges;
  stats->hedge_wins += call.hedge_wins;
  stats->checksum_failures += call.checksum_failures;
}

// Thread-safe accumulation of fetch counters during a parallel fetch.
struct AtomicStats {
  std::atomic<uint64_t> kv_requests{0};
  std::atomic<uint64_t> kv_batches{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> micro_deltas{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> node_requests{0};
  std::atomic<uint64_t> version_scans{0};
  std::atomic<uint64_t> eventlist_refs{0};
  std::atomic<uint64_t> eventlist_fetches{0};
  std::atomic<uint64_t> decode_hits{0};
  std::atomic<uint64_t> decodes{0};
  std::atomic<uint64_t> decoded_bytes{0};
  std::atomic<uint64_t> value_copies{0};

  /// Accumulates a task-local FetchStats (wall_seconds is ignored; the
  /// caller's WallTimer covers the whole query).
  void Add(const FetchStats& s) {
    kv_requests.fetch_add(s.kv_requests, std::memory_order_relaxed);
    kv_batches.fetch_add(s.kv_batches, std::memory_order_relaxed);
    cache_hits.fetch_add(s.cache_hits, std::memory_order_relaxed);
    cache_misses.fetch_add(s.cache_misses, std::memory_order_relaxed);
    micro_deltas.fetch_add(s.micro_deltas, std::memory_order_relaxed);
    bytes.fetch_add(s.bytes, std::memory_order_relaxed);
    node_requests.fetch_add(s.node_requests, std::memory_order_relaxed);
    version_scans.fetch_add(s.version_scans, std::memory_order_relaxed);
    eventlist_refs.fetch_add(s.eventlist_refs, std::memory_order_relaxed);
    eventlist_fetches.fetch_add(s.eventlist_fetches,
                                std::memory_order_relaxed);
    decode_hits.fetch_add(s.decode_hits, std::memory_order_relaxed);
    decodes.fetch_add(s.decodes, std::memory_order_relaxed);
    decoded_bytes.fetch_add(s.decoded_bytes, std::memory_order_relaxed);
    value_copies.fetch_add(s.value_copies, std::memory_order_relaxed);
  }

  void FlushInto(FetchStats* stats) const {
    if (stats == nullptr) return;
    stats->kv_requests += kv_requests.load();
    stats->kv_batches += kv_batches.load();
    stats->cache_hits += cache_hits.load();
    stats->cache_misses += cache_misses.load();
    stats->micro_deltas += micro_deltas.load();
    stats->bytes += bytes.load();
    stats->node_requests += node_requests.load();
    stats->version_scans += version_scans.load();
    stats->eventlist_refs += eventlist_refs.load();
    stats->eventlist_fetches += eventlist_fetches.load();
    stats->decode_hits += decode_hits.load();
    stats->decodes += decodes.load();
    stats->decoded_bytes += decoded_bytes.load();
    stats->value_copies += value_copies.load();
  }
};

// Runs fn(i, &local_stats) for i in [0, n) on the shared pool, accumulates
// every task's local FetchStats into `stats`, and returns the first non-OK
// status (remaining iterations are skipped once a task fails). Factors out
// the AtomicStats / first-error plumbing shared by the parallel fetch
// stages.
Status ParallelStatusFor(
    size_t n, size_t parallelism, FetchStats* stats,
    const std::function<Status(size_t, FetchStats*)>& fn) {
  AtomicStats astats;
  std::atomic<bool> failed{false};
  Status first_error;
  Mutex error_mu;
  ParallelFor(n, parallelism, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    FetchStats local;
    Status s = fn(i, &local);
    astats.Add(local);
    if (!s.ok()) {
      MutexLock lock(error_mu);
      if (!failed.exchange(true)) first_error = s;
    }
  });
  astats.FlushInto(stats);
  if (failed.load()) return first_error;
  return Status::OK();
}

// Cache key of one read: kind byte ('G' point read / 'S' scan), the
// (table, partition) scope's SUB-epoch under the reading query's pinned
// epoch map, table, partition token, then the row key or scan prefix.
// Sub-epoch-tagged keys make late inserts from an in-flight old-epoch
// query invisible to queries running after an invalidation, and leave a
// publish that touched other scopes unable to cold this entry: its
// sub-epoch — and therefore its key — is unchanged.
std::string ReadCacheKey(char kind, uint64_t epoch, std::string_view table,
                         uint64_t partition, std::string_view row) {
  std::string out;
  out.reserve(2 + 8 + table.size() + 8 + row.size());
  out.push_back(kind);
  AppendOrdered64(&out, epoch);
  out.append(table);
  out.push_back('\0');
  AppendOrdered64(&out, partition);
  out.append(row);
  return out;
}

// Inverse of AppendOrdered64 for the cache-key sweep.
uint64_t ReadOrdered64At(const std::string& s, size_t pos) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(s[pos + i]);
  }
  return v;
}

// Approximate heap footprint of a cache entry, for byte-budget eviction.
// SharedValue entries charge their viewed size: the window is what the
// cache logically holds (the shared owner is charged where it lives).
size_t CacheCharge(const std::string& key, const SharedValue& value) {
  return key.size() + value.size() + 64;
}

// -- decoded tier ----------------------------------------------------------

// Kind byte of each decoded type (the first byte of its cache key), so two
// types can never alias under one key and a cached object is always cast
// back to the type that produced it. Beyond the per-row kinds there are two
// aggregate kinds: 'C' caches the decoded rows of one whole scan prefix
// (TGIQueryManager::DecodedScan) and 'V' a node's merged version chain
// (TGIQueryManager::MergedVersionChain).
template <typename T>
struct DecodedKindOf;
template <>
struct DecodedKindOf<Delta> {
  static constexpr char kKind = 'd';
};
template <>
struct DecodedKindOf<EventList> {
  static constexpr char kKind = 'e';
};
constexpr char kDecodedScanKind = 'C';
constexpr char kVersionChainKind = 'V';

// Decoded heap footprint estimates for byte-budget eviction. Delta and
// EventList charge their wire size (the paper's Σ|Δ| currency, and a close
// proxy for the decoded maps' payload).
size_t DecodedCharge(const Delta& d) { return d.SerializedSizeBytes(); }
size_t DecodedCharge(const EventList& e) { return e.SerializedSizeBytes(); }

// Decodes one raw value according to its kind byte. Returns the shared
// immutable object plus its eviction charge.
Result<std::pair<std::shared_ptr<const void>, size_t>> DecodeByKind(
    char kind, std::string_view raw) {
  switch (kind) {
    case DecodedKindOf<Delta>::kKind: {
      HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(raw));
      size_t charge = DecodedCharge(d);
      return std::pair<std::shared_ptr<const void>, size_t>(
          std::make_shared<Delta>(std::move(d)), charge);
    }
    case DecodedKindOf<EventList>::kKind: {
      HGS_ASSIGN_OR_RETURN(EventList e, EventList::Deserialize(raw));
      size_t charge = DecodedCharge(e);
      return std::pair<std::shared_ptr<const void>, size_t>(
          std::make_shared<EventList>(std::move(e)), charge);
    }
    default:
      return Status::InvalidArgument("unknown decoded kind");
  }
}

// The ordered merge consumes a decoded object only when ownership is
// statically exclusive: with the decoded cache disabled, every decode is
// private to this query (`exclusive` below), and use_count() == 1 then
// rules out the same object appearing twice in this query's own slot
// lists. With the cache enabled a decoded object may be shared with a
// concurrent query, and observing use_count() == 1 cannot prove otherwise:
// the count is a relaxed load with no synchronizes-with edge to a releasing
// reader, so mutating after reading 1 would race with that reader's prior
// accesses (TSan-visible now that the flat representation moves individual
// entries). Cache-managed objects are therefore always applied by const
// reference. make_shared allocates the pointee as a mutable object, so the
// const_cast on an exclusively owned value is well-defined.
void MergeDelta(Delta* acc, std::shared_ptr<const Delta>&& d, bool exclusive) {
  if (d == nullptr) return;
  if (exclusive && d.use_count() == 1) {
    acc->Add(std::move(const_cast<Delta&>(*d)));
  } else {
    acc->Add(*d);
  }
  d.reset();
}

void MergeEventListUpTo(Delta* acc, std::shared_ptr<const EventList>&& e,
                        Timestamp t, bool exclusive) {
  if (e == nullptr) return;
  if (exclusive && e.use_count() == 1) {
    std::move(const_cast<EventList&>(*e)).ApplyUpTo(t, acc);
  } else {
    e->ApplyUpTo(t, acc);
  }
  e.reset();
}

}  // namespace

std::vector<std::pair<Timestamp, Delta>> NodeHistory::Materialize() const {
  std::vector<std::pair<Timestamp, Delta>> out;
  Delta state = initial;
  out.emplace_back(from, state);
  for (const Event& e : events.events()) {
    state.ApplyEvent(e);
    out.emplace_back(e.time, state);
  }
  return out;
}

TGIQueryManager::TGIQueryManager(Cluster* cluster, size_t fetch_parallelism,
                                 size_t read_cache_bytes,
                                 size_t read_cache_shards,
                                 size_t decoded_cache_bytes,
                                 bool tinylfu_admission)
    : cluster_(cluster),
      fetch_parallelism_(fetch_parallelism == 0 ? 1 : fetch_parallelism) {
  if (read_cache_bytes > 0) {
    read_cache_ = std::make_unique<ReadCache>(
        read_cache_bytes, read_cache_shards, tinylfu_admission);
  }
  if (decoded_cache_bytes > 0) {
    decoded_cache_ = std::make_unique<DecodedCache>(
        decoded_cache_bytes, read_cache_shards, tinylfu_admission);
  }
}

Result<std::vector<tgi::TimespanMeta>> TGIQueryManager::LoadSpans() const {
  auto spans_raw = cluster_->Scan(tgi::kTimespansTable, 0, "");
  if (!spans_raw.ok()) return spans_raw.status();
  std::vector<tgi::TimespanMeta> spans;
  spans.reserve(spans_raw->size());
  for (const KVPair& kv : *spans_raw) {
    BinaryReader r(kv.value);
    HGS_RETURN_NOT_OK(r.VerifyChecksum());
    HGS_ASSIGN_OR_RETURN(tgi::TimespanMeta meta,
                         tgi::TimespanMeta::DeserializeFrom(&r));
    spans.push_back(std::move(meta));
  }
  std::sort(spans.begin(), spans.end(),
            [](const tgi::TimespanMeta& a, const tgi::TimespanMeta& b) {
              return a.tsid < b.tsid;
            });
  return spans;
}

Result<TGIQueryManager::MetaRef> TGIQueryManager::LoadMetadata(
    EpochVectorRef epochs) const {
  auto meta_raw = cluster_->Get(tgi::kGraphTable, 0, "meta");
  if (!meta_raw.ok()) return meta_raw.status();
  auto state = std::make_shared<MetaState>();
  state->epoch = epochs->global;
  state->epochs = std::move(epochs);
  HGS_ASSIGN_OR_RETURN(state->graph, tgi::GraphMeta::Deserialize(*meta_raw));
  HGS_ASSIGN_OR_RETURN(state->spans, LoadSpans());
  return MetaRef(std::move(state));
}

Status TGIQueryManager::Open() {
  HGS_ASSIGN_OR_RETURN(MetaRef meta, LoadMetadata(cluster_->epochs()));
  {
    MutexLock lock(meta_mu_);
    meta_ = std::move(meta);
  }
  opened_.store(true, std::memory_order_release);
  return Status::OK();
}

TGIQueryManager::MetaRef TGIQueryManager::CurrentMeta() const {
  MutexLock lock(meta_mu_);
  if (meta_ != nullptr) return meta_;
  static const MetaRef kEmpty = std::make_shared<MetaState>();
  return kEmpty;
}

Result<TGIQueryManager::MetaRef> TGIQueryManager::EnsureFresh(
    FetchStats* stats) {
  if (!opened_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Open() not called");
  }
  {
    MetaRef current = CurrentMeta();
    if (cluster_->publish_epoch() == current->epoch) return current;
  }
  MutexLock lock(refresh_mu_);
  // Re-read under the refresh lock so concurrent stale readers converge on
  // one reload instead of racing each other backwards.
  EpochVectorRef epochs = cluster_->epochs();
  MetaRef current = CurrentMeta();
  if (epochs->global == current->epoch) return current;
  // Metadata was re-published (AppendBatch). The new epoch map tells us
  // exactly which (table, partition) scopes the writer touched: a scope
  // whose sub-epoch is unchanged between the pinned old map and the new
  // one was not written, so its metadata rows and cache entries are still
  // valid. In-flight queries keep their old snapshot alive through the
  // shared_ptr, and their sub-epoch-tagged cache inserts can't be served
  // to queries running at the new epochs.
  auto scope_stale = [&](std::string_view table, uint64_t partition) {
    if (current->epochs == nullptr) return true;  // pre-map snapshot
    EpochKey key = MakeEpochKey(table, partition);
    return current->epochs->SubEpoch(key) != epochs->SubEpoch(key);
  };
  MetaRef fresh;
  if (scope_stale(tgi::kGraphTable, 0)) {
    HGS_ASSIGN_OR_RETURN(fresh, LoadMetadata(epochs));
  } else {
    auto state = std::make_shared<MetaState>();
    state->epoch = epochs->global;
    state->epochs = epochs;
    state->graph = current->graph;
    if (scope_stale(tgi::kTimespansTable, 0)) {
      HGS_ASSIGN_OR_RETURN(state->spans, LoadSpans());
    } else {
      state->spans = current->spans;
    }
    fresh = std::move(state);
  }
  uint64_t retained = 0;
  uint64_t invalidated = 0;
  {
    MutexLock mlock(micropart_mu_);
    for (auto it = micropart_cache_.begin(); it != micropart_cache_.end();) {
      uint64_t sub =
          epochs->SubEpoch(MakeEpochKey(tgi::kMicropartsTable, it->first));
      if (it->second.epoch == sub) {
        ++retained;
        ++it;
      } else {
        it = micropart_cache_.erase(it);
        ++invalidated;
      }
    }
  }
  // Both LRU tiers key entries as kind(1) | sub-epoch(8) | table | '\0' |
  // partition(8) | row. An entry is still valid iff its stored sub-epoch
  // matches the scope's sub-epoch under the new map; everything else is
  // swept. Entries from scopes a publish didn't touch keep their keys and
  // stay warm.
  auto entry_valid = [&](const std::string& key) {
    if (key.size() < 1 + 8 + 1 + 8) return false;
    uint64_t entry_epoch = ReadOrdered64At(key, 1);
    size_t tab_end = key.find('\0', 9);
    if (tab_end == std::string::npos || tab_end + 1 + 8 > key.size()) {
      return false;
    }
    std::string_view table(key.data() + 9, tab_end - 9);
    uint64_t partition = ReadOrdered64At(key, tab_end + 1);
    return entry_epoch == epochs->SubEpoch(MakeEpochKey(table, partition));
  };
  if (read_cache_ != nullptr) {
    auto swept = read_cache_->RetainIf(entry_valid);
    retained += swept.retained;
    invalidated += swept.evicted;
  }
  if (decoded_cache_ != nullptr) {
    auto swept = decoded_cache_->RetainIf(entry_valid);
    retained += swept.retained;
    invalidated += swept.evicted;
  }
  entries_retained_.fetch_add(retained, std::memory_order_relaxed);
  entries_invalidated_.fetch_add(invalidated, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->cache_entries_retained += retained;
    stats->cache_entries_invalidated += invalidated;
  }
  {
    MutexLock mlock(meta_mu_);
    meta_ = fresh;
  }
  return fresh;
}

Timestamp TGIQueryManager::HistoryStart() const {
  return CurrentMeta()->graph.start;
}

Timestamp TGIQueryManager::HistoryEnd() const {
  return CurrentMeta()->graph.end;
}

uint64_t TGIQueryManager::EventCount() const {
  return CurrentMeta()->graph.event_count;
}

const tgi::TimespanMeta* TGIQueryManager::SpanFor(const MetaState& meta,
                                                  Timestamp t) {
  const tgi::TimespanMeta* best = nullptr;
  for (const auto& span : meta.spans) {
    if (span.start <= t) {
      best = &span;
    } else {
      break;
    }
  }
  return best;
}

Result<std::vector<std::optional<SharedValue>>> TGIQueryManager::FetchValues(
    const MetaState& meta, std::string_view table,
    const std::vector<MultiGetKey>& keys, FetchStats* stats) {
  std::vector<std::optional<SharedValue>> out(keys.size());
  if (stats != nullptr) stats->kv_requests += keys.size();
  if (keys.empty()) return out;

  if (read_cache_ == nullptr) {
    size_t batches = 0;
    size_t copies = 0;
    ReadCallStats call;
    auto fetched = cluster_->MultiGet(table, keys, &batches, &copies, &call);
    if (!fetched.ok()) return fetched.status();
    MergeCallStats(stats, call);
    if (stats != nullptr) {
      stats->kv_batches += batches;
      stats->value_copies += copies;
    }
    return std::move(*fetched);
  }

  // Serve what we can from the partition-delta cache (including cached
  // "absent" results), then batch the misses into one MultiGet. A hit
  // hands out a view of the cached shared buffer — no bytes move.
  std::vector<size_t> miss_index;
  std::vector<MultiGetKey> misses;
  std::vector<std::string> miss_ckeys;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string ckey =
        ReadCacheKey('G', meta.SubEpochFor(table, keys[i].partition), table,
                     keys[i].partition, keys[i].key);
    auto entry = read_cache_->Get(ckey);
    if (entry.has_value()) {
      if (stats != nullptr) ++stats->cache_hits;
      if ((*entry)->found) out[i] = (*entry)->value;
      continue;
    }
    if (stats != nullptr) ++stats->cache_misses;
    miss_index.push_back(i);
    misses.push_back(keys[i]);
    miss_ckeys.push_back(std::move(ckey));
  }
  if (misses.empty()) return out;

  size_t batches = 0;
  size_t copies = 0;
  ReadCallStats call;
  auto fetched = cluster_->MultiGet(table, misses, &batches, &copies, &call);
  if (!fetched.ok()) return fetched.status();
  MergeCallStats(stats, call);
  if (stats != nullptr) {
    stats->kv_batches += batches;
    stats->value_copies += copies;
  }
  for (size_t j = 0; j < misses.size(); ++j) {
    std::optional<SharedValue>& value = (*fetched)[j];
    std::string& ckey = miss_ckeys[j];
    auto entry = std::make_shared<ReadCacheEntry>();
    entry->found = value.has_value();
    if (value.has_value()) entry->value = *value;  // shares the buffer
    size_t charge = CacheCharge(ckey, entry->value);
    read_cache_->Put(std::move(ckey), std::move(entry), charge);
    out[miss_index[j]] = std::move(value);
  }
  return out;
}

Result<std::optional<SharedValue>> TGIQueryManager::FetchValue(
    const MetaState& meta, std::string_view table, uint64_t partition,
    std::string_view key, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(std::vector<std::optional<SharedValue>> values,
                       FetchValues(meta, table,
                                   {MultiGetKey{partition, std::string(key)}},
                                   stats));
  if (stats != nullptr && values[0].has_value()) {
    ++stats->micro_deltas;
    stats->bytes += values[0]->size();
  }
  return std::move(values[0]);
}

Result<std::shared_ptr<const TGIQueryManager::ReadCacheEntry>>
TGIQueryManager::CachedScan(const MetaState& meta, std::string_view table,
                            uint64_t partition, std::string_view prefix,
                            FetchStats* stats) {
  if (stats != nullptr) ++stats->kv_requests;
  std::string ckey;
  if (read_cache_ != nullptr) {
    ckey = ReadCacheKey('S', meta.SubEpochFor(table, partition), table,
                        partition, prefix);
    auto entry = read_cache_->Get(ckey);
    if (entry.has_value()) {
      if (stats != nullptr) ++stats->cache_hits;
      return std::move(*entry);
    }
    if (stats != nullptr) ++stats->cache_misses;
  }
  size_t copies = 0;
  ReadCallStats call;
  auto res = cluster_->Scan(table, partition, prefix, &copies, &call);
  if (!res.ok()) return res.status();
  MergeCallStats(stats, call);
  if (stats != nullptr) {
    ++stats->kv_batches;
    stats->value_copies += copies;
  }
  auto entry = std::make_shared<ReadCacheEntry>();
  entry->pairs = std::move(*res);
  if (read_cache_ != nullptr) {
    size_t charge = ckey.size() + 64;
    for (const KVPair& kv : entry->pairs) {
      charge += kv.key.size() + kv.value.size() + 32;
    }
    read_cache_->Put(std::move(ckey), entry, charge);
  }
  return std::shared_ptr<const ReadCacheEntry>(std::move(entry));
}

Result<std::vector<TGIQueryManager::DecodedEntry>>
TGIQueryManager::FetchDecodedRows(const MetaState& meta,
                                  std::string_view table,
                                  const std::vector<MultiGetKey>& keys,
                                  const std::vector<char>& kinds,
                                  FetchStats* stats) {
  std::vector<DecodedEntry> out(keys.size());
  if (keys.empty()) return out;

  // Probe the decoded tier first: a hit needs neither the raw bytes nor a
  // decode, so it skips the byte-cache/MultiGet machinery entirely.
  std::vector<size_t> miss_index;
  std::vector<MultiGetKey> miss_keys;
  std::vector<std::string> miss_ckeys;
  if (decoded_cache_ != nullptr) {
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string ckey = ReadCacheKey(
          kinds[i], meta.SubEpochFor(table, keys[i].partition), table,
          keys[i].partition, keys[i].key);
      auto hit = decoded_cache_->Get(ckey);
      if (hit.has_value()) {
        if (stats != nullptr) {
          // A decoded hit still counts as one logical request and one
          // consumed value, so Table 1's logical columns are identical
          // between cold and warm runs.
          ++stats->kv_requests;
          ++stats->decode_hits;
          if (hit->obj != nullptr) {
            ++stats->micro_deltas;
            stats->bytes += hit->raw_bytes;
          }
        }
        out[i] = std::move(*hit);
        continue;
      }
      miss_index.push_back(i);
      miss_keys.push_back(keys[i]);
      miss_ckeys.push_back(std::move(ckey));
    }
    if (miss_keys.empty()) return out;
  } else {
    miss_index.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) miss_index[i] = i;
    miss_keys = keys;
  }

  // Byte tier + cluster for the misses (one batched MultiGet), then decode
  // each present row exactly once, in parallel — BinaryReader runs directly
  // over the shared view — and publish the decoded object for every later
  // consumer.
  HGS_ASSIGN_OR_RETURN(std::vector<std::optional<SharedValue>> values,
                       FetchValues(meta, table, miss_keys, stats));
  HGS_RETURN_NOT_OK(ParallelStatusFor(
      miss_keys.size(), fetch_parallelism_, stats,
      [&](size_t j, FetchStats* local) -> Status {
        const size_t i = miss_index[j];
        if (!values[j].has_value()) {
          // Negative entry: the row's absence is knowledge too.
          if (decoded_cache_ != nullptr) {
            size_t charge = miss_ckeys[j].size() + 64;
            decoded_cache_->Put(std::move(miss_ckeys[j]), DecodedEntry{},
                                charge);
          }
          return Status::OK();
        }
        const std::string_view raw = values[j]->view();
        HGS_ASSIGN_OR_RETURN(auto decoded, DecodeByKind(kinds[i], raw));
        ++local->decodes;
        local->decoded_bytes += raw.size();
        ++local->micro_deltas;
        local->bytes += raw.size();
        out[i] = DecodedEntry{std::move(decoded.first), raw.size()};
        if (decoded_cache_ != nullptr) {
          std::string& ckey = miss_ckeys[j];
          size_t charge = ckey.size() + decoded.second + 64;
          decoded_cache_->Put(std::move(ckey), out[i], charge);
        }
        return Status::OK();
      }));
  return out;
}

template <typename T>
Result<std::vector<std::shared_ptr<const T>>>
TGIQueryManager::FetchDecodedValues(const MetaState& meta,
                                    std::string_view table,
                                    const std::vector<MultiGetKey>& keys,
                                    FetchStats* stats) {
  std::vector<char> kinds(keys.size(), DecodedKindOf<T>::kKind);
  HGS_ASSIGN_OR_RETURN(std::vector<DecodedEntry> rows,
                       FetchDecodedRows(meta, table, keys, kinds, stats));
  std::vector<std::shared_ptr<const T>> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = std::static_pointer_cast<const T>(std::move(rows[i].obj));
  }
  return out;
}

template <typename T>
Result<std::shared_ptr<const T>> TGIQueryManager::DecodeShared(
    const MetaState& meta, std::string_view table, uint64_t partition,
    std::string_view row, std::string_view raw, FetchStats* stats) {
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += raw.size();
  }
  std::string ckey;
  if (decoded_cache_ != nullptr) {
    ckey = ReadCacheKey(DecodedKindOf<T>::kKind,
                        meta.SubEpochFor(table, partition), table, partition,
                        row);
    auto hit = decoded_cache_->Get(ckey);
    if (hit.has_value() && hit->obj != nullptr) {
      if (stats != nullptr) ++stats->decode_hits;
      return std::static_pointer_cast<const T>(std::move(hit->obj));
    }
  }
  HGS_ASSIGN_OR_RETURN(auto decoded,
                       DecodeByKind(DecodedKindOf<T>::kKind, raw));
  if (stats != nullptr) {
    ++stats->decodes;
    stats->decoded_bytes += raw.size();
  }
  if (decoded_cache_ != nullptr) {
    size_t charge = ckey.size() + decoded.second + 64;
    decoded_cache_->Put(std::move(ckey),
                        DecodedEntry{decoded.first, raw.size()}, charge);
  }
  return std::static_pointer_cast<const T>(std::move(decoded.first));
}

Result<TGIQueryManager::DecodedScanRef> TGIQueryManager::FetchDecodedScan(
    const MetaState& meta, std::string_view table, uint64_t partition,
    std::string_view prefix, char row_kind, FetchStats* stats) {
  std::string ckey;
  if (decoded_cache_ != nullptr) {
    ckey = ReadCacheKey(kDecodedScanKind, meta.SubEpochFor(table, partition),
                        table, partition, prefix);
    auto hit = decoded_cache_->Get(ckey);
    if (hit.has_value() && hit->obj != nullptr) {
      auto scan =
          std::static_pointer_cast<const DecodedScan>(std::move(hit->obj));
      if (stats != nullptr) {
        // One probe served the whole prefix. The logical accounting
        // matches the cold path exactly: one scan request, every row
        // consumed ready-to-apply.
        ++stats->kv_requests;
        ++stats->cache_hits;
        stats->decode_hits += scan->rows.size();
        stats->micro_deltas += scan->rows.size();
        stats->bytes += hit->raw_bytes;
      }
      return scan;
    }
  }

  // Cold: bytes through the cached scan, each row decoded (or decode-hit)
  // through the row-level tier — so point-read paths can reuse the rows —
  // then the assembled vector is published under the scan's own key.
  HGS_ASSIGN_OR_RETURN(std::shared_ptr<const ReadCacheEntry> res,
                       CachedScan(meta, table, partition, prefix, stats));
  auto scan = std::make_shared<DecodedScan>();
  scan->rows.reserve(res->pairs.size());
  size_t total_raw = 0;
  for (const KVPair& kv : res->pairs) {
    std::shared_ptr<const void> obj;
    if (row_kind == DecodedKindOf<Delta>::kKind) {
      HGS_ASSIGN_OR_RETURN(std::shared_ptr<const Delta> d,
                           DecodeShared<Delta>(meta, table, partition, kv.key,
                                               kv.value, stats));
      obj = std::move(d);
    } else {
      HGS_ASSIGN_OR_RETURN(
          std::shared_ptr<const EventList> e,
          DecodeShared<EventList>(meta, table, partition, kv.key, kv.value,
                                  stats));
      obj = std::move(e);
    }
    total_raw += kv.value.size();
    scan->rows.push_back(DecodedScanRow{std::move(obj), kv.value.size()});
  }
  if (decoded_cache_ != nullptr) {
    // Charged at the full row-byte sum even though the row-level entries
    // carry the same objects: warm scans touch only this entry, so the
    // untouched row entries age out of the LRU and the scan entry becomes
    // the objects' sole in-cache owner — the full charge is the honest
    // steady-state accounting (the overlap is transient, and the safe
    // direction is over- rather than under-charging the budget).
    size_t charge = ckey.size() + 64;
    for (const KVPair& kv : res->pairs) charge += kv.value.size() + 32;
    decoded_cache_->Put(std::move(ckey), DecodedEntry{scan, total_raw},
                        charge);
  }
  return DecodedScanRef(std::move(scan));
}

Result<std::vector<std::shared_ptr<const TGIQueryManager::MergedVersionChain>>>
TGIQueryManager::FetchVersionChains(const MetaState& meta,
                                    const std::vector<NodeId>& ids,
                                    FetchStats* stats) {
  std::vector<std::shared_ptr<const MergedVersionChain>> out(ids.size());

  // Probe the decoded tier per node first: a warm node — hub or not —
  // costs exactly one probe and no scan.
  std::vector<std::string> ckeys(ids.size());
  std::vector<bool> hit_of(ids.size(), false);
  for (size_t u = 0; u < ids.size(); ++u) {
    if (decoded_cache_ != nullptr) {
      const uint64_t part = tgi::NodePlacement(ids[u]);
      ckeys[u] = ReadCacheKey(
          kVersionChainKind, meta.SubEpochFor(tgi::kVersionsTable, part),
          tgi::kVersionsTable, part, tgi::VersionScanPrefix(ids[u]));
      auto hit = decoded_cache_->Get(ckeys[u]);
      if (hit.has_value() && hit->obj != nullptr) {
        out[u] = std::static_pointer_cast<const MergedVersionChain>(
            std::move(hit->obj));
        hit_of[u] = true;
        if (stats != nullptr) {
          ++stats->decode_hits;
          stats->micro_deltas += out[u]->segment_count;
          stats->bytes += out[u]->raw_bytes;
        }
      }
    }
  }

  // Group ALL requested nodes by versions-table placement: partitions with
  // a missing member are scanned (one scan each, not one per node);
  // partitions fully served by merged-chain hits count one logical scan
  // request served from cache, so warm and cold runs report identical
  // logical counters.
  struct ScanGroup {
    uint64_t partition;
    std::vector<size_t> members;  ///< indices into `ids` placed here
    bool any_miss = false;
  };
  std::vector<ScanGroup> groups;
  {
    std::unordered_map<uint64_t, size_t> group_of;
    for (size_t u = 0; u < ids.size(); ++u) {
      uint64_t partition = tgi::NodePlacement(ids[u]);
      auto [it, inserted] = group_of.emplace(partition, groups.size());
      if (inserted) groups.push_back(ScanGroup{partition, {}});
      groups[it->second].members.push_back(u);
      if (!hit_of[u]) groups[it->second].any_miss = true;
    }
  }
  std::vector<size_t> scan_groups;  // indices of groups needing a scan
  for (size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].any_miss) {
      scan_groups.push_back(g);
    } else if (stats != nullptr) {
      ++stats->kv_requests;
      ++stats->cache_hits;
    }
  }
  if (scan_groups.empty()) return out;

  std::vector<std::shared_ptr<const ReadCacheEntry>> scans(groups.size());
  HGS_RETURN_NOT_OK(ParallelStatusFor(
      scan_groups.size(), fetch_parallelism_, stats,
      [&](size_t i, FetchStats* local) -> Status {
        const size_t g = scan_groups[i];
        HGS_ASSIGN_OR_RETURN(
            scans[g], CachedScan(meta, tgi::kVersionsTable,
                                 groups[g].partition, /*prefix=*/"", local));
        return Status::OK();
      }));
  if (stats != nullptr) stats->version_scans += scan_groups.size();

  // Rebuild each missing node's merged chain: its segments arrive in key
  // (= tsid) order from the scan, decoded straight off the shared views,
  // and are concatenated unfiltered so every later time window shares the
  // one cached object.
  for (size_t g : scan_groups) {
    for (size_t u : groups[g].members) {
      if (hit_of[u]) continue;  // served decoded above
      const std::string prefix = tgi::VersionScanPrefix(ids[u]);
      auto chain = std::make_shared<MergedVersionChain>();
      for (const KVPair& kv : scans[g]->pairs) {
        // A partition scan returns every node hashed to this placement
        // (virtually always just this node); keep only its segments.
        if (kv.key.compare(0, prefix.size(), prefix) != 0) continue;
        HGS_ASSIGN_OR_RETURN(tgi::VersionChainSegment seg,
                             tgi::VersionChainSegment::Deserialize(kv.value));
        if (stats != nullptr) {
          ++stats->decodes;
          stats->decoded_bytes += kv.value.size();
          ++stats->micro_deltas;
          stats->bytes += kv.value.size();
        }
        ++chain->segment_count;
        chain->raw_bytes += kv.value.size();
        chain->entries.insert(chain->entries.end(), seg.entries.begin(),
                              seg.entries.end());
      }
      if (decoded_cache_ != nullptr) {
        size_t charge = ckeys[u].size() + 48 +
                        chain->entries.size() * sizeof(tgi::VersionEntry) +
                        64;
        decoded_cache_->Put(std::move(ckeys[u]),
                            DecodedEntry{chain, chain->raw_bytes}, charge);
      }
      out[u] = std::move(chain);
    }
  }
  return out;
}

Result<MicroPartitionId> TGIQueryManager::PidOf(const MetaState& meta,
                                                NodeId id,
                                                const tgi::TimespanMeta& span,
                                                FetchStats* stats) {
  if (span.strategy == static_cast<uint8_t>(PartitionStrategy::kRandom)) {
    return Partitioning::Random(span.num_micro_partitions).Of(id);
  }
  size_t buckets = std::max<uint32_t>(1, meta.graph.micropartition_buckets);
  uint64_t bucket = tgi::NodePlacement(id) % buckets;
  uint64_t cache_key = static_cast<uint64_t>(span.tsid) * buckets + bucket;
  const uint64_t sub = meta.SubEpochFor(tgi::kMicropartsTable, cache_key);
  {
    MutexLock lock(micropart_mu_);
    auto it = micropart_cache_.find(cache_key);
    if (it != micropart_cache_.end() && it->second.epoch == sub) {
      // The bucket's decoded node→pid map is already in memory at this
      // scope's sub-epoch: a decoded-tier hit with zero fetch and zero
      // deserialization. A stale-epoch bucket (filled by an in-flight
      // old-snapshot query) is treated as a miss and overwritten below.
      if (stats != nullptr) ++stats->decode_hits;
      auto hit = it->second.map.find(id);
      if (hit != it->second.map.end()) return hit->second;
      return Partitioning::Random(span.num_micro_partitions).HashFallback(id);
    }
  }
  std::string key = tgi::MicropartBucketRowKey(static_cast<uint32_t>(bucket));
  HGS_ASSIGN_OR_RETURN(
      std::optional<SharedValue> raw,
      FetchValue(meta, tgi::kMicropartsTable, cache_key, key, stats));
  std::unordered_map<NodeId, MicroPartitionId> map;
  if (raw.has_value()) {
    HGS_ASSIGN_OR_RETURN(auto entries, tgi::DeserializeMicropartBucket(*raw));
    if (stats != nullptr) {
      ++stats->decodes;
      stats->decoded_bytes += raw->size();
    }
    map.reserve(entries.size());
    for (const auto& [nid, pid] : entries) map[nid] = pid;
  }
  MicroPartitionId result;
  auto hit = map.find(id);
  if (hit != map.end()) {
    result = hit->second;
  } else {
    result = Partitioning::Random(span.num_micro_partitions).HashFallback(id);
  }
  {
    MutexLock lock(micropart_mu_);
    micropart_cache_[cache_key] = MicropartBucket{sub, std::move(map)};
  }
  return result;
}

Result<Delta> TGIQueryManager::GetSnapshotDelta(Timestamp t,
                                                FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta, EnsureFresh(stats));
  return GetSnapshotDeltaWith(*meta, t, stats);
}

Result<Delta> TGIQueryManager::GetSnapshotDeltaWith(const MetaState& meta,
                                                    Timestamp t,
                                                    FetchStats* stats) {
  const tgi::TimespanMeta* span = SpanFor(meta, t);
  if (span == nullptr) return Delta();  // before all history

  int32_t cpi = span->CheckpointBefore(t);
  if (cpi < 0) cpi = 0;
  std::vector<DeltaId> path = span->PathToCheckpoint(cpi);
  size_t evl_from = static_cast<size_t>(cpi) * span->checkpoint_interval /
                    span->eventlist_size;
  int32_t evl_to = span->EventlistCovering(t);

  // The merge-slot sequence: tree deltas along the path, then eventlists.
  const size_t ns = meta.graph.num_horizontal_partitions;
  const auto order =
      static_cast<ClusteringOrder>(meta.graph.clustering_order);
  std::vector<DeltaId> dids;
  std::vector<bool> is_evl;
  for (DeltaId did : path) {
    dids.push_back(did);
    is_evl.push_back(false);
  }
  if (evl_to >= 0) {
    for (size_t j = evl_from; j <= static_cast<size_t>(evl_to); ++j) {
      dids.push_back(tgi::EventlistDid(j));
      is_evl.push_back(true);
    }
  }
  const size_t nd = dids.size();

  // Decoded objects per merge slot, shared with the decoded cache. There is
  // no raw-byte staging anywhere on this path: partition-major rows decode
  // straight out of the MultiGet values, delta-major rows straight out of
  // the shared scan result, and a decoded-cache hit skips bytes entirely.
  std::vector<std::vector<std::shared_ptr<const Delta>>> slot_deltas(nd);
  std::vector<std::vector<std::shared_ptr<const EventList>>> slot_evls(nd);

  if (order == ClusteringOrder::kPartitionMajor) {
    // Every (did, pid) row rides one decode-first batched fetch.
    std::vector<MultiGetKey> keys;
    std::vector<char> kinds;
    keys.reserve(nd * span->num_micro_partitions);
    kinds.reserve(nd * span->num_micro_partitions);
    for (size_t i = 0; i < nd; ++i) {
      for (MicroPartitionId pid = 0; pid < span->num_micro_partitions;
           ++pid) {
        PartitionId sid = tgi::SidOf(pid, ns);
        keys.push_back(
            MultiGetKey{tgi::DeltaPlacement(span->tsid, sid, ns),
                        tgi::DeltaRowKey(order, dids[i], pid, false)});
        kinds.push_back(is_evl[i] ? DecodedKindOf<EventList>::kKind
                                  : DecodedKindOf<Delta>::kKind);
      }
    }
    HGS_ASSIGN_OR_RETURN(
        std::vector<DecodedEntry> rows,
        FetchDecodedRows(meta, tgi::kDeltasTable, keys, kinds, stats));
    for (size_t k = 0; k < rows.size(); ++k) {
      if (rows[k].obj == nullptr) continue;  // empty micro-partition
      const size_t i = k / span->num_micro_partitions;
      if (is_evl[i]) {
        slot_evls[i].push_back(
            std::static_pointer_cast<const EventList>(std::move(rows[k].obj)));
      } else {
        slot_deltas[i].push_back(
            std::static_pointer_cast<const Delta>(std::move(rows[k].obj)));
      }
    }
  } else {
    // Delta-major: one scan-granularity decoded fetch per (did, sid) — a
    // warm scan is a single decoded-tier probe for the whole prefix; a cold
    // one decodes in place from the shared scan result, in parallel (the
    // paper's query processors "process the raw deltas" in parallel; only
    // the ordered merge below is sequential).
    struct Unit {
      size_t slot;
      PartitionId sid;
    };
    std::vector<Unit> units;
    units.reserve(nd * ns);
    for (size_t i = 0; i < nd; ++i) {
      for (size_t sid = 0; sid < ns; ++sid) {
        units.push_back(Unit{i, static_cast<PartitionId>(sid)});
      }
    }
    std::vector<Mutex> slot_mu(nd);
    HGS_RETURN_NOT_OK(ParallelStatusFor(
        units.size(), fetch_parallelism_, stats,
        [&](size_t uidx, FetchStats* local) -> Status {
          const Unit& u = units[uidx];
          const uint64_t placement =
              tgi::DeltaPlacement(span->tsid, u.sid, ns);
          const char kind = is_evl[u.slot]
                                ? DecodedKindOf<EventList>::kKind
                                : DecodedKindOf<Delta>::kKind;
          HGS_ASSIGN_OR_RETURN(
              DecodedScanRef scan,
              FetchDecodedScan(meta, tgi::kDeltasTable, placement,
                               tgi::DeltaScanPrefix(dids[u.slot]), kind,
                               local));
          MutexLock lock(slot_mu[u.slot]);
          for (const DecodedScanRow& row : scan->rows) {
            if (!is_evl[u.slot]) {
              slot_deltas[u.slot].push_back(
                  std::static_pointer_cast<const Delta>(row.obj));
            } else {
              slot_evls[u.slot].push_back(
                  std::static_pointer_cast<const EventList>(row.obj));
            }
          }
          return Status::OK();
        }));
  }

  // Merge: tree deltas root-to-leaf, then eventlists in order, up to t.
  // Exclusively owned decoded objects are consumed by the move-aware
  // Add/ApplyUpTo overloads; cache-managed ones are applied by const ref.
  const bool exclusive = decoded_cache_ == nullptr;
  Delta acc;
  for (size_t i = 0; i < nd; ++i) {
    if (!is_evl[i]) {
      for (auto& d : slot_deltas[i]) MergeDelta(&acc, std::move(d), exclusive);
    } else {
      for (auto& e : slot_evls[i]) {
        MergeEventListUpTo(&acc, std::move(e), t, exclusive);
      }
    }
  }
  return acc;
}

Result<Graph> TGIQueryManager::GetSnapshot(Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Delta d, GetSnapshotDelta(t, stats));
  return d.ToGraph();
}

Result<std::vector<Graph>> TGIQueryManager::GetMultipointSnapshots(
    const std::vector<Timestamp>& times, FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta_ref, EnsureFresh(stats));
  const MetaState& meta = *meta_ref;
  std::vector<Timestamp> sorted = times;
  std::sort(sorted.begin(), sorted.end());

  std::vector<Graph> by_sorted_index;
  by_sorted_index.reserve(sorted.size());
  Delta state;
  const tgi::TimespanMeta* state_span = nullptr;
  Timestamp state_time = kMinTimestamp;
  int32_t state_cpi = -1;

  for (Timestamp t : sorted) {
    const tgi::TimespanMeta* span = SpanFor(meta, t);
    bool can_roll_forward = span != nullptr && span == state_span &&
                            t >= state_time &&
                            span->CheckpointBefore(t) == state_cpi;
    if (!can_roll_forward) {
      FetchStats inner;
      auto delta = GetSnapshotDeltaWith(meta, t, &inner);
      if (stats != nullptr) stats->Merge(inner);
      if (!delta.ok()) return delta.status();
      state = std::move(*delta);
      state_span = span;
      state_cpi = span == nullptr ? -1 : span->CheckpointBefore(t);
    } else {
      // Same span, same checkpoint: replay only the eventlists covering
      // (state_time, t].
      int32_t evl_from = span->EventlistCovering(state_time);
      if (evl_from < 0) evl_from = 0;
      int32_t evl_to = span->EventlistCovering(t);
      const size_t ns = meta.graph.num_horizontal_partitions;
      const auto order =
          static_cast<ClusteringOrder>(meta.graph.clustering_order);
      // Decoded eventlists of (evl_from .. evl_to], in eventlist order —
      // no raw staging: rows decode straight from the shared scan results
      // or batched values, and repeats come decoded from the cache.
      std::vector<std::shared_ptr<const EventList>> evls;
      if (order == ClusteringOrder::kDeltaMajor) {
        for (int32_t j = evl_from; j <= evl_to; ++j) {
          for (size_t sid = 0; sid < ns; ++sid) {
            const uint64_t placement = tgi::DeltaPlacement(
                span->tsid, static_cast<PartitionId>(sid), ns);
            auto res = FetchDecodedScan(
                meta, tgi::kDeltasTable, placement,
                tgi::DeltaScanPrefix(tgi::EventlistDid(static_cast<size_t>(j))),
                DecodedKindOf<EventList>::kKind, stats);
            if (!res.ok()) return res.status();
            for (const DecodedScanRow& row : (*res)->rows) {
              evls.push_back(
                  std::static_pointer_cast<const EventList>(row.obj));
            }
          }
        }
      } else {
        // Partition-major rows are keyed pid-first: batch the per-pid
        // eventlist rows of the range into one decode-first fetch.
        std::vector<MultiGetKey> keys;
        keys.reserve(static_cast<size_t>(evl_to - evl_from + 1) *
                     span->num_micro_partitions);
        for (int32_t j = evl_from; j <= evl_to; ++j) {
          for (MicroPartitionId pid = 0; pid < span->num_micro_partitions;
               ++pid) {
            PartitionId sid = tgi::SidOf(pid, ns);
            keys.push_back(MultiGetKey{
                tgi::DeltaPlacement(span->tsid, sid, ns),
                tgi::DeltaRowKey(order,
                                 tgi::EventlistDid(static_cast<size_t>(j)),
                                 pid, false)});
          }
        }
        HGS_ASSIGN_OR_RETURN(
            std::vector<std::shared_ptr<const EventList>> fetched,
            FetchDecodedValues<EventList>(meta, tgi::kDeltasTable, keys,
                                          stats));
        evls.reserve(fetched.size());
        for (auto& evl : fetched) {
          if (evl != nullptr) evls.push_back(std::move(evl));
        }
      }
      const bool exclusive = decoded_cache_ == nullptr;
      for (auto& evl : evls) {
        // Skip events already applied, stop at t. Each eventlist's window
        // is applied as one batched per-key pass; exclusively owned decoded
        // lists donate their payloads (see MergeDelta for why cache-managed
        // objects are applied by const reference).
        if (exclusive && evl.use_count() == 1) {
          state.ApplyEvents(std::move(const_cast<EventList&>(*evl)),
                            state_time, t);
        } else {
          state.ApplyEvents(*evl, state_time, t);
        }
        evl.reset();
      }
    }
    state_time = t;
    by_sorted_index.push_back(state.ToGraph());
  }

  // Restore the caller's ordering: each materialized graph is moved into
  // its last output slot and copied only for duplicate timestamps.
  std::vector<size_t> slot_of(times.size());
  std::vector<size_t> last_user(by_sorted_index.size());
  for (size_t i = 0; i < times.size(); ++i) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), times[i]);
    slot_of[i] = static_cast<size_t>(it - sorted.begin());
    last_user[slot_of[i]] = i;
  }
  std::vector<Graph> out(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    const size_t s = slot_of[i];
    if (i == last_user[s]) {
      out[i] = std::move(by_sorted_index[s]);
    } else {
      out[i] = by_sorted_index[s];
    }
  }
  return out;
}

Result<std::vector<Delta>> TGIQueryManager::FetchMicroStatesAt(
    const MetaState& meta, const tgi::TimespanMeta& span,
    const std::vector<MicroPartitionId>& pids, Timestamp t, bool include_aux,
    FetchStats* stats) {
  std::vector<Delta> out(pids.size());
  if (pids.empty()) return out;

  int32_t cpi = span.CheckpointBefore(t);
  if (cpi < 0) cpi = 0;
  std::vector<DeltaId> path = span.PathToCheckpoint(cpi);
  size_t evl_from = static_cast<size_t>(cpi) * span.checkpoint_interval /
                    span.eventlist_size;
  int32_t evl_to = span.EventlistCovering(t);

  const size_t ns = meta.graph.num_horizontal_partitions;
  const auto order =
      static_cast<ClusteringOrder>(meta.graph.clustering_order);

  // The did sequence is shared by every requested micro-partition.
  std::vector<DeltaId> dids;
  std::vector<bool> is_evl;
  for (DeltaId did : path) {
    dids.push_back(did);
    is_evl.push_back(false);
  }
  if (evl_to >= 0) {
    for (size_t j = evl_from; j <= static_cast<size_t>(evl_to); ++j) {
      dids.push_back(tgi::EventlistDid(j));
      is_evl.push_back(true);
    }
  }
  const size_t nd = dids.size();
  auto kind_of = [&](size_t i) {
    return is_evl[i] ? DecodedKindOf<EventList>::kKind
                     : DecodedKindOf<Delta>::kKind;
  };

  // Decoded values per (pid, did): regular row + optional aux replication
  // row, flattened as p * nd + i. Shared with the decoded cache; the
  // per-pid merge below never sees raw bytes.
  std::vector<std::shared_ptr<const void>> regular(pids.size() * nd);
  std::vector<std::shared_ptr<const void>> aux(pids.size() * nd);

  if (order == ClusteringOrder::kPartitionMajor) {
    // One contiguous scan per micro-partition yields every did it has;
    // filter to the ones we need (Section 4.4's entity-centric clustering
    // payoff). The scans run as parallel cached requests, and each row
    // decodes in place from the shared scan result.
    std::unordered_map<DeltaId, size_t> want;
    for (size_t i = 0; i < nd; ++i) want[dids[i]] = i;
    HGS_RETURN_NOT_OK(ParallelStatusFor(
        pids.size(), fetch_parallelism_, stats,
        [&](size_t p, FetchStats* local) -> Status {
          const MicroPartitionId pid = pids[p];
          const uint64_t placement =
              tgi::DeltaPlacement(span.tsid, tgi::SidOf(pid, ns), ns);
          HGS_ASSIGN_OR_RETURN(
              std::shared_ptr<const ReadCacheEntry> res,
              CachedScan(meta, tgi::kDeltasTable, placement,
                         tgi::PartitionScanPrefix(pid), local));
          for (const KVPair& kv : res->pairs) {
            DeltaId did;
            MicroPartitionId parsed_pid;
            bool is_aux;
            if (!tgi::ParseDeltaRowKey(order, kv.key, &did, &parsed_pid,
                                       &is_aux)) {
              continue;
            }
            if (is_aux) continue;  // aux rows are fetched separately below
            auto it = want.find(did);
            if (it == want.end()) continue;
            const size_t i = it->second;
            if (!is_evl[i]) {
              HGS_ASSIGN_OR_RETURN(
                  std::shared_ptr<const Delta> d,
                  DecodeShared<Delta>(meta, tgi::kDeltasTable, placement,
                                      kv.key, kv.value, local));
              regular[p * nd + i] = std::move(d);
            } else {
              HGS_ASSIGN_OR_RETURN(
                  std::shared_ptr<const EventList> e,
                  DecodeShared<EventList>(meta, tgi::kDeltasTable, placement,
                                          kv.key, kv.value, local));
              regular[p * nd + i] = std::move(e);
            }
          }
          return Status::OK();
        }));
    if (include_aux) {
      std::vector<MultiGetKey> keys;
      std::vector<char> kinds;
      keys.reserve(pids.size() * nd);
      kinds.reserve(pids.size() * nd);
      for (size_t p = 0; p < pids.size(); ++p) {
        const uint64_t placement =
            tgi::DeltaPlacement(span.tsid, tgi::SidOf(pids[p], ns), ns);
        for (size_t i = 0; i < nd; ++i) {
          keys.push_back(MultiGetKey{
              placement, tgi::DeltaRowKey(order, dids[i], pids[p], true)});
          kinds.push_back(kind_of(i));
        }
      }
      HGS_ASSIGN_OR_RETURN(
          std::vector<DecodedEntry> rows,
          FetchDecodedRows(meta, tgi::kDeltasTable, keys, kinds, stats));
      for (size_t k = 0; k < rows.size(); ++k) aux[k] = std::move(rows[k].obj);
    }
  } else {
    // Delta-major order: every (pid, did) pair is an independent point
    // read — exactly the shape the decode-first batch serves best. One
    // request covers the regular and aux rows of all requested
    // micro-partitions; decoded hits never touch the byte tier.
    std::vector<MultiGetKey> keys;
    std::vector<char> kinds;
    keys.reserve(pids.size() * nd * (include_aux ? 2 : 1));
    kinds.reserve(keys.capacity());
    // Regular rows for every (pid, did), then — when replication is on —
    // the aux rows in the same order, so the flattened offsets line up.
    for (bool aux_pass : {false, true}) {
      if (aux_pass && !include_aux) break;
      for (size_t p = 0; p < pids.size(); ++p) {
        const uint64_t placement =
            tgi::DeltaPlacement(span.tsid, tgi::SidOf(pids[p], ns), ns);
        for (size_t i = 0; i < nd; ++i) {
          keys.push_back(MultiGetKey{
              placement, tgi::DeltaRowKey(order, dids[i], pids[p], aux_pass)});
          kinds.push_back(kind_of(i));
        }
      }
    }
    HGS_ASSIGN_OR_RETURN(
        std::vector<DecodedEntry> rows,
        FetchDecodedRows(meta, tgi::kDeltasTable, keys, kinds, stats));
    for (size_t k = 0; k < pids.size() * nd; ++k) {
      regular[k] = std::move(rows[k].obj);
    }
    if (include_aux) {
      for (size_t k = 0; k < pids.size() * nd; ++k) {
        aux[k] = std::move(rows[pids.size() * nd + k].obj);
      }
    }
  }

  // Merge per pid: tree deltas root-to-leaf, then eventlist replay to t.
  // All values are already decoded; exclusively owned ones are consumed.
  const bool exclusive = decoded_cache_ == nullptr;
  ParallelFor(pids.size(), fetch_parallelism_, [&](size_t p) {
    Delta acc;
    auto merge_one = [&](std::shared_ptr<const void>&& obj, bool eventlist) {
      if (obj == nullptr) return;
      if (!eventlist) {
        MergeDelta(&acc,
                   std::static_pointer_cast<const Delta>(std::move(obj)),
                   exclusive);
      } else {
        MergeEventListUpTo(
            &acc, std::static_pointer_cast<const EventList>(std::move(obj)),
            t, exclusive);
      }
    };
    for (size_t i = 0; i < nd; ++i) {
      merge_one(std::move(regular[p * nd + i]), is_evl[i]);
      merge_one(std::move(aux[p * nd + i]), is_evl[i]);
    }
    out[p] = std::move(acc);
  });
  return out;
}

Result<Delta> TGIQueryManager::FetchMicroStateAt(const MetaState& meta,
                                                 const tgi::TimespanMeta& span,
                                                 MicroPartitionId pid,
                                                 Timestamp t, bool include_aux,
                                                 FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(
      std::vector<Delta> states,
      FetchMicroStatesAt(meta, span, {pid}, t, include_aux, stats));
  return std::move(states[0]);
}

Result<Delta> TGIQueryManager::GetNodeStateDelta(NodeId id, Timestamp t,
                                                 FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta, EnsureFresh(stats));
  return GetNodeStateDeltaWith(*meta, id, t, stats);
}

Result<Delta> TGIQueryManager::GetNodeStateDeltaWith(const MetaState& meta,
                                                     NodeId id, Timestamp t,
                                                     FetchStats* stats) {
  const tgi::TimespanMeta* span = SpanFor(meta, t);
  if (span == nullptr) return Delta();
  HGS_ASSIGN_OR_RETURN(MicroPartitionId pid, PidOf(meta, id, *span, stats));
  HGS_ASSIGN_OR_RETURN(Delta micro,
                       FetchMicroStateAt(meta, *span, pid, t, false, stats));
  return micro.FilterById(id);
}

Result<NodeHistory> TGIQueryManager::GetNodeHistory(NodeId id, Timestamp from,
                                                    Timestamp to,
                                                    FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta, EnsureFresh(stats));
  return GetNodeHistoryWith(*meta, id, from, to, stats);
}

Result<NodeHistory> TGIQueryManager::GetNodeHistoryWith(const MetaState& meta,
                                                        NodeId id,
                                                        Timestamp from,
                                                        Timestamp to,
                                                        FetchStats* stats) {
  // Single retrieval = bulk retrieval of one id, so the two stay
  // result-identical by construction.
  HGS_ASSIGN_OR_RETURN(
      std::vector<NodeHistory> hists,
      GetNodeHistoriesWith(meta, {id}, from, to, stats));
  return std::move(hists[0]);
}

Result<std::vector<NodeHistory>> TGIQueryManager::GetNodeHistories(
    const std::vector<NodeId>& ids, Timestamp from, Timestamp to,
    FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta, EnsureFresh(stats));
  return GetNodeHistoriesWith(*meta, ids, from, to, stats);
}

Result<std::vector<NodeHistory>> TGIQueryManager::GetNodeHistoriesWith(
    const MetaState& meta, const std::vector<NodeId>& ids, Timestamp from,
    Timestamp to, FetchStats* stats) {
  std::vector<NodeHistory> out(ids.size());
  if (stats != nullptr) stats->node_requests += ids.size();
  if (ids.empty()) return out;

  // Work on the deduplicated id set; duplicates share one retrieval.
  std::vector<NodeId> uniq;
  std::unordered_map<NodeId, size_t> uniq_index;
  uniq.reserve(ids.size());
  for (NodeId id : ids) {
    if (uniq_index.emplace(id, uniq.size()).second) uniq.push_back(id);
  }

  // ---- Initial states (node + incident edges at `from`), batched: all
  // requested ids resolve to micro-partitions first, then every touched
  // micro-partition is reconstructed exactly once.
  std::vector<Delta> initials(uniq.size());
  const tgi::TimespanMeta* span0 = SpanFor(meta, from);
  if (span0 != nullptr) {
    // Placement lookups overlap across the fetch clients: a cold
    // Micropartitions bucket costs a round trip, and distinct ids can hit
    // distinct buckets (repeats are served by the micropart cache).
    std::vector<MicroPartitionId> pid_of_uniq(uniq.size());
    HGS_RETURN_NOT_OK(ParallelStatusFor(
        uniq.size(), fetch_parallelism_, stats,
        [&](size_t u, FetchStats* local) -> Status {
          HGS_ASSIGN_OR_RETURN(pid_of_uniq[u],
                               PidOf(meta, uniq[u], *span0, local));
          return Status::OK();
        }));
    std::vector<MicroPartitionId> pids = pid_of_uniq;
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    HGS_ASSIGN_OR_RETURN(
        std::vector<Delta> states,
        FetchMicroStatesAt(meta, *span0, pids, from, false, stats));
    std::unordered_map<MicroPartitionId, size_t> state_of;
    state_of.reserve(pids.size());
    for (size_t p = 0; p < pids.size(); ++p) state_of[pids[p]] = p;
    for (size_t u = 0; u < uniq.size(); ++u) {
      initials[u] = states[state_of[pid_of_uniq[u]]].FilterById(uniq[u]);
    }
  }

  // ---- Version chains: one merged decoded chain per node (hub nodes with
  // many segments cost one decoded entry, not one per segment). Warm nodes
  // skip the versions-table scans entirely; cold ones share one partition
  // scan per touched placement, run as parallel cached requests.
  HGS_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const MergedVersionChain>> chains,
      FetchVersionChains(meta, uniq, stats));

  // ---- Union all version-chain references into one deduplicated eventlist
  // batch. refs_of[u] holds indices into `keys` in chain order, so the
  // per-node replay below applies eventlists exactly as the per-node path
  // would.
  const size_t ns = meta.graph.num_horizontal_partitions;
  const auto order = static_cast<ClusteringOrder>(meta.graph.clustering_order);
  std::vector<MultiGetKey> keys;
  std::unordered_map<std::string, size_t> key_index;  // placement \0 row key
  std::vector<std::vector<size_t>> refs_of(uniq.size());
  uint64_t total_refs = 0;
  for (size_t u = 0; u < uniq.size(); ++u) {
    for (const tgi::VersionEntry& e : chains[u]->entries) {
      if (e.last_time <= from || e.first_time > to) continue;
      ++total_refs;
      PartitionId sid = tgi::SidOf(e.pid, ns);
      MultiGetKey key{
          tgi::DeltaPlacement(e.tsid, sid, ns),
          tgi::DeltaRowKey(order, tgi::EventlistDid(e.eventlist_index),
                           e.pid, false)};
      std::string dedup;
      dedup.reserve(8 + 1 + key.key.size());
      AppendOrdered64(&dedup, key.partition);
      dedup.push_back('\0');
      dedup.append(key.key);
      auto [it, inserted] = key_index.emplace(std::move(dedup), keys.size());
      if (inserted) keys.push_back(std::move(key));
      refs_of[u].push_back(it->second);
    }
  }
  if (stats != nullptr) {
    stats->eventlist_refs += total_refs;
    stats->eventlist_fetches += keys.size();
  }

  // One decode-first batched fetch for every referenced eventlist: rows
  // already decoded (this query or a previous one) come straight from the
  // decoded cache; the rest ride one MultiGet and decode exactly once
  // however many nodes share them.
  HGS_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const EventList>> evls,
      FetchDecodedValues<EventList>(meta, tgi::kDeltasTable, keys, stats));

  // ---- Demultiplex. Each decoded eventlist is scanned once — not once per
  // referencing node — bucketing its in-range events by requested member
  // (members_of[k]); each node then drains its buckets in chain order, so
  // per-node event order matches the per-node path exactly.
  std::vector<std::unordered_map<NodeId, size_t>> members_of(keys.size());
  for (size_t u = 0; u < uniq.size(); ++u) {
    for (size_t k : refs_of[u]) members_of[k].emplace(uniq[u], u);
  }
  // buckets[k]: per referencing member, pointers to its events in order.
  std::vector<std::unordered_map<size_t, std::vector<const Event*>>> buckets(
      keys.size());
  HGS_RETURN_NOT_OK(ParallelStatusFor(
      keys.size(), fetch_parallelism_, /*stats=*/nullptr,
      [&](size_t k, FetchStats*) -> Status {
        if (evls[k] == nullptr) return Status::OK();
        auto& bucket = buckets[k];
        const auto& members = members_of[k];
        for (const Event& e : evls[k]->events()) {
          if (e.time <= from || e.time > to) continue;
          auto it = members.find(e.u);
          if (it != members.end()) bucket[it->second].push_back(&e);
          if (e.IsEdgeEvent() && e.v != e.u) {
            it = members.find(e.v);
            if (it != members.end()) bucket[it->second].push_back(&e);
          }
        }
        return Status::OK();
      }));

  std::vector<NodeHistory> hist_of(uniq.size());
  for (size_t u = 0; u < uniq.size(); ++u) {
    NodeHistory& history = hist_of[u];
    history.node = uniq[u];
    history.from = from;
    history.to = to;
    history.initial = std::move(initials[u]);
    history.events.SetScope(from, to);
    for (size_t k : refs_of[u]) {
      auto it = buckets[k].find(u);
      if (it == buckets[k].end()) continue;
      for (const Event* e : it->second) history.events.Append(*e);
    }
    history.events.Sort();
  }
  if (uniq.size() == ids.size()) {
    out = std::move(hist_of);  // no duplicates: uniq order == input order
  } else {
    for (size_t i = 0; i < ids.size(); ++i) {
      out[i] = hist_of[uniq_index.at(ids[i])];
    }
  }
  return out;
}

Result<std::vector<Event>> TGIQueryManager::GetMergedMemberEvents(
    const std::vector<NodeId>& ids, Timestamp from, Timestamp to,
    FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta_ref, EnsureFresh(stats));
  const MetaState& meta = *meta_ref;
  std::vector<Event> out;
  if (ids.empty()) return out;
  if (stats != nullptr) stats->node_requests += ids.size();

  std::vector<NodeId> uniq(ids);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  std::unordered_set<NodeId> members(uniq.begin(), uniq.end());

  HGS_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const MergedVersionChain>> chains,
      FetchVersionChains(meta, uniq, stats));

  // Union every in-range version-chain reference into one deduplicated
  // eventlist batch, remembering which (timespan, eventlist index) chunk
  // each row carries. Rows of one chunk differ only in micro-partition;
  // together they cover the chunk's member-touching events, with internal
  // edge events duplicated across the endpoint partitions' rows.
  const size_t ns = meta.graph.num_horizontal_partitions;
  const auto order = static_cast<ClusteringOrder>(meta.graph.clustering_order);
  std::vector<MultiGetKey> keys;
  std::unordered_map<std::string, size_t> key_index;  // placement \0 row key
  std::vector<std::pair<TimespanId, uint32_t>> chunk_of;
  uint64_t total_refs = 0;
  for (size_t u = 0; u < uniq.size(); ++u) {
    for (const tgi::VersionEntry& e : chains[u]->entries) {
      if (e.last_time <= from || e.first_time > to) continue;
      ++total_refs;
      PartitionId sid = tgi::SidOf(e.pid, ns);
      MultiGetKey key{
          tgi::DeltaPlacement(e.tsid, sid, ns),
          tgi::DeltaRowKey(order, tgi::EventlistDid(e.eventlist_index),
                           e.pid, false)};
      std::string dedup;
      dedup.reserve(8 + 1 + key.key.size());
      AppendOrdered64(&dedup, key.partition);
      dedup.push_back('\0');
      dedup.append(key.key);
      auto [it, inserted] = key_index.emplace(std::move(dedup), keys.size());
      if (inserted) {
        keys.push_back(std::move(key));
        chunk_of.emplace_back(e.tsid, e.eventlist_index);
      }
    }
  }
  if (stats != nullptr) {
    stats->eventlist_refs += total_refs;
    stats->eventlist_fetches += keys.size();
  }

  HGS_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const EventList>> evls,
      FetchDecodedValues<EventList>(meta, tgi::kDeltasTable, keys, stats));

  // Scan each row once, keeping in-range events that touch any member. An
  // event touching two members through one row is still appended once.
  std::vector<std::vector<const Event*>> picked(keys.size());
  HGS_RETURN_NOT_OK(ParallelStatusFor(
      keys.size(), fetch_parallelism_, /*stats=*/nullptr,
      [&](size_t k, FetchStats*) -> Status {
        if (evls[k] == nullptr) return Status::OK();
        for (const Event& e : evls[k]->events()) {
          if (e.time <= from || e.time > to) continue;
          if (members.contains(e.u) ||
              (e.IsEdgeEvent() && members.contains(e.v))) {
            picked[k].push_back(&e);
          }
        }
        return Status::OK();
      }));

  // Merge by chunk: eventlist chunks are consecutive slices of the
  // chronological ingest stream, so concatenating them in (timespan,
  // index) order is already globally time-ordered. Only within a chunk is
  // a sort needed — to make cross-row duplicates adjacent for unique —
  // and a chunk is at most eventlist_size events, so the global
  // sort-the-union pass this replaces never happens.
  std::vector<size_t> ks(keys.size());
  for (size_t k = 0; k < ks.size(); ++k) ks[k] = k;
  std::sort(ks.begin(), ks.end(), [&](size_t a, size_t b) {
    return chunk_of[a] < chunk_of[b];
  });
  // Within a chunk, each row's picked events are already chronological (an
  // eventlist is time-sorted and the scan preserves order), so a k-way
  // merge by time replaces the whole-chunk comparison sort. Time is
  // EventTotalOrder's primary key, so merging by time and sorting only the
  // runs of equal timestamps yields exactly the order the full sort
  // produced — and unique only needs to see those runs, because duplicates
  // (internal edge events arriving via both endpoints' rows) share a
  // timestamp.
  struct RowCursor {
    const Event* const* cur;
    const Event* const* end;
  };
  std::vector<RowCursor> cursors;
  std::vector<Event> run;
  for (size_t i = 0; i < ks.size();) {
    size_t j = i;
    cursors.clear();
    for (; j < ks.size() && chunk_of[ks[j]] == chunk_of[ks[i]]; ++j) {
      const std::vector<const Event*>& p = picked[ks[j]];
      if (!p.empty()) cursors.push_back({p.data(), p.data() + p.size()});
    }
    if (!cursors.empty() && stats != nullptr) {
      ++stats->taf_merge_skipped_sorts;
    }
    while (!cursors.empty()) {
      Timestamp t = (*cursors[0].cur)->time;
      for (size_t c = 1; c < cursors.size(); ++c) {
        t = std::min(t, (*cursors[c].cur)->time);
      }
      run.clear();
      for (size_t c = 0; c < cursors.size();) {
        RowCursor& rc = cursors[c];
        while (rc.cur != rc.end && (*rc.cur)->time == t) {
          run.push_back(**rc.cur);
          ++rc.cur;
        }
        if (rc.cur == rc.end) {
          cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(c));
        } else {
          ++c;
        }
      }
      std::sort(run.begin(), run.end(), EventTotalOrder);
      run.erase(std::unique(run.begin(), run.end()), run.end());
      for (Event& e : run) out.push_back(std::move(e));
    }
    i = j;
  }
  return out;
}

Result<std::vector<std::pair<Timestamp, Delta>>>
TGIQueryManager::GetNodeVersions(NodeId id, Timestamp from, Timestamp to,
                                 FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(NodeHistory history,
                       GetNodeHistory(id, from, to, stats));
  return history.Materialize();
}

Result<Graph> TGIQueryManager::GetKHopNeighborhood(NodeId id, Timestamp t,
                                                   int k, FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta_ref, EnsureFresh(stats));
  const MetaState& meta = *meta_ref;
  const tgi::TimespanMeta* span = SpanFor(meta, t);
  if (span == nullptr) return Graph();
  const bool replicated = meta.graph.replicate_one_hop;

  HGS_ASSIGN_OR_RETURN(MicroPartitionId center_pid,
                       PidOf(meta, id, *span, stats));
  HGS_ASSIGN_OR_RETURN(
      Delta acc,
      FetchMicroStateAt(meta, *span, center_pid, t, replicated, stats));

  std::unordered_set<MicroPartitionId> fetched_pids{center_pid};
  std::unordered_set<NodeId> visited{id};
  std::vector<NodeId> frontier{id};

  for (int hop = 1; hop <= k && !frontier.empty(); ++hop) {
    // Discover the next ring from edges incident to the frontier.
    std::unordered_set<NodeId> next;
    for (NodeId u : frontier) {
      acc.ForEachEdgeEntry([&](const EdgeKey& key,
                               const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        NodeId other;
        if (key.u == u) {
          other = key.v;
        } else if (key.v == u) {
          other = key.u;
        } else {
          return;
        }
        if (!visited.contains(other)) next.insert(other);
      });
    }
    const bool last_hop = hop == k;
    // Records for the new ring. On the last hop, nodes whose records are
    // already known — via their own partition or via aux replication rows —
    // need no further fetches (the paper's early termination).
    std::vector<MicroPartitionId> missing;
    for (NodeId n : next) {
      const auto* rec = acc.FindNode(n);
      bool have_record = rec != nullptr && rec->has_value();
      if (last_hop && have_record) continue;
      HGS_ASSIGN_OR_RETURN(MicroPartitionId pid, PidOf(meta, n, *span, stats));
      if (!fetched_pids.contains(pid)) missing.push_back(pid);
    }
    std::sort(missing.begin(), missing.end());
    missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
    // The whole expansion ring is fetched as one batched request.
    HGS_ASSIGN_OR_RETURN(
        std::vector<Delta> fetched,
        FetchMicroStatesAt(meta, *span, missing, t, replicated, stats));
    for (size_t i = 0; i < missing.size(); ++i) {
      acc.Add(fetched[i]);
      fetched_pids.insert(missing[i]);
    }
    for (NodeId n : next) visited.insert(n);
    frontier.assign(next.begin(), next.end());
  }

  // Induced subgraph on the visited set, from whatever the fetch saw.
  Graph out;
  for (NodeId n : visited) {
    const auto* rec = acc.FindNode(n);
    if (rec != nullptr && rec->has_value()) out.AddNode(n, (*rec)->attrs);
  }
  acc.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        if (visited.contains(key.u) && visited.contains(key.v) &&
            out.HasNode(key.u) && out.HasNode(key.v)) {
          out.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
        }
      });
  return out;
}

Result<std::vector<Event>> TGIQueryManager::GetEventsInRange(
    Timestamp from, Timestamp to, FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta_ref, EnsureFresh(stats));
  const MetaState& meta = *meta_ref;
  const size_t ns = meta.graph.num_horizontal_partitions;

  // Collect the (tsid, eventlist, sid) scan units overlapping the range.
  struct Unit {
    TimespanId tsid;
    size_t eventlist_index;
    PartitionId sid;
  };
  std::vector<Unit> units;
  for (const auto& span : meta.spans) {
    if (span.end <= from || span.start > to) continue;
    for (size_t j = 0; j < span.eventlist_bounds.size(); ++j) {
      const auto& [first, last] = span.eventlist_bounds[j];
      if (last <= from || first > to) continue;
      for (size_t sid = 0; sid < ns; ++sid) {
        units.push_back(Unit{span.tsid, j, static_cast<PartitionId>(sid)});
      }
    }
  }

  const auto order =
      static_cast<ClusteringOrder>(meta.graph.clustering_order);
  std::vector<std::vector<Event>> per_unit(units.size());

  // In delta-major order each unit is one contiguous scan; in
  // partition-major order every (unit, pid) row is an independent point
  // read, so the whole range goes out as one decode-first batched fetch.
  std::vector<std::shared_ptr<const EventList>> unit_evls;
  std::vector<std::pair<size_t, size_t>> unit_ranges;  // [begin, end) per unit
  if (order == ClusteringOrder::kPartitionMajor) {
    std::vector<MultiGetKey> keys;
    unit_ranges.reserve(units.size());
    for (const Unit& u : units) {
      size_t begin = keys.size();
      const auto& span = meta.spans[u.tsid];
      for (MicroPartitionId pid = u.sid; pid < span.num_micro_partitions;
           pid += ns) {
        keys.push_back(MultiGetKey{
            tgi::DeltaPlacement(u.tsid, u.sid, ns),
            tgi::DeltaRowKey(order, tgi::EventlistDid(u.eventlist_index), pid,
                             false)});
      }
      unit_ranges.emplace_back(begin, keys.size());
    }
    HGS_ASSIGN_OR_RETURN(
        unit_evls,
        FetchDecodedValues<EventList>(meta, tgi::kDeltasTable, keys, stats));
  }

  HGS_RETURN_NOT_OK(ParallelStatusFor(
      units.size(), fetch_parallelism_, stats,
      [&](size_t i, FetchStats* local) -> Status {
        const Unit& u = units[i];
        std::vector<Event>& out = per_unit[i];
        auto collect = [&](const EventList& evl) {
          for (const Event& e : evl.events()) {
            if (e.time > from && e.time <= to) out.push_back(e);
          }
        };
        if (order == ClusteringOrder::kDeltaMajor) {
          const uint64_t placement = tgi::DeltaPlacement(u.tsid, u.sid, ns);
          HGS_ASSIGN_OR_RETURN(
              DecodedScanRef res,
              FetchDecodedScan(meta, tgi::kDeltasTable, placement,
                               tgi::DeltaScanPrefix(tgi::EventlistDid(
                                   u.eventlist_index)),
                               DecodedKindOf<EventList>::kKind, local));
          for (const DecodedScanRow& row : res->rows) {
            collect(*std::static_pointer_cast<const EventList>(row.obj));
          }
        } else {
          const auto& [begin, end] = unit_ranges[i];
          for (size_t k = begin; k < end; ++k) {
            if (unit_evls[k] != nullptr) collect(*unit_evls[k]);
          }
        }
        return Status::OK();
      }));

  std::vector<Event> merged;
  for (auto& part : per_unit) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
  // Edge events are stored with both endpoints' partitions: deduplicate
  // identical adjacent events (timestamps are unique per event).
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<OneHopHistory> TGIQueryManager::GetOneHopHistory(NodeId id,
                                                        Timestamp from,
                                                        Timestamp to,
                                                        FetchStats* stats) {
  WallTimer timer(stats);
  HGS_ASSIGN_OR_RETURN(MetaRef meta_ref, EnsureFresh(stats));
  const MetaState& meta = *meta_ref;
  OneHopHistory out;
  {
    auto center = GetNodeHistoryWith(meta, id, from, to, stats);
    if (!center.ok()) return center.status();
    out.center = std::move(*center);
  }

  // Neighbor activity intervals: initial edges are active from `from`; edge
  // events extend / bound them (Algorithm 5's UpdateNeighborInfo).
  std::unordered_map<NodeId, std::pair<Timestamp, Timestamp>> active;
  out.center.initial.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        NodeId nbr = key.u == id ? key.v : key.u;
        active[nbr] = {from, to};
      });
  for (const Event& e : out.center.events.events()) {
    if (!e.IsEdgeEvent()) continue;
    NodeId nbr = e.u == id ? e.v : e.u;
    if (e.type == EventType::kAddEdge) {
      auto it = active.find(nbr);
      if (it == active.end()) {
        active[nbr] = {e.time, to};
      } else {
        it->second.second = to;  // re-activated: extend to the end
      }
    } else if (e.type == EventType::kRemoveEdge) {
      auto it = active.find(nbr);
      if (it != active.end()) it->second.second = e.time;
    }
  }

  std::vector<std::pair<NodeId, std::pair<Timestamp, Timestamp>>> nbrs(
      active.begin(), active.end());
  std::sort(nbrs.begin(), nbrs.end());
  out.neighbors.resize(nbrs.size());
  std::atomic<bool> failed{false};
  Status first_error;
  Mutex mu;
  ParallelFor(nbrs.size(), fetch_parallelism_, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    FetchStats local;
    auto res = GetNodeHistoryWith(meta, nbrs[i].first, nbrs[i].second.first,
                                  nbrs[i].second.second, &local);
    MutexLock lock(mu);
    if (stats != nullptr) stats->Merge(local);
    if (!res.ok()) {
      if (!failed.exchange(true)) first_error = res.status();
      return;
    }
    out.neighbors[i] = std::move(*res);
  });
  if (failed.load()) return first_error;
  return out;
}

}  // namespace hgs
