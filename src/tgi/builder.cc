#include "tgi/builder.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "tgi/layout.h"

namespace hgs {

namespace {

// Scratch node of the intersection tree during construction.
struct TreeBuildNode {
  Delta delta;
  int parent = -1;
  int checkpoint_index = -1;
  std::vector<int> children;
};

// Groups a delta's components by micro-partition. Edge components are
// replicated into both endpoints' partitions (partitioned-snapshot semantics,
// Example 5).
std::unordered_map<MicroPartitionId, Delta> SplitDeltaByPid(
    const Delta& d, const std::function<MicroPartitionId(NodeId)>& pid_of) {
  std::unordered_map<MicroPartitionId, Delta> out;
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    Delta& slot = out[pid_of(id)];
    if (rec.has_value()) {
      slot.PutNode(id, *rec);
    } else {
      slot.TombstoneNode(id);
    }
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        MicroPartitionId pu = pid_of(key.u);
        MicroPartitionId pv = pid_of(key.v);
        auto put = [&](MicroPartitionId p) {
          Delta& slot = out[p];
          if (rec.has_value()) {
            slot.PutEdge(key, *rec);
          } else {
            slot.TombstoneEdge(key);
          }
        };
        put(pu);
        if (pv != pu) put(pv);
      });
  // The splits were built through O(1) appends; compact once so they
  // serialize and merge off their sorted spans.
  for (auto& [pid, slot] : out) slot.Compact();
  return out;
}

}  // namespace

TGIBuilder::TGIBuilder(Cluster* cluster, TGIOptions options)
    : cluster_(cluster), options_(options) {
  if (options_.eventlist_size == 0) options_.eventlist_size = 1;
  if (options_.micro_delta_size == 0) options_.micro_delta_size = 1;
  if (options_.num_horizontal_partitions == 0) {
    options_.num_horizontal_partitions = 1;
  }
  // The checkpoint interval must be a whole number of eventlists.
  options_.checkpoint_interval = options_.EffectiveCheckpointInterval();
}

Status TGIBuilder::Ingest(const std::vector<Event>& events) {
  for (const Event& e : events) {
    // Equal timestamps are allowed (simultaneous events are routine in real
    // traces); only going backwards in time is rejected. All read-side
    // routing (checkpoint selection, eventlist bounds, ApplyUpTo) treats
    // same-time events consistently via <=/> comparisons.
    if (e.time < last_time_) {
      return Status::InvalidArgument(
          "event timestamps must be non-decreasing");
    }
    last_time_ = e.time;
    if (first_time_ == kMaxTimestamp) first_time_ = e.time;
    pending_.push_back(e);
    ++total_events_;
    if (pending_.size() >= options_.events_per_timespan) {
      std::vector<Event> span;
      span.swap(pending_);
      HGS_RETURN_NOT_OK(BuildTimespan(span));
    }
  }
  return Status::OK();
}

Status TGIBuilder::Finish() {
  if (!pending_.empty()) {
    std::vector<Event> span;
    span.swap(pending_);
    HGS_RETURN_NOT_OK(BuildTimespan(span));
  }
  tgi::GraphMeta meta;
  meta.start = first_time_ == kMaxTimestamp ? 0 : first_time_;
  meta.end = last_time_ == kMinTimestamp ? 0 : last_time_;
  meta.event_count = total_events_;
  meta.timespan_count = static_cast<uint32_t>(next_tsid_);
  meta.num_horizontal_partitions =
      static_cast<uint32_t>(options_.num_horizontal_partitions);
  meta.clustering_order = static_cast<uint8_t>(options_.clustering_order);
  meta.replicate_one_hop = options_.replicate_one_hop;
  meta.micropartition_buckets =
      static_cast<uint32_t>(options_.micropartition_buckets);
  HGS_RETURN_NOT_OK(
      cluster_->Put(tgi::kGraphTable, 0, "meta", meta.Serialize()));
  // Signal open query managers that their metadata and read caches are
  // stale; they refresh lazily on their next query.
  cluster_->BumpPublishEpoch();
  return Status::OK();
}

Status TGIBuilder::BuildTimespan(const std::vector<Event>& events) {
  const auto tsid = static_cast<TimespanId>(next_tsid_);
  const size_t l = options_.eventlist_size;
  const size_t cp = options_.checkpoint_interval;
  const size_t ns = options_.num_horizontal_partitions;
  const Timestamp span_start_t = events.front().time;
  const Timestamp span_end_t = events.back().time;

  // ---- 1. Partitioning for this span. -----------------------------------
  // Size the micro-partition count for the node population of the span.
  size_t adds = 0;
  for (const Event& e : events) {
    if (e.type == EventType::kAddNode) ++adds;
  }
  size_t node_population = state_.NumNodes() + adds;
  uint32_t k_parts = static_cast<uint32_t>(
      std::max<size_t>(1, (node_population + options_.micro_delta_size - 1) /
                              options_.micro_delta_size));

  DynamicPartitionOptions dyn;
  dyn.strategy = options_.partition_strategy;
  dyn.num_partitions = k_parts;
  dyn.collapse = options_.collapse;
  Partitioning partitioning = PartitionTimespan(
      state_, events, TimeInterval{span_start_t, span_end_t + 1}, dyn);
  auto pid_of = [&partitioning](NodeId id) { return partitioning.Of(id); };

  // ---- 2. Stream the events. ---------------------------------------------
  // span-start state is checkpoint 0.
  const Graph span_start_state = state_;

  std::unordered_map<NodeId, size_t> node_first_touch;
  std::unordered_map<EdgeKey, size_t, EdgeKeyHash> edge_first_touch;
  // Capture buffers: checkpoint i's values of every key touched before it.
  std::vector<Delta> leaves;  // leaf 0 = span start (filled from patches)
  std::vector<Timestamp> checkpoint_times;
  leaves.emplace_back();
  checkpoint_times.push_back(span_start_t - 1);

  // Per-eventlist micro-eventlists under construction.
  std::vector<std::pair<Timestamp, Timestamp>> eventlist_bounds;
  std::unordered_map<MicroPartitionId, EventList> current_micro_evl;
  // Node events buffered for auxiliary (replication) eventlists; they can
  // only be routed once the span's full cut-edge map is known.
  std::vector<std::pair<size_t, Event>> buffered_node_events;
  size_t current_evl_index = 0;
  Timestamp current_evl_first = 0;

  // Version chains: node -> segment under construction.
  std::unordered_map<NodeId, tgi::VersionChainSegment> chains;

  // Span-wide union adjacency for replication (edge cuts only).
  // ext_nbr_of[n] = micro-partitions that replicate node n.
  std::unordered_map<NodeId, std::vector<MicroPartitionId>> replicated_into;
  auto note_edge_for_replication = [&](NodeId u, NodeId v) {
    if (!options_.replicate_one_hop) return;
    MicroPartitionId pu = pid_of(u);
    MicroPartitionId pv = pid_of(v);
    if (pu == pv) return;
    auto add = [&](NodeId n, MicroPartitionId p) {
      auto& vec = replicated_into[n];
      if (std::find(vec.begin(), vec.end(), p) == vec.end()) vec.push_back(p);
    };
    add(u, pv);
    add(v, pu);
  };
  if (options_.replicate_one_hop) {
    span_start_state.ForEachEdge(
        [&](const EdgeKey& key, const EdgeRecord&) {
          note_edge_for_replication(key.u, key.v);
        });
  }

  auto flush_eventlist = [&](Timestamp last_t) -> Status {
    eventlist_bounds.emplace_back(current_evl_first, last_t);
    DeltaId did = tgi::EventlistDid(current_evl_index);
    for (auto& [pid, evl] : current_micro_evl) {
      evl.SetScope(current_evl_first - 1, last_t);
      PartitionId sid = tgi::SidOf(pid, ns);
      HGS_RETURN_NOT_OK(cluster_->Put(
          tgi::kDeltasTable, tgi::DeltaPlacement(tsid, sid, ns),
          tgi::DeltaRowKey(options_.clustering_order, did, pid, false),
          evl.Serialize()));
    }
    current_micro_evl.clear();
    ++current_evl_index;
    return Status::OK();
  };

  auto record_version = [&](NodeId n, size_t evl_index, Timestamp t) {
    auto& seg = chains[n];
    if (seg.entries.empty()) {
      seg.node = n;
      seg.tsid = tsid;
      seg.pid = pid_of(n);
    }
    if (!seg.entries.empty() &&
        seg.entries.back().eventlist_index == evl_index) {
      seg.entries.back().last_time = t;
      seg.entries.back().event_count++;
      return;
    }
    tgi::VersionEntry entry;
    entry.tsid = tsid;
    entry.eventlist_index = static_cast<uint32_t>(evl_index);
    entry.pid = pid_of(n);
    entry.first_time = t;
    entry.last_time = t;
    entry.event_count = 1;
    seg.entries.push_back(entry);
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i % l == 0) current_evl_first = e.time;

    // Touched-key tracking.
    if (e.IsNodeEvent()) {
      node_first_touch.try_emplace(e.u, i);
    } else {
      edge_first_touch.try_emplace(EdgeKey(e.u, e.v), i);
      node_first_touch.try_emplace(e.u, i);
      node_first_touch.try_emplace(e.v, i);
      if (e.type == EventType::kAddEdge) {
        note_edge_for_replication(e.u, e.v);
      }
    }

    // Micro-eventlists: the event goes to every touched node's partition.
    MicroPartitionId pu = pid_of(e.u);
    current_micro_evl[pu].Append(e);
    record_version(e.u, current_evl_index, e.time);
    if (e.IsEdgeEvent()) {
      MicroPartitionId pv = pid_of(e.v);
      if (pv != pu) current_micro_evl[pv].Append(e);
      record_version(e.v, current_evl_index, e.time);
    } else if (options_.replicate_one_hop) {
      // Node events must also reach the partitions replicating this node;
      // buffered until the span's replication map is complete.
      buffered_node_events.emplace_back(current_evl_index, e);
    }

    ApplyEventToGraph(e, &state_);

    bool end_of_eventlist = (i + 1) % l == 0 || i + 1 == events.size();
    if (end_of_eventlist) {
      HGS_RETURN_NOT_OK(flush_eventlist(e.time));
    }
    bool checkpoint_due = (i + 1) % cp == 0 && i + 1 < events.size();
    if (checkpoint_due) {
      // Capture current values of everything touched so far.
      Delta cb;
      for (const auto& [nid, first] : node_first_touch) {
        (void)first;
        const NodeRecord* rec = state_.GetNode(nid);
        if (rec != nullptr) cb.PutNode(nid, *rec);
      }
      for (const auto& [key, first] : edge_first_touch) {
        (void)first;
        const EdgeRecord* rec = state_.GetEdge(key.u, key.v);
        if (rec != nullptr) cb.PutEdge(key, *rec);
      }
      cb.Compact();
      leaves.push_back(std::move(cb));
      checkpoint_times.push_back(e.time);
    }
  }

  // ---- 3. Patch leaves with keys first touched after each checkpoint. ----
  // Those keys' state at the checkpoint equals their span-start state.
  for (size_t li = 0; li < leaves.size(); ++li) {
    size_t boundary = li * cp;  // events applied before checkpoint li
    Delta& leaf = leaves[li];
    for (const auto& [nid, first] : node_first_touch) {
      if (first >= boundary) {
        const NodeRecord* rec = span_start_state.GetNode(nid);
        if (rec != nullptr) leaf.PutNode(nid, *rec);
      }
    }
    for (const auto& [key, first] : edge_first_touch) {
      if (first >= boundary) {
        const EdgeRecord* rec = span_start_state.GetEdge(key.u, key.v);
        if (rec != nullptr) leaf.PutEdge(key, *rec);
      }
    }
    leaf.Compact();
  }

  // ---- 4. Span-stable delta: everything never touched during the span. --
  Delta span_stable;
  span_start_state.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    if (!node_first_touch.contains(id)) span_stable.PutNode(id, rec);
  });
  span_start_state.ForEachEdge(
      [&](const EdgeKey& key, const EdgeRecord& rec) {
        if (!edge_first_touch.contains(key)) span_stable.PutEdge(key, rec);
      });
  span_stable.Compact();

  // ---- 5. Intersection tree over the checkpoint residues. ----------------
  std::vector<TreeBuildNode> pool;
  pool.reserve(leaves.size() * 2);
  std::vector<int> level;
  for (size_t i = 0; i < leaves.size(); ++i) {
    TreeBuildNode node;
    node.delta = std::move(leaves[i]);
    node.checkpoint_index = static_cast<int>(i);
    pool.push_back(std::move(node));
    level.push_back(static_cast<int>(pool.size()) - 1);
  }
  uint32_t arity = std::max<uint32_t>(2, options_.hierarchy_arity);
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i < level.size(); i += arity) {
      size_t group_end = std::min(level.size(), i + arity);
      if (group_end - i == 1) {
        // Odd child out: promote it unchanged.
        next.push_back(level[i]);
        continue;
      }
      Delta parent_delta = pool[static_cast<size_t>(level[i])].delta;
      for (size_t j = i + 1; j < group_end; ++j) {
        parent_delta = Delta::Intersect(
            parent_delta, pool[static_cast<size_t>(level[j])].delta);
      }
      TreeBuildNode parent;
      parent.delta = std::move(parent_delta);
      for (size_t j = i; j < group_end; ++j) parent.children.push_back(level[j]);
      pool.push_back(std::move(parent));
      int parent_id = static_cast<int>(pool.size()) - 1;
      for (size_t j = i; j < group_end; ++j) {
        pool[static_cast<size_t>(level[j])].parent = parent_id;
      }
      next.push_back(parent_id);
    }
    level.swap(next);
  }
  int root_pool_id = level.empty() ? -1 : level[0];

  // BFS numbering: did 0 = root.
  std::vector<int> bfs;
  std::vector<int32_t> did_of_pool(pool.size(), -1);
  if (root_pool_id >= 0) {
    bfs.push_back(root_pool_id);
    for (size_t i = 0; i < bfs.size(); ++i) {
      for (int c : pool[static_cast<size_t>(bfs[i])].children) {
        bfs.push_back(c);
      }
    }
    for (size_t i = 0; i < bfs.size(); ++i) {
      did_of_pool[static_cast<size_t>(bfs[i])] = static_cast<int32_t>(i);
    }
  }

  // ---- 6. Store tree deltas micro-partitioned. ----------------------------
  std::vector<tgi::TreeNode> tree_meta(bfs.size());
  for (size_t i = 0; i < bfs.size(); ++i) {
    const TreeBuildNode& node = pool[static_cast<size_t>(bfs[i])];
    tree_meta[i].checkpoint_index = node.checkpoint_index;
    tree_meta[i].parent =
        node.parent < 0 ? -1 : did_of_pool[static_cast<size_t>(node.parent)];
    Delta to_store;
    if (node.parent < 0) {
      to_store = Delta::Sum(span_stable, node.delta);
    } else {
      to_store = Delta::Difference(
          node.delta, pool[static_cast<size_t>(node.parent)].delta);
    }
    auto micro = SplitDeltaByPid(to_store, pid_of);
    DeltaId did = static_cast<DeltaId>(i);
    for (auto& [pid, d] : micro) {
      PartitionId sid = tgi::SidOf(pid, ns);
      HGS_RETURN_NOT_OK(cluster_->Put(
          tgi::kDeltasTable, tgi::DeltaPlacement(tsid, sid, ns),
          tgi::DeltaRowKey(options_.clustering_order, did, pid, false),
          d.Serialize()));
    }
    // Auxiliary replication micro-deltas: records of nodes replicated into
    // a partition because they are 1-hop neighbors across the cut.
    if (options_.replicate_one_hop) {
      std::unordered_map<MicroPartitionId, Delta> aux;
      to_store.ForEachNodeEntry(
          [&](NodeId id, const std::optional<NodeRecord>& rec) {
            auto it = replicated_into.find(id);
            if (it == replicated_into.end()) return;
            for (MicroPartitionId p : it->second) {
              if (rec.has_value()) {
                aux[p].PutNode(id, *rec);
              } else {
                aux[p].TombstoneNode(id);
              }
            }
          });
      for (auto& [pid, d] : aux) d.Compact();
      for (auto& [pid, d] : aux) {
        PartitionId sid = tgi::SidOf(pid, ns);
        HGS_RETURN_NOT_OK(cluster_->Put(
            tgi::kDeltasTable, tgi::DeltaPlacement(tsid, sid, ns),
            tgi::DeltaRowKey(options_.clustering_order, did, pid, true),
            d.Serialize()));
      }
    }
  }

  // ---- 6b. Auxiliary (replication) eventlists. ----------------------------
  if (options_.replicate_one_hop && !buffered_node_events.empty()) {
    // (eventlist index, pid) -> events of nodes replicated into pid.
    std::map<std::pair<size_t, MicroPartitionId>, EventList> aux_evls;
    for (const auto& [evl_index, e] : buffered_node_events) {
      auto it = replicated_into.find(e.u);
      if (it == replicated_into.end()) continue;
      for (MicroPartitionId p : it->second) {
        aux_evls[{evl_index, p}].Append(e);
      }
    }
    for (auto& [key, evl] : aux_evls) {
      auto [evl_index, pid] = key;
      evl.SetScope(eventlist_bounds[evl_index].first - 1,
                   eventlist_bounds[evl_index].second);
      PartitionId sid = tgi::SidOf(pid, ns);
      HGS_RETURN_NOT_OK(cluster_->Put(
          tgi::kDeltasTable, tgi::DeltaPlacement(tsid, sid, ns),
          tgi::DeltaRowKey(options_.clustering_order,
                           tgi::EventlistDid(evl_index), pid, true),
          evl.Serialize()));
    }
  }

  // ---- 7. Version chains. -------------------------------------------------
  for (auto& [nid, seg] : chains) {
    HGS_RETURN_NOT_OK(cluster_->Put(tgi::kVersionsTable,
                                    tgi::NodePlacement(nid),
                                    tgi::VersionRowKey(nid, tsid),
                                    seg.Serialize()));
  }

  // ---- 8. Micropartitions table (locality partitioning only). ------------
  if (options_.partition_strategy == PartitionStrategy::kLocality) {
    size_t buckets = std::max<size_t>(1, options_.micropartition_buckets);
    std::vector<std::vector<std::pair<NodeId, MicroPartitionId>>> bucketed(
        buckets);
    for (const auto& [nid, pid] : partitioning.assignment()) {
      bucketed[tgi::NodePlacement(nid) % buckets].emplace_back(nid, pid);
    }
    for (size_t b = 0; b < buckets; ++b) {
      if (bucketed[b].empty()) continue;
      std::sort(bucketed[b].begin(), bucketed[b].end());
      std::string key;
      AppendOrdered32(&key, static_cast<uint32_t>(b));
      HGS_RETURN_NOT_OK(
          cluster_->Put(tgi::kMicropartsTable,
                        static_cast<uint64_t>(tsid) * buckets + b, key,
                        tgi::SerializeMicropartBucket(bucketed[b])));
    }
  }

  // ---- 9. Timespan metadata. ----------------------------------------------
  tgi::TimespanMeta meta;
  meta.tsid = tsid;
  meta.start = span_start_t;
  meta.end = span_end_t;
  meta.event_count = events.size();
  meta.eventlist_size = static_cast<uint32_t>(l);
  meta.checkpoint_interval = static_cast<uint32_t>(cp);
  meta.num_micro_partitions = k_parts;
  meta.strategy = static_cast<uint8_t>(options_.partition_strategy);
  meta.checkpoints = std::move(checkpoint_times);
  meta.eventlist_bounds = std::move(eventlist_bounds);
  meta.tree = std::move(tree_meta);
  BinaryWriter w;
  meta.SerializeTo(&w);
  std::string ts_key;
  AppendOrdered32(&ts_key, tsid);
  HGS_RETURN_NOT_OK(cluster_->Put(tgi::kTimespansTable, 0, ts_key,
                                  w.FinishWithChecksum()));

  ++next_tsid_;
  HGS_LOG_INFO("built timespan " << tsid << ": " << events.size()
                                 << " events, " << meta.checkpoints.size()
                                 << " checkpoints, k_parts=" << k_parts);
  return Status::OK();
}

}  // namespace hgs
