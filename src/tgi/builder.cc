#include "tgi/builder.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tgi/layout.h"

namespace hgs {

namespace {

// Scratch node of the intersection tree during construction.
struct TreeBuildNode {
  Delta delta;
  int parent = -1;
  int checkpoint_index = -1;
  std::vector<int> children;
};

// Groups a delta's components by micro-partition. Edge components are
// replicated into both endpoints' partitions (partitioned-snapshot semantics,
// Example 5).
std::unordered_map<MicroPartitionId, Delta> SplitDeltaByPid(
    const Delta& d, const std::function<MicroPartitionId(NodeId)>& pid_of) {
  std::unordered_map<MicroPartitionId, Delta> out;
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    Delta& slot = out[pid_of(id)];
    if (rec.has_value()) {
      slot.PutNode(id, *rec);
    } else {
      slot.TombstoneNode(id);
    }
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        MicroPartitionId pu = pid_of(key.u);
        MicroPartitionId pv = pid_of(key.v);
        auto put = [&](MicroPartitionId p) {
          Delta& slot = out[p];
          if (rec.has_value()) {
            slot.PutEdge(key, *rec);
          } else {
            slot.TombstoneEdge(key);
          }
        };
        put(pu);
        if (pv != pu) put(pv);
      });
  // The splits were built through O(1) appends; compact once so they
  // serialize and merge off their sorted spans.
  for (auto& [pid, slot] : out) slot.Compact();
  return out;
}

}  // namespace

TGIBuilder::TGIBuilder(Cluster* cluster, TGIOptions options)
    : cluster_(cluster), options_(options) {
  if (options_.eventlist_size == 0) options_.eventlist_size = 1;
  if (options_.micro_delta_size == 0) options_.micro_delta_size = 1;
  if (options_.num_horizontal_partitions == 0) {
    options_.num_horizontal_partitions = 1;
  }
  // The checkpoint interval must be a whole number of eventlists.
  options_.checkpoint_interval = options_.EffectiveCheckpointInterval();
}

size_t TGIBuilder::EffectiveIngestThreads() const {
  size_t n = options_.ingest_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 8;
  }
  return n;
}

Status TGIBuilder::ValidateBatch(const std::vector<Event>& events) const {
  // Equal timestamps are allowed (simultaneous events are routine in real
  // traces); only going backwards in time is rejected. All read-side
  // routing (checkpoint selection, eventlist bounds, ApplyUpTo) treats
  // same-time events consistently via <=/> comparisons. One prepass over
  // the batch keeps this check out of the ingest hot loop and guarantees
  // span builds — including the parallel encode workers — never observe a
  // half-applied invalid batch.
  Timestamp prev = last_time_;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].time < prev) {
      return Status::InvalidArgument(
          "event timestamps must be non-decreasing: batch index " +
          std::to_string(i) + " (t=" + std::to_string(events[i].time) +
          ") precedes t=" + std::to_string(prev));
    }
    prev = events[i].time;
  }
  return Status::OK();
}

Status TGIBuilder::Ingest(const std::vector<Event>& events) {
  HGS_RETURN_NOT_OK(ValidateBatch(events));
  if (events.empty()) return Status::OK();
  if (first_time_ == kMaxTimestamp) first_time_ = events.front().time;
  last_time_ = events.back().time;
  for (const Event& e : events) {
    pending_.push_back(e);
    ++total_events_;
    if (pending_.size() >= options_.events_per_timespan) {
      std::vector<Event> span;
      span.swap(pending_);
      HGS_RETURN_NOT_OK(BuildTimespan(span));
    }
  }
  return Status::OK();
}

Status TGIBuilder::Finish() {
  if (!pending_.empty()) {
    std::vector<Event> span;
    span.swap(pending_);
    HGS_RETURN_NOT_OK(BuildTimespan(span));
  }
  tgi::GraphMeta meta;
  meta.start = first_time_ == kMaxTimestamp ? 0 : first_time_;
  meta.end = last_time_ == kMinTimestamp ? 0 : last_time_;
  meta.event_count = total_events_;
  meta.timespan_count = static_cast<uint32_t>(next_tsid_);
  meta.num_horizontal_partitions =
      static_cast<uint32_t>(options_.num_horizontal_partitions);
  meta.clustering_order = static_cast<uint8_t>(options_.clustering_order);
  meta.replicate_one_hop = options_.replicate_one_hop;
  meta.micropartition_buckets =
      static_cast<uint32_t>(options_.micropartition_buckets);
  HGS_RETURN_NOT_OK(
      cluster_->Put(tgi::kGraphTable, 0, "meta", meta.Serialize()));
  // Signal open query managers that their metadata and the scopes this
  // build wrote are stale; they refresh lazily on their next query,
  // keeping cache entries of untouched scopes warm.
  std::vector<EpochKey> touched;
  {
    MutexLock lock(touched_mu_);
    touched.swap(touched_scopes_);
  }
  touched.push_back(MakeEpochKey(tgi::kGraphTable, 0));
  if (options_.coarse_publish_epoch) {
    cluster_->BumpPublishEpoch();
  } else {
    cluster_->PublishTouched(std::move(touched));
  }
  return Status::OK();
}

Status TGIBuilder::BulkLoad(const std::vector<Event>& events) {
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "BulkLoad requires timespan-aligned state (no partial span pending)");
  }
  HGS_RETURN_NOT_OK(ValidateBatch(events));
  if (events.empty()) return Finish();
  if (first_time_ == kMaxTimestamp) first_time_ = events.front().time;

  // Span boundaries; the trailing partial span is built exactly as a final
  // Finish() would build it.
  const size_t span_size = options_.events_per_timespan;
  std::vector<std::pair<size_t, size_t>> spans;
  for (size_t s = 0; s < events.size(); s += span_size) {
    spans.emplace_back(s, std::min(events.size(), s + span_size));
  }

  // Bottom-up build in windows of `workers` spans: the window's start
  // states are replayed ahead sequentially (one linear pass over the
  // events), then the member spans — which are independent given their
  // start states — build, encode and group-commit concurrently.
  const size_t workers = std::max<size_t>(1, EffectiveIngestThreads());
  size_t w0 = 0;
  while (w0 < spans.size()) {
    const size_t count = std::min(workers, spans.size() - w0);
    std::vector<Graph> starts;
    starts.reserve(count);
    starts.push_back(std::move(state_));
    for (size_t k = 1; k < count; ++k) {
      Graph g = starts[k - 1];
      for (size_t i = spans[w0 + k - 1].first; i < spans[w0 + k - 1].second;
           ++i) {
        ApplyEventToGraph(events[i], &g);
      }
      starts.push_back(std::move(g));
    }
    Graph window_end;
    HGS_RETURN_NOT_OK(StatusParallelFor(count, workers, [&](size_t k) {
      auto [begin, end] = spans[w0 + k];
      return BuildTimespanFrom(
          std::span<const Event>(events.data() + begin, end - begin),
          static_cast<TimespanId>(next_tsid_ + k), starts[k],
          k + 1 == count ? &window_end : nullptr);
    }));
    state_ = std::move(window_end);
    next_tsid_ += count;
    w0 += count;
  }
  total_events_ += events.size();
  last_time_ = events.back().time;
  // Publish the global metadata once, at the end.
  return Finish();
}

Status TGIBuilder::BuildTimespan(const std::vector<Event>& events) {
  HGS_RETURN_NOT_OK(BuildTimespanFrom(
      events, static_cast<TimespanId>(next_tsid_), state_, &state_));
  ++next_tsid_;
  return Status::OK();
}

Status TGIBuilder::BuildTimespanFrom(std::span<const Event> events,
                                     TimespanId tsid, const Graph& span_start,
                                     Graph* end_state) {
  const size_t l = options_.eventlist_size;
  const size_t cp = options_.checkpoint_interval;
  const size_t ns = options_.num_horizontal_partitions;
  const size_t workers = EffectiveIngestThreads();
  const Timestamp span_start_t = events.front().time;
  const Timestamp span_end_t = events.back().time;

  // ---- 1. Partitioning for this span. -----------------------------------
  // Size the micro-partition count for the node population of the span.
  size_t adds = 0;
  for (const Event& e : events) {
    if (e.type == EventType::kAddNode) ++adds;
  }
  size_t node_population = span_start.NumNodes() + adds;
  uint32_t k_parts = static_cast<uint32_t>(
      std::max<size_t>(1, (node_population + options_.micro_delta_size - 1) /
                              options_.micro_delta_size));

  DynamicPartitionOptions dyn;
  dyn.strategy = options_.partition_strategy;
  dyn.num_partitions = k_parts;
  dyn.collapse = options_.collapse;
  Partitioning partitioning = PartitionTimespan(
      span_start, events, TimeInterval{span_start_t, span_end_t + 1}, dyn);
  auto pid_of = [&partitioning](NodeId id) { return partitioning.Of(id); };

  // ---- 2. Serial streaming phase (ordering-sensitive). -------------------
  // Event routing, checkpoint placement and version-chain accumulation all
  // depend on stream position, so they run on one thread; everything they
  // produce is *deferred work* for the parallel encode phase below.
  Graph working = span_start;

  std::unordered_map<NodeId, size_t> node_first_touch;
  std::unordered_map<EdgeKey, size_t, EdgeKeyHash> edge_first_touch;
  // Capture buffers: checkpoint i's values of every key touched before it.
  // Left uncompacted here; the parallel patch pass compacts each leaf once.
  std::vector<Delta> leaves;  // leaf 0 = span start (filled from patches)
  std::vector<Timestamp> checkpoint_times;
  leaves.emplace_back();
  checkpoint_times.push_back(span_start_t - 1);

  // Micro-eventlists are closed in stream order but serialized later, in
  // parallel: one encode job per (eventlist index, micro-partition).
  struct EvlJob {
    size_t evl_index = 0;
    MicroPartitionId pid = 0;
    EventList evl;
  };
  std::vector<EvlJob> evl_jobs;
  std::vector<std::pair<Timestamp, Timestamp>> eventlist_bounds;
  std::unordered_map<MicroPartitionId, EventList> current_micro_evl;
  // Node events buffered for auxiliary (replication) eventlists; they can
  // only be routed once the span's full cut-edge map is known.
  std::vector<std::pair<size_t, Event>> buffered_node_events;
  size_t current_evl_index = 0;
  Timestamp current_evl_first = 0;

  // Version chains: node -> segment under construction.
  std::unordered_map<NodeId, tgi::VersionChainSegment> chains;

  // Span-wide union adjacency for replication (edge cuts only).
  // ext_nbr_of[n] = micro-partitions that replicate node n.
  std::unordered_map<NodeId, std::vector<MicroPartitionId>> replicated_into;
  auto note_edge_for_replication = [&](NodeId u, NodeId v) {
    if (!options_.replicate_one_hop) return;
    MicroPartitionId pu = pid_of(u);
    MicroPartitionId pv = pid_of(v);
    if (pu == pv) return;
    auto add = [&](NodeId n, MicroPartitionId p) {
      auto& vec = replicated_into[n];
      if (std::find(vec.begin(), vec.end(), p) == vec.end()) vec.push_back(p);
    };
    add(u, pv);
    add(v, pu);
  };
  if (options_.replicate_one_hop) {
    span_start.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
      note_edge_for_replication(key.u, key.v);
    });
  }

  auto flush_eventlist = [&](Timestamp last_t) {
    eventlist_bounds.emplace_back(current_evl_first, last_t);
    for (auto& [pid, evl] : current_micro_evl) {
      evl.SetScope(current_evl_first - 1, last_t);
      evl_jobs.push_back(EvlJob{current_evl_index, pid, std::move(evl)});
    }
    current_micro_evl.clear();
    ++current_evl_index;
  };

  auto record_version = [&](NodeId n, size_t evl_index, Timestamp t) {
    auto& seg = chains[n];
    if (seg.entries.empty()) {
      seg.node = n;
      seg.tsid = tsid;
      seg.pid = pid_of(n);
    }
    if (!seg.entries.empty() &&
        seg.entries.back().eventlist_index == evl_index) {
      seg.entries.back().last_time = t;
      seg.entries.back().event_count++;
      return;
    }
    tgi::VersionEntry entry;
    entry.tsid = tsid;
    entry.eventlist_index = static_cast<uint32_t>(evl_index);
    entry.pid = pid_of(n);
    entry.first_time = t;
    entry.last_time = t;
    entry.event_count = 1;
    seg.entries.push_back(entry);
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i % l == 0) current_evl_first = e.time;

    // Touched-key tracking.
    if (e.IsNodeEvent()) {
      node_first_touch.try_emplace(e.u, i);
    } else {
      edge_first_touch.try_emplace(EdgeKey(e.u, e.v), i);
      node_first_touch.try_emplace(e.u, i);
      node_first_touch.try_emplace(e.v, i);
      if (e.type == EventType::kAddEdge) {
        note_edge_for_replication(e.u, e.v);
      }
    }

    // Micro-eventlists: the event goes to every touched node's partition.
    MicroPartitionId pu = pid_of(e.u);
    current_micro_evl[pu].Append(e);
    record_version(e.u, current_evl_index, e.time);
    if (e.IsEdgeEvent()) {
      MicroPartitionId pv = pid_of(e.v);
      if (pv != pu) current_micro_evl[pv].Append(e);
      record_version(e.v, current_evl_index, e.time);
    } else if (options_.replicate_one_hop) {
      // Node events must also reach the partitions replicating this node;
      // buffered until the span's replication map is complete.
      buffered_node_events.emplace_back(current_evl_index, e);
    }

    ApplyEventToGraph(e, &working);

    bool end_of_eventlist = (i + 1) % l == 0 || i + 1 == events.size();
    if (end_of_eventlist) {
      flush_eventlist(e.time);
    }
    bool checkpoint_due = (i + 1) % cp == 0 && i + 1 < events.size();
    if (checkpoint_due) {
      // Capture current values of everything touched so far.
      Delta cb;
      for (const auto& [nid, first] : node_first_touch) {
        (void)first;
        const NodeRecord* rec = working.GetNode(nid);
        if (rec != nullptr) cb.PutNode(nid, *rec);
      }
      for (const auto& [key, first] : edge_first_touch) {
        (void)first;
        const EdgeRecord* rec = working.GetEdge(key.u, key.v);
        if (rec != nullptr) cb.PutEdge(key, *rec);
      }
      leaves.push_back(std::move(cb));
      checkpoint_times.push_back(e.time);
    }
  }

  // ---- 3. Parallel encode phase. -----------------------------------------
  // Everything below is deterministic given the stream phase's outputs, so
  // any worker count produces byte-identical rows.

  // 3a. Patch leaves with keys first touched after each checkpoint (their
  // state at the checkpoint equals their span-start state), then compact.
  ParallelFor(leaves.size(), workers, [&](size_t li) {
    size_t boundary = li * cp;  // events applied before checkpoint li
    Delta& leaf = leaves[li];
    for (const auto& [nid, first] : node_first_touch) {
      if (first >= boundary) {
        const NodeRecord* rec = span_start.GetNode(nid);
        if (rec != nullptr) leaf.PutNode(nid, *rec);
      }
    }
    for (const auto& [key, first] : edge_first_touch) {
      if (first >= boundary) {
        const EdgeRecord* rec = span_start.GetEdge(key.u, key.v);
        if (rec != nullptr) leaf.PutEdge(key, *rec);
      }
    }
    leaf.Compact();
  });

  // 3b. Span-stable delta: everything never touched during the span.
  Delta span_stable;
  span_start.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    if (!node_first_touch.contains(id)) span_stable.PutNode(id, rec);
  });
  span_start.ForEachEdge([&](const EdgeKey& key, const EdgeRecord& rec) {
    if (!edge_first_touch.contains(key)) span_stable.PutEdge(key, rec);
  });
  span_stable.Compact();

  // 3c. Intersection tree over the checkpoint residues. Parents within one
  // level are independent, so each level's groups are created serially
  // (stable ids) and their intersection deltas computed in parallel.
  std::vector<TreeBuildNode> pool;
  pool.reserve(leaves.size() * 2);
  std::vector<int> level;
  for (size_t i = 0; i < leaves.size(); ++i) {
    TreeBuildNode node;
    node.delta = std::move(leaves[i]);
    node.checkpoint_index = static_cast<int>(i);
    pool.push_back(std::move(node));
    level.push_back(static_cast<int>(pool.size()) - 1);
  }
  uint32_t arity = std::max<uint32_t>(2, options_.hierarchy_arity);
  while (level.size() > 1) {
    std::vector<int> next;
    std::vector<int> fill;  // parents of this level, delta pending
    for (size_t i = 0; i < level.size(); i += arity) {
      size_t group_end = std::min(level.size(), i + arity);
      if (group_end - i == 1) {
        // Odd child out: promote it unchanged.
        next.push_back(level[i]);
        continue;
      }
      TreeBuildNode parent;
      for (size_t j = i; j < group_end; ++j) {
        parent.children.push_back(level[j]);
      }
      pool.push_back(std::move(parent));
      int parent_id = static_cast<int>(pool.size()) - 1;
      for (size_t j = i; j < group_end; ++j) {
        pool[static_cast<size_t>(level[j])].parent = parent_id;
      }
      fill.push_back(parent_id);
      next.push_back(parent_id);
    }
    // All of the level's nodes exist now, so the pool is stable while the
    // workers read children and write their own parent's delta.
    ParallelFor(fill.size(), workers, [&](size_t g) {
      TreeBuildNode& parent = pool[static_cast<size_t>(fill[g])];
      Delta d = pool[static_cast<size_t>(parent.children[0])].delta;
      for (size_t j = 1; j < parent.children.size(); ++j) {
        d = Delta::Intersect(
            d, pool[static_cast<size_t>(parent.children[j])].delta);
      }
      parent.delta = std::move(d);
    });
    level.swap(next);
  }
  int root_pool_id = level.empty() ? -1 : level[0];

  // BFS numbering: did 0 = root.
  std::vector<int> bfs;
  std::vector<int32_t> did_of_pool(pool.size(), -1);
  if (root_pool_id >= 0) {
    bfs.push_back(root_pool_id);
    for (size_t i = 0; i < bfs.size(); ++i) {
      for (int c : pool[static_cast<size_t>(bfs[i])].children) {
        bfs.push_back(c);
      }
    }
    for (size_t i = 0; i < bfs.size(); ++i) {
      did_of_pool[static_cast<size_t>(bfs[i])] = static_cast<int32_t>(i);
    }
  }

  // 3d. Encode tree deltas micro-partitioned (plus auxiliary replication
  // micro-deltas): one job per tree node, each producing its encoded rows.
  std::vector<tgi::TreeNode> tree_meta(bfs.size());
  std::vector<std::vector<PutRow>> tree_rows(bfs.size());
  ParallelFor(bfs.size(), workers, [&](size_t i) {
    const TreeBuildNode& node = pool[static_cast<size_t>(bfs[i])];
    tree_meta[i].checkpoint_index = node.checkpoint_index;
    tree_meta[i].parent =
        node.parent < 0 ? -1 : did_of_pool[static_cast<size_t>(node.parent)];
    Delta to_store;
    if (node.parent < 0) {
      to_store = Delta::Sum(span_stable, node.delta);
    } else {
      to_store = Delta::Difference(
          node.delta, pool[static_cast<size_t>(node.parent)].delta);
    }
    auto micro = SplitDeltaByPid(to_store, pid_of);
    DeltaId did = static_cast<DeltaId>(i);
    for (auto& [pid, d] : micro) {
      PartitionId sid = tgi::SidOf(pid, ns);
      tree_rows[i].push_back(
          PutRow{tgi::DeltaPlacement(tsid, sid, ns),
                 tgi::DeltaRowKey(options_.clustering_order, did, pid, false),
                 d.Serialize(), ValueSchema::kDelta,
                 options_.row_compression});
    }
    // Auxiliary replication micro-deltas: records of nodes replicated into
    // a partition because they are 1-hop neighbors across the cut.
    if (options_.replicate_one_hop) {
      std::unordered_map<MicroPartitionId, Delta> aux;
      to_store.ForEachNodeEntry(
          [&](NodeId id, const std::optional<NodeRecord>& rec) {
            auto it = replicated_into.find(id);
            if (it == replicated_into.end()) return;
            for (MicroPartitionId p : it->second) {
              if (rec.has_value()) {
                aux[p].PutNode(id, *rec);
              } else {
                aux[p].TombstoneNode(id);
              }
            }
          });
      for (auto& [pid, d] : aux) d.Compact();
      for (auto& [pid, d] : aux) {
        PartitionId sid = tgi::SidOf(pid, ns);
        tree_rows[i].push_back(
            PutRow{tgi::DeltaPlacement(tsid, sid, ns),
                   tgi::DeltaRowKey(options_.clustering_order, did, pid, true),
                   d.Serialize(), ValueSchema::kDelta,
                   options_.row_compression});
      }
    }
  });

  // 3e. Serialize the micro-eventlists closed during streaming.
  std::vector<PutRow> evl_rows(evl_jobs.size());
  ParallelFor(evl_jobs.size(), workers, [&](size_t j) {
    EvlJob& job = evl_jobs[j];
    PartitionId sid = tgi::SidOf(job.pid, ns);
    evl_rows[j] =
        PutRow{tgi::DeltaPlacement(tsid, sid, ns),
               tgi::DeltaRowKey(options_.clustering_order,
                                tgi::EventlistDid(job.evl_index), job.pid,
                                false),
               job.evl.Serialize(), ValueSchema::kEventList,
               options_.eventlist_compression};
  });

  // 3f. Auxiliary (replication) eventlists: routed serially now that the
  // span's replication map is complete, serialized in parallel.
  std::vector<std::pair<std::pair<size_t, MicroPartitionId>, EventList>>
      aux_evl_jobs;
  if (options_.replicate_one_hop && !buffered_node_events.empty()) {
    // (eventlist index, pid) -> events of nodes replicated into pid.
    std::map<std::pair<size_t, MicroPartitionId>, EventList> aux_evls;
    for (const auto& [evl_index, e] : buffered_node_events) {
      auto it = replicated_into.find(e.u);
      if (it == replicated_into.end()) continue;
      for (MicroPartitionId p : it->second) {
        aux_evls[{evl_index, p}].Append(e);
      }
    }
    aux_evl_jobs.assign(std::make_move_iterator(aux_evls.begin()),
                        std::make_move_iterator(aux_evls.end()));
  }
  std::vector<PutRow> aux_evl_rows(aux_evl_jobs.size());
  ParallelFor(aux_evl_jobs.size(), workers, [&](size_t j) {
    auto& [key, evl] = aux_evl_jobs[j];
    auto [evl_index, pid] = key;
    evl.SetScope(eventlist_bounds[evl_index].first - 1,
                 eventlist_bounds[evl_index].second);
    PartitionId sid = tgi::SidOf(pid, ns);
    aux_evl_rows[j] =
        PutRow{tgi::DeltaPlacement(tsid, sid, ns),
               tgi::DeltaRowKey(options_.clustering_order,
                                tgi::EventlistDid(evl_index), pid, true),
               evl.Serialize(), ValueSchema::kEventList,
               options_.eventlist_compression};
  });

  // 3g. Version chains.
  std::vector<tgi::VersionChainSegment*> chain_jobs;
  chain_jobs.reserve(chains.size());
  for (auto& [nid, seg] : chains) chain_jobs.push_back(&seg);
  std::vector<PutRow> version_rows(chain_jobs.size());
  ParallelFor(chain_jobs.size(), workers, [&](size_t j) {
    const tgi::VersionChainSegment& seg = *chain_jobs[j];
    version_rows[j] = PutRow{tgi::NodePlacement(seg.node),
                             tgi::VersionRowKey(seg.node, tsid),
                             seg.Serialize(), ValueSchema::kVersionChain,
                             options_.versions_compression};
  });

  // ---- 4. Group commit. ---------------------------------------------------
  // One batched submission per storage node per table (the MultiGet
  // batching discipline, mirrored for writes), then the span's metadata row
  // as the single sequencing step that completes the span. The row-at-a-
  // time fallback is bench_ingest's measured baseline.
  auto commit = [&](std::string_view table, std::vector<PutRow> rows) {
    if (options_.group_commit_puts) {
      return cluster_->MultiPut(table, std::move(rows));
    }
    for (const PutRow& row : rows) {
      HGS_RETURN_NOT_OK(cluster_->Put(table, row.partition, row.key, row.value,
                                      row.schema, row.codec));
    }
    return Status::OK();
  };
  size_t n_delta_rows = evl_rows.size() + aux_evl_rows.size();
  for (const auto& rows : tree_rows) n_delta_rows += rows.size();
  std::vector<PutRow> delta_rows;
  delta_rows.reserve(n_delta_rows);
  for (auto& rows : tree_rows) {
    for (auto& row : rows) delta_rows.push_back(std::move(row));
  }
  for (auto& row : evl_rows) delta_rows.push_back(std::move(row));
  for (auto& row : aux_evl_rows) delta_rows.push_back(std::move(row));
  // Record every (table, partition) scope this span writes; Finish()
  // publishes the set so readers invalidate only these scopes.
  std::vector<EpochKey> touched;
  touched.reserve(delta_rows.size() + version_rows.size() + 2);
  for (const PutRow& row : delta_rows) {
    touched.push_back(MakeEpochKey(tgi::kDeltasTable, row.partition));
  }
  for (const PutRow& row : version_rows) {
    touched.push_back(MakeEpochKey(tgi::kVersionsTable, row.partition));
  }
  HGS_RETURN_NOT_OK(commit(tgi::kDeltasTable, std::move(delta_rows)));
  HGS_RETURN_NOT_OK(commit(tgi::kVersionsTable, std::move(version_rows)));

  // Micropartitions table (locality partitioning only). Buckets are few
  // and small; built serially, committed as one batch.
  if (options_.partition_strategy == PartitionStrategy::kLocality) {
    size_t buckets = std::max<size_t>(1, options_.micropartition_buckets);
    std::vector<std::vector<std::pair<NodeId, MicroPartitionId>>> bucketed(
        buckets);
    for (const auto& [nid, pid] : partitioning.assignment()) {
      bucketed[tgi::NodePlacement(nid) % buckets].emplace_back(nid, pid);
    }
    std::vector<PutRow> micropart_rows;
    for (size_t b = 0; b < buckets; ++b) {
      if (bucketed[b].empty()) continue;
      std::sort(bucketed[b].begin(), bucketed[b].end());
      micropart_rows.push_back(
          PutRow{static_cast<uint64_t>(tsid) * buckets + b,
                 tgi::MicropartBucketRowKey(static_cast<uint32_t>(b)),
                 tgi::SerializeMicropartBucket(bucketed[b]),
                 ValueSchema::kOpaque, std::nullopt});
    }
    for (const PutRow& row : micropart_rows) {
      touched.push_back(MakeEpochKey(tgi::kMicropartsTable, row.partition));
    }
    HGS_RETURN_NOT_OK(
        commit(tgi::kMicropartsTable, std::move(micropart_rows)));
  }

  // ---- 5. Timespan metadata (the sequencing step). ------------------------
  tgi::TimespanMeta meta;
  meta.tsid = tsid;
  meta.start = span_start_t;
  meta.end = span_end_t;
  meta.event_count = events.size();
  meta.eventlist_size = static_cast<uint32_t>(l);
  meta.checkpoint_interval = static_cast<uint32_t>(cp);
  meta.num_micro_partitions = k_parts;
  meta.strategy = static_cast<uint8_t>(options_.partition_strategy);
  meta.checkpoints = std::move(checkpoint_times);
  meta.eventlist_bounds = std::move(eventlist_bounds);
  meta.tree = std::move(tree_meta);
  BinaryWriter w;
  meta.SerializeTo(&w);
  HGS_RETURN_NOT_OK(cluster_->Put(tgi::kTimespansTable, 0,
                                  tgi::TimespanRowKey(tsid),
                                  w.FinishWithChecksum()));
  touched.push_back(MakeEpochKey(tgi::kTimespansTable, 0));
  {
    MutexLock lock(touched_mu_);
    touched_scopes_.insert(touched_scopes_.end(), touched.begin(),
                           touched.end());
  }

  HGS_LOG_INFO("built timespan " << tsid << ": " << events.size()
                                 << " events, " << meta.checkpoints.size()
                                 << " checkpoints, k_parts=" << k_parts);
  if (end_state != nullptr) *end_state = std::move(working);
  return Status::OK();
}

}  // namespace hgs
