// EventList (Example 2): a chronologically sorted run of events scoped to a
// time range, and its node-scoped variant PartitionedEventList (Example 3).
//
// Time semantics: an EventList with scope (after, upto] contains events e
// with  after < e.time <= upto. These are the "changes that happened since
// the checkpoint at `after`, up to and including time `upto`", which is how
// snapshot reconstruction composes a checkpoint with subsequent eventlists
// (Algorithm 1).

#ifndef HGS_DELTA_EVENTLIST_H_
#define HGS_DELTA_EVENTLIST_H_

#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "delta/delta.h"
#include "delta/event.h"

namespace hgs {

class EventList {
 public:
  EventList() = default;
  EventList(Timestamp after, Timestamp upto) : after_(after), upto_(upto) {}

  /// Appends an event; caller keeps chronological order (Sort() otherwise).
  void Append(Event e) { events_.push_back(std::move(e)); }

  /// Stable-sorts events by timestamp (preserving intra-tick order).
  void Sort();

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  Timestamp after() const { return after_; }
  Timestamp upto() const { return upto_; }
  void SetScope(Timestamp after, Timestamp upto) {
    after_ = after;
    upto_ = upto;
  }

  /// Events with after < time <= upto, as a new list.
  EventList FilterByTime(Timestamp after, Timestamp upto) const;

  /// Events touching node `id` (edge events touch both endpoints). The
  /// rvalue overload moves matching events out instead of copying them
  /// (and leaves this list empty).
  EventList FilterByNode(NodeId id) const&;
  EventList FilterByNode(NodeId id) &&;

  /// Applies all events in order to a snapshot / an accumulating delta. The
  /// delta overload runs the batched Delta::ApplyEvents path (per-key
  /// grouping) rather than a per-event loop.
  void ApplyTo(Graph* g) const;
  void ApplyTo(Delta* d) const;

  /// Applies only events with time <= t. The rvalue overload consumes the
  /// list: each applied event donates its payload to the delta instead of
  /// being copied (the zero-copy merge path of snapshot reconstruction).
  /// Delta overloads batch through Delta::ApplyEvents.
  void ApplyUpTo(Timestamp t, Graph* g) const;
  void ApplyUpTo(Timestamp t, Delta* d) const&;
  void ApplyUpTo(Timestamp t, Delta* d) &&;

  /// Exact wire size of Serialize() (payload + checksum).
  size_t SerializedSizeBytes() const;

  void SerializeTo(BinaryWriter* w) const;
  static Result<EventList> DeserializeFrom(BinaryReader* r);
  std::string Serialize() const;
  static Result<EventList> Deserialize(std::string_view data);

  bool operator==(const EventList& o) const = default;

 private:
  // Delta::ApplyEvents(EventList&&, ...) consumes events_ in place.
  friend class Delta;

  Timestamp after_ = kMinTimestamp;
  Timestamp upto_ = kMaxTimestamp;
  std::vector<Event> events_;
};

}  // namespace hgs

#endif  // HGS_DELTA_EVENTLIST_H_
