#include "delta/delta.h"

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/columnar.h"
#include "common/compression.h"
#include "delta/eventlist.h"

namespace hgs {

namespace {

// Edge entries examined by remove-node incident-edge tombstoning; see
// Delta::IncidentEdgeScanSteps().
thread_local uint64_t t_incident_scan_steps = 0;

struct EntryKeyLess {
  template <typename Entry>
  bool operator()(const Entry& a, const Entry& b) const {
    return a.first < b.first;
  }
};

// Keeps the last of every run of equal-key entries (runs are write-ordered
// after a stable sort / stable merge, so "last" is the latest write).
template <typename Entry>
void DedupKeepLast(std::vector<Entry>* v) {
  size_t w = 0;
  for (size_t i = 0; i < v->size(); ++i) {
    if (i + 1 < v->size() && (*v)[i + 1].first == (*v)[i].first) continue;
    if (w != i) (*v)[w] = std::move((*v)[i]);
    ++w;
  }
  v->resize(w);
}

// Payload transfer for event application: the consuming replay path (mutable
// Event) donates attribute maps and strings; the const path copies them.
template <typename Ev>
Attributes TakeAttrs(Ev& e) {
  if constexpr (std::is_const_v<Ev>) {
    return e.attrs;
  } else {
    return std::move(e.attrs);
  }
}

template <typename Ev>
void SetAttrFromEvent(Attributes* attrs, Ev& e) {
  if constexpr (std::is_const_v<Ev>) {
    attrs->Set(e.key, e.value);
  } else {
    attrs->SetOwned(std::move(e.key), std::move(e.value));
  }
}

// [first, last) indices of events with after < time <= upto. `after ==
// kMinTimestamp` means unbounded below (so events carrying the sentinel
// timestamp itself are still included). Requires chronological order, the
// same precondition ApplyUpTo has always had.
std::pair<size_t, size_t> EventWindow(const std::vector<Event>& ev,
                                      Timestamp after, Timestamp upto) {
  auto first =
      after == kMinTimestamp
          ? ev.begin()
          : std::partition_point(ev.begin(), ev.end(), [after](const Event& e) {
              return e.time <= after;
            });
  auto last = std::partition_point(
      first, ev.end(), [upto](const Event& e) { return e.time <= upto; });
  return {static_cast<size_t>(first - ev.begin()),
          static_cast<size_t>(last - ev.begin())};
}

// First index >= `from` whose entry key is >= `key`, by exponential search.
// Group keys arrive in ascending order, so a cursor galloped forward visits
// the sorted span once overall (O(G log(n/G)) instead of G full binary
// searches).
template <typename Entry, typename Key>
size_t GallopToKey(const std::vector<Entry>& entries, size_t from,
                   const Key& key) {
  size_t lo = from;
  size_t step = 1;
  while (lo + step < entries.size() && entries[lo + step].first < key) {
    lo += step;
    step <<= 1;
  }
  const size_t hi = std::min(entries.size(), lo + step + 1);
  auto it = std::lower_bound(
      entries.begin() + static_cast<ptrdiff_t>(lo),
      entries.begin() + static_cast<ptrdiff_t>(hi), key,
      [](const Entry& e, const Key& k) { return e.first < k; });
  return static_cast<size_t>(it - entries.begin());
}

// Stable LSD radix pass set over a u64 key digit-by-digit (8-bit digits,
// all-zero digits skipped via the OR mask). Refs are small trivially
// copyable (key, index) pairs; radix beats comparison sort ~5x on the
// window sizes event replay produces.
template <typename Ref, typename KeyFn>
void StableRadixByU64(std::vector<Ref>* v, KeyFn key_of) {
  const size_t n = v->size();
  uint64_t ormask = 0;
  for (const Ref& r : *v) ormask |= key_of(r);
  std::vector<Ref> buf(n);
  Ref* src = v->data();
  Ref* dst = buf.data();
  bool in_v = true;
  for (int shift = 0; shift < 64; shift += 8) {
    if (((ormask >> shift) & 0xFF) == 0) continue;
    size_t count[256] = {};
    for (size_t i = 0; i < n; ++i) {
      ++count[(key_of(src[i]) >> shift) & 0xFF];
    }
    size_t pos = 0;
    for (size_t d = 0; d < 256; ++d) {
      size_t c = count[d];
      count[d] = pos;
      pos += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[count[(key_of(src[i]) >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
    in_v = !in_v;
  }
  if (!in_v) std::copy(buf.begin(), buf.end(), v->begin());
}

// Sorts (key, event index) refs by key, keeping index order within equal
// keys (the refs are built in index order and every radix pass is stable).
void SortRefs(std::vector<std::pair<NodeId, uint32_t>>* refs) {
  if (refs->size() < 512) {
    std::sort(refs->begin(), refs->end());
    return;
  }
  StableRadixByU64(refs, [](const auto& r) { return r.first; });
}

void SortRefs(std::vector<std::pair<EdgeKey, uint32_t>>* refs) {
  if (refs->size() < 512) {
    std::sort(refs->begin(), refs->end());
    return;
  }
  // LSD multi-key: minor key (v) first, then stable passes on the major
  // key (u) — equal (u, v) runs keep their original index order.
  StableRadixByU64(refs, [](const auto& r) { return r.first.v; });
  StableRadixByU64(refs, [](const auto& r) { return r.first.u; });
}

// Heterogeneous (entry, node id) ordering for equal_range over the sorted
// removal index list.
struct RemovalLess {
  bool operator()(const std::pair<NodeId, uint32_t>& a, NodeId b) const {
    return a.first < b;
  }
  bool operator()(NodeId a, const std::pair<NodeId, uint32_t>& b) const {
    return a < b.first;
  }
};

}  // namespace

namespace internal {

// ---------------------------------------------------------------------------
// FlatEntryMap
// ---------------------------------------------------------------------------

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::Set(Key key, std::optional<Rec> rec) {
  tail_.emplace_back(std::move(key), std::move(rec));
  MaybeCompact();
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::AppendOrdered(Key key, std::optional<Rec> rec) {
  if (tail_.empty() && (sorted_.empty() || sorted_.back().first < key)) {
    sorted_.emplace_back(std::move(key), std::move(rec));
  } else {
    Set(std::move(key), std::move(rec));
  }
}

template <typename Key, typename Rec>
const std::optional<Rec>* FlatEntryMap<Key, Rec>::Find(const Key& key) const {
  for (auto it = tail_.rbegin(); it != tail_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const Entry& e, const Key& k) { return e.first < k; });
  if (it != sorted_.end() && it->first == key) return &it->second;
  return nullptr;
}

template <typename Key, typename Rec>
std::optional<Rec>* FlatEntryMap<Key, Rec>::FindMutable(const Key& key) {
  return const_cast<std::optional<Rec>*>(
      static_cast<const FlatEntryMap*>(this)->Find(key));
}

template <typename Key, typename Rec>
size_t FlatEntryMap<Key, Rec>::size() const {
  if (tail_.empty()) return sorted_.size();
  std::vector<Key> keys;
  keys.reserve(tail_.size());
  for (const Entry& e : tail_) keys.push_back(e.first);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  size_t extra = 0;
  for (const Key& k : keys) {
    auto it = std::lower_bound(
        sorted_.begin(), sorted_.end(), k,
        [](const Entry& e, const Key& key) { return e.first < key; });
    if (it == sorted_.end() || !(it->first == k)) ++extra;
  }
  return sorted_.size() + extra;
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::Clear() {
  sorted_.clear();
  tail_.clear();
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::Compact() {
  if (tail_.empty()) return;
  std::stable_sort(tail_.begin(), tail_.end(), EntryKeyLess{});
  DedupKeepLast(&tail_);
  if (sorted_.empty()) {
    sorted_ = std::move(tail_);
    tail_.clear();
    return;
  }
  const size_t mid = sorted_.size();
  sorted_.insert(sorted_.end(), std::make_move_iterator(tail_.begin()),
                 std::make_move_iterator(tail_.end()));
  tail_.clear();
  // Stable merge keeps tail entries after equal-key sorted entries, so the
  // keep-last dedup retains the later write.
  std::inplace_merge(sorted_.begin(),
                     sorted_.begin() + static_cast<ptrdiff_t>(mid),
                     sorted_.end(), EntryKeyLess{});
  DedupKeepLast(&sorted_);
}

template <typename Key, typename Rec>
const FlatEntryMap<Key, Rec>& FlatEntryMap<Key, Rec>::CompactedOrSelf(
    FlatEntryMap* scratch) const {
  if (tail_.empty()) return *this;
  *scratch = *this;
  scratch->Compact();
  return *scratch;
}

template <typename Key, typename Rec>
std::vector<const typename FlatEntryMap<Key, Rec>::Entry*>
FlatEntryMap<Key, Rec>::MergedPtrs() const {
  std::vector<const Entry*> out;
  if (tail_.empty()) {
    out.reserve(sorted_.size());
    for (const Entry& e : sorted_) out.push_back(&e);
    return out;
  }
  std::vector<const Entry*> tp;
  tp.reserve(tail_.size());
  for (const Entry& e : tail_) tp.push_back(&e);
  std::stable_sort(tp.begin(), tp.end(), [](const Entry* a, const Entry* b) {
    return a->first < b->first;
  });
  size_t w = 0;
  for (size_t i = 0; i < tp.size(); ++i) {
    if (i + 1 < tp.size() && tp[i + 1]->first == tp[i]->first) continue;
    tp[w++] = tp[i];
  }
  tp.resize(w);
  out.reserve(sorted_.size() + tp.size());
  size_t i = 0, j = 0;
  while (i < sorted_.size() || j < tp.size()) {
    if (j == tp.size() ||
        (i < sorted_.size() && sorted_[i].first < tp[j]->first)) {
      out.push_back(&sorted_[i]);
      ++i;
    } else if (i == sorted_.size() || tp[j]->first < sorted_[i].first) {
      out.push_back(tp[j]);
      ++j;
    } else {
      out.push_back(tp[j]);  // tail wins on collision
      ++i;
      ++j;
    }
  }
  return out;
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::MergeFrom(const FlatEntryMap& other) {
  if (other.empty()) return;
  if (empty()) {
    sorted_ = other.sorted_;
    tail_ = other.tail_;
    return;
  }
  const size_t osize = other.TotalEntries();
  if (osize <= kTailBase + sorted_.size() / 4) {
    // Small right operand: append in other's write order (sorted span, then
    // tail) so "other wins" falls out of tail ordering; amortized compaction
    // keeps long micro-delta merge chains linear overall.
    tail_.reserve(tail_.size() + osize);
    for (const Entry& e : other.sorted_) tail_.push_back(e);
    for (const Entry& e : other.tail_) tail_.push_back(e);
    MaybeCompact();
    return;
  }
  Compact();
  FlatEntryMap oscratch;
  const auto& b = other.CompactedOrSelf(&oscratch).sorted_entries();
  std::vector<Entry> out;
  out.reserve(sorted_.size() + b.size());
  size_t i = 0, j = 0;
  while (i < sorted_.size() || j < b.size()) {
    if (j == b.size() ||
        (i < sorted_.size() && sorted_[i].first < b[j].first)) {
      out.push_back(std::move(sorted_[i]));
      ++i;
    } else if (i == sorted_.size() || b[j].first < sorted_[i].first) {
      out.push_back(b[j]);
      ++j;
    } else {
      out.push_back(b[j]);  // right wins
      ++i;
      ++j;
    }
  }
  sorted_ = std::move(out);
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::MergeFrom(FlatEntryMap&& other) {
  if (other.empty()) return;
  if (empty()) {
    sorted_ = std::move(other.sorted_);
    tail_ = std::move(other.tail_);
    other.Clear();
    return;
  }
  const size_t osize = other.TotalEntries();
  if (osize <= kTailBase + sorted_.size() / 4) {
    tail_.reserve(tail_.size() + osize);
    for (Entry& e : other.sorted_) tail_.push_back(std::move(e));
    for (Entry& e : other.tail_) tail_.push_back(std::move(e));
    other.Clear();
    MaybeCompact();
    return;
  }
  Compact();
  other.Compact();
  std::vector<Entry> out;
  out.reserve(sorted_.size() + other.sorted_.size());
  size_t i = 0, j = 0;
  while (i < sorted_.size() || j < other.sorted_.size()) {
    if (j == other.sorted_.size() ||
        (i < sorted_.size() && sorted_[i].first < other.sorted_[j].first)) {
      out.push_back(std::move(sorted_[i]));
      ++i;
    } else if (i == sorted_.size() ||
               other.sorted_[j].first < sorted_[i].first) {
      out.push_back(std::move(other.sorted_[j]));
      ++j;
    } else {
      out.push_back(std::move(other.sorted_[j]));  // right wins
      ++i;
      ++j;
    }
  }
  sorted_ = std::move(out);
  other.Clear();
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::MergeDisjointSorted(std::vector<Entry>&& add) {
  if (add.empty()) return;
  Compact();
  if (sorted_.empty()) {
    sorted_ = std::move(add);
    return;
  }
  // Backward in-place merge: keys in `add` are strictly ascending and
  // disjoint from sorted_, so no comparison ever ties and no dedup is
  // needed.
  size_t i = sorted_.size();
  size_t j = add.size();
  size_t w = i + j;
  sorted_.resize(w);
  while (j > 0) {
    if (i > 0 && add[j - 1].first < sorted_[i - 1].first) {
      sorted_[--w] = std::move(sorted_[--i]);
    } else {
      sorted_[--w] = std::move(add[--j]);
    }
  }
}

template <typename Key, typename Rec>
void FlatEntryMap<Key, Rec>::AssignUnsortedUnique(
    std::vector<Entry>&& entries) {
  std::sort(entries.begin(), entries.end(), EntryKeyLess{});
  sorted_ = std::move(entries);
  tail_.clear();
}

template <typename Key, typename Rec>
bool FlatEntryMap<Key, Rec>::EqualsLogical(const FlatEntryMap& o) const {
  if (tail_.empty() && o.tail_.empty()) return sorted_ == o.sorted_;
  auto pa = MergedPtrs();
  auto pb = o.MergedPtrs();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (!(*pa[i] == *pb[i])) return false;
  }
  return true;
}

template class FlatEntryMap<NodeId, NodeRecord>;
template class FlatEntryMap<EdgeKey, EdgeRecord>;

}  // namespace internal

// ---------------------------------------------------------------------------
// Event application
// ---------------------------------------------------------------------------

void Delta::ApplyEvent(const Event& e) {
  switch (e.type) {
    case EventType::kAddNode:
      nodes_.Set(e.u, NodeRecord{.attrs = e.attrs});
      break;
    case EventType::kRemoveNode:
      nodes_.Set(e.u, std::nullopt);
      edges_.Compact();
      TombstoneIncidentEdges({e.u}, {});
      break;
    case EventType::kAddEdge:
      edges_.Set(EdgeKey(e.u, e.v),
                 EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                            .attrs = e.attrs});
      break;
    case EventType::kRemoveEdge:
      edges_.Set(EdgeKey(e.u, e.v), std::nullopt);
      break;
    case EventType::kSetNodeAttr: {
      auto* slot = nodes_.FindMutable(e.u);
      if (slot == nullptr) {
        NodeRecord rec;
        rec.attrs.Set(e.key, e.value);
        nodes_.Set(e.u, std::move(rec));
      } else {
        if (!slot->has_value()) *slot = NodeRecord{};
        (*slot)->attrs.Set(e.key, e.value);
      }
      break;
    }
    case EventType::kDelNodeAttr: {
      auto* slot = nodes_.FindMutable(e.u);
      if (slot != nullptr && slot->has_value()) (*slot)->attrs.Erase(e.key);
      break;
    }
    case EventType::kSetEdgeAttr: {
      const EdgeKey key(e.u, e.v);
      auto* slot = edges_.FindMutable(key);
      if (slot == nullptr) {
        EdgeRecord rec{.src = e.u, .dst = e.v, .directed = e.directed,
                       .attrs = {}};
        rec.attrs.Set(e.key, e.value);
        edges_.Set(key, std::move(rec));
      } else {
        if (!slot->has_value()) {
          *slot = EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                             .attrs = {}};
        }
        (*slot)->attrs.Set(e.key, e.value);
      }
      break;
    }
    case EventType::kDelEdgeAttr: {
      auto* slot = edges_.FindMutable(EdgeKey(e.u, e.v));
      if (slot != nullptr && slot->has_value()) (*slot)->attrs.Erase(e.key);
      break;
    }
  }
}

void Delta::ApplyEvent(Event&& e) {
  switch (e.type) {
    case EventType::kAddNode:
      nodes_.Set(e.u, NodeRecord{.attrs = std::move(e.attrs)});
      break;
    case EventType::kAddEdge:
      edges_.Set(EdgeKey(e.u, e.v),
                 EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                            .attrs = std::move(e.attrs)});
      break;
    case EventType::kSetNodeAttr: {
      auto* slot = nodes_.FindMutable(e.u);
      if (slot == nullptr) {
        NodeRecord rec;
        rec.attrs.SetOwned(std::move(e.key), std::move(e.value));
        nodes_.Set(e.u, std::move(rec));
      } else {
        if (!slot->has_value()) *slot = NodeRecord{};
        (*slot)->attrs.SetOwned(std::move(e.key), std::move(e.value));
      }
      break;
    }
    case EventType::kSetEdgeAttr: {
      const EdgeKey key(e.u, e.v);
      auto* slot = edges_.FindMutable(key);
      if (slot == nullptr) {
        EdgeRecord rec{.src = e.u, .dst = e.v, .directed = e.directed,
                       .attrs = {}};
        rec.attrs.SetOwned(std::move(e.key), std::move(e.value));
        edges_.Set(key, std::move(rec));
      } else {
        if (!slot->has_value()) {
          *slot = EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                             .attrs = {}};
        }
        (*slot)->attrs.SetOwned(std::move(e.key), std::move(e.value));
      }
      break;
    }
    default:
      // The remaining event kinds carry no bulk payload worth moving.
      ApplyEvent(static_cast<const Event&>(e));
      break;
  }
}

template <typename EventIt>
void Delta::ApplyEventsRange(EventIt begin, EventIt end) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n == 0) return;
  // Tiny windows: per-key grouping costs more than it saves. Scalar
  // application looks keys up through the unsorted tail, so fold an
  // oversized one (grown by a preceding merge chain) first — otherwise
  // per-event lookups on a snapshot-scale accumulator degrade toward
  // O(sorted/8) tail comparisons each.
  if (n <= 8) {
    if (nodes_.TailEntries() > 64) nodes_.Compact();
    if (edges_.TailEntries() > 64) edges_.Compact();
    for (EventIt it = begin; it != end; ++it) {
      if constexpr (std::is_const_v<std::remove_pointer_t<EventIt>>) {
        ApplyEvent(*it);
      } else {
        ApplyEvent(std::move(*it));
      }
    }
    return;
  }

  nodes_.Compact();
  edges_.Compact();

  // Index the window: (key, event index) per touched key, plus the
  // remove-node stream that interacts with edge state.
  std::vector<std::pair<NodeId, uint32_t>> node_refs;
  std::vector<std::pair<EdgeKey, uint32_t>> edge_refs;
  std::vector<std::pair<NodeId, uint32_t>> removals;
  node_refs.reserve(n);
  edge_refs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Event& ev = *(begin + i);
    if (ev.IsNodeEvent()) {
      node_refs.emplace_back(ev.u, i);
      if (ev.type == EventType::kRemoveNode) removals.emplace_back(ev.u, i);
    } else {
      edge_refs.emplace_back(EdgeKey(ev.u, ev.v), i);
    }
  }
  SortRefs(&node_refs);
  SortRefs(&edge_refs);
  std::sort(removals.begin(), removals.end());

  // --- node groups: locate each touched node once, fold its events. Groups
  // ascend by key, so a galloping cursor replaces per-group binary search.
  std::vector<NodeMap::Entry> pending_nodes;
  pending_nodes.reserve(node_refs.size());
  auto& node_entries = nodes_.mutable_sorted_entries();
  size_t ncursor = 0;
  for (size_t g = 0; g < node_refs.size();) {
    const NodeId u = node_refs[g].first;
    size_t ge = g;
    while (ge < node_refs.size() && node_refs[ge].first == u) ++ge;
    ncursor = GallopToKey(node_entries, ncursor, u);
    std::optional<NodeRecord>* slot =
        ncursor < node_entries.size() && node_entries[ncursor].first == u
            ? &node_entries[ncursor].second
            : nullptr;
    bool entry_exists = slot != nullptr;
    std::optional<NodeRecord> local;
    std::optional<NodeRecord>* target = entry_exists ? slot : &local;
    for (size_t k = g; k < ge; ++k) {
      auto& ev = *(begin + node_refs[k].second);
      switch (ev.type) {
        case EventType::kAddNode:
          *target = NodeRecord{.attrs = TakeAttrs(ev)};
          entry_exists = true;
          break;
        case EventType::kRemoveNode:
          *target = std::nullopt;
          entry_exists = true;
          break;
        case EventType::kSetNodeAttr:
          if (!entry_exists || !target->has_value()) {
            *target = NodeRecord{};
            entry_exists = true;
          }
          SetAttrFromEvent(&(*target)->attrs, ev);
          break;
        case EventType::kDelNodeAttr:
          if (entry_exists && target->has_value()) {
            (*target)->attrs.Erase(ev.key);
          }
          break;
        default:
          break;  // edge events never land in node groups
      }
    }
    if (slot == nullptr && entry_exists) {
      pending_nodes.emplace_back(u, std::move(local));
    }
    g = ge;
  }

  // --- edge groups: fold edge events merged with the removal stream of
  // both endpoints, by event index (= application order). ------------------
  std::vector<EdgeMap::Entry> pending_edges;
  pending_edges.reserve(edge_refs.size());
  std::vector<EdgeKey> grouped_keys;
  grouped_keys.reserve(edge_refs.size());
  auto& edge_entries = edges_.mutable_sorted_entries();
  size_t ecursor = 0;
  for (size_t g = 0; g < edge_refs.size();) {
    const EdgeKey key = edge_refs[g].first;
    size_t ge = g;
    while (ge < edge_refs.size() && edge_refs[ge].first == key) ++ge;
    grouped_keys.push_back(key);
    auto ru = removals.end(), ru_end = removals.end();
    auto rv = removals.end(), rv_end = removals.end();
    if (!removals.empty()) {
      std::tie(ru, ru_end) = std::equal_range(removals.begin(),
                                              removals.end(), key.u,
                                              RemovalLess{});
      if (key.v != key.u) {
        std::tie(rv, rv_end) = std::equal_range(removals.begin(),
                                                removals.end(), key.v,
                                                RemovalLess{});
      }
    }
    ecursor = GallopToKey(edge_entries, ecursor, key);
    std::optional<EdgeRecord>* slot =
        ecursor < edge_entries.size() && edge_entries[ecursor].first == key
            ? &edge_entries[ecursor].second
            : nullptr;
    bool entry_exists = slot != nullptr;
    std::optional<EdgeRecord> local;
    std::optional<EdgeRecord>* target = entry_exists ? slot : &local;
    size_t k = g;
    while (k < ge || ru != ru_end || rv != rv_end) {
      const uint32_t ke = k < ge ? edge_refs[k].second : UINT32_MAX;
      const uint32_t ue = ru != ru_end ? ru->second : UINT32_MAX;
      const uint32_t ve = rv != rv_end ? rv->second : UINT32_MAX;
      if (ke < ue && ke < ve) {
        auto& ev = *(begin + ke);
        switch (ev.type) {
          case EventType::kAddEdge:
            *target = EdgeRecord{.src = ev.u, .dst = ev.v,
                                 .directed = ev.directed,
                                 .attrs = TakeAttrs(ev)};
            entry_exists = true;
            break;
          case EventType::kRemoveEdge:
            *target = std::nullopt;
            entry_exists = true;
            break;
          case EventType::kSetEdgeAttr:
            if (!entry_exists || !target->has_value()) {
              *target = EdgeRecord{.src = ev.u, .dst = ev.v,
                                   .directed = ev.directed, .attrs = {}};
              entry_exists = true;
            }
            SetAttrFromEvent(&(*target)->attrs, ev);
            break;
          case EventType::kDelEdgeAttr:
            if (entry_exists && target->has_value()) {
              (*target)->attrs.Erase(ev.key);
            }
            break;
          default:
            break;  // node events never land in edge groups
        }
        ++k;
      } else if (ue < ve) {
        // A removed endpoint tombstones the edge iff it is present, and
        // never creates an entry — matching the sequential semantics.
        if (entry_exists && target->has_value()) *target = std::nullopt;
        ++ru;
      } else {
        if (entry_exists && target->has_value()) *target = std::nullopt;
        ++rv;
      }
    }
    if (slot == nullptr && entry_exists) {
      pending_edges.emplace_back(key, std::move(local));
    }
    g = ge;
  }

  // --- incident-edge tombstoning for edges untouched by this window: one
  // bounded pass over the sorted span, not one scan per removal. ------------
  if (!removals.empty()) {
    std::vector<NodeId> removed;
    removed.reserve(removals.size());
    for (const auto& [id, idx] : removals) {
      if (removed.empty() || removed.back() != id) removed.push_back(id);
    }
    TombstoneIncidentEdges(removed, grouped_keys);
  }

  // New keys arrive in ascending order and are absent from the sorted spans
  // by construction: one backward in-place merge each, no sort needed.
  nodes_.MergeDisjointSorted(std::move(pending_nodes));
  edges_.MergeDisjointSorted(std::move(pending_edges));
}

void Delta::ApplyEvents(const EventList& el, Timestamp after, Timestamp upto) {
  const std::vector<Event>& ev = el.events();
  auto [b, e] = EventWindow(ev, after, upto);
  ApplyEventsRange(ev.data() + b, ev.data() + e);
}

void Delta::ApplyEvents(EventList&& el, Timestamp after, Timestamp upto) {
  std::vector<Event>& ev = el.events_;
  auto [b, e] = EventWindow(ev, after, upto);
  ApplyEventsRange(ev.data() + b, ev.data() + e);
}

void Delta::TombstoneIncidentEdges(const std::vector<NodeId>& removed,
                                   const std::vector<EdgeKey>& skip) {
  if (removed.empty()) return;
  auto& entries = edges_.mutable_sorted_entries();
  const NodeId max_removed = removed.back();
  uint64_t steps = 0;
  for (auto& entry : entries) {
    // Canonical keys are (min, max): past the largest removed id, no entry's
    // minimum endpoint — hence neither endpoint — can be a removed node.
    if (entry.first.u > max_removed) break;
    ++steps;
    if (!entry.second.has_value()) continue;
    if (!std::binary_search(removed.begin(), removed.end(), entry.first.u) &&
        !std::binary_search(removed.begin(), removed.end(), entry.first.v)) {
      continue;
    }
    if (!skip.empty() &&
        std::binary_search(skip.begin(), skip.end(), entry.first)) {
      continue;
    }
    entry.second = std::nullopt;
  }
  t_incident_scan_steps += steps;
}

uint64_t Delta::IncidentEdgeScanSteps() { return t_incident_scan_steps; }
void Delta::ResetIncidentEdgeScanSteps() { t_incident_scan_steps = 0; }

// ---------------------------------------------------------------------------
// Lookup / size
// ---------------------------------------------------------------------------

const std::optional<NodeRecord>* Delta::FindNode(NodeId id) const {
  return nodes_.Find(id);
}

const std::optional<EdgeRecord>* Delta::FindEdge(const EdgeKey& key) const {
  return edges_.Find(key);
}

size_t Delta::SerializedSizeBytes() const {
  size_t total = VarintWireSize(nodes_.size());
  nodes_.ForEachOrdered([&](const NodeMap::Entry& e) {
    total += VarintWireSize(e.first) + 1;
    if (e.second.has_value()) total += AttributesWireSize(e.second->attrs);
  });
  total += VarintWireSize(edges_.size());
  edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
    total += 1;
    if (e.second.has_value()) {
      total += VarintWireSize(e.second->src) + VarintWireSize(e.second->dst) +
               1 + AttributesWireSize(e.second->attrs);
    } else {
      total += VarintWireSize(e.first.u) + VarintWireSize(e.first.v);
    }
  });
  return total + kChecksumWireSize;
}

void Delta::Compact() {
  nodes_.Compact();
  edges_.Compact();
}

// ---------------------------------------------------------------------------
// Algebra
// ---------------------------------------------------------------------------

void Delta::Add(const Delta& other) {
  nodes_.MergeFrom(other.nodes_);
  edges_.MergeFrom(other.edges_);
}

void Delta::Add(Delta&& other) {
  nodes_.MergeFrom(std::move(other.nodes_));
  edges_.MergeFrom(std::move(other.edges_));
}

Delta Delta::Sum(const Delta& a, const Delta& b) {
  Delta out = a;
  out.Add(b);
  return out;
}

namespace {

// Pairs of `a` whose (key, state) is not identically in `b`; linear
// two-pointer walk over the sorted spans.
template <typename M>
void DifferenceInto(const M& am, const M& bm, M* out) {
  M sa, sb;
  const auto& a = am.CompactedOrSelf(&sa).sorted_entries();
  const auto& b = bm.CompactedOrSelf(&sb).sorted_entries();
  size_t i = 0, j = 0;
  while (i < a.size()) {
    if (j == b.size() || a[i].first < b[j].first) {
      out->AppendOrdered(a[i].first, a[i].second);
      ++i;
    } else if (b[j].first < a[i].first) {
      ++j;
    } else {
      if (!(a[i].second == b[j].second)) {
        out->AppendOrdered(a[i].first, a[i].second);
      }
      ++i;
      ++j;
    }
  }
}

// Pairs identical in both.
template <typename M>
void IntersectInto(const M& am, const M& bm, M* out) {
  M sa, sb;
  const auto& a = am.CompactedOrSelf(&sa).sorted_entries();
  const auto& b = bm.CompactedOrSelf(&sb).sorted_entries();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (b[j].first < a[i].first) {
      ++j;
    } else {
      if (a[i].second == b[j].second) {
        out->AppendOrdered(a[i].first, a[i].second);
      }
      ++i;
      ++j;
    }
  }
}

// All pairs, left-biased on collision.
template <typename M>
void UnionInto(const M& am, const M& bm, M* out) {
  M sa, sb;
  const auto& a = am.CompactedOrSelf(&sa).sorted_entries();
  const auto& b = bm.CompactedOrSelf(&sb).sorted_entries();
  out->ReserveSorted(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out->AppendOrdered(a[i].first, a[i].second);
      ++i;
    } else if (i == a.size() || b[j].first < a[i].first) {
      out->AppendOrdered(b[j].first, b[j].second);
      ++j;
    } else {
      out->AppendOrdered(a[i].first, a[i].second);
      ++i;
      ++j;
    }
  }
}

}  // namespace

Delta Delta::Difference(const Delta& a, const Delta& b) {
  Delta out;
  DifferenceInto(a.nodes_, b.nodes_, &out.nodes_);
  DifferenceInto(a.edges_, b.edges_, &out.edges_);
  return out;
}

Delta Delta::Intersect(const Delta& a, const Delta& b) {
  Delta out;
  IntersectInto(a.nodes_, b.nodes_, &out.nodes_);
  IntersectInto(a.edges_, b.edges_, &out.edges_);
  return out;
}

Delta Delta::Union(const Delta& a, const Delta& b) {
  Delta out;
  UnionInto(a.nodes_, b.nodes_, &out.nodes_);
  UnionInto(a.edges_, b.edges_, &out.edges_);
  return out;
}

// ---------------------------------------------------------------------------
// Conversion
// ---------------------------------------------------------------------------

Graph Delta::ToGraph() const {
  Graph g;
  nodes_.ForEachOrdered([&](const NodeMap::Entry& e) {
    if (e.second.has_value()) g.AddNode(e.first, e.second->attrs);
  });
  edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
    const auto& rec = e.second;
    if (rec.has_value() && g.HasNode(rec->src) && g.HasNode(rec->dst)) {
      g.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
    }
  });
  return g;
}

Graph Delta::ToGraphKeepDangling() const {
  Graph g;
  nodes_.ForEachOrdered([&](const NodeMap::Entry& e) {
    if (e.second.has_value()) g.AddNode(e.first, e.second->attrs);
  });
  edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
    const auto& rec = e.second;
    if (rec.has_value()) {
      g.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
    }
  });
  return g;
}

Delta Delta::FromGraph(const Graph& g) {
  Delta d;
  std::vector<NodeMap::Entry> nodes;
  nodes.reserve(g.NumNodes());
  g.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    nodes.emplace_back(id, rec);
  });
  d.nodes_.AssignUnsortedUnique(std::move(nodes));
  std::vector<EdgeMap::Entry> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord& rec) {
    edges.emplace_back(key, rec);
  });
  d.edges_.AssignUnsortedUnique(std::move(edges));
  return d;
}

Delta Delta::FilterByNodes(const std::unordered_set<NodeId>& ids) const {
  Delta out;
  nodes_.ForEachOrdered([&](const NodeMap::Entry& e) {
    if (ids.contains(e.first)) out.nodes_.AppendOrdered(e.first, e.second);
  });
  edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
    if (ids.contains(e.first.u) || ids.contains(e.first.v)) {
      out.edges_.AppendOrdered(e.first, e.second);
    }
  });
  return out;
}

Delta Delta::FilterById(NodeId id) const {
  Delta out;
  const auto* rec = nodes_.Find(id);
  if (rec != nullptr) out.nodes_.AppendOrdered(id, *rec);
  if (edges_.IsCompact()) {
    // Canonical keys: entries with minimum endpoint > id cannot touch id.
    for (const auto& e : edges_.sorted_entries()) {
      if (e.first.u > id) break;
      if (e.first.u == id || e.first.v == id) {
        out.edges_.AppendOrdered(e.first, e.second);
      }
    }
  } else {
    edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
      if (e.first.u == id || e.first.v == id) {
        out.edges_.AppendOrdered(e.first, e.second);
      }
    });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Iteration
// ---------------------------------------------------------------------------

void Delta::ForEachNodeEntry(
    const std::function<void(NodeId, const std::optional<NodeRecord>&)>& fn)
    const {
  nodes_.ForEachOrdered(
      [&](const NodeMap::Entry& e) { fn(e.first, e.second); });
}

void Delta::ForEachEdgeEntry(
    const std::function<void(const EdgeKey&, const std::optional<EdgeRecord>&)>&
        fn) const {
  edges_.ForEachOrdered(
      [&](const EdgeMap::Entry& e) { fn(e.first, e.second); });
}

// ---------------------------------------------------------------------------
// Serialization (entries in ascending key order)
// ---------------------------------------------------------------------------

void Delta::SerializeTo(BinaryWriter* w) const {
  w->PutVarint64(nodes_.size());
  nodes_.ForEachOrdered([&](const NodeMap::Entry& e) {
    w->PutVarint64(e.first);
    w->PutBool(e.second.has_value());
    if (e.second.has_value()) SerializeAttributes(e.second->attrs, w);
  });
  w->PutVarint64(edges_.size());
  edges_.ForEachOrdered([&](const EdgeMap::Entry& e) {
    const auto& rec = e.second;
    w->PutBool(rec.has_value());
    if (rec.has_value()) {
      w->PutVarint64(rec->src);
      w->PutVarint64(rec->dst);
      w->PutBool(rec->directed);
      SerializeAttributes(rec->attrs, w);
    } else {
      w->PutVarint64(e.first.u);
      w->PutVarint64(e.first.v);
    }
  });
}

Result<Delta> Delta::DeserializeFrom(BinaryReader* r) {
  Delta d;
  HGS_ASSIGN_OR_RETURN(uint64_t n_nodes, r->GetVarint64());
  for (uint64_t i = 0; i < n_nodes; ++i) {
    HGS_ASSIGN_OR_RETURN(uint64_t id, r->GetVarint64());
    HGS_ASSIGN_OR_RETURN(bool present, r->GetBool());
    if (present) {
      HGS_ASSIGN_OR_RETURN(Attributes attrs, DeserializeAttributes(r));
      d.nodes_.AppendOrdered(id, NodeRecord{.attrs = std::move(attrs)});
    } else {
      d.nodes_.AppendOrdered(id, std::nullopt);
    }
  }
  HGS_ASSIGN_OR_RETURN(uint64_t n_edges, r->GetVarint64());
  for (uint64_t i = 0; i < n_edges; ++i) {
    HGS_ASSIGN_OR_RETURN(bool present, r->GetBool());
    if (present) {
      HGS_ASSIGN_OR_RETURN(uint64_t src, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(uint64_t dst, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(bool directed, r->GetBool());
      HGS_ASSIGN_OR_RETURN(Attributes attrs, DeserializeAttributes(r));
      d.edges_.AppendOrdered(EdgeKey(src, dst),
                             EdgeRecord{.src = src, .dst = dst,
                                        .directed = directed,
                                        .attrs = std::move(attrs)});
    } else {
      HGS_ASSIGN_OR_RETURN(uint64_t u, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(uint64_t v, r->GetVarint64());
      d.edges_.AppendOrdered(EdgeKey(u, v), std::nullopt);
    }
  }
  d.Compact();
  return d;
}

std::string Delta::Serialize() const {
  BinaryWriter w;
  SerializeTo(&w);
  return w.FinishWithChecksum();
}

// The whole-value decode is the read path's hot loop, so it runs on the
// bulk reader: pointer-bumping field decodes with one sticky-error check
// per record instead of a Result<> per field. Entries arrive in key order
// (the serialization invariant), so they append straight onto the sorted
// span with no per-entry insertion cost; AppendOrdered degrades gracefully
// to tail writes if a (corrupt but checksum-colliding) buffer is unsorted.
// DeserializeFrom stays as the scalar reference decoder; the two are
// equivalence-tested in delta_test.
Result<Delta> Delta::Deserialize(std::string_view data) {
  // A columnar payload (alternative serialization; see common/columnar.h)
  // routes on its magic — legacy payloads can never start with those bytes.
  if (IsColumnarPayload(data)) return DeserializeColumnar(data);
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  Delta d;
  uint64_t n_nodes = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  d.nodes_.ReserveSorted(std::min<uint64_t>(n_nodes, r.remaining()));
  for (uint64_t i = 0; i < n_nodes; ++i) {
    uint64_t id = r.ReadVarint64();
    if (r.ReadBool()) {
      d.nodes_.AppendOrdered(
          id, NodeRecord{.attrs = DeserializeAttributesBulk(&r)});
    } else {
      d.nodes_.AppendOrdered(id, std::nullopt);
    }
    if (r.failed()) return r.BulkStatus();
  }
  uint64_t n_edges = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  d.edges_.ReserveSorted(std::min<uint64_t>(n_edges, r.remaining()));
  for (uint64_t i = 0; i < n_edges; ++i) {
    if (r.ReadBool()) {
      uint64_t src = r.ReadVarint64();
      uint64_t dst = r.ReadVarint64();
      bool directed = r.ReadBool();
      d.edges_.AppendOrdered(
          EdgeKey(src, dst),
          EdgeRecord{.src = src, .dst = dst, .directed = directed,
                     .attrs = DeserializeAttributesBulk(&r)});
    } else {
      uint64_t u = r.ReadVarint64();
      uint64_t v = r.ReadVarint64();
      d.edges_.AppendOrdered(EdgeKey(u, v), std::nullopt);
    }
    if (r.failed()) return r.BulkStatus();
  }
  d.Compact();
  return d;
}

// -- kDelta columnar schema -------------------------------------------------
// Column layout (see common/columnar.h for the container):
//    0 head     : varint node entry count, varint edge entry count
//    1 nodeids  : zigzag varint deltas of node keys (ascending)
//    2 nodebits : present bit per node entry (0 = tombstone)
//    3 nodeattrs: per present node: varint count, then (key id, value id)
//    4 edgeu    : zigzag varint deltas of canonical key.u (ascending keys)
//    5 edgedv   : varint (key.v - key.u) per edge entry (canonical v >= u)
//    6 edgebits : present bit per edge entry (0 = tombstone)
//    7 edgeflags: per present edge: flipped bit (src is key.v), directed bit
//    8 edgeattrs: per present edge: varint count, then (key id, value id)
//    9 keydict  : sorted dictionary of attribute keys
//   10 valdict  : sorted dictionary of attribute values

namespace {

constexpr size_t kDelColHead = 0;
constexpr size_t kDelColNodeIds = 1;
constexpr size_t kDelColNodeBits = 2;
constexpr size_t kDelColNodeAttrs = 3;
constexpr size_t kDelColEdgeU = 4;
constexpr size_t kDelColEdgeDv = 5;
constexpr size_t kDelColEdgeBits = 6;
constexpr size_t kDelColEdgeFlags = 7;
constexpr size_t kDelColEdgeAttrs = 8;
constexpr size_t kDelColKeyDict = 9;
constexpr size_t kDelColValDict = 10;

void PutAttrIds(const Attributes& attrs, const StringDictBuilder& keys,
                const StringDictBuilder& vals, BinaryWriter* w) {
  w->PutVarint64(attrs.size());
  for (const auto& [k, v] : attrs.entries()) {
    w->PutVarint64(keys.IdOf(k));
    w->PutVarint64(vals.IdOf(v));
  }
}

Attributes ReadAttrIds(const StringDictView& keys, const StringDictView& vals,
                       BinaryReader* r) {
  Attributes out;
  uint64_t n = r->ReadVarint64();
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    std::string_view k = keys.Get(r->ReadVarint64(), r);
    std::string_view v = vals.Get(r->ReadVarint64(), r);
    // Dict ids arrive in the entry's original sorted-key order.
    out.AppendSorted(std::string(k), std::string(v));
  }
  return out;
}

std::optional<std::string> EncodeColumnarDeltaPayload(const Delta& d) {
  StringDictBuilder keys;
  StringDictBuilder vals;
  bool representable = true;
  d.ForEachNodeEntry([&](NodeId, const std::optional<NodeRecord>& rec) {
    if (!rec.has_value()) return;
    for (const auto& [k, v] : rec->attrs.entries()) {
      keys.Add(k);
      vals.Add(v);
    }
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        // The record's orientation must reduce to one flipped bit against the
        // canonical key; anything else cannot be represented losslessly.
        if (EdgeKey(rec->src, rec->dst) != key) representable = false;
        for (const auto& [k, v] : rec->attrs.entries()) {
          keys.Add(k);
          vals.Add(v);
        }
      });
  if (!representable) return std::nullopt;
  keys.Build();
  vals.Build();

  BinaryWriter head;
  head.PutVarint64(d.NodeEntryCount());
  head.PutVarint64(d.EdgeEntryCount());

  BinaryWriter node_ids;
  BitColumnWriter node_bits;
  BinaryWriter node_attrs;
  DeltaInt64Encoder node_enc;
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    node_enc.Put(&node_ids, static_cast<int64_t>(id));
    node_bits.Append(rec.has_value());
    if (rec.has_value()) PutAttrIds(rec->attrs, keys, vals, &node_attrs);
  });

  BinaryWriter edge_u;
  BinaryWriter edge_dv;
  BitColumnWriter edge_bits;
  BitColumnWriter edge_flags;
  BinaryWriter edge_attrs;
  DeltaInt64Encoder u_enc;
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        u_enc.Put(&edge_u, static_cast<int64_t>(key.u));
        edge_dv.PutVarint64(key.v - key.u);
        edge_bits.Append(rec.has_value());
        if (rec.has_value()) {
          bool flipped = rec->src == key.v && key.u != key.v;
          edge_flags.Append(flipped);
          edge_flags.Append(rec->directed);
          PutAttrIds(rec->attrs, keys, vals, &edge_attrs);
        }
      });

  ColumnarBlockWriter block(ValueSchema::kDelta);
  block.AddColumn(head.Finish());
  block.AddColumn(node_ids.Finish());
  block.AddColumn(node_bits.Finish());
  block.AddColumn(node_attrs.Finish());
  block.AddColumn(edge_u.Finish());
  block.AddColumn(edge_dv.Finish());
  block.AddColumn(edge_bits.Finish());
  block.AddColumn(edge_flags.Finish());
  block.AddColumn(edge_attrs.Finish());
  block.AddColumn(keys.Serialize());
  block.AddColumn(vals.Serialize());
  return block.Finish();
}

std::optional<std::string> ColumnarEncodeDelta(std::string_view payload) {
  Result<Delta> parsed = Delta::Deserialize(payload);
  if (!parsed.ok()) return std::nullopt;
  // Only canonical serializations are eligible (see the eventlist codec).
  if (parsed->Serialize() != payload) return std::nullopt;
  return EncodeColumnarDeltaPayload(*parsed);
}

Result<std::string> ColumnarReencodeDelta(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(payload));
  return d.Serialize();
}

[[maybe_unused]] const bool kDeltaCodecRegistered = [] {
  RegisterColumnarCodec(ValueSchema::kDelta, &ColumnarEncodeDelta,
                        &ColumnarReencodeDelta);
  return true;
}();

}  // namespace

Result<Delta> Delta::DeserializeColumnar(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(ColumnarBlockReader block,
                       ColumnarBlockReader::Parse(payload, ValueSchema::kDelta));
  HGS_ASSIGN_OR_RETURN(std::string_view head_col, block.Column(kDelColHead));
  HGS_ASSIGN_OR_RETURN(std::string_view nid_col,
                       block.Column(kDelColNodeIds));
  HGS_ASSIGN_OR_RETURN(std::string_view nbit_col,
                       block.Column(kDelColNodeBits));
  HGS_ASSIGN_OR_RETURN(std::string_view nattr_col,
                       block.Column(kDelColNodeAttrs));
  HGS_ASSIGN_OR_RETURN(std::string_view eu_col, block.Column(kDelColEdgeU));
  HGS_ASSIGN_OR_RETURN(std::string_view edv_col, block.Column(kDelColEdgeDv));
  HGS_ASSIGN_OR_RETURN(std::string_view ebit_col,
                       block.Column(kDelColEdgeBits));
  HGS_ASSIGN_OR_RETURN(std::string_view eflag_col,
                       block.Column(kDelColEdgeFlags));
  HGS_ASSIGN_OR_RETURN(std::string_view eattr_col,
                       block.Column(kDelColEdgeAttrs));
  HGS_ASSIGN_OR_RETURN(std::string_view keydict_col,
                       block.Column(kDelColKeyDict));
  HGS_ASSIGN_OR_RETURN(std::string_view valdict_col,
                       block.Column(kDelColValDict));
  HGS_ASSIGN_OR_RETURN(StringDictView keys, StringDictView::Parse(keydict_col));
  HGS_ASSIGN_OR_RETURN(StringDictView vals, StringDictView::Parse(valdict_col));

  BinaryReader head(head_col);
  uint64_t n_nodes = head.ReadVarint64();
  uint64_t n_edges = head.ReadVarint64();
  if (head.failed()) return head.BulkStatus();

  Delta d;
  BinaryReader nids(nid_col);
  BitColumnReader nbits = BitColumnReader::Bind(nbit_col);
  BinaryReader nattrs(nattr_col);
  DeltaInt64Decoder nid_dec;
  d.nodes_.ReserveSorted(std::min<uint64_t>(n_nodes, payload.size()));
  for (uint64_t i = 0; i < n_nodes; ++i) {
    auto id = static_cast<NodeId>(nid_dec.Next(&nids));
    if (nbits.Next(&nids)) {
      d.nodes_.AppendOrdered(id,
                             NodeRecord{.attrs = ReadAttrIds(keys, vals,
                                                             &nattrs)});
    } else {
      d.nodes_.AppendOrdered(id, std::nullopt);
    }
    if (nids.failed() || nattrs.failed()) {
      return Status::Corruption("columnar delta: truncated node column");
    }
  }

  BinaryReader eus(eu_col);
  BinaryReader edvs(edv_col);
  BitColumnReader ebits = BitColumnReader::Bind(ebit_col);
  BitColumnReader eflags = BitColumnReader::Bind(eflag_col);
  BinaryReader eattrs(eattr_col);
  DeltaInt64Decoder eu_dec;
  d.edges_.ReserveSorted(std::min<uint64_t>(n_edges, payload.size()));
  for (uint64_t i = 0; i < n_edges; ++i) {
    auto u = static_cast<NodeId>(eu_dec.Next(&eus));
    NodeId v = u + edvs.ReadVarint64();
    EdgeKey key(u, v);
    if (ebits.Next(&eus)) {
      bool flipped = eflags.Next(&eus);
      bool directed = eflags.Next(&eus);
      d.edges_.AppendOrdered(
          key, EdgeRecord{.src = flipped ? key.v : key.u,
                          .dst = flipped ? key.u : key.v,
                          .directed = directed,
                          .attrs = ReadAttrIds(keys, vals, &eattrs)});
    } else {
      d.edges_.AppendOrdered(key, std::nullopt);
    }
    if (eus.failed() || edvs.failed() || eattrs.failed()) {
      return Status::Corruption("columnar delta: truncated edge column");
    }
  }
  d.Compact();
  return d;
}

bool Delta::operator==(const Delta& o) const {
  return nodes_.EqualsLogical(o.nodes_) && edges_.EqualsLogical(o.edges_);
}

}  // namespace hgs
