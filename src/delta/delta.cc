#include "delta/delta.h"

namespace hgs {

void Delta::ApplyEvent(const Event& e) {
  switch (e.type) {
    case EventType::kAddNode:
      nodes_[e.u] = NodeRecord{.attrs = e.attrs};
      break;
    case EventType::kRemoveNode: {
      nodes_[e.u] = std::nullopt;
      // Defensive: tombstone incident edges already present in this delta.
      for (auto& [key, rec] : edges_) {
        if ((key.u == e.u || key.v == e.u) && rec.has_value()) {
          rec = std::nullopt;
        }
      }
      break;
    }
    case EventType::kAddEdge:
      edges_[EdgeKey(e.u, e.v)] =
          EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                     .attrs = e.attrs};
      break;
    case EventType::kRemoveEdge:
      edges_[EdgeKey(e.u, e.v)] = std::nullopt;
      break;
    case EventType::kSetNodeAttr: {
      auto& slot = nodes_[e.u];
      if (!slot.has_value()) slot = NodeRecord{};
      slot->attrs.Set(e.key, e.value);
      break;
    }
    case EventType::kDelNodeAttr: {
      auto it = nodes_.find(e.u);
      if (it != nodes_.end() && it->second.has_value()) {
        it->second->attrs.Erase(e.key);
      }
      break;
    }
    case EventType::kSetEdgeAttr: {
      auto& slot = edges_[EdgeKey(e.u, e.v)];
      if (!slot.has_value()) {
        slot = EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                          .attrs = {}};
      }
      slot->attrs.Set(e.key, e.value);
      break;
    }
    case EventType::kDelEdgeAttr: {
      auto it = edges_.find(EdgeKey(e.u, e.v));
      if (it != edges_.end() && it->second.has_value()) {
        it->second->attrs.Erase(e.key);
      }
      break;
    }
  }
}

void Delta::ApplyEvent(Event&& e) {
  switch (e.type) {
    case EventType::kAddNode:
      nodes_[e.u] = NodeRecord{.attrs = std::move(e.attrs)};
      break;
    case EventType::kAddEdge:
      edges_[EdgeKey(e.u, e.v)] =
          EdgeRecord{.src = e.u, .dst = e.v, .directed = e.directed,
                     .attrs = std::move(e.attrs)};
      break;
    default:
      // The remaining event kinds carry no bulk payload worth moving.
      ApplyEvent(static_cast<const Event&>(e));
      break;
  }
}

const std::optional<NodeRecord>* Delta::FindNode(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const std::optional<EdgeRecord>* Delta::FindEdge(const EdgeKey& key) const {
  auto it = edges_.find(key);
  return it == edges_.end() ? nullptr : &it->second;
}

size_t Delta::SerializedSizeBytes() const {
  size_t total = 16;
  for (const auto& [id, rec] : nodes_) {
    total += 10;  // id varint + presence byte
    if (rec.has_value()) {
      for (const auto& [k, v] : rec->attrs.entries()) {
        total += k.size() + v.size() + 4;
      }
    }
  }
  for (const auto& [key, rec] : edges_) {
    (void)key;
    total += 20;
    if (rec.has_value()) {
      for (const auto& [k, v] : rec->attrs.entries()) {
        total += k.size() + v.size() + 4;
      }
    }
  }
  return total;
}

void Delta::Add(const Delta& other) {
  nodes_.reserve(nodes_.size() + other.nodes_.size());
  edges_.reserve(edges_.size() + other.edges_.size());
  for (const auto& [id, rec] : other.nodes_) nodes_[id] = rec;
  for (const auto& [key, rec] : other.edges_) edges_[key] = rec;
}

void Delta::Add(Delta&& other) {
  if (Empty()) {
    nodes_ = std::move(other.nodes_);
    edges_ = std::move(other.edges_);
  } else {
    nodes_.reserve(nodes_.size() + other.nodes_.size());
    edges_.reserve(edges_.size() + other.edges_.size());
    for (auto& [id, rec] : other.nodes_) nodes_[id] = std::move(rec);
    for (auto& [key, rec] : other.edges_) edges_[key] = std::move(rec);
  }
  other.nodes_.clear();
  other.edges_.clear();
}

Delta Delta::Sum(const Delta& a, const Delta& b) {
  Delta out = a;
  out.Add(b);
  return out;
}

Delta Delta::Difference(const Delta& a, const Delta& b) {
  Delta out;
  for (const auto& [id, rec] : a.nodes_) {
    auto it = b.nodes_.find(id);
    if (it == b.nodes_.end() || !(it->second == rec)) out.nodes_[id] = rec;
  }
  for (const auto& [key, rec] : a.edges_) {
    auto it = b.edges_.find(key);
    if (it == b.edges_.end() || !(it->second == rec)) out.edges_[key] = rec;
  }
  return out;
}

Delta Delta::Intersect(const Delta& a, const Delta& b) {
  Delta out;
  const bool a_smaller = a.nodes_.size() <= b.nodes_.size();
  const auto& nsmall = a_smaller ? a.nodes_ : b.nodes_;
  const auto& nlarge = a_smaller ? b.nodes_ : a.nodes_;
  for (const auto& [id, rec] : nsmall) {
    auto it = nlarge.find(id);
    if (it != nlarge.end() && it->second == rec) out.nodes_[id] = rec;
  }
  const bool ae_smaller = a.edges_.size() <= b.edges_.size();
  const auto& esmall = ae_smaller ? a.edges_ : b.edges_;
  const auto& elarge = ae_smaller ? b.edges_ : a.edges_;
  for (const auto& [key, rec] : esmall) {
    auto it = elarge.find(key);
    if (it != elarge.end() && it->second == rec) out.edges_[key] = rec;
  }
  return out;
}

Delta Delta::Union(const Delta& a, const Delta& b) {
  Delta out = b;
  // Left bias: a's entries overwrite b's on collision.
  for (const auto& [id, rec] : a.nodes_) out.nodes_[id] = rec;
  for (const auto& [key, rec] : a.edges_) out.edges_[key] = rec;
  return out;
}

Graph Delta::ToGraph() const {
  Graph g;
  for (const auto& [id, rec] : nodes_) {
    if (rec.has_value()) g.AddNode(id, rec->attrs);
  }
  for (const auto& [key, rec] : edges_) {
    (void)key;
    if (rec.has_value() && g.HasNode(rec->src) && g.HasNode(rec->dst)) {
      g.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
    }
  }
  return g;
}

Graph Delta::ToGraphKeepDangling() const {
  Graph g;
  for (const auto& [id, rec] : nodes_) {
    if (rec.has_value()) g.AddNode(id, rec->attrs);
  }
  for (const auto& [key, rec] : edges_) {
    (void)key;
    if (rec.has_value()) {
      g.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
    }
  }
  return g;
}

Delta Delta::FromGraph(const Graph& g) {
  Delta d;
  g.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    d.nodes_.emplace(id, rec);
  });
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord& rec) {
    d.edges_.emplace(key, rec);
  });
  return d;
}

Delta Delta::FilterByNodes(const std::unordered_set<NodeId>& ids) const {
  Delta out;
  for (const auto& [id, rec] : nodes_) {
    if (ids.contains(id)) out.nodes_[id] = rec;
  }
  for (const auto& [key, rec] : edges_) {
    if (ids.contains(key.u) || ids.contains(key.v)) out.edges_[key] = rec;
  }
  return out;
}

Delta Delta::FilterById(NodeId id) const {
  Delta out;
  auto it = nodes_.find(id);
  if (it != nodes_.end()) out.nodes_[id] = it->second;
  for (const auto& [key, rec] : edges_) {
    if (key.u == id || key.v == id) out.edges_[key] = rec;
  }
  return out;
}

void Delta::ForEachNodeEntry(
    const std::function<void(NodeId, const std::optional<NodeRecord>&)>& fn)
    const {
  for (const auto& [id, rec] : nodes_) fn(id, rec);
}

void Delta::ForEachEdgeEntry(
    const std::function<void(const EdgeKey&, const std::optional<EdgeRecord>&)>&
        fn) const {
  for (const auto& [key, rec] : edges_) fn(key, rec);
}

void Delta::SerializeTo(BinaryWriter* w) const {
  w->PutVarint64(nodes_.size());
  for (const auto& [id, rec] : nodes_) {
    w->PutVarint64(id);
    w->PutBool(rec.has_value());
    if (rec.has_value()) SerializeAttributes(rec->attrs, w);
  }
  w->PutVarint64(edges_.size());
  for (const auto& [key, rec] : edges_) {
    (void)key;
    w->PutBool(rec.has_value());
    if (rec.has_value()) {
      w->PutVarint64(rec->src);
      w->PutVarint64(rec->dst);
      w->PutBool(rec->directed);
      SerializeAttributes(rec->attrs, w);
    } else {
      w->PutVarint64(key.u);
      w->PutVarint64(key.v);
    }
  }
}

Result<Delta> Delta::DeserializeFrom(BinaryReader* r) {
  Delta d;
  HGS_ASSIGN_OR_RETURN(uint64_t n_nodes, r->GetVarint64());
  d.nodes_.reserve(n_nodes);
  for (uint64_t i = 0; i < n_nodes; ++i) {
    HGS_ASSIGN_OR_RETURN(uint64_t id, r->GetVarint64());
    HGS_ASSIGN_OR_RETURN(bool present, r->GetBool());
    if (present) {
      HGS_ASSIGN_OR_RETURN(Attributes attrs, DeserializeAttributes(r));
      d.nodes_[id] = NodeRecord{.attrs = std::move(attrs)};
    } else {
      d.nodes_[id] = std::nullopt;
    }
  }
  HGS_ASSIGN_OR_RETURN(uint64_t n_edges, r->GetVarint64());
  d.edges_.reserve(n_edges);
  for (uint64_t i = 0; i < n_edges; ++i) {
    HGS_ASSIGN_OR_RETURN(bool present, r->GetBool());
    if (present) {
      HGS_ASSIGN_OR_RETURN(uint64_t src, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(uint64_t dst, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(bool directed, r->GetBool());
      HGS_ASSIGN_OR_RETURN(Attributes attrs, DeserializeAttributes(r));
      d.edges_[EdgeKey(src, dst)] =
          EdgeRecord{.src = src, .dst = dst, .directed = directed,
                     .attrs = std::move(attrs)};
    } else {
      HGS_ASSIGN_OR_RETURN(uint64_t u, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(uint64_t v, r->GetVarint64());
      d.edges_[EdgeKey(u, v)] = std::nullopt;
    }
  }
  return d;
}

std::string Delta::Serialize() const {
  BinaryWriter w;
  SerializeTo(&w);
  return w.FinishWithChecksum();
}

// The whole-value decode is the read path's hot loop, so it runs on the
// bulk reader: pointer-bumping field decodes with one sticky-error check
// per record instead of a Result<> per field. DeserializeFrom stays as the
// scalar reference decoder; the two are equivalence-tested in delta_test.
Result<Delta> Delta::Deserialize(std::string_view data) {
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  Delta d;
  uint64_t n_nodes = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  d.nodes_.reserve(std::min<uint64_t>(n_nodes, r.remaining()));
  for (uint64_t i = 0; i < n_nodes; ++i) {
    uint64_t id = r.ReadVarint64();
    if (r.ReadBool()) {
      d.nodes_[id] = NodeRecord{.attrs = DeserializeAttributesBulk(&r)};
    } else {
      d.nodes_[id] = std::nullopt;
    }
    if (r.failed()) return r.BulkStatus();
  }
  uint64_t n_edges = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  d.edges_.reserve(std::min<uint64_t>(n_edges, r.remaining()));
  for (uint64_t i = 0; i < n_edges; ++i) {
    if (r.ReadBool()) {
      uint64_t src = r.ReadVarint64();
      uint64_t dst = r.ReadVarint64();
      bool directed = r.ReadBool();
      d.edges_[EdgeKey(src, dst)] =
          EdgeRecord{.src = src, .dst = dst, .directed = directed,
                     .attrs = DeserializeAttributesBulk(&r)};
    } else {
      uint64_t u = r.ReadVarint64();
      uint64_t v = r.ReadVarint64();
      d.edges_[EdgeKey(u, v)] = std::nullopt;
    }
    if (r.failed()) return r.BulkStatus();
  }
  return d;
}

bool Delta::operator==(const Delta& o) const {
  return nodes_ == o.nodes_ && edges_ == o.edges_;
}

}  // namespace hgs
