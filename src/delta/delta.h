// Delta (Definition 2): a keyed collection of static graph components, with
// the algebra of Section 4.1 — sum (+), difference (-), intersection (∩) and
// union (∪). Every temporal index in this repository (Log, Copy, Copy+Log,
// NodeCentric, DeltaGraph, TGI) is a particular arrangement of Deltas.
//
// Representation: two sorted flat maps keyed by NodeId / canonical EdgeKey
// (FlatEntryMap below): a vector of unique (key, optional<record>) entries in
// ascending key order, plus a small unsorted append tail that is merged on
// demand. Micro-deltas stay tiny and allocation-light (writes are O(1)
// appends), while snapshot-scale algebra runs as linear two-pointer merges
// over the sorted spans instead of per-entry hash inserts. A mapped value of
// nullopt is a *tombstone* — "this component is absent" — which is how
// deletion events propagate through sums. Snapshot deltas contain no
// tombstones.
//
// Algebra semantics (set semantics over (key, state) pairs, per the paper):
//  * Sum:          right operand wins on key collision (Def. 4; order
//                  sensitivity is exactly the paper's Δ1+Δ2 ≠ Δ2+Δ1).
//  * Difference:   pairs of Δ1 whose (key, state) is not identically in Δ2.
//  * Intersection: pairs identical in both (the DeltaGraph parent
//                  construction).
//  * Union:        all pairs, left-biased on key collision.

#ifndef HGS_DELTA_DELTA_H_
#define HGS_DELTA_DELTA_H_

#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "delta/event.h"
#include "graph/graph.h"

namespace hgs {

class EventList;

namespace internal {

/// Sorted flat map of (key, optional<record>) entries: `sorted_` holds unique
/// keys in ascending order; `tail_` holds recent writes in append order
/// (later entries win, duplicates allowed), merged into `sorted_` once it
/// outgrows an adaptive threshold. Writes are O(1); lookups are a binary
/// search plus a backwards tail scan; ordered reads on a compact map touch
/// `sorted_` directly.
///
/// Const methods never mutate (no lazy compaction), so compact maps — which
/// is what deserialization and every merge produce — are safe to share
/// read-only across threads (the decoded-cache contract).
template <typename Key, typename Rec>
class FlatEntryMap {
 public:
  using Entry = std::pair<Key, std::optional<Rec>>;

  /// Insert-or-overwrite as an O(1) tail append (amortized: appends
  /// occasionally trigger a tail merge).
  void Set(Key key, std::optional<Rec> rec);

  /// Bulk-load fast path for entries arriving in ascending key order (the
  /// shape of a serialized delta); falls back to Set() when out of order.
  void AppendOrdered(Key key, std::optional<Rec> rec);

  /// nullptr: no entry; pointer to nullopt: tombstone; else the state.
  const std::optional<Rec>* Find(const Key& key) const;

  /// Mutable lookup for in-place read-modify-write (the found entry is the
  /// current winner, so editing it in place is always sound).
  std::optional<Rec>* FindMutable(const Key& key);

  /// Number of unique keys. O(1) when compact; counts through the tail
  /// otherwise.
  size_t size() const;
  bool empty() const { return sorted_.empty() && tail_.empty(); }

  /// Upper bound on size(): raw entry count including tail duplicates.
  size_t TotalEntries() const { return sorted_.size() + tail_.size(); }

  /// Pending (unsorted) writes. Lookups scan these linearly.
  size_t TailEntries() const { return tail_.size(); }

  void ReserveSorted(size_t n) { sorted_.reserve(n); }
  void Clear();

  /// Folds the tail into the sorted span (stable, later writes win).
  void Compact();
  bool IsCompact() const { return tail_.empty(); }

  /// The sorted span. Callers that require every entry must hold
  /// IsCompact(); use ForEachOrdered() otherwise.
  const std::vector<Entry>& sorted_entries() const { return sorted_; }

  /// Mutable sorted span for in-place folds. Requires IsCompact(); callers
  /// must preserve key order and uniqueness.
  std::vector<Entry>& mutable_sorted_entries() { return sorted_; }

  /// `*this` when compact, else a compacted copy built in `*scratch`. Lets
  /// two-pointer merges assume sorted operands with one code path.
  const FlatEntryMap& CompactedOrSelf(FlatEntryMap* scratch) const;

  /// Key-ordered entry pointers, tail included (no record copies).
  std::vector<const Entry*> MergedPtrs() const;

  /// Visits entries in ascending key order, tail included.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    if (tail_.empty()) {
      for (const Entry& e : sorted_) fn(e);
      return;
    }
    for (const Entry* p : MergedPtrs()) fn(*p);
  }

  /// In-place sum: this ← this + other (other wins on collisions). A small
  /// right operand is appended through the tail, so long merge chains of
  /// micro-deltas cost amortized O(1) per entry; large operands take the
  /// linear two-pointer path.
  void MergeFrom(const FlatEntryMap& other);
  /// Consuming variant: entries are moved out of `other` (left empty).
  void MergeFrom(FlatEntryMap&& other);

  /// Replaces contents with `entries` (unique keys, any order).
  void AssignUnsortedUnique(std::vector<Entry>&& entries);

  /// Merges `entries` — strictly ascending keys, all absent from this map —
  /// with one backward in-place merge (no sort, no dedup). The batched
  /// event-replay path lands its new keys through here.
  void MergeDisjointSorted(std::vector<Entry>&& entries);

  /// Logical equality (representation-independent).
  bool EqualsLogical(const FlatEntryMap& o) const;

 private:
  void MaybeCompact() {
    if (tail_.size() >= kTailBase + sorted_.size() / 8) Compact();
  }

  /// Tail size that triggers a merge. Proportional to the sorted span so
  /// repeated appends amortize to O(1) per entry; the constant keeps
  /// micro-deltas from ever merging at all.
  static constexpr size_t kTailBase = 32;

  std::vector<Entry> sorted_;
  std::vector<Entry> tail_;
};

}  // namespace internal

class Delta {
 public:
  using NodeMap = internal::FlatEntryMap<NodeId, NodeRecord>;
  using EdgeMap = internal::FlatEntryMap<EdgeKey, EdgeRecord>;

  Delta() = default;

  // -- component mutation ------------------------------------------------
  void PutNode(NodeId id, NodeRecord rec) { nodes_.Set(id, std::move(rec)); }
  void TombstoneNode(NodeId id) { nodes_.Set(id, std::nullopt); }
  void PutEdge(const EdgeKey& key, EdgeRecord rec) {
    edges_.Set(key, std::move(rec));
  }
  void TombstoneEdge(const EdgeKey& key) { edges_.Set(key, std::nullopt); }

  /// Applies an event in timestamp order onto this (accumulating) delta.
  /// Attribute events on components not yet present create them, which makes
  /// partial (per-partition) accumulation well defined.
  void ApplyEvent(const Event& e);

  /// Consuming variant: add and set-attribute events donate their payload
  /// strings instead of copying them (the hot case when replaying a decoded
  /// eventlist that is exclusively owned by the caller).
  void ApplyEvent(Event&& e);

  /// Batched replay: applies the events of `el` with after < time <= upto
  /// (`after == kMinTimestamp` means unbounded below) with per-key grouping —
  /// each touched key is located once and its events folded in order, and
  /// remove-node events tombstone incident edges in one bounded pass instead
  /// of one scan per event. Requires `el` chronologically sorted (the
  /// EventList invariant); result is identical to the sequential
  /// ApplyEvent loop over the same window.
  void ApplyEvents(const EventList& el, Timestamp after, Timestamp upto);

  /// Consuming variant: applied events donate their payloads.
  void ApplyEvents(EventList&& el, Timestamp after, Timestamp upto);

  // -- lookup --------------------------------------------------------------
  /// nullptr: no entry; pointer to nullopt: tombstone; else the state.
  const std::optional<NodeRecord>* FindNode(NodeId id) const;
  const std::optional<EdgeRecord>* FindEdge(const EdgeKey& key) const;

  size_t NodeEntryCount() const { return nodes_.size(); }
  size_t EdgeEntryCount() const { return edges_.size(); }

  /// Cardinality (Definition 3): number of unique component descriptions.
  size_t Cardinality() const { return nodes_.size() + edges_.size(); }
  bool Empty() const { return nodes_.empty() && edges_.empty(); }

  /// Exact wire size of Serialize() (payload + checksum); used for the cost
  /// accounting of Table 1 and for decoded-cache byte charging.
  size_t SerializedSizeBytes() const;

  /// Merges the append tails into the sorted spans. Deserialization and the
  /// algebra produce compact deltas already; builders that write thousands
  /// of entries through PutNode/PutEdge can compact once before handing the
  /// delta to read-side code.
  void Compact();
  bool IsCompact() const { return nodes_.IsCompact() && edges_.IsCompact(); }

  // -- algebra -------------------------------------------------------------
  /// In-place sum: this ← this + other (other wins on collisions).
  void Add(const Delta& other);

  /// Consuming sum: entries are moved out of `other` (left empty). Adding
  /// into an empty delta degenerates to a vector swap, so the ordered merge
  /// of snapshot reconstruction pays no per-entry cost for its first
  /// (largest) operand.
  void Add(Delta&& other);

  static Delta Sum(const Delta& a, const Delta& b);
  static Delta Difference(const Delta& a, const Delta& b);
  static Delta Intersect(const Delta& a, const Delta& b);
  static Delta Union(const Delta& a, const Delta& b);

  // -- conversion ----------------------------------------------------------
  /// Materializes the non-tombstone components as a Graph. Edges with a
  /// missing endpoint are dropped (arises for partition-scoped deltas whose
  /// edge has its other endpoint elsewhere).
  Graph ToGraph() const;

  /// Materializes including dangling edges (both endpoint nodes are created
  /// implicitly). Used when assembling per-partition fetches where the
  /// endpoint's record arrives from a sibling partition.
  Graph ToGraphKeepDangling() const;

  /// Snapshot delta of a graph: ∆ = G - ∅ (Example 4).
  static Delta FromGraph(const Graph& g);

  /// Restriction to a node set: node components in `ids` plus edge
  /// components with at least one endpoint in `ids` (Example 5 semantics).
  Delta FilterByNodes(const std::unordered_set<NodeId>& ids) const;

  /// Restriction to a single node and its incident edges.
  Delta FilterById(NodeId id) const;

  // -- iteration -----------------------------------------------------------
  // Entries are visited in ascending key order.
  void ForEachNodeEntry(
      const std::function<void(NodeId, const std::optional<NodeRecord>&)>& fn)
      const;
  void ForEachEdgeEntry(
      const std::function<void(const EdgeKey&,
                               const std::optional<EdgeRecord>&)>& fn) const;

  // -- serialization -------------------------------------------------------
  // Entries serialize in ascending key order, so deserialization decodes
  // straight into the sorted span with no per-entry insertion cost.
  void SerializeTo(BinaryWriter* w) const;
  static Result<Delta> DeserializeFrom(BinaryReader* r);
  std::string Serialize() const;
  static Result<Delta> Deserialize(std::string_view data);

  bool operator==(const Delta& o) const;

  // -- instrumentation -----------------------------------------------------
  /// Edge entries examined by remove-node incident-edge tombstoning on this
  /// thread. Regression guard: batched replay of R removals over E edge
  /// entries performs one bounded pass (≤ E steps), not R full scans.
  static uint64_t IncidentEdgeScanSteps();
  static void ResetIncidentEdgeScanSteps();

 private:
  /// Decodes the kColumnar alternative serialization (the schema codec in
  /// delta.cc); Deserialize routes here on the columnar magic.
  static Result<Delta> DeserializeColumnar(std::string_view payload);

  template <typename EventIt>
  void ApplyEventsRange(EventIt begin, EventIt end);

  /// Tombstones present edges incident to a removed node, scanning only the
  /// sorted prefix whose canonical minimum endpoint is <= the largest id in
  /// `removed` (sorted, unique). Entries whose key is in `skip` (sorted) are
  /// left alone — they were folded with removal events interleaved already.
  void TombstoneIncidentEdges(const std::vector<NodeId>& removed,
                              const std::vector<EdgeKey>& skip);

  NodeMap nodes_;
  EdgeMap edges_;
};

}  // namespace hgs

#endif  // HGS_DELTA_DELTA_H_
