// Delta (Definition 2): a keyed collection of static graph components, with
// the algebra of Section 4.1 — sum (+), difference (-), intersection (∩) and
// union (∪). Every temporal index in this repository (Log, Copy, Copy+Log,
// NodeCentric, DeltaGraph, TGI) is a particular arrangement of Deltas.
//
// Representation: two maps keyed by NodeId / canonical EdgeKey. A mapped
// value of nullopt is a *tombstone* — "this component is absent" — which is
// how deletion events propagate through sums. Snapshot deltas contain no
// tombstones.
//
// Algebra semantics (set semantics over (key, state) pairs, per the paper):
//  * Sum:          right operand wins on key collision (Def. 4; order
//                  sensitivity is exactly the paper's Δ1+Δ2 ≠ Δ2+Δ1).
//  * Difference:   pairs of Δ1 whose (key, state) is not identically in Δ2.
//  * Intersection: pairs identical in both (the DeltaGraph parent
//                  construction).
//  * Union:        all pairs, left-biased on key collision.

#ifndef HGS_DELTA_DELTA_H_
#define HGS_DELTA_DELTA_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "delta/event.h"
#include "graph/graph.h"

namespace hgs {

class Delta {
 public:
  Delta() = default;

  // -- component mutation ------------------------------------------------
  void PutNode(NodeId id, NodeRecord rec) { nodes_[id] = std::move(rec); }
  void TombstoneNode(NodeId id) { nodes_[id] = std::nullopt; }
  void PutEdge(const EdgeKey& key, EdgeRecord rec) {
    edges_[key] = std::move(rec);
  }
  void TombstoneEdge(const EdgeKey& key) { edges_[key] = std::nullopt; }

  /// Applies an event in timestamp order onto this (accumulating) delta.
  /// Attribute events on components not yet present create them, which makes
  /// partial (per-partition) accumulation well defined.
  void ApplyEvent(const Event& e);

  /// Consuming variant: add events donate their attribute payload instead
  /// of copying it (the hot case when replaying a decoded eventlist that is
  /// exclusively owned by the caller).
  void ApplyEvent(Event&& e);

  // -- lookup --------------------------------------------------------------
  /// nullptr: no entry; pointer to nullopt: tombstone; else the state.
  const std::optional<NodeRecord>* FindNode(NodeId id) const;
  const std::optional<EdgeRecord>* FindEdge(const EdgeKey& key) const;

  size_t NodeEntryCount() const { return nodes_.size(); }
  size_t EdgeEntryCount() const { return edges_.size(); }

  /// Cardinality (Definition 3): number of unique component descriptions.
  size_t Cardinality() const { return nodes_.size() + edges_.size(); }
  bool Empty() const { return nodes_.empty() && edges_.empty(); }

  /// Approximate wire size; used for the cost accounting of Table 1.
  size_t SerializedSizeBytes() const;

  // -- algebra -------------------------------------------------------------
  /// In-place sum: this ← this + other (other wins on collisions).
  void Add(const Delta& other);

  /// Consuming sum: entries are moved out of `other` (left empty). Adding
  /// into an empty delta degenerates to a map swap, so the ordered merge of
  /// snapshot reconstruction pays no per-entry cost for its first (largest)
  /// operand.
  void Add(Delta&& other);

  static Delta Sum(const Delta& a, const Delta& b);
  static Delta Difference(const Delta& a, const Delta& b);
  static Delta Intersect(const Delta& a, const Delta& b);
  static Delta Union(const Delta& a, const Delta& b);

  // -- conversion ----------------------------------------------------------
  /// Materializes the non-tombstone components as a Graph. Edges with a
  /// missing endpoint are dropped (arises for partition-scoped deltas whose
  /// edge has its other endpoint elsewhere).
  Graph ToGraph() const;

  /// Materializes including dangling edges (both endpoint nodes are created
  /// implicitly). Used when assembling per-partition fetches where the
  /// endpoint's record arrives from a sibling partition.
  Graph ToGraphKeepDangling() const;

  /// Snapshot delta of a graph: ∆ = G - ∅ (Example 4).
  static Delta FromGraph(const Graph& g);

  /// Restriction to a node set: node components in `ids` plus edge
  /// components with at least one endpoint in `ids` (Example 5 semantics).
  Delta FilterByNodes(const std::unordered_set<NodeId>& ids) const;

  /// Restriction to a single node and its incident edges.
  Delta FilterById(NodeId id) const;

  // -- iteration -----------------------------------------------------------
  void ForEachNodeEntry(
      const std::function<void(NodeId, const std::optional<NodeRecord>&)>& fn)
      const;
  void ForEachEdgeEntry(
      const std::function<void(const EdgeKey&,
                               const std::optional<EdgeRecord>&)>& fn) const;

  // -- serialization -------------------------------------------------------
  void SerializeTo(BinaryWriter* w) const;
  static Result<Delta> DeserializeFrom(BinaryReader* r);
  std::string Serialize() const;
  static Result<Delta> Deserialize(std::string_view data);

  bool operator==(const Delta& o) const;

 private:
  std::unordered_map<NodeId, std::optional<NodeRecord>> nodes_;
  std::unordered_map<EdgeKey, std::optional<EdgeRecord>, EdgeKeyHash> edges_;
};

}  // namespace hgs

#endif  // HGS_DELTA_DELTA_H_
