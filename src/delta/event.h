// Events: the atomic changes of a temporal graph (Example 1 in the paper).
// An event adds/removes a node or an edge, or changes an attribute value.
// Attribute events carry the previous value so incremental computation
// (TAF's NodeComputeDelta, Fig 8b) can be expressed without re-fetching.

#ifndef HGS_DELTA_EVENT_H_
#define HGS_DELTA_EVENT_H_

#include <string>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "graph/attributes.h"
#include "graph/graph.h"

namespace hgs {

enum class EventType : uint8_t {
  kAddNode = 0,
  kRemoveNode = 1,
  kAddEdge = 2,
  kRemoveEdge = 3,
  kSetNodeAttr = 4,
  kDelNodeAttr = 5,
  kSetEdgeAttr = 6,
  kDelEdgeAttr = 7,
};

const char* EventTypeToString(EventType type);

struct Event {
  Timestamp time = 0;
  EventType type = EventType::kAddNode;
  NodeId u = kInvalidNodeId;  ///< node id, or edge source
  NodeId v = kInvalidNodeId;  ///< edge destination (edge events only)
  bool directed = false;      ///< edge orientation flag (edge events only)
  std::string key;            ///< attribute key (attr events only)
  std::string value;          ///< new attribute value (set events only)
  std::string prev_value;     ///< previous value (attr change/delete events)
  Attributes attrs;           ///< initial attributes (add events only)

  bool IsNodeEvent() const {
    return type == EventType::kAddNode || type == EventType::kRemoveNode ||
           type == EventType::kSetNodeAttr || type == EventType::kDelNodeAttr;
  }
  bool IsEdgeEvent() const { return !IsNodeEvent(); }

  /// True when the event changes the state of node `id` or an edge incident
  /// to it. Edge events touch both endpoints (the paper replicates edge
  /// information with both endpoints for entity-centric access).
  bool Touches(NodeId id) const {
    return u == id || (IsEdgeEvent() && v == id);
  }

  // -- factories ---------------------------------------------------------
  static Event AddNode(Timestamp t, NodeId id, Attributes attrs = {});
  static Event RemoveNode(Timestamp t, NodeId id);
  static Event AddEdge(Timestamp t, NodeId u, NodeId v, bool directed = false,
                       Attributes attrs = {});
  static Event RemoveEdge(Timestamp t, NodeId u, NodeId v);
  static Event SetNodeAttr(Timestamp t, NodeId id, std::string key,
                           std::string value, std::string prev = "");
  static Event DelNodeAttr(Timestamp t, NodeId id, std::string key,
                           std::string prev = "");
  static Event SetEdgeAttr(Timestamp t, NodeId u, NodeId v, std::string key,
                           std::string value, std::string prev = "");
  static Event DelEdgeAttr(Timestamp t, NodeId u, NodeId v, std::string key,
                           std::string prev = "");

  void SerializeTo(BinaryWriter* w) const;
  static Result<Event> DeserializeFrom(BinaryReader* r);

  /// Exact number of bytes SerializeTo writes for this event.
  size_t SerializedWireSize() const;

  /// Bulk fast-path decode (see BinaryReader's Read* interface): decodes
  /// into `e` with no per-field Result<> construction; on corruption the
  /// reader's failed() flag latches and `e` is meaningless. Produces
  /// results identical to DeserializeFrom on well-formed input.
  static void DeserializeFromBulk(BinaryReader* r, Event* e);

  bool operator==(const Event& o) const = default;
};

/// Applies one event to a materialized snapshot. RemoveNode also removes
/// incident edges (generators emit explicit RemoveEdge events first, but the
/// apply path is defensive).
void ApplyEventToGraph(const Event& e, Graph* g);

/// Total order over events, refining time order. Sorting by time alone
/// leaves same-timestamp events in arbitrary relative order, so duplicates
/// (an internal edge event arrives once per endpoint's micro-partition row)
/// may end up non-adjacent and survive std::unique. Ordering on every field
/// that participates in Event equality — including the initial attributes
/// of add events (sorted flat vectors, so lexicographically comparable) —
/// guarantees equal events are adjacent after the sort.
bool EventTotalOrder(const Event& a, const Event& b);

void SerializeAttributes(const Attributes& attrs, BinaryWriter* w);
/// Exact number of bytes SerializeAttributes writes.
size_t AttributesWireSize(const Attributes& attrs);
Result<Attributes> DeserializeAttributes(BinaryReader* r);
/// Bulk fast-path attribute decode; mirrors DeserializeAttributes.
Attributes DeserializeAttributesBulk(BinaryReader* r);

}  // namespace hgs

#endif  // HGS_DELTA_EVENT_H_
