#include "delta/eventlist.h"

#include <algorithm>

namespace hgs {

void EventList::Sort() {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const Event& a, const Event& b) { return a.time < b.time; });
}

EventList EventList::FilterByTime(Timestamp after, Timestamp upto) const {
  EventList out(after, upto);
  for (const Event& e : events_) {
    if (e.time > after && e.time <= upto) out.Append(e);
  }
  return out;
}

EventList EventList::FilterByNode(NodeId id) const& {
  EventList out(after_, upto_);
  out.events_.reserve(events_.size());
  for (const Event& e : events_) {
    if (e.Touches(id)) out.events_.push_back(e);
  }
  return out;
}

EventList EventList::FilterByNode(NodeId id) && {
  EventList out(after_, upto_);
  out.events_.reserve(events_.size());
  for (Event& e : events_) {
    if (e.Touches(id)) out.events_.push_back(std::move(e));
  }
  events_.clear();
  return out;
}

void EventList::ApplyTo(Graph* g) const {
  for (const Event& e : events_) ApplyEventToGraph(e, g);
}

void EventList::ApplyTo(Delta* d) const {
  d->ApplyEvents(*this, kMinTimestamp, kMaxTimestamp);
}

void EventList::ApplyUpTo(Timestamp t, Graph* g) const {
  for (const Event& e : events_) {
    if (e.time > t) break;  // events_ kept chronological
    ApplyEventToGraph(e, g);
  }
}

void EventList::ApplyUpTo(Timestamp t, Delta* d) const& {
  d->ApplyEvents(*this, kMinTimestamp, t);
}

void EventList::ApplyUpTo(Timestamp t, Delta* d) && {
  d->ApplyEvents(std::move(*this), kMinTimestamp, t);
  events_.clear();
}

size_t EventList::SerializedSizeBytes() const {
  size_t total = Signed64WireSize(after_) + Signed64WireSize(upto_) +
                 VarintWireSize(events_.size());
  for (const Event& e : events_) total += e.SerializedWireSize();
  return total + kChecksumWireSize;
}

void EventList::SerializeTo(BinaryWriter* w) const {
  w->PutSigned64(after_);
  w->PutSigned64(upto_);
  w->PutVarint64(events_.size());
  for (const Event& e : events_) e.SerializeTo(w);
}

Result<EventList> EventList::DeserializeFrom(BinaryReader* r) {
  EventList out;
  HGS_ASSIGN_OR_RETURN(out.after_, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(out.upto_, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint64());
  out.events_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HGS_ASSIGN_OR_RETURN(Event e, Event::DeserializeFrom(r));
    out.events_.push_back(std::move(e));
  }
  return out;
}

std::string EventList::Serialize() const {
  BinaryWriter w;
  SerializeTo(&w);
  return w.FinishWithChecksum();
}

// Bulk fast-path whole-value decode; see Delta::Deserialize for rationale.
// DeserializeFrom stays as the scalar reference decoder.
Result<EventList> EventList::Deserialize(std::string_view data) {
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  EventList out;
  out.after_ = r.ReadSigned64();
  out.upto_ = r.ReadSigned64();
  uint64_t n = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  out.events_.reserve(std::min<uint64_t>(n, r.remaining()));
  for (uint64_t i = 0; i < n; ++i) {
    Event& e = out.events_.emplace_back();
    Event::DeserializeFromBulk(&r, &e);
    if (r.failed()) return r.BulkStatus();
  }
  return out;
}

}  // namespace hgs
