#include "delta/eventlist.h"

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>

#include "common/columnar.h"
#include "common/compression.h"

namespace hgs {

namespace {

// -- kEventList columnar schema ---------------------------------------------
// Column layout (see common/columnar.h for the container):
//   0 head    : signed(after), signed(upto), varint(event count)
//   1 types   : nibble-packed EventType codes
//   2 times   : zigzag varint deltas, one per event
//   3 u       : zigzag varint deltas, one per event
//   4 v       : zigzag varint deltas, one per *edge* event
//   5 directed: bit column, one per kAddEdge event
//   6 attrids : per attr event: key dict id, [value dict id], prev dict id
//   7 addattrs: per add event: varint count, then (key id, value id) pairs
//   8 keydict : sorted dictionary of attribute keys
//   9 valdict : sorted dictionary of attribute values / prev values
constexpr size_t kEvlColHead = 0;
constexpr size_t kEvlColTypes = 1;
constexpr size_t kEvlColTimes = 2;
constexpr size_t kEvlColU = 3;
constexpr size_t kEvlColV = 4;
constexpr size_t kEvlColDirected = 5;
constexpr size_t kEvlColAttrIds = 6;
constexpr size_t kEvlColAddAttrs = 7;
constexpr size_t kEvlColKeyDict = 8;
constexpr size_t kEvlColValDict = 9;

bool IsSetType(EventType t) {
  return t == EventType::kSetNodeAttr || t == EventType::kSetEdgeAttr;
}
bool IsAttrType(EventType t) {
  return t == EventType::kSetNodeAttr || t == EventType::kDelNodeAttr ||
         t == EventType::kSetEdgeAttr || t == EventType::kDelEdgeAttr;
}
bool IsAddType(EventType t) {
  return t == EventType::kAddNode || t == EventType::kAddEdge;
}

std::string EncodeColumnarEventListPayload(const EventList& el) {
  StringDictBuilder keys;
  StringDictBuilder vals;
  for (const Event& e : el.events()) {
    if (IsAttrType(e.type)) {
      keys.Add(e.key);
      if (IsSetType(e.type)) vals.Add(e.value);
      vals.Add(e.prev_value);
    }
    if (IsAddType(e.type)) {
      for (const auto& [k, v] : e.attrs.entries()) {
        keys.Add(k);
        vals.Add(v);
      }
    }
  }
  keys.Build();
  vals.Build();

  BinaryWriter head;
  head.PutSigned64(el.after());
  head.PutSigned64(el.upto());
  head.PutVarint64(el.size());

  NibbleColumnWriter types;
  BinaryWriter times;
  BinaryWriter us;
  BinaryWriter vs;
  BitColumnWriter directed;
  BinaryWriter attr_ids;
  BinaryWriter add_attrs;
  DeltaInt64Encoder time_enc;
  DeltaInt64Encoder u_enc;
  DeltaInt64Encoder v_enc;
  for (const Event& e : el.events()) {
    types.Append(static_cast<uint8_t>(e.type));
    time_enc.Put(&times, e.time);
    u_enc.Put(&us, static_cast<int64_t>(e.u));
    if (e.IsEdgeEvent()) v_enc.Put(&vs, static_cast<int64_t>(e.v));
    if (e.type == EventType::kAddEdge) directed.Append(e.directed);
    if (IsAttrType(e.type)) {
      attr_ids.PutVarint64(keys.IdOf(e.key));
      if (IsSetType(e.type)) attr_ids.PutVarint64(vals.IdOf(e.value));
      attr_ids.PutVarint64(vals.IdOf(e.prev_value));
    }
    if (IsAddType(e.type)) {
      add_attrs.PutVarint64(e.attrs.size());
      for (const auto& [k, v] : e.attrs.entries()) {
        add_attrs.PutVarint64(keys.IdOf(k));
        add_attrs.PutVarint64(vals.IdOf(v));
      }
    }
  }

  ColumnarBlockWriter block(ValueSchema::kEventList);
  block.AddColumn(head.Finish());
  block.AddColumn(types.Finish());
  block.AddColumn(times.Finish());
  block.AddColumn(us.Finish());
  block.AddColumn(vs.Finish());
  block.AddColumn(directed.Finish());
  block.AddColumn(attr_ids.Finish());
  block.AddColumn(add_attrs.Finish());
  block.AddColumn(keys.Serialize());
  block.AddColumn(vals.Serialize());
  return block.Finish();
}

Result<EventList> DecodeColumnarEventList(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(
      ColumnarBlockReader block,
      ColumnarBlockReader::Parse(payload, ValueSchema::kEventList));
  HGS_ASSIGN_OR_RETURN(std::string_view head_col,
                       block.Column(kEvlColHead));
  HGS_ASSIGN_OR_RETURN(std::string_view types_col,
                       block.Column(kEvlColTypes));
  HGS_ASSIGN_OR_RETURN(std::string_view times_col,
                       block.Column(kEvlColTimes));
  HGS_ASSIGN_OR_RETURN(std::string_view u_col, block.Column(kEvlColU));
  HGS_ASSIGN_OR_RETURN(std::string_view v_col, block.Column(kEvlColV));
  HGS_ASSIGN_OR_RETURN(std::string_view dir_col,
                       block.Column(kEvlColDirected));
  HGS_ASSIGN_OR_RETURN(std::string_view ids_col,
                       block.Column(kEvlColAttrIds));
  HGS_ASSIGN_OR_RETURN(std::string_view add_col,
                       block.Column(kEvlColAddAttrs));
  HGS_ASSIGN_OR_RETURN(std::string_view keydict_col,
                       block.Column(kEvlColKeyDict));
  HGS_ASSIGN_OR_RETURN(std::string_view valdict_col,
                       block.Column(kEvlColValDict));
  HGS_ASSIGN_OR_RETURN(StringDictView keys, StringDictView::Parse(keydict_col));
  HGS_ASSIGN_OR_RETURN(StringDictView vals, StringDictView::Parse(valdict_col));

  BinaryReader head(head_col);
  Timestamp after = head.ReadSigned64();
  Timestamp upto = head.ReadSigned64();
  uint64_t n = head.ReadVarint64();
  if (head.failed()) return head.BulkStatus();

  // One cursor per column; every cursor shares `r`'s sticky failure flag so
  // a single check per event suffices (bad dict ids, over-consumed bit or
  // nibble columns and truncated varint streams all latch it).
  NibbleColumnReader types = NibbleColumnReader::Bind(types_col);
  BinaryReader times(times_col);
  BinaryReader us(u_col);
  BinaryReader vs(v_col);
  BitColumnReader directed = BitColumnReader::Bind(dir_col);
  BinaryReader ids(ids_col);
  BinaryReader adds(add_col);
  DeltaInt64Decoder time_dec;
  DeltaInt64Decoder u_dec;
  DeltaInt64Decoder v_dec;

  EventList out(after, upto);
  for (uint64_t i = 0; i < n; ++i) {
    Event e;
    uint8_t type_code = types.Next(&times);
    if (type_code > static_cast<uint8_t>(EventType::kDelEdgeAttr)) {
      times.MarkFailed();
    }
    if (times.failed()) return times.BulkStatus();
    e.type = static_cast<EventType>(type_code);
    e.time = time_dec.Next(&times);
    e.u = static_cast<NodeId>(u_dec.Next(&us));
    if (e.IsEdgeEvent()) e.v = static_cast<NodeId>(v_dec.Next(&vs));
    if (e.type == EventType::kAddEdge) e.directed = directed.Next(&vs);
    if (IsAttrType(e.type)) {
      e.key = std::string(keys.Get(ids.ReadVarint64(), &ids));
      if (IsSetType(e.type)) {
        e.value = std::string(vals.Get(ids.ReadVarint64(), &ids));
      }
      e.prev_value = std::string(vals.Get(ids.ReadVarint64(), &ids));
    }
    if (IsAddType(e.type)) {
      uint64_t n_attrs = adds.ReadVarint64();
      for (uint64_t a = 0; a < n_attrs && !adds.failed(); ++a) {
        std::string_view k = keys.Get(adds.ReadVarint64(), &adds);
        std::string_view v = vals.Get(adds.ReadVarint64(), &adds);
        // Dict ids arrive in the event's original sorted-key order.
        e.attrs.AppendSorted(std::string(k), std::string(v));
      }
    }
    if (times.failed() || us.failed() || vs.failed() || ids.failed() ||
        adds.failed()) {
      return Status::Corruption("columnar eventlist: truncated column");
    }
    out.Append(std::move(e));
  }
  return out;
}

std::optional<std::string> ColumnarEncodeEventList(std::string_view payload) {
  Result<EventList> parsed = EventList::Deserialize(payload);
  if (!parsed.ok()) return std::nullopt;
  // Only canonical serializations are eligible: a payload that does not
  // re-serialize byte-identically (non-minimal varints, unsorted attribute
  // stream) would not survive the columnar round trip, so it falls back to
  // the byte codec instead of being silently rewritten.
  if (parsed->Serialize() != payload) return std::nullopt;
  return EncodeColumnarEventListPayload(*parsed);
}

Result<std::string> ColumnarReencodeEventList(std::string_view payload) {
  HGS_ASSIGN_OR_RETURN(EventList el, DecodeColumnarEventList(payload));
  return el.Serialize();
}

[[maybe_unused]] const bool kEventListCodecRegistered = [] {
  RegisterColumnarCodec(ValueSchema::kEventList, &ColumnarEncodeEventList,
                        &ColumnarReencodeEventList);
  return true;
}();

}  // namespace

void EventList::Sort() {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const Event& a, const Event& b) { return a.time < b.time; });
}

EventList EventList::FilterByTime(Timestamp after, Timestamp upto) const {
  EventList out(after, upto);
  for (const Event& e : events_) {
    if (e.time > after && e.time <= upto) out.Append(e);
  }
  return out;
}

EventList EventList::FilterByNode(NodeId id) const& {
  EventList out(after_, upto_);
  out.events_.reserve(events_.size());
  for (const Event& e : events_) {
    if (e.Touches(id)) out.events_.push_back(e);
  }
  return out;
}

EventList EventList::FilterByNode(NodeId id) && {
  EventList out(after_, upto_);
  out.events_.reserve(events_.size());
  for (Event& e : events_) {
    if (e.Touches(id)) out.events_.push_back(std::move(e));
  }
  events_.clear();
  return out;
}

void EventList::ApplyTo(Graph* g) const {
  for (const Event& e : events_) ApplyEventToGraph(e, g);
}

void EventList::ApplyTo(Delta* d) const {
  d->ApplyEvents(*this, kMinTimestamp, kMaxTimestamp);
}

void EventList::ApplyUpTo(Timestamp t, Graph* g) const {
  for (const Event& e : events_) {
    if (e.time > t) break;  // events_ kept chronological
    ApplyEventToGraph(e, g);
  }
}

void EventList::ApplyUpTo(Timestamp t, Delta* d) const& {
  d->ApplyEvents(*this, kMinTimestamp, t);
}

void EventList::ApplyUpTo(Timestamp t, Delta* d) && {
  d->ApplyEvents(std::move(*this), kMinTimestamp, t);
  events_.clear();
}

size_t EventList::SerializedSizeBytes() const {
  size_t total = Signed64WireSize(after_) + Signed64WireSize(upto_) +
                 VarintWireSize(events_.size());
  for (const Event& e : events_) total += e.SerializedWireSize();
  return total + kChecksumWireSize;
}

void EventList::SerializeTo(BinaryWriter* w) const {
  w->PutSigned64(after_);
  w->PutSigned64(upto_);
  w->PutVarint64(events_.size());
  for (const Event& e : events_) e.SerializeTo(w);
}

Result<EventList> EventList::DeserializeFrom(BinaryReader* r) {
  EventList out;
  HGS_ASSIGN_OR_RETURN(out.after_, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(out.upto_, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint64());
  out.events_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HGS_ASSIGN_OR_RETURN(Event e, Event::DeserializeFrom(r));
    out.events_.push_back(std::move(e));
  }
  return out;
}

std::string EventList::Serialize() const {
  BinaryWriter w;
  SerializeTo(&w);
  return w.FinishWithChecksum();
}

// Bulk fast-path whole-value decode; see Delta::Deserialize for rationale.
// DeserializeFrom stays as the scalar reference decoder.
Result<EventList> EventList::Deserialize(std::string_view data) {
  // A columnar payload (alternative serialization; see common/columnar.h)
  // routes on its magic — legacy payloads can never start with those bytes.
  if (IsColumnarPayload(data)) return DecodeColumnarEventList(data);
  BinaryReader r(data);
  HGS_RETURN_NOT_OK(r.VerifyChecksum());
  EventList out;
  out.after_ = r.ReadSigned64();
  out.upto_ = r.ReadSigned64();
  uint64_t n = r.ReadVarint64();
  if (r.failed()) return r.BulkStatus();
  out.events_.reserve(std::min<uint64_t>(n, r.remaining()));
  for (uint64_t i = 0; i < n; ++i) {
    Event& e = out.events_.emplace_back();
    Event::DeserializeFromBulk(&r, &e);
    if (r.failed()) return r.BulkStatus();
  }
  return out;
}

}  // namespace hgs
