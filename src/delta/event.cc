#include "delta/event.h"

#include <string_view>
#include <tuple>

namespace hgs {

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kAddNode:
      return "AddNode";
    case EventType::kRemoveNode:
      return "RemoveNode";
    case EventType::kAddEdge:
      return "AddEdge";
    case EventType::kRemoveEdge:
      return "RemoveEdge";
    case EventType::kSetNodeAttr:
      return "SetNodeAttr";
    case EventType::kDelNodeAttr:
      return "DelNodeAttr";
    case EventType::kSetEdgeAttr:
      return "SetEdgeAttr";
    case EventType::kDelEdgeAttr:
      return "DelEdgeAttr";
  }
  return "Unknown";
}

Event Event::AddNode(Timestamp t, NodeId id, Attributes attrs) {
  Event e;
  e.time = t;
  e.type = EventType::kAddNode;
  e.u = id;
  e.attrs = std::move(attrs);
  return e;
}

Event Event::RemoveNode(Timestamp t, NodeId id) {
  Event e;
  e.time = t;
  e.type = EventType::kRemoveNode;
  e.u = id;
  return e;
}

Event Event::AddEdge(Timestamp t, NodeId u, NodeId v, bool directed,
                     Attributes attrs) {
  Event e;
  e.time = t;
  e.type = EventType::kAddEdge;
  e.u = u;
  e.v = v;
  e.directed = directed;
  e.attrs = std::move(attrs);
  return e;
}

Event Event::RemoveEdge(Timestamp t, NodeId u, NodeId v) {
  Event e;
  e.time = t;
  e.type = EventType::kRemoveEdge;
  e.u = u;
  e.v = v;
  return e;
}

Event Event::SetNodeAttr(Timestamp t, NodeId id, std::string key,
                         std::string value, std::string prev) {
  Event e;
  e.time = t;
  e.type = EventType::kSetNodeAttr;
  e.u = id;
  e.key = std::move(key);
  e.value = std::move(value);
  e.prev_value = std::move(prev);
  return e;
}

Event Event::DelNodeAttr(Timestamp t, NodeId id, std::string key,
                         std::string prev) {
  Event e;
  e.time = t;
  e.type = EventType::kDelNodeAttr;
  e.u = id;
  e.key = std::move(key);
  e.prev_value = std::move(prev);
  return e;
}

Event Event::SetEdgeAttr(Timestamp t, NodeId u, NodeId v, std::string key,
                         std::string value, std::string prev) {
  Event e;
  e.time = t;
  e.type = EventType::kSetEdgeAttr;
  e.u = u;
  e.v = v;
  e.key = std::move(key);
  e.value = std::move(value);
  e.prev_value = std::move(prev);
  return e;
}

Event Event::DelEdgeAttr(Timestamp t, NodeId u, NodeId v, std::string key,
                         std::string prev) {
  Event e;
  e.time = t;
  e.type = EventType::kDelEdgeAttr;
  e.u = u;
  e.v = v;
  e.key = std::move(key);
  e.prev_value = std::move(prev);
  return e;
}

void SerializeAttributes(const Attributes& attrs, BinaryWriter* w) {
  w->PutVarint64(attrs.size());
  for (const auto& [k, v] : attrs.entries()) {
    w->PutString(k);
    w->PutString(v);
  }
}

size_t AttributesWireSize(const Attributes& attrs) {
  size_t total = VarintWireSize(attrs.size());
  for (const auto& [k, v] : attrs.entries()) {
    total += StringWireSize(k) + StringWireSize(v);
  }
  return total;
}

Result<Attributes> DeserializeAttributes(BinaryReader* r) {
  HGS_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint64());
  Attributes attrs;
  for (uint64_t i = 0; i < n; ++i) {
    HGS_ASSIGN_OR_RETURN(std::string k, r->GetString());
    HGS_ASSIGN_OR_RETURN(std::string v, r->GetString());
    attrs.Set(k, v);
  }
  return attrs;
}

void Event::SerializeTo(BinaryWriter* w) const {
  w->PutSigned64(time);
  w->PutFixed8(static_cast<uint8_t>(type));
  w->PutVarint64(u);
  switch (type) {
    case EventType::kAddNode:
      SerializeAttributes(attrs, w);
      break;
    case EventType::kRemoveNode:
      break;
    case EventType::kAddEdge:
      w->PutVarint64(v);
      w->PutBool(directed);
      SerializeAttributes(attrs, w);
      break;
    case EventType::kRemoveEdge:
      w->PutVarint64(v);
      break;
    case EventType::kSetNodeAttr:
      w->PutString(key);
      w->PutString(value);
      w->PutString(prev_value);
      break;
    case EventType::kDelNodeAttr:
      w->PutString(key);
      w->PutString(prev_value);
      break;
    case EventType::kSetEdgeAttr:
      w->PutVarint64(v);
      w->PutString(key);
      w->PutString(value);
      w->PutString(prev_value);
      break;
    case EventType::kDelEdgeAttr:
      w->PutVarint64(v);
      w->PutString(key);
      w->PutString(prev_value);
      break;
  }
}

size_t Event::SerializedWireSize() const {
  size_t total = Signed64WireSize(time) + 1 + VarintWireSize(u);
  switch (type) {
    case EventType::kAddNode:
      total += AttributesWireSize(attrs);
      break;
    case EventType::kRemoveNode:
      break;
    case EventType::kAddEdge:
      total += VarintWireSize(v) + 1 + AttributesWireSize(attrs);
      break;
    case EventType::kRemoveEdge:
      total += VarintWireSize(v);
      break;
    case EventType::kSetNodeAttr:
      total += StringWireSize(key) + StringWireSize(value) +
               StringWireSize(prev_value);
      break;
    case EventType::kDelNodeAttr:
      total += StringWireSize(key) + StringWireSize(prev_value);
      break;
    case EventType::kSetEdgeAttr:
      total += VarintWireSize(v) + StringWireSize(key) +
               StringWireSize(value) + StringWireSize(prev_value);
      break;
    case EventType::kDelEdgeAttr:
      total += VarintWireSize(v) + StringWireSize(key) +
               StringWireSize(prev_value);
      break;
  }
  return total;
}

Result<Event> Event::DeserializeFrom(BinaryReader* r) {
  Event e;
  HGS_ASSIGN_OR_RETURN(e.time, r->GetSigned64());
  HGS_ASSIGN_OR_RETURN(uint8_t type_byte, r->GetFixed8());
  if (type_byte > static_cast<uint8_t>(EventType::kDelEdgeAttr)) {
    return Status::Corruption("bad event type");
  }
  e.type = static_cast<EventType>(type_byte);
  HGS_ASSIGN_OR_RETURN(e.u, r->GetVarint64());
  switch (e.type) {
    case EventType::kAddNode: {
      HGS_ASSIGN_OR_RETURN(e.attrs, DeserializeAttributes(r));
      break;
    }
    case EventType::kRemoveNode:
      break;
    case EventType::kAddEdge: {
      HGS_ASSIGN_OR_RETURN(e.v, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(e.directed, r->GetBool());
      HGS_ASSIGN_OR_RETURN(e.attrs, DeserializeAttributes(r));
      break;
    }
    case EventType::kRemoveEdge: {
      HGS_ASSIGN_OR_RETURN(e.v, r->GetVarint64());
      break;
    }
    case EventType::kSetNodeAttr: {
      HGS_ASSIGN_OR_RETURN(e.key, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.value, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.prev_value, r->GetString());
      break;
    }
    case EventType::kDelNodeAttr: {
      HGS_ASSIGN_OR_RETURN(e.key, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.prev_value, r->GetString());
      break;
    }
    case EventType::kSetEdgeAttr: {
      HGS_ASSIGN_OR_RETURN(e.v, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(e.key, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.value, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.prev_value, r->GetString());
      break;
    }
    case EventType::kDelEdgeAttr: {
      HGS_ASSIGN_OR_RETURN(e.v, r->GetVarint64());
      HGS_ASSIGN_OR_RETURN(e.key, r->GetString());
      HGS_ASSIGN_OR_RETURN(e.prev_value, r->GetString());
      break;
    }
  }
  return e;
}

Attributes DeserializeAttributesBulk(BinaryReader* r) {
  uint64_t n = r->ReadVarint64();
  Attributes attrs;
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    std::string_view k = r->ReadBytesView();
    std::string_view v = r->ReadBytesView();
    // Serialized attribute streams are written in sorted key order, so the
    // append path avoids the per-entry binary search of Set().
    attrs.AppendSorted(std::string(k), std::string(v));
  }
  return attrs;
}

void Event::DeserializeFromBulk(BinaryReader* r, Event* e) {
  e->time = r->ReadSigned64();
  uint8_t type_byte = r->ReadFixed8();
  if (type_byte > static_cast<uint8_t>(EventType::kDelEdgeAttr)) {
    r->MarkFailed();
    return;
  }
  e->type = static_cast<EventType>(type_byte);
  e->u = r->ReadVarint64();
  switch (e->type) {
    case EventType::kAddNode:
      e->attrs = DeserializeAttributesBulk(r);
      break;
    case EventType::kRemoveNode:
      break;
    case EventType::kAddEdge:
      e->v = r->ReadVarint64();
      e->directed = r->ReadBool();
      e->attrs = DeserializeAttributesBulk(r);
      break;
    case EventType::kRemoveEdge:
      e->v = r->ReadVarint64();
      break;
    case EventType::kSetNodeAttr:
      e->key = r->ReadBytesView();
      e->value = r->ReadBytesView();
      e->prev_value = r->ReadBytesView();
      break;
    case EventType::kDelNodeAttr:
      e->key = r->ReadBytesView();
      e->prev_value = r->ReadBytesView();
      break;
    case EventType::kSetEdgeAttr:
      e->v = r->ReadVarint64();
      e->key = r->ReadBytesView();
      e->value = r->ReadBytesView();
      e->prev_value = r->ReadBytesView();
      break;
    case EventType::kDelEdgeAttr:
      e->v = r->ReadVarint64();
      e->key = r->ReadBytesView();
      e->prev_value = r->ReadBytesView();
      break;
  }
}

void ApplyEventToGraph(const Event& e, Graph* g) {
  switch (e.type) {
    case EventType::kAddNode:
      g->AddNode(e.u, e.attrs);
      break;
    case EventType::kRemoveNode:
      g->RemoveNode(e.u);
      break;
    case EventType::kAddEdge:
      g->AddEdge(e.u, e.v, e.directed, e.attrs);
      break;
    case EventType::kRemoveEdge:
      g->RemoveEdge(e.u, e.v);
      break;
    case EventType::kSetNodeAttr: {
      if (!g->HasNode(e.u)) g->AddNode(e.u);
      g->GetMutableNode(e.u)->attrs.Set(e.key, e.value);
      break;
    }
    case EventType::kDelNodeAttr: {
      NodeRecord* rec = g->GetMutableNode(e.u);
      if (rec != nullptr) rec->attrs.Erase(e.key);
      break;
    }
    case EventType::kSetEdgeAttr: {
      EdgeRecord* rec = g->GetMutableEdge(e.u, e.v);
      if (rec != nullptr) rec->attrs.Set(e.key, e.value);
      break;
    }
    case EventType::kDelEdgeAttr: {
      EdgeRecord* rec = g->GetMutableEdge(e.u, e.v);
      if (rec != nullptr) rec->attrs.Erase(e.key);
      break;
    }
  }
}

bool EventTotalOrder(const Event& a, const Event& b) {
  auto key = [](const Event& e) {
    return std::tuple(e.time, static_cast<uint8_t>(e.type), e.u, e.v,
                      e.directed, std::string_view(e.key),
                      std::string_view(e.value),
                      std::string_view(e.prev_value));
  };
  auto ka = key(a);
  auto kb = key(b);
  if (ka != kb) return ka < kb;
  return a.attrs.entries() < b.attrs.entries();
}

}  // namespace hgs
