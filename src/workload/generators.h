// Synthetic dataset generators standing in for the paper's evaluation traces
// (see DESIGN.md substitutions):
//   Dataset 1 — Wikipedia citation network: growth-only preferential
//               attachment (new nodes cite existing high-degree nodes).
//   Dataset 2/3 — Dataset 1 augmented with random edge add/delete churn.
//   Dataset 4 — Friendster-like social graph: community-structured edges
//               with uniformly spaced timestamps.
//   DBLP-like — bipartite-ish Author/Paper labelled graph with attribute
//               churn, for the incremental-computation experiments (Fig 17).
//
// All generators are deterministic given the seed and emit *well-formed*
// event streams: strictly increasing timestamps, edges added only between
// live nodes, RemoveEdge before an endpoint's RemoveNode.

#ifndef HGS_WORKLOAD_GENERATORS_H_
#define HGS_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "delta/event.h"

namespace hgs::workload {

struct WikiGrowthOptions {
  uint64_t num_events = 100'000;
  /// Probability an event is a node arrival (otherwise an edge/citation).
  double node_arrival_prob = 0.15;
  /// Fraction of events that set a node attribute instead of structure.
  double attr_event_prob = 0.05;
  /// Zipf skew of citation-target popularity.
  double zipf_skew = 1.0;
  uint64_t seed = 1;
};

/// Growth-only citation network (Dataset 1 analogue).
std::vector<Event> GenerateWikiGrowth(const WikiGrowthOptions& options);

struct ChurnOptions {
  uint64_t num_events = 100'000;
  /// Probability a churn event deletes an existing edge (otherwise adds).
  double delete_prob = 0.45;
  uint64_t seed = 2;
};

/// Appends random add/delete churn after an existing history (Dataset 2/3
/// analogues). `base` must be a well-formed stream; the result is the
/// concatenation with strictly increasing timestamps.
std::vector<Event> AugmentWithChurn(std::vector<Event> base,
                                    const ChurnOptions& options);

struct FriendsterOptions {
  uint64_t num_nodes = 20'000;
  uint64_t num_edges = 80'000;
  /// Expected community size for the planted partition structure.
  uint64_t community_size = 200;
  /// Probability an edge is intra-community.
  double intra_community_prob = 0.8;
  uint64_t seed = 3;
};

/// Community-structured social graph with uniform timestamps (Dataset 4
/// analogue). Node arrivals are interleaved with edge additions; every node
/// carries a "community" attribute.
std::vector<Event> GenerateFriendster(const FriendsterOptions& options);

struct DblpOptions {
  uint64_t num_authors = 2'000;
  uint64_t num_papers = 6'000;
  /// Authors per paper (edges paper->author).
  uint64_t authors_per_paper = 3;
  /// Attribute-churn events appended after the structure is built.
  uint64_t num_attr_events = 20'000;
  uint64_t seed = 4;
};

/// Author/Paper labelled collaboration graph with EntityType attribute churn
/// (Fig 17's label-counting workload).
std::vector<Event> GenerateDblp(const DblpOptions& options);

/// Timestamp of the last event (0 for an empty stream).
Timestamp EndTime(const std::vector<Event>& events);

/// Replays a full stream into a Graph (the reference "ground truth" used by
/// the correctness tests).
Graph ReplayToGraph(const std::vector<Event>& events, Timestamp upto);

}  // namespace hgs::workload

#endif  // HGS_WORKLOAD_GENERATORS_H_
