#include "workload/generators.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/rng.h"

namespace hgs::workload {

namespace {

// Maintains live structure so removals are always valid, and hands out
// strictly increasing timestamps.
class StreamState {
 public:
  explicit StreamState(Timestamp start = 0) : tick_(start) {}

  Timestamp NextTick() { return ++tick_; }
  Timestamp now() const { return tick_; }

  void NoteAddNode(NodeId id) { live_nodes_.push_back(id); }
  void NoteAddEdge(NodeId u, NodeId v) {
    EdgeKey key(u, v);
    if (edge_set_.insert(key).second) live_edges_.push_back(key);
  }
  void NoteRemoveEdge(const EdgeKey& key, size_t index_hint) {
    edge_set_.erase(key);
    live_edges_[index_hint] = live_edges_.back();
    live_edges_.pop_back();
  }

  bool HasEdge(NodeId u, NodeId v) const {
    return edge_set_.contains(EdgeKey(u, v));
  }

  const std::vector<NodeId>& live_nodes() const { return live_nodes_; }
  const std::vector<EdgeKey>& live_edges() const { return live_edges_; }

 private:
  Timestamp tick_;
  std::vector<NodeId> live_nodes_;
  std::vector<EdgeKey> live_edges_;
  std::unordered_set<EdgeKey, EdgeKeyHash> edge_set_;
};

}  // namespace

std::vector<Event> GenerateWikiGrowth(const WikiGrowthOptions& options) {
  Rng rng(options.seed);
  StreamState state;
  std::vector<Event> events;
  events.reserve(options.num_events);
  // Popularity-ordered arrival: earlier nodes are cited more (Zipf over
  // arrival rank approximates preferential attachment well enough for the
  // degree skew the experiments need).
  NodeId next_id = 0;

  auto add_node = [&]() {
    NodeId id = next_id++;
    Attributes attrs;
    attrs.Set("kind", "article");
    events.push_back(Event::AddNode(state.NextTick(), id, std::move(attrs)));
    state.NoteAddNode(id);
  };
  // Seed a small core so the first citations have targets.
  add_node();
  add_node();

  while (events.size() < options.num_events) {
    double roll = rng.NextDouble();
    if (roll < options.node_arrival_prob || state.live_nodes().size() < 3) {
      add_node();
    } else if (roll < options.node_arrival_prob + options.attr_event_prob) {
      NodeId id =
          state.live_nodes()[rng.Uniform(state.live_nodes().size())];
      events.push_back(Event::SetNodeAttr(
          state.NextTick(), id, "views",
          std::to_string(rng.Uniform(1'000'000))));
    } else {
      // Citation: a recent node cites a Zipf-popular older node.
      size_t n = state.live_nodes().size();
      size_t recent_window = std::max<size_t>(1, n / 10);
      NodeId src = state.live_nodes()[n - 1 - rng.Uniform(recent_window)];
      NodeId dst = state.live_nodes()[rng.Zipf(n, options.zipf_skew)];
      if (src == dst || state.HasEdge(src, dst)) {
        add_node();  // keep the stream moving deterministically
        continue;
      }
      events.push_back(
          Event::AddEdge(state.NextTick(), src, dst, /*directed=*/true));
      state.NoteAddEdge(src, dst);
    }
  }
  events.resize(options.num_events);
  return events;
}

std::vector<Event> AugmentWithChurn(std::vector<Event> base,
                                    const ChurnOptions& options) {
  Rng rng(options.seed);
  // Rebuild live state from the base stream.
  StreamState state(EndTime(base));
  std::unordered_set<NodeId> seen;
  for (const Event& e : base) {
    switch (e.type) {
      case EventType::kAddNode:
        if (seen.insert(e.u).second) state.NoteAddNode(e.u);
        break;
      case EventType::kAddEdge:
        state.NoteAddEdge(e.u, e.v);
        break;
      case EventType::kRemoveEdge: {
        const auto& edges = state.live_edges();
        EdgeKey key(e.u, e.v);
        for (size_t i = 0; i < edges.size(); ++i) {
          if (edges[i] == key) {
            state.NoteRemoveEdge(key, i);
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  base.reserve(base.size() + options.num_events);
  for (uint64_t i = 0; i < options.num_events; ++i) {
    bool do_delete = rng.Bernoulli(options.delete_prob) &&
                     !state.live_edges().empty();
    if (do_delete) {
      size_t idx = rng.Uniform(state.live_edges().size());
      EdgeKey key = state.live_edges()[idx];
      base.push_back(Event::RemoveEdge(state.NextTick(), key.u, key.v));
      state.NoteRemoveEdge(key, idx);
    } else {
      const auto& nodes = state.live_nodes();
      if (nodes.size() < 2) break;
      NodeId u = nodes[rng.Uniform(nodes.size())];
      NodeId v = nodes[rng.Uniform(nodes.size())];
      if (u == v || state.HasEdge(u, v)) {
        // Retry as a deletion if possible; otherwise skip the tick.
        if (!state.live_edges().empty()) {
          size_t idx = rng.Uniform(state.live_edges().size());
          EdgeKey key = state.live_edges()[idx];
          base.push_back(Event::RemoveEdge(state.NextTick(), key.u, key.v));
          state.NoteRemoveEdge(key, idx);
        }
        continue;
      }
      base.push_back(Event::AddEdge(state.NextTick(), u, v));
      state.NoteAddEdge(u, v);
    }
  }
  return base;
}

std::vector<Event> GenerateFriendster(const FriendsterOptions& options) {
  Rng rng(options.seed);
  StreamState state;
  std::vector<Event> events;
  events.reserve(options.num_nodes + options.num_edges);
  uint64_t communities =
      std::max<uint64_t>(1, options.num_nodes / options.community_size);

  // Interleave node arrivals and edges so the graph grows over time the way
  // the paper's uniformly-dated Friendster snapshot does.
  uint64_t nodes_added = 0;
  uint64_t edges_added = 0;
  std::vector<std::vector<NodeId>> members(communities);
  double node_rate = static_cast<double>(options.num_nodes) /
                     static_cast<double>(options.num_nodes + options.num_edges);

  while (nodes_added < options.num_nodes || edges_added < options.num_edges) {
    bool add_node = nodes_added < options.num_nodes &&
                    (edges_added >= options.num_edges ||
                     rng.NextDouble() < node_rate || nodes_added < 16);
    if (add_node) {
      NodeId id = nodes_added++;
      uint64_t community = rng.Uniform(communities);
      Attributes attrs;
      attrs.Set("community", std::to_string(community));
      events.push_back(
          Event::AddNode(state.NextTick(), id, std::move(attrs)));
      state.NoteAddNode(id);
      members[community].push_back(id);
      continue;
    }
    // Edge: pick a community, then endpoints — intra-community with high
    // probability (planted-partition structure for the locality
    // partitioner to find).
    uint64_t cu = rng.Uniform(communities);
    if (members[cu].size() < 2) continue;
    NodeId u = members[cu][rng.Uniform(members[cu].size())];
    NodeId v;
    if (rng.NextDouble() < options.intra_community_prob) {
      v = members[cu][rng.Uniform(members[cu].size())];
    } else {
      uint64_t cv = rng.Uniform(communities);
      if (members[cv].empty()) continue;
      v = members[cv][rng.Uniform(members[cv].size())];
    }
    if (u == v || state.HasEdge(u, v)) continue;
    events.push_back(Event::AddEdge(state.NextTick(), u, v));
    state.NoteAddEdge(u, v);
    ++edges_added;
  }
  return events;
}

std::vector<Event> GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  StreamState state;
  std::vector<Event> events;
  events.reserve(options.num_authors + options.num_papers *
                     (1 + options.authors_per_paper) +
                 options.num_attr_events);

  for (uint64_t i = 0; i < options.num_authors; ++i) {
    Attributes attrs;
    attrs.Set("EntityType", "Author");
    events.push_back(Event::AddNode(state.NextTick(), i, std::move(attrs)));
    state.NoteAddNode(i);
  }
  for (uint64_t p = 0; p < options.num_papers; ++p) {
    NodeId paper_id = options.num_authors + p;
    Attributes attrs;
    attrs.Set("EntityType", "Paper");
    events.push_back(
        Event::AddNode(state.NextTick(), paper_id, std::move(attrs)));
    state.NoteAddNode(paper_id);
    for (uint64_t a = 0; a < options.authors_per_paper; ++a) {
      NodeId author = rng.Zipf(options.num_authors, 1.0);
      if (state.HasEdge(paper_id, author)) continue;
      events.push_back(Event::AddEdge(state.NextTick(), paper_id, author));
      state.NoteAddEdge(paper_id, author);
    }
  }
  // Attribute churn: entities change type occasionally (e.g. an "Author"
  // profile reclassified), which is exactly what fCountLabelDel in Fig 8
  // reacts to. Track the evolving type so prev_value is always accurate.
  uint64_t total = options.num_authors + options.num_papers;
  std::vector<bool> is_author(total);
  for (uint64_t id = 0; id < total; ++id) {
    is_author[id] = id < options.num_authors;
  }
  for (uint64_t i = 0; i < options.num_attr_events; ++i) {
    NodeId id = rng.Uniform(total);
    const char* cur = is_author[id] ? "Author" : "Paper";
    const char* alt = is_author[id] ? "Paper" : "Author";
    bool flip = rng.Bernoulli(0.3);
    events.push_back(Event::SetNodeAttr(state.NextTick(), id, "EntityType",
                                        flip ? alt : cur, cur));
    if (flip) is_author[id] = !is_author[id];
  }
  return events;
}

Timestamp EndTime(const std::vector<Event>& events) {
  return events.empty() ? 0 : events.back().time;
}

Graph ReplayToGraph(const std::vector<Event>& events, Timestamp upto) {
  Graph g;
  for (const Event& e : events) {
    if (e.time > upto) break;
    ApplyEventToGraph(e, &g);
  }
  return g;
}

}  // namespace hgs::workload
