// Event-stream file I/O: a line-oriented TSV format so real traces can be
// imported into the store and generated histories can be exported for
// inspection. Format (tab-separated, one event per line):
//
//   time  type  u  v  directed  key  value  prev_value  attrs
//
// `type` is the EventTypeToString name; `attrs` is k=v pairs joined by ';'.
// Fields are percent-escaped for tab/newline/%; absent fields are empty.

#ifndef HGS_WORKLOAD_EVENT_IO_H_
#define HGS_WORKLOAD_EVENT_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "delta/event.h"

namespace hgs::workload {

/// Serializes one event as a TSV line (no trailing newline).
std::string EventToTsvLine(const Event& e);

/// Parses a line produced by EventToTsvLine.
Result<Event> EventFromTsvLine(const std::string& line);

/// Writes a stream to a file; returns IOError on filesystem failure.
Status WriteEventsTsv(const std::vector<Event>& events,
                      const std::string& path);

/// Reads a stream from a file. Empty lines and lines starting with '#' are
/// skipped.
Result<std::vector<Event>> ReadEventsTsv(const std::string& path);

}  // namespace hgs::workload

#endif  // HGS_WORKLOAD_EVENT_IO_H_
