#include "workload/event_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace hgs::workload {

namespace {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0A";
        break;
      case '%':
        out += "%25";
        break;
      case ';':
        out += "%3B";
        break;
      case '=':
        out += "%3D";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return Status::Corruption("truncated escape");
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(s[i + 1]);
    int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

Result<EventType> TypeFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(EventType::kDelEdgeAttr); ++i) {
    auto type = static_cast<EventType>(i);
    if (name == EventTypeToString(type)) return type;
  }
  return Status::InvalidArgument("unknown event type: " + name);
}

}  // namespace

std::string EventToTsvLine(const Event& e) {
  std::ostringstream out;
  out << e.time << '\t' << EventTypeToString(e.type) << '\t' << e.u << '\t';
  if (e.IsEdgeEvent()) out << e.v;
  out << '\t' << (e.directed ? 1 : 0) << '\t' << Escape(e.key) << '\t'
      << Escape(e.value) << '\t' << Escape(e.prev_value) << '\t';
  bool first = true;
  for (const auto& [k, v] : e.attrs.entries()) {
    if (!first) out << ';';
    out << Escape(k) << '=' << Escape(v);
    first = false;
  }
  return out.str();
}

Result<Event> EventFromTsvLine(const std::string& line) {
  std::vector<std::string> fields = SplitString(line, '\t');
  if (fields.size() != 9) {
    return Status::InvalidArgument("expected 9 TSV fields, got " +
                                   std::to_string(fields.size()));
  }
  Event e;
  e.time = std::strtoll(fields[0].c_str(), nullptr, 10);
  HGS_ASSIGN_OR_RETURN(e.type, TypeFromName(fields[1]));
  e.u = std::strtoull(fields[2].c_str(), nullptr, 10);
  if (!fields[3].empty()) e.v = std::strtoull(fields[3].c_str(), nullptr, 10);
  e.directed = fields[4] == "1";
  HGS_ASSIGN_OR_RETURN(e.key, Unescape(fields[5]));
  HGS_ASSIGN_OR_RETURN(e.value, Unescape(fields[6]));
  HGS_ASSIGN_OR_RETURN(e.prev_value, Unescape(fields[7]));
  if (!fields[8].empty()) {
    for (const std::string& pair : SplitString(fields[8], ';')) {
      std::vector<std::string> kv = SplitString(pair, '=');
      if (kv.size() != 2) return Status::Corruption("bad attrs field");
      HGS_ASSIGN_OR_RETURN(std::string k, Unescape(kv[0]));
      HGS_ASSIGN_OR_RETURN(std::string v, Unescape(kv[1]));
      e.attrs.Set(k, v);
    }
  }
  return e;
}

Status WriteEventsTsv(const std::vector<Event>& events,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out << "# time\ttype\tu\tv\tdirected\tkey\tvalue\tprev_value\tattrs\n";
  for (const Event& e : events) out << EventToTsvLine(e) << '\n';
  out.flush();
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<Event>> ReadEventsTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::vector<Event> events;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto e = EventFromTsvLine(line);
    if (!e.ok()) {
      return Status::Corruption(path + ":" + std::to_string(lineno) + ": " +
                                e.status().message());
    }
    events.push_back(std::move(*e));
  }
  return events;
}

}  // namespace hgs::workload
