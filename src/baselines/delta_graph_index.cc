#include "baselines/delta_graph_index.h"

namespace hgs {

DeltaGraphIndex::DeltaGraphIndex(Cluster* cluster, size_t eventlist_size,
                                 size_t checkpoint_interval, uint32_t arity)
    : cluster_(cluster) {
  TGIOptions opts;
  opts.eventlist_size = eventlist_size;
  opts.checkpoint_interval = checkpoint_interval;
  opts.hierarchy_arity = arity;
  // Monolithic deltas: a single micro-partition and horizontal partition.
  opts.micro_delta_size = std::numeric_limits<size_t>::max() / 2;
  opts.num_horizontal_partitions = 1;
  opts.partition_strategy = PartitionStrategy::kRandom;
  tgi_ = std::make_unique<TGI>(cluster, opts);
}

Status DeltaGraphIndex::Build(const std::vector<Event>& events) {
  HGS_RETURN_NOT_OK(tgi_->BuildFrom(events));
  auto qm = tgi_->OpenQueryManager(1);
  if (!qm.ok()) return qm.status();
  qm_ = std::move(*qm);
  return Status::OK();
}

Result<Graph> DeltaGraphIndex::GetSnapshot(Timestamp t, FetchStats* stats) {
  return qm_->GetSnapshot(t, stats);
}

Result<Delta> DeltaGraphIndex::GetNodeStateDelta(NodeId id, Timestamp t,
                                                 FetchStats* stats) {
  // DeltaGraph has no sub-delta access path: the full snapshot is
  // reconstructed and then filtered (h·|S| + |E| per Table 1).
  HGS_ASSIGN_OR_RETURN(Delta full, qm_->GetSnapshotDelta(t, stats));
  return full.FilterById(id);
}

Result<NodeHistory> DeltaGraphIndex::GetNodeHistory(NodeId id, Timestamp from,
                                                    Timestamp to,
                                                    FetchStats* stats) {
  // No version chains: reconstruct the state at `from`, then scan the full
  // event log over (from, to] and filter for the node (the |G| version-query
  // cost Table 1 attributes to DeltaGraph).
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);
  HGS_ASSIGN_OR_RETURN(Delta initial, GetNodeStateDelta(id, from, stats));
  out.initial = std::move(initial);
  HGS_ASSIGN_OR_RETURN(std::vector<Event> all,
                       qm_->GetEventsInRange(from, to, stats));
  for (const Event& e : all) {
    if (e.Touches(id)) out.events.Append(e);
  }
  return out;
}

Result<Graph> DeltaGraphIndex::GetOneHop(NodeId id, Timestamp t,
                                         FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Graph g, qm_->GetSnapshot(t, stats));
  return algo::InducedSubgraph(g, algo::KHopNeighborhood(g, id, 1));
}

uint64_t DeltaGraphIndex::StorageBytes() const {
  return cluster_->TotalStoredBytes();
}

}  // namespace hgs
