#include "baselines/copy_index.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "kvstore/kv_types.h"

namespace hgs {

namespace {
constexpr std::string_view kCopyTable = "copy";
constexpr std::string_view kResidualTable = "copy_residual";
}  // namespace

Status CopyIndex::Build(const std::vector<Event>& events) {
  copy_times_.clear();
  Delta state;
  EventList residual;
  size_t since_copy = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    state.ApplyEvent(events[i]);
    residual.Append(events[i]);
    ++since_copy;
    if (since_copy == copy_every_ || i + 1 == events.size()) {
      size_t idx = copy_times_.size();
      std::string key;
      AppendOrdered64(&key, idx);
      HGS_RETURN_NOT_OK(
          cluster_->Put(kCopyTable, idx, key, state.Serialize()));
      if (copy_every_ > 1) {
        // Residual log since the previous copy: lets queries between copy
        // points stay exact.
        HGS_RETURN_NOT_OK(
            cluster_->Put(kResidualTable, idx, key, residual.Serialize()));
      }
      copy_times_.push_back(events[i].time);
      residual = EventList();
      since_copy = 0;
    }
  }
  return Status::OK();
}

Result<Delta> CopyIndex::FetchSnapshotDelta(Timestamp t, FetchStats* stats) {
  // Last copy at or before t.
  auto it = std::upper_bound(copy_times_.begin(), copy_times_.end(), t);
  if (it == copy_times_.begin()) return Delta();
  size_t idx = static_cast<size_t>(it - copy_times_.begin()) - 1;

  // If t falls strictly between copy idx and idx+1, replay the next copy's
  // residual events up to t on top of copy idx.
  bool exact_at_copy = copy_times_[idx] == t || copy_every_ == 1 ||
                       idx + 1 == copy_times_.size();
  // With copy_every_ == 1 every change point has a copy, so rounding down is
  // exact by construction.

  std::string key;
  AppendOrdered64(&key, idx);
  auto raw = cluster_->Get(kCopyTable, idx, key);
  if (stats != nullptr) ++stats->kv_requests;
  if (!raw.ok()) return raw.status();
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += raw->size();
  }
  HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(*raw));

  if (!exact_at_copy || (copy_every_ > 1 && copy_times_[idx] < t &&
                         idx + 1 < copy_times_.size())) {
    std::string next_key;
    AppendOrdered64(&next_key, idx + 1);
    auto res_raw = cluster_->Get(kResidualTable, idx + 1, next_key);
    if (stats != nullptr) ++stats->kv_requests;
    if (res_raw.ok()) {
      if (stats != nullptr) {
        ++stats->micro_deltas;
        stats->bytes += res_raw->size();
      }
      HGS_ASSIGN_OR_RETURN(EventList residual,
                           EventList::Deserialize(*res_raw));
      residual.ApplyUpTo(t, &d);
    } else if (!res_raw.status().IsNotFound()) {
      return res_raw.status();
    }
  }
  return d;
}

Result<Graph> CopyIndex::GetSnapshot(Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Delta d, FetchSnapshotDelta(t, stats));
  return d.ToGraph();
}

Result<Delta> CopyIndex::GetNodeStateDelta(NodeId id, Timestamp t,
                                           FetchStats* stats) {
  // Monolithic snapshots: a vertex query still pays the full |S| fetch.
  HGS_ASSIGN_OR_RETURN(Delta d, FetchSnapshotDelta(t, stats));
  return d.FilterById(id);
}

Result<NodeHistory> CopyIndex::GetNodeHistory(NodeId id, Timestamp from,
                                              Timestamp to,
                                              FetchStats* stats) {
  // Copy has no change log to consult; diff consecutive snapshots in the
  // range (the |S||G| cost of Table 1). Events are synthesized from diffs of
  // the node's sub-delta at consecutive copy points.
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);
  HGS_ASSIGN_OR_RETURN(Delta initial, GetNodeStateDelta(id, from, stats));
  out.initial = initial;

  Delta prev = initial;
  for (size_t idx = 0; idx < copy_times_.size(); ++idx) {
    Timestamp ct = copy_times_[idx];
    if (ct <= from) continue;
    if (ct > to) break;
    HGS_ASSIGN_OR_RETURN(Delta full, FetchSnapshotDelta(ct, stats));
    Delta cur = full.FilterById(id);
    // Synthesize change events from the sub-delta diff.
    Delta gained = Delta::Difference(cur, prev);
    gained.ForEachNodeEntry(
        [&](NodeId nid, const std::optional<NodeRecord>& rec) {
          if (rec.has_value()) {
            out.events.Append(Event::AddNode(ct, nid, rec->attrs));
          }
        });
    gained.ForEachEdgeEntry(
        [&](const EdgeKey&, const std::optional<EdgeRecord>& rec) {
          if (rec.has_value()) {
            out.events.Append(
                Event::AddEdge(ct, rec->src, rec->dst, rec->directed,
                               rec->attrs));
          }
        });
    Delta lost = Delta::Difference(prev, cur);
    lost.ForEachNodeEntry(
        [&](NodeId nid, const std::optional<NodeRecord>& rec) {
          if (rec.has_value() && gained.FindNode(nid) == nullptr) {
            out.events.Append(Event::RemoveNode(ct, nid));
          }
        });
    lost.ForEachEdgeEntry(
        [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
          if (rec.has_value() && gained.FindEdge(key) == nullptr) {
            out.events.Append(Event::RemoveEdge(ct, key.u, key.v));
          }
        });
    prev = std::move(cur);
  }
  return out;
}

Result<Graph> CopyIndex::GetOneHop(NodeId id, Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Graph g, GetSnapshot(t, stats));
  return algo::InducedSubgraph(g, algo::KHopNeighborhood(g, id, 1));
}

uint64_t CopyIndex::StorageBytes() const {
  return cluster_->TotalStoredBytes();
}

}  // namespace hgs
