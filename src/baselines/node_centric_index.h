// A vertex-centric index: one partitioned eventlist per node (edge events
// replicated with both endpoints), as sketched in Section 4.2. Entity
// queries are a single fetch of the node's stream (|C|, 1 delta), but a
// snapshot must fetch every node's stream (2|G| storage, |G| fetch cost).

#ifndef HGS_BASELINES_NODE_CENTRIC_INDEX_H_
#define HGS_BASELINES_NODE_CENTRIC_INDEX_H_

#include "baselines/historical_index.h"
#include "kvstore/cluster.h"

namespace hgs {

class NodeCentricIndex : public HistoricalIndex {
 public:
  explicit NodeCentricIndex(Cluster* cluster) : cluster_(cluster) {}

  std::string name() const override { return "NodeCentric"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override;
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override;
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override;
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override;
  uint64_t StorageBytes() const override;

 private:
  Result<EventList> FetchStream(NodeId id, FetchStats* stats);

  Cluster* cluster_;
  std::vector<NodeId> all_nodes_;  // registry for snapshot enumeration
};

}  // namespace hgs

#endif  // HGS_BASELINES_NODE_CENTRIC_INDEX_H_
