#include "baselines/log_index.h"

#include "graph/algorithms.h"
#include "kvstore/kv_types.h"

namespace hgs {

namespace {
constexpr std::string_view kTable = "log";
}  // namespace

Status LogIndex::Build(const std::vector<Event>& events) {
  chunk_starts_.clear();
  for (size_t start = 0; start < events.size(); start += chunk_size_) {
    size_t end = std::min(events.size(), start + chunk_size_);
    EventList chunk(events[start].time - 1, events[end - 1].time);
    for (size_t i = start; i < end; ++i) chunk.Append(events[i]);
    chunk_starts_.push_back(events[start].time);
    std::string key;
    AppendOrdered64(&key, start / chunk_size_);
    HGS_RETURN_NOT_OK(
        cluster_->Put(kTable, start / chunk_size_, key, chunk.Serialize()));
  }
  return Status::OK();
}

Result<std::vector<EventList>> LogIndex::FetchChunksUpTo(Timestamp t,
                                                         FetchStats* stats) {
  std::vector<EventList> out;
  for (size_t c = 0; c < chunk_starts_.size(); ++c) {
    if (chunk_starts_[c] > t) break;
    std::string key;
    AppendOrdered64(&key, c);
    auto raw = cluster_->Get(kTable, c, key);
    if (stats != nullptr) ++stats->kv_requests;
    if (!raw.ok()) return raw.status();
    if (stats != nullptr) {
      ++stats->micro_deltas;
      stats->bytes += raw->size();
    }
    HGS_ASSIGN_OR_RETURN(EventList chunk, EventList::Deserialize(*raw));
    out.push_back(std::move(chunk));
  }
  return out;
}

Result<Graph> LogIndex::GetSnapshot(Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(std::vector<EventList> chunks,
                       FetchChunksUpTo(t, stats));
  Graph g;
  for (const EventList& chunk : chunks) chunk.ApplyUpTo(t, &g);
  return g;
}

Result<Delta> LogIndex::GetNodeStateDelta(NodeId id, Timestamp t,
                                          FetchStats* stats) {
  // The log has no entity access path: replay everything, then filter.
  HGS_ASSIGN_OR_RETURN(Graph g, GetSnapshot(t, stats));
  return Delta::FromGraph(g).FilterById(id);
}

Result<NodeHistory> LogIndex::GetNodeHistory(NodeId id, Timestamp from,
                                             Timestamp to,
                                             FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(std::vector<EventList> chunks,
                       FetchChunksUpTo(to, stats));
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);
  Graph g;
  for (const EventList& chunk : chunks) {
    for (const Event& e : chunk.events()) {
      if (e.time > to) break;
      if (e.time <= from) {
        ApplyEventToGraph(e, &g);
      } else if (e.Touches(id)) {
        out.events.Append(e);
      }
    }
  }
  out.initial = Delta::FromGraph(g).FilterById(id);
  return out;
}

Result<Graph> LogIndex::GetOneHop(NodeId id, Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Graph g, GetSnapshot(t, stats));
  std::vector<NodeId> hood = algo::KHopNeighborhood(g, id, 1);
  return algo::InducedSubgraph(g, hood);
}

uint64_t LogIndex::StorageBytes() const { return cluster_->TotalStoredBytes(); }

}  // namespace hgs
