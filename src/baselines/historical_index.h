// The common interface of all temporal-graph indexes in this repository
// (Section 4.2's prior techniques plus TGI itself), expressed over the same
// delta framework and the same simulated key-value cluster so that Table 1's
// access-cost comparison can be measured rather than estimated.

#ifndef HGS_BASELINES_HISTORICAL_INDEX_H_
#define HGS_BASELINES_HISTORICAL_INDEX_H_

#include <string>
#include <vector>

#include "delta/event.h"
#include "graph/graph.h"
#include "tgi/query.h"  // FetchStats, NodeHistory, OneHopHistory

namespace hgs {

class HistoricalIndex {
 public:
  virtual ~HistoricalIndex() = default;

  /// Index identifier as used in Table 1 ("Log", "Copy", "Copy+Log",
  /// "NodeCentric", "DeltaGraph", "TGI").
  virtual std::string name() const = 0;

  /// Builds the index from a complete chronological event stream.
  virtual Status Build(const std::vector<Event>& events) = 0;

  /// The graph as of time t.
  virtual Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) = 0;

  /// One node's record + incident edges as of t (static vertex query).
  virtual Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                          FetchStats* stats) = 0;

  /// A node's evolution over (from, to] (vertex-versions query).
  virtual Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from,
                                             Timestamp to,
                                             FetchStats* stats) = 0;

  /// 1-hop neighborhood at t.
  virtual Result<Graph> GetOneHop(NodeId id, Timestamp t,
                                  FetchStats* stats) = 0;

  /// Total bytes persisted by this index (Table 1's "Size" column).
  virtual uint64_t StorageBytes() const = 0;
};

}  // namespace hgs

#endif  // HGS_BASELINES_HISTORICAL_INDEX_H_
