// The Log approach (Salzberg & Tsotras): the history is a single sequence of
// eventlist deltas and nothing else. Minimal storage (|G|), but every query
// replays the log from the beginning — the |G|/|E| fetches of Table 1.

#ifndef HGS_BASELINES_LOG_INDEX_H_
#define HGS_BASELINES_LOG_INDEX_H_

#include "baselines/historical_index.h"
#include "kvstore/cluster.h"

namespace hgs {

class LogIndex : public HistoricalIndex {
 public:
  /// `chunk_size` events per stored eventlist (the paper's |E|).
  LogIndex(Cluster* cluster, size_t chunk_size = 500)
      : cluster_(cluster), chunk_size_(chunk_size == 0 ? 1 : chunk_size) {}

  std::string name() const override { return "Log"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override;
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override;
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override;
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override;
  uint64_t StorageBytes() const override;

 private:
  /// All chunks with first-event time <= t, in order.
  Result<std::vector<EventList>> FetchChunksUpTo(Timestamp t,
                                                 FetchStats* stats);

  Cluster* cluster_;
  size_t chunk_size_;
  std::vector<Timestamp> chunk_starts_;  // first event time per chunk
};

}  // namespace hgs

#endif  // HGS_BASELINES_LOG_INDEX_H_
