#include "baselines/node_centric_index.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "graph/algorithms.h"
#include "kvstore/kv_types.h"

namespace hgs {

namespace {
constexpr std::string_view kStreamTable = "node_streams";

uint64_t NodeToken(NodeId id) {
  uint64_t h = id * 0xC2B2AE3D27D4EB4Full;
  return h ^ (h >> 31);
}

std::string NodeKey(NodeId id) {
  std::string key;
  AppendOrdered64(&key, id);
  return key;
}

}  // namespace

Status NodeCentricIndex::Build(const std::vector<Event>& events) {
  std::unordered_map<NodeId, EventList> streams;
  std::unordered_set<NodeId> seen;
  all_nodes_.clear();
  for (const Event& e : events) {
    streams[e.u].Append(e);
    if (seen.insert(e.u).second) all_nodes_.push_back(e.u);
    if (e.IsEdgeEvent() && e.v != e.u) {
      streams[e.v].Append(e);
      if (seen.insert(e.v).second) all_nodes_.push_back(e.v);
    }
  }
  std::sort(all_nodes_.begin(), all_nodes_.end());
  for (auto& [id, stream] : streams) {
    stream.SetScope(events.front().time - 1, events.back().time);
    HGS_RETURN_NOT_OK(cluster_->Put(kStreamTable, NodeToken(id), NodeKey(id),
                                    stream.Serialize()));
  }
  return Status::OK();
}

Result<EventList> NodeCentricIndex::FetchStream(NodeId id, FetchStats* stats) {
  auto raw = cluster_->Get(kStreamTable, NodeToken(id), NodeKey(id));
  if (stats != nullptr) ++stats->kv_requests;
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return EventList();
    return raw.status();
  }
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += raw->size();
  }
  return EventList::Deserialize(*raw);
}

Result<Graph> NodeCentricIndex::GetSnapshot(Timestamp t, FetchStats* stats) {
  // No time-centric access path: fetch every node's stream and replay the
  // node-local view. Edge events are deduplicated by the Graph structure.
  Graph g;
  Mutex mu;
  std::atomic<bool> failed{false};
  Status first_error;
  FetchStats agg;
  ParallelFor(all_nodes_.size(), 8, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    FetchStats local;
    auto stream = FetchStream(all_nodes_[i], &local);
    MutexLock lock(mu);
    agg.Merge(local);
    if (!stream.ok()) {
      if (!failed.exchange(true)) first_error = stream.status();
      return;
    }
    stream->ApplyUpTo(t, &g);
  });
  if (stats != nullptr) stats->Merge(agg);
  if (failed.load()) return first_error;
  return g;
}

Result<Delta> NodeCentricIndex::GetNodeStateDelta(NodeId id, Timestamp t,
                                                  FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(EventList stream, FetchStream(id, stats));
  Delta d;
  stream.ApplyUpTo(t, &d);
  return d.FilterById(id);
}

Result<NodeHistory> NodeCentricIndex::GetNodeHistory(NodeId id,
                                                     Timestamp from,
                                                     Timestamp to,
                                                     FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(EventList stream, FetchStream(id, stats));
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);
  Delta init;
  for (const Event& e : stream.events()) {
    if (e.time <= from) {
      init.ApplyEvent(e);
    } else if (e.time <= to && e.Touches(id)) {
      out.events.Append(e);
    }
  }
  out.initial = init.FilterById(id);
  return out;
}

Result<Graph> NodeCentricIndex::GetOneHop(NodeId id, Timestamp t,
                                          FetchStats* stats) {
  // Fetch the node's stream, replay to find neighbors, then fetch each
  // neighbor's stream (Table 1's |R|·|V| cost).
  HGS_ASSIGN_OR_RETURN(EventList stream, FetchStream(id, stats));
  Delta acc;
  stream.ApplyUpTo(t, &acc);
  std::unordered_set<NodeId> hood{id};
  acc.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        if (key.u == id) hood.insert(key.v);
        if (key.v == id) hood.insert(key.u);
      });
  for (NodeId n : hood) {
    if (n == id) continue;
    HGS_ASSIGN_OR_RETURN(EventList ns, FetchStream(n, stats));
    ns.ApplyUpTo(t, &acc);
  }
  Graph out;
  for (NodeId n : hood) {
    const auto* rec = acc.FindNode(n);
    if (rec != nullptr && rec->has_value()) out.AddNode(n, (*rec)->attrs);
  }
  acc.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        if (hood.contains(key.u) && hood.contains(key.v) &&
            out.HasNode(key.u) && out.HasNode(key.v)) {
          out.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
        }
      });
  return out;
}

uint64_t NodeCentricIndex::StorageBytes() const {
  return cluster_->TotalStoredBytes();
}

}  // namespace hgs
