// The Copy+Log hybrid: periodic snapshot deltas plus eventlists covering the
// gaps. Snapshot retrieval costs one snapshot + one eventlist run (|S|+|E|,
// 2 fetches); entity queries still pay the monolithic snapshot.

#ifndef HGS_BASELINES_COPY_LOG_INDEX_H_
#define HGS_BASELINES_COPY_LOG_INDEX_H_

#include "baselines/historical_index.h"
#include "kvstore/cluster.h"

namespace hgs {

class CopyLogIndex : public HistoricalIndex {
 public:
  /// Snapshots every `snapshot_interval` events; eventlists of
  /// `eventlist_size` events in between (must divide the interval).
  CopyLogIndex(Cluster* cluster, size_t snapshot_interval = 4'000,
               size_t eventlist_size = 500);

  std::string name() const override { return "Copy+Log"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override;
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override;
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override;
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override;
  uint64_t StorageBytes() const override;

 private:
  Result<Delta> FetchSnapshotDelta(Timestamp t, FetchStats* stats);
  Result<EventList> FetchEventlist(size_t index, FetchStats* stats);

  Cluster* cluster_;
  size_t snapshot_interval_;
  size_t eventlist_size_;
  std::vector<Timestamp> snapshot_times_;   // ascending; index = snapshot id
  std::vector<Timestamp> eventlist_starts_;  // first event time per eventlist
};

}  // namespace hgs

#endif  // HGS_BASELINES_COPY_LOG_INDEX_H_
