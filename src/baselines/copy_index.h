// The Copy approach: a full snapshot delta is stored at every point of
// change. Direct access (a single delta fetch answers a snapshot query), at
// the cost of O(|G|^2) storage — Table 1's first row of extremes.
//
// `copy_every` > 1 amortizes the quadratic storage by snapshotting every
// k-th change; retrieval then adds the residual events from a tiny sidecar
// log so results stay exact.

#ifndef HGS_BASELINES_COPY_INDEX_H_
#define HGS_BASELINES_COPY_INDEX_H_

#include "baselines/historical_index.h"
#include "kvstore/cluster.h"

namespace hgs {

class CopyIndex : public HistoricalIndex {
 public:
  CopyIndex(Cluster* cluster, size_t copy_every = 1)
      : cluster_(cluster), copy_every_(copy_every == 0 ? 1 : copy_every) {}

  std::string name() const override { return "Copy"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override;
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override;
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override;
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override;
  uint64_t StorageBytes() const override;

 private:
  Result<Delta> FetchSnapshotDelta(Timestamp t, FetchStats* stats);

  Cluster* cluster_;
  size_t copy_every_;
  std::vector<Timestamp> copy_times_;  // snapshot timestamps, ascending
};

}  // namespace hgs

#endif  // HGS_BASELINES_COPY_INDEX_H_
