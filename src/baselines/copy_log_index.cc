#include "baselines/copy_log_index.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "kvstore/kv_types.h"

namespace hgs {

namespace {
constexpr std::string_view kSnapTable = "cl_snapshots";
constexpr std::string_view kEvlTable = "cl_eventlists";
}  // namespace

CopyLogIndex::CopyLogIndex(Cluster* cluster, size_t snapshot_interval,
                           size_t eventlist_size)
    : cluster_(cluster),
      snapshot_interval_(std::max<size_t>(1, snapshot_interval)),
      eventlist_size_(std::max<size_t>(1, eventlist_size)) {
  // Align the interval to whole eventlists.
  snapshot_interval_ =
      std::max(eventlist_size_,
               (snapshot_interval_ / eventlist_size_) * eventlist_size_);
}

Status CopyLogIndex::Build(const std::vector<Event>& events) {
  snapshot_times_.clear();
  eventlist_starts_.clear();
  Delta state;
  // Snapshot 0 is the empty graph just before history starts.
  if (!events.empty()) {
    std::string key;
    AppendOrdered64(&key, 0);
    HGS_RETURN_NOT_OK(cluster_->Put(kSnapTable, 0, key, state.Serialize()));
    snapshot_times_.push_back(events.front().time - 1);
  }
  EventList current(0, 0);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i % eventlist_size_ == 0) {
      eventlist_starts_.push_back(events[i].time);
    }
    current.Append(events[i]);
    state.ApplyEvent(events[i]);
    bool end_of_list =
        (i + 1) % eventlist_size_ == 0 || i + 1 == events.size();
    if (end_of_list) {
      size_t idx = eventlist_starts_.size() - 1;
      current.SetScope(eventlist_starts_[idx] - 1, events[i].time);
      std::string key;
      AppendOrdered64(&key, idx);
      HGS_RETURN_NOT_OK(
          cluster_->Put(kEvlTable, idx, key, current.Serialize()));
      current = EventList();
    }
    if ((i + 1) % snapshot_interval_ == 0 && i + 1 < events.size()) {
      size_t idx = snapshot_times_.size();
      std::string key;
      AppendOrdered64(&key, idx);
      HGS_RETURN_NOT_OK(
          cluster_->Put(kSnapTable, idx, key, state.Serialize()));
      snapshot_times_.push_back(events[i].time);
    }
  }
  return Status::OK();
}

Result<EventList> CopyLogIndex::FetchEventlist(size_t index,
                                               FetchStats* stats) {
  std::string key;
  AppendOrdered64(&key, index);
  auto raw = cluster_->Get(kEvlTable, index, key);
  if (stats != nullptr) ++stats->kv_requests;
  if (!raw.ok()) return raw.status();
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += raw->size();
  }
  return EventList::Deserialize(*raw);
}

Result<Delta> CopyLogIndex::FetchSnapshotDelta(Timestamp t,
                                               FetchStats* stats) {
  if (snapshot_times_.empty() || t < snapshot_times_.front()) return Delta();
  auto it = std::upper_bound(snapshot_times_.begin(), snapshot_times_.end(), t);
  size_t snap_idx = static_cast<size_t>(it - snapshot_times_.begin()) - 1;
  std::string key;
  AppendOrdered64(&key, snap_idx);
  auto raw = cluster_->Get(kSnapTable, snap_idx, key);
  if (stats != nullptr) ++stats->kv_requests;
  if (!raw.ok()) return raw.status();
  if (stats != nullptr) {
    ++stats->micro_deltas;
    stats->bytes += raw->size();
  }
  HGS_ASSIGN_OR_RETURN(Delta d, Delta::Deserialize(*raw));

  // Apply eventlists from the snapshot point to t.
  size_t lists_per_snapshot = snapshot_interval_ / eventlist_size_;
  size_t evl_idx = snap_idx * lists_per_snapshot;
  for (; evl_idx < eventlist_starts_.size() &&
         eventlist_starts_[evl_idx] <= t;
       ++evl_idx) {
    HGS_ASSIGN_OR_RETURN(EventList evl, FetchEventlist(evl_idx, stats));
    evl.ApplyUpTo(t, &d);
  }
  return d;
}

Result<Graph> CopyLogIndex::GetSnapshot(Timestamp t, FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Delta d, FetchSnapshotDelta(t, stats));
  return d.ToGraph();
}

Result<Delta> CopyLogIndex::GetNodeStateDelta(NodeId id, Timestamp t,
                                              FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Delta d, FetchSnapshotDelta(t, stats));
  return d.FilterById(id);
}

Result<NodeHistory> CopyLogIndex::GetNodeHistory(NodeId id, Timestamp from,
                                                 Timestamp to,
                                                 FetchStats* stats) {
  NodeHistory out;
  out.node = id;
  out.from = from;
  out.to = to;
  out.events.SetScope(from, to);
  HGS_ASSIGN_OR_RETURN(Delta initial, GetNodeStateDelta(id, from, stats));
  out.initial = std::move(initial);
  // Version queries have no entity path: scan every eventlist in range.
  for (size_t idx = 0; idx < eventlist_starts_.size(); ++idx) {
    if (eventlist_starts_[idx] > to) break;
    HGS_ASSIGN_OR_RETURN(EventList evl, FetchEventlist(idx, stats));
    if (evl.upto() <= from) continue;
    for (const Event& e : evl.events()) {
      if (e.time > from && e.time <= to && e.Touches(id)) {
        out.events.Append(e);
      }
    }
  }
  return out;
}

Result<Graph> CopyLogIndex::GetOneHop(NodeId id, Timestamp t,
                                      FetchStats* stats) {
  HGS_ASSIGN_OR_RETURN(Graph g, GetSnapshot(t, stats));
  return algo::InducedSubgraph(g, algo::KHopNeighborhood(g, id, 1));
}

uint64_t CopyLogIndex::StorageBytes() const {
  return cluster_->TotalStoredBytes();
}

}  // namespace hgs
