// DeltaGraph (the authors' prior work, ICDE'13): TGI's temporal-compression
// hierarchy without micro-delta partitioning and without version chains.
// Realized here as a TGI configured with one monolithic micro-partition and
// one horizontal partition; version queries deliberately bypass the version
// chains and scan eventlists, reproducing DeltaGraph's |G| version cost in
// Table 1.

#ifndef HGS_BASELINES_DELTA_GRAPH_INDEX_H_
#define HGS_BASELINES_DELTA_GRAPH_INDEX_H_

#include <memory>

#include "baselines/historical_index.h"
#include "graph/algorithms.h"
#include "tgi/tgi.h"

namespace hgs {

class DeltaGraphIndex : public HistoricalIndex {
 public:
  explicit DeltaGraphIndex(Cluster* cluster, size_t eventlist_size = 500,
                           size_t checkpoint_interval = 0,
                           uint32_t arity = 2);

  std::string name() const override { return "DeltaGraph"; }
  Status Build(const std::vector<Event>& events) override;
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override;
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override;
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override;
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override;
  uint64_t StorageBytes() const override;

 private:
  Cluster* cluster_;
  std::unique_ptr<TGI> tgi_;
  std::unique_ptr<TGIQueryManager> qm_;
};

}  // namespace hgs

#endif  // HGS_BASELINES_DELTA_GRAPH_INDEX_H_
