#include "common/status.h"

namespace hgs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kChecksumMismatch:
      return "ChecksumMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace hgs
