#include "common/serde.h"

namespace hgs {

uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

void BinaryWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutSigned64(int64_t v) {
  // zigzag
  PutVarint64((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
}

void BinaryWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>(v & 0xFF));
    v >>= 8;
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint64(s.size());
  buf_.append(s.data(), s.size());
}

std::string BinaryWriter::FinishWithChecksum() {
  uint64_t sum = Fnv1a64(buf_.data(), buf_.size());
  PutFixed64(sum);
  std::string out;
  out.swap(buf_);
  return out;
}

std::string BinaryWriter::Finish() {
  std::string out;
  out.swap(buf_);
  return out;
}

Status BinaryReader::VerifyChecksum() {
  if (data_.size() < 8) {
    return Status::Corruption("buffer too small for checksum");
  }
  size_t body = data_.size() - 8;
  uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<unsigned char>(data_[body + static_cast<size_t>(i)]);
  }
  uint64_t actual = Fnv1a64(data_.data(), body);
  if (stored != actual) {
    return Status::Corruption("checksum mismatch");
  }
  data_ = data_.substr(0, body);
  return Status::OK();
}

Result<uint64_t> BinaryReader::GetVarint64() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    uint8_t byte = static_cast<unsigned char>(data_[pos_++]);
    if (shift >= 63 && byte > 1) {
      return Status::Corruption("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

uint64_t BinaryReader::ReadVarint64() {
  if (failed_) return 0;
  // Same per-byte decode as GetVarint64; the saving is in the calling
  // convention (no Result<> construction per field), not the loop body.
  const size_t n = data_.size();
  uint64_t v = 0;
  int shift = 0;
  size_t p = pos_;
  while (p < n) {
    uint8_t byte = static_cast<unsigned char>(data_[p++]);
    if (shift >= 63 && byte > 1) {
      failed_ = true;
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      pos_ = p;
      return v;
    }
    shift += 7;
  }
  failed_ = true;  // ran off the buffer mid-varint
  return 0;
}

std::string_view BinaryReader::ReadBytesView() {
  uint64_t len = ReadVarint64();
  if (failed_ || remaining() < len) {
    failed_ = true;
    return {};
  }
  std::string_view out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

Result<uint32_t> BinaryReader::GetVarint32() {
  HGS_ASSIGN_OR_RETURN(uint64_t v, GetVarint64());
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  return static_cast<uint32_t>(v);
}

Result<int64_t> BinaryReader::GetSigned64() {
  HGS_ASSIGN_OR_RETURN(uint64_t z, GetVarint64());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

Result<uint8_t> BinaryReader::GetFixed8() {
  if (pos_ >= data_.size()) return Status::Corruption("truncated fixed8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint64_t> BinaryReader::GetFixed64() {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 8;
  return v;
}

Result<double> BinaryReader::GetDouble() {
  HGS_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  HGS_ASSIGN_OR_RETURN(uint64_t n, GetVarint64());
  if (remaining() < n) return Status::Corruption("truncated string");
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Result<bool> BinaryReader::GetBool() {
  HGS_ASSIGN_OR_RETURN(uint8_t b, GetFixed8());
  return b != 0;
}

}  // namespace hgs
