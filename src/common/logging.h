// Minimal leveled logger. Defaults to WARN so library code is silent in
// tests/benches; HGS_LOG_LEVEL=debug|info|warn|error overrides at startup.

#ifndef HGS_COMMON_LOGGING_H_
#define HGS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hgs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Current threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

#define HGS_LOG(level, msg_expr)                                     \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::hgs::GetLogLevel())) {                    \
      std::ostringstream _hgs_os;                                    \
      _hgs_os << msg_expr;                                           \
      ::hgs::internal::LogMessage(level, __FILE__, __LINE__,         \
                                  _hgs_os.str());                    \
    }                                                                \
  } while (0)

#define HGS_LOG_DEBUG(msg) HGS_LOG(::hgs::LogLevel::kDebug, msg)
#define HGS_LOG_INFO(msg) HGS_LOG(::hgs::LogLevel::kInfo, msg)
#define HGS_LOG_WARN(msg) HGS_LOG(::hgs::LogLevel::kWarn, msg)
#define HGS_LOG_ERROR(msg) HGS_LOG(::hgs::LogLevel::kError, msg)

}  // namespace hgs

#endif  // HGS_COMMON_LOGGING_H_
