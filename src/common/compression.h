// Block compression for serialized deltas (the paper evaluates Cassandra's
// delta compression in Fig 13a). We implement a dependency-free LZ77-style
// codec: greedy longest-match against a 64 KiB sliding window with a chained
// hash table, emitting (literal-run, match) token pairs.

#ifndef HGS_COMMON_COMPRESSION_H_
#define HGS_COMMON_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/shared_value.h"

namespace hgs {

enum class CompressionKind : uint8_t {
  kNone = 0,
  kLz = 1,
};

/// Compresses `input` with the requested codec. The output embeds a one-byte
/// codec tag and the uncompressed length, so Decompress is self-describing.
std::string Compress(std::string_view input, CompressionKind kind);

/// Inverse of Compress. Fails with Corruption on malformed input.
Result<std::string> Decompress(std::string_view input);

/// Zero-copy inverse of Compress over a shared buffer: a stored (kNone)
/// block decompresses to a window into `stored`'s own buffer — header
/// stripped, no bytes moved — while an LZ block materializes one fresh
/// shared buffer. Callers can detect the materialization (the read path's
/// only value copy) by comparing owners with the input.
Result<SharedValue> DecompressShared(const SharedValue& stored);

}  // namespace hgs

#endif  // HGS_COMMON_COMPRESSION_H_
