// Block compression for serialized deltas (the paper evaluates Cassandra's
// delta compression in Fig 13a). We implement a dependency-free LZ77-style
// codec: greedy longest-match against a 64 KiB sliding window with a chained
// hash table, emitting (literal-run, match) token pairs.

#ifndef HGS_COMMON_COMPRESSION_H_
#define HGS_COMMON_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace hgs {

enum class CompressionKind : uint8_t {
  kNone = 0,
  kLz = 1,
};

/// Compresses `input` with the requested codec. The output embeds a one-byte
/// codec tag and the uncompressed length, so Decompress is self-describing.
std::string Compress(std::string_view input, CompressionKind kind);

/// Inverse of Compress. Fails with Corruption on malformed input.
Result<std::string> Decompress(std::string_view input);

}  // namespace hgs

#endif  // HGS_COMMON_COMPRESSION_H_
