// Block compression for serialized deltas (the paper evaluates Cassandra's
// delta compression in Fig 13a). Two real codecs behind one envelope:
//
//  * kLz — a dependency-free LZ77-style byte codec: greedy longest-match
//    against a 64 KiB sliding window with a chained hash table, emitting
//    (literal-run, match) token pairs. Generic, but decoding materializes
//    the block: the read path's one remaining value copy.
//  * kColumnar — a schema-aware columnar re-encoding (common/columnar.h):
//    the value is split into typed columns (dictionary-encoded strings,
//    delta+varint integers) whose container decodes by slicing views out of
//    the stored buffer, so DecompressShared stays zero-copy even though the
//    block is compressed. Only rows whose writer declared a known
//    ValueSchema are eligible; per block, whichever of {columnar, LZ,
//    stored} encodes smallest wins — the choice depends only on the bytes,
//    never on scheduling, so parallel ingest stays byte-deterministic.

#ifndef HGS_COMMON_COMPRESSION_H_
#define HGS_COMMON_COMPRESSION_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/columnar.h"
#include "common/result.h"
#include "common/shared_value.h"

namespace hgs {

enum class CompressionKind : uint8_t {
  kNone = 0,
  kLz = 1,
  kColumnar = 2,
};

/// Compresses `input` with the requested codec. The output embeds a one-byte
/// codec tag and the uncompressed length, so Decompress is self-describing.
///
/// kColumnar consults the codec registered for `schema` (kOpaque rows have
/// none) and keeps the columnar form only when it beats the kLz encoding of
/// the same input; otherwise the kLz path (which itself falls back to stored
/// format when LZ does not pay) is used. A registered codec round-trip-
/// verifies at encode time, so a payload the schema cannot represent
/// losslessly degrades to kLz instead of corrupting.
std::string Compress(std::string_view input, CompressionKind kind,
                     ValueSchema schema = ValueSchema::kOpaque);

/// Inverse of Compress: returns the original input bytes for every codec.
/// (A kColumnar block is re-encoded back to its legacy serialization via
/// the schema codec.) Fails with Corruption on malformed input. Read paths
/// must use DecompressShared instead — this materializing form exists for
/// tests and tooling, and tools/lint_invariants.py enforces the split.
Result<std::string> Decompress(std::string_view input);

/// Zero-copy inverse of Compress over a shared buffer: a stored (kNone)
/// block decompresses to a window into `stored`'s own buffer — header
/// stripped, no bytes moved — and a kColumnar block likewise windows to its
/// columnar payload (whole-value decoders route on the payload's magic; see
/// common/columnar.h). Only an LZ block materializes one fresh shared
/// buffer. Callers can detect the materialization (the read path's only
/// value copy) by comparing owners with the input.
Result<SharedValue> DecompressShared(const SharedValue& stored);

// -- columnar schema codec registry ------------------------------------------
// The schema-specific encoders live next to their types (delta/, tgi/);
// common/ stays schema-agnostic by dispatching through this registry, which
// each codec's translation unit fills during static initialization.

/// Legacy payload -> columnar payload; nullopt when the payload cannot be
/// represented losslessly (the encoder must verify round-trips).
using ColumnarEncodeFn = std::optional<std::string> (*)(std::string_view);
/// Columnar payload -> legacy payload (for the byte-exact Decompress).
using ColumnarReencodeFn = Result<std::string> (*)(std::string_view);

void RegisterColumnarCodec(ValueSchema schema, ColumnarEncodeFn encode,
                           ColumnarReencodeFn reencode);

/// Whether a codec is registered for `schema` (kOpaque never has one).
bool HasColumnarCodec(ValueSchema schema);

}  // namespace hgs

#endif  // HGS_COMMON_COMPRESSION_H_
