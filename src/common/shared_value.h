// SharedValue: the data plane's refcounted zero-copy value handle.
//
// A value fetched from the store is a window (string_view) into a buffer
// owned by a shared_ptr. Storage nodes hand out windows of their own
// resident buffers, decompression of an uncompressed block is a window into
// the stored bytes (tag and length header stripped, nothing moved), the
// read-side byte cache stores and serves SharedValues, and the decoders
// (BinaryReader) run directly over the view. The only value copy left on
// the read path is the single materialization a compressed block needs.
//
// Lifetime: the owner refcount keeps the underlying buffer alive for as
// long as any view exists, so an overwrite, delete, or cache eviction of
// the key never invalidates a live view — readers drain against the buffer
// they started with. This is also what makes a future mmap/arena-backed
// store a drop-in: only the owner type changes, every consumer already
// speaks views.

#ifndef HGS_COMMON_SHARED_VALUE_H_
#define HGS_COMMON_SHARED_VALUE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hgs {

class SharedValue {
 public:
  SharedValue() = default;

  /// Materializes `bytes` into a fresh shared buffer (the one copy a
  /// decompression or an ad-hoc construction pays).
  explicit SharedValue(std::string bytes)
      : owner_(std::make_shared<const std::string>(std::move(bytes))) {
    view_ = *owner_;
  }

  /// A window into an existing shared buffer. `view` must point into
  /// `*owner` (or be empty).
  SharedValue(std::shared_ptr<const std::string> owner, std::string_view view)
      : owner_(std::move(owner)), view_(view) {}

  std::string_view view() const { return view_; }
  operator std::string_view() const { return view_; }  // NOLINT
  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

  /// Explicit copy-out (counts as a value copy; hot paths should not need
  /// it — decode from the view instead).
  std::string ToString() const { return std::string(view_); }

  /// A sub-window of this value sharing the same owner.
  SharedValue Window(size_t offset, size_t length) const {
    return SharedValue(owner_, view_.substr(offset, length));
  }

  /// The owning buffer (null for a default-constructed value). Two values
  /// with equal owners are windows of one buffer — no bytes moved between
  /// them.
  const std::shared_ptr<const std::string>& owner() const { return owner_; }

  friend bool operator==(const SharedValue& a, std::string_view b) {
    return a.view_ == b;
  }
  friend bool operator==(const SharedValue& a, const SharedValue& b) {
    return a.view_ == b.view_;
  }

 private:
  std::shared_ptr<const std::string> owner_;
  std::string_view view_;
};

}  // namespace hgs

#endif  // HGS_COMMON_SHARED_VALUE_H_
