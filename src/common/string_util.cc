#include "common/string_util.h"

#include <cstdio>

namespace hgs {

std::string WithThousands(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace hgs
