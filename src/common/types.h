// Fundamental identifier and time types shared across the Historical Graph
// Store. The paper's model is a discrete-time evolving property graph: every
// change (event) carries an integer timestamp; nodes have stable integer ids.

#ifndef HGS_COMMON_TYPES_H_
#define HGS_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

namespace hgs {

/// Stable identifier of a vertex across the whole history.
using NodeId = uint64_t;

/// Discrete timestamp. The unit is workload-defined (the built-in generators
/// use abstract ticks; real traces would use epoch seconds).
using Timestamp = int64_t;

/// Identifier of a horizontal partition (the paper's `sid`).
using PartitionId = uint32_t;

/// Identifier of a micro-delta partition within a delta (the paper's `pid`).
using MicroPartitionId = uint32_t;

/// Identifier of a delta within a timespan (the paper's `did`).
using DeltaId = uint32_t;

/// Identifier of a timespan (the paper's `tsid`).
using TimespanId = uint32_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();
inline constexpr NodeId kInvalidNodeId =
    std::numeric_limits<NodeId>::max();

/// A half-open time interval [start, end).
struct TimeInterval {
  Timestamp start = kMinTimestamp;
  Timestamp end = kMaxTimestamp;

  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Overlaps(const TimeInterval& o) const {
    return start < o.end && o.start < end;
  }
  bool Empty() const { return start >= end; }
  bool operator==(const TimeInterval& o) const = default;
};

/// An undirected edge key with canonical (smaller id first) ordering, used
/// wherever edges index maps independently of their stored direction.
struct EdgeKey {
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;

  EdgeKey() = default;
  EdgeKey(NodeId a, NodeId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  bool operator==(const EdgeKey& o) const = default;
  auto operator<=>(const EdgeKey& o) const = default;
};

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& k) const {
    // splitmix-style combiner; edges ids are dense so mix well.
    uint64_t x = k.u * 0x9E3779B97F4A7C15ull ^ (k.v + 0x7F4A7C15ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};

}  // namespace hgs

#endif  // HGS_COMMON_TYPES_H_
