// Clang Thread Safety Analysis annotations, portable across compilers.
//
// These macros attach compile-time locking contracts to mutexes, the data
// they guard, and the functions that acquire them. Under Clang with
// -Wthread-safety the compiler proves every annotated access happens under
// the right lock (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html);
// under any other compiler they expand to nothing, so the annotations cost
// zero and the code stays portable.
//
// Use them through the wrappers in common/mutex.h (Mutex, MutexLock,
// CondVar): std::mutex itself carries no capability attribute in libstdc++,
// so annotating members with GUARDED_BY(some_std_mutex) would be inert.
// The lint gate (tools/lint_invariants.py) bans raw std::mutex in src/ for
// exactly that reason.

#ifndef HGS_COMMON_THREAD_ANNOTATIONS_H_
#define HGS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define HGS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HGS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define CAPABILITY(x) HGS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY HGS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated member may only be accessed while holding `x`.
#define GUARDED_BY(x) HGS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data *pointed to* by the annotated pointer member is guarded by `x`
/// (the pointer itself is not).
#define PT_GUARDED_BY(x) HGS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection with
/// -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities
/// (it does not acquire them itself). The `FooLocked()` suffix convention in
/// this codebase always pairs with a REQUIRES annotation.
#define REQUIRES(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller holds.
#define RELEASE(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; `b` is the success return value.
#define TRY_ACQUIRE(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (it acquires them internally; holding them would self-deadlock).
#define EXCLUDES(...) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Dynamic assertion that the capability is held (AssertHeld-style).
#define ASSERT_CAPABILITY(x) \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) HGS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use must carry
/// a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  HGS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // HGS_COMMON_THREAD_ANNOTATIONS_H_
