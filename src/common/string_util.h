// Small string helpers used by benches and table printers.

#ifndef HGS_COMMON_STRING_UTIL_H_
#define HGS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hgs {

/// "1234567" -> "1,234,567".
std::string WithThousands(uint64_t v);

/// Bytes to a human-readable size ("3.2 KiB", "17.0 MiB").
std::string HumanBytes(uint64_t bytes);

/// Fixed-point formatting with `digits` decimals.
std::string FormatDouble(double v, int digits = 2);

/// Splits on a single-character delimiter (no empty-trailing suppression).
std::vector<std::string> SplitString(const std::string& s, char delim);

}  // namespace hgs

#endif  // HGS_COMMON_STRING_UTIL_H_
