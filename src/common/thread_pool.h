// Fixed-size worker pool. Used for:
//  * server threads inside each simulated storage node (kvstore),
//  * parallel fetch clients (tgi),
//  * TAF worker "cluster" executors (taf).

#ifndef HGS_COMMON_THREAD_POOL_H_
#define HGS_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace hgs {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion/result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>>
      EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;       ///< signaled when work arrives or stop_ flips
  CondVar idle_cv_;  ///< signaled when the pool drains to idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written only in the constructor
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

/// The process-wide pool backing ParallelFor. Lazily constructed on first
/// use and sized to the host (hardware_concurrency, with a floor so the
/// latency-simulated fetch benches keep their concurrency on small hosts).
/// Sharing one pool means nested parallel sections — a TAF worker loop
/// whose body runs a parallel TGI fetch — compose without multiplying
/// threads: inner loops reuse idle pool workers or degrade to running on
/// the calling thread when the pool is saturated.
ThreadPool& SharedWorkPool();

/// Runs fn(i) for i in [0, n) with up to `parallelism` concurrent workers
/// and waits for completion. Work is claimed from a shared atomic counter
/// by the calling thread plus at most `parallelism - 1` helpers borrowed
/// from SharedWorkPool() — no threads are spawned per call. The caller
/// always participates and can finish the whole loop alone, so nested
/// ParallelFor calls (even from inside a pool worker) never deadlock; they
/// just run with less parallelism when the pool is busy. `parallelism <= 1`
/// (or n <= 1) runs serially on the calling thread.
///
/// `fn` must not throw: an escaping exception from a helper would be
/// swallowed by the pool's packaged task and the loop would never finish.
/// (Callers in this codebase report failure through Status captures.)
void ParallelFor(size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn);

/// ParallelFor whose body reports failure through Status. Every iteration
/// runs (helpers have no cancellation channel); the returned status is the
/// failure with the lowest iteration index, so error reporting is
/// deterministic regardless of worker interleaving. Used by the parallel
/// ingest pipeline, where a deterministic first error keeps parallel and
/// serial ingest behaviorally identical.
Status StatusParallelFor(size_t n, size_t parallelism,
                         const std::function<Status(size_t)>& fn);

}  // namespace hgs

#endif  // HGS_COMMON_THREAD_POOL_H_
