#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/mutex.h"

namespace hgs {

namespace {

std::atomic<int> g_level{-1};  // -1: uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("HGS_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Serializes sink writes so interleaved messages stay line-atomic.
Mutex& LogMutex() {
  static Mutex mu;
  return mu;
}

}  // namespace

LogLevel GetLogLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = InitLevelFromEnv();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  MutexLock lock(LogMutex());
  std::cerr << "[" << LevelName(level) << " " << base << ":" << line << "] "
            << msg << "\n";
}

}  // namespace internal

}  // namespace hgs
