// Deterministic pseudo-random number generation (SplitMix64 core). All
// workload generators and property tests seed explicitly so every run of the
// test suite and the benchmark harness is reproducible.

#ifndef HGS_COMMON_RNG_H_
#define HGS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace hgs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9Bull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi).
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Skewed integer in [0, n): rank r chosen with weight ~ 1/(r+1)^s using a
  /// continuous inverse-CDF approximation (adequate for workload skew).
  uint64_t Zipf(uint64_t n, double s = 1.0) {
    double u = NextDouble();
    double x;
    if (s == 1.0) {
      x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
    } else {
      double one_minus_s = 1.0 - s;
      double max_cdf =
          std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0;
      x = std::pow(u * max_cdf + 1.0, 1.0 / one_minus_s) - 1.0;
    }
    auto r = static_cast<uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

 private:
  uint64_t state_;
};

}  // namespace hgs

#endif  // HGS_COMMON_RNG_H_
