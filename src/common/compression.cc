#include "common/compression.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace hgs {

namespace {

constexpr size_t kWindowSize = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 255 + kMinMatch;
constexpr int kHashBits = 15;

inline uint32_t HashQuad(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutVarRaw(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarRaw(std::string_view in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    uint8_t byte = static_cast<unsigned char>(in[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Corruption("bad varint in compressed block");
}

// Token stream grammar (after the header):
//   literal_len:varint  literal_bytes  match_len:varint  match_dist:varint
// repeated; match_len == 0 terminates the stream after trailing literals.
std::string LzCompressImpl(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 16);
  std::vector<int64_t> head(1u << kHashBits, -1);
  std::vector<int64_t> prev(in.size(), -1);

  size_t i = 0;
  size_t lit_start = 0;
  while (i < in.size()) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= in.size()) {
      uint32_t h = HashQuad(in.data() + i);
      int64_t cand = head[h];
      int chain = 16;  // bounded chain walk keeps compression O(n)
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<size_t>(cand) <= kWindowSize) {
        size_t c = static_cast<size_t>(cand);
        size_t max_len = std::min(kMaxMatch, in.size() - i);
        size_t len = 0;
        while (len < max_len && in[c + len] == in[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
        }
        cand = prev[c];
      }
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
    }
    if (best_len >= kMinMatch) {
      PutVarRaw(&out, i - lit_start);
      out.append(in.data() + lit_start, i - lit_start);
      PutVarRaw(&out, best_len);
      PutVarRaw(&out, best_dist);
      // Index the matched region sparsely so later matches can reference it.
      size_t end = i + best_len;
      for (size_t j = i + 1; j + kMinMatch <= in.size() && j < end; j += 2) {
        uint32_t h2 = HashQuad(in.data() + j);
        prev[j] = head[h2];
        head[h2] = static_cast<int64_t>(j);
      }
      i = end;
      lit_start = i;
    } else {
      ++i;
    }
  }
  PutVarRaw(&out, i - lit_start);
  out.append(in.data() + lit_start, i - lit_start);
  PutVarRaw(&out, 0);
  return out;
}

Result<std::string> LzDecompressImpl(std::string_view in,
                                     size_t uncompressed_size) {
  std::string out;
  out.reserve(uncompressed_size);
  size_t pos = 0;
  while (pos < in.size()) {
    HGS_ASSIGN_OR_RETURN(uint64_t lit_len, GetVarRaw(in, &pos));
    if (in.size() - pos < lit_len) {
      return Status::Corruption("truncated literal run");
    }
    out.append(in.data() + pos, lit_len);
    pos += lit_len;
    if (pos >= in.size()) break;
    HGS_ASSIGN_OR_RETURN(uint64_t match_len, GetVarRaw(in, &pos));
    if (match_len == 0) break;
    HGS_ASSIGN_OR_RETURN(uint64_t dist, GetVarRaw(in, &pos));
    if (dist == 0 || dist > out.size()) {
      return Status::Corruption("bad match distance");
    }
    size_t from = out.size() - dist;
    for (uint64_t k = 0; k < match_len; ++k) {
      out.push_back(out[from + k]);  // may overlap; byte-by-byte is correct
    }
  }
  if (out.size() != uncompressed_size) {
    return Status::Corruption("decompressed size mismatch");
  }
  return out;
}

/// Parsed block header: codec tag + claimed uncompressed size + body
/// offset. One parser serves both the string and the zero-copy decompress
/// paths, so the two can never disagree about the wire contract.
struct BlockHeader {
  CompressionKind kind;
  uint64_t raw_size;
  size_t body_offset;
};

Result<BlockHeader> ParseBlockHeader(std::string_view input) {
  if (input.empty()) return Status::Corruption("empty compressed block");
  auto kind = static_cast<CompressionKind>(input[0]);
  size_t pos = 1;
  HGS_ASSIGN_OR_RETURN(uint64_t raw_size, GetVarRaw(input, &pos));
  return BlockHeader{kind, raw_size, pos};
}

// Schema -> codec table. Filled during static initialization (single-
// threaded) by the translation units owning each schema's type, read-only
// afterwards; zero-initialized before any dynamic initializer runs, so
// registration order across TUs cannot matter.
struct ColumnarCodec {
  ColumnarEncodeFn encode = nullptr;
  ColumnarReencodeFn reencode = nullptr;
};
constexpr size_t kMaxSchemas = 8;
ColumnarCodec g_columnar_codecs[kMaxSchemas];

const ColumnarCodec* LookupColumnarCodec(ValueSchema schema) {
  auto i = static_cast<size_t>(schema);
  if (i >= kMaxSchemas || g_columnar_codecs[i].encode == nullptr) {
    return nullptr;
  }
  return &g_columnar_codecs[i];
}

}  // namespace

void RegisterColumnarCodec(ValueSchema schema, ColumnarEncodeFn encode,
                           ColumnarReencodeFn reencode) {
  auto i = static_cast<size_t>(schema);
  if (i == 0 || i >= kMaxSchemas) return;
  g_columnar_codecs[i] = ColumnarCodec{encode, reencode};
}

bool HasColumnarCodec(ValueSchema schema) {
  return LookupColumnarCodec(schema) != nullptr;
}

std::string Compress(std::string_view input, CompressionKind kind,
                     ValueSchema schema) {
  if (kind == CompressionKind::kColumnar) {
    // Encode both ways and keep the smaller block. The LZ arm already
    // degrades to stored format when LZ does not pay, so the choice is
    // min(columnar, LZ, stored) — a pure function of the bytes (parallel
    // ingest determinism) with kLz as the transparent fallback for blocks
    // where columnar loses (high-entropy values) or no codec is registered.
    std::string lz = Compress(input, CompressionKind::kLz);
    if (const ColumnarCodec* codec = LookupColumnarCodec(schema)) {
      std::optional<std::string> columnar = codec->encode(input);
      if (columnar.has_value()) {
        std::string out;
        out.reserve(1 + 10 + columnar->size());
        out.push_back(static_cast<char>(CompressionKind::kColumnar));
        PutVarRaw(&out, input.size());
        out += *columnar;
        if (out.size() < lz.size()) return out;
      }
    }
    return lz;
  }
  std::string out;
  if (kind == CompressionKind::kLz) {
    std::string body = LzCompressImpl(input);
    // Fall back to stored format when compression does not pay off.
    if (body.size() + 16 < input.size()) {
      out.push_back(static_cast<char>(CompressionKind::kLz));
      PutVarRaw(&out, input.size());
      out += body;
      return out;
    }
  }
  out.push_back(static_cast<char>(CompressionKind::kNone));
  PutVarRaw(&out, input.size());
  out.append(input.data(), input.size());
  return out;
}

Result<std::string> Decompress(std::string_view input) {
  HGS_ASSIGN_OR_RETURN(BlockHeader h, ParseBlockHeader(input));
  std::string_view body = input.substr(h.body_offset);
  switch (h.kind) {
    case CompressionKind::kNone:
      if (body.size() != h.raw_size) {
        return Status::Corruption("stored block size mismatch");
      }
      return std::string(body);
    case CompressionKind::kLz:
      return LzDecompressImpl(body, h.raw_size);
    case CompressionKind::kColumnar: {
      // Byte-exact inverse: re-encode the columnar payload back to the
      // legacy serialization through the schema codec (the container's
      // schema byte names it).
      if (body.size() < kColumnarMinPayloadSize || !IsColumnarPayload(body)) {
        return Status::Corruption("columnar block: bad payload");
      }
      auto schema = static_cast<ValueSchema>(
          static_cast<unsigned char>(body[kColumnarMagicSize]));
      const ColumnarCodec* codec = LookupColumnarCodec(schema);
      if (codec == nullptr) {
        return Status::Corruption("columnar block: unknown schema");
      }
      HGS_ASSIGN_OR_RETURN(std::string raw, codec->reencode(body));
      if (raw.size() != h.raw_size) {
        return Status::Corruption("columnar block: size mismatch");
      }
      return raw;
    }
  }
  return Status::Corruption("unknown compression kind");
}

Result<SharedValue> DecompressShared(const SharedValue& stored) {
  std::string_view input = stored.view();
  HGS_ASSIGN_OR_RETURN(BlockHeader h, ParseBlockHeader(input));
  switch (h.kind) {
    case CompressionKind::kNone:
      if (input.size() - h.body_offset != h.raw_size) {
        return Status::Corruption("stored block size mismatch");
      }
      // Window past the header: same buffer, zero bytes moved.
      return stored.Window(h.body_offset, h.raw_size);
    case CompressionKind::kLz: {
      HGS_ASSIGN_OR_RETURN(
          std::string raw,
          LzDecompressImpl(input.substr(h.body_offset), h.raw_size));
      return SharedValue(std::move(raw));
    }
    case CompressionKind::kColumnar: {
      // Zero materialization: the columnar payload decodes by slicing
      // column views, so stripping the envelope is the whole job. The
      // payload carries its own checksum; the whole-value decoder verifies
      // it (and routes on the magic), keeping this window as cheap as the
      // kNone path.
      std::string_view body = input.substr(h.body_offset);
      if (body.size() < kColumnarMinPayloadSize || !IsColumnarPayload(body)) {
        return Status::Corruption("columnar block: bad payload");
      }
      return stored.Window(h.body_offset, body.size());
    }
  }
  return Status::Corruption("unknown compression kind");
}

}  // namespace hgs
