// Result<T>: a value-or-Status union, the return type of fallible functions
// that produce a value. Analogous to arrow::Result / absl::StatusOr.

#ifndef HGS_COMMON_RESULT_H_
#define HGS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hgs {

/// [[nodiscard]] like Status: dropping a Result drops both the value and
/// the error. See status.h for the `(void)` escape-hatch convention.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// The value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define HGS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define HGS_ASSIGN_OR_RETURN(lhs, expr) \
  HGS_ASSIGN_OR_RETURN_IMPL(HGS_CONCAT_(_res_, __LINE__), lhs, expr)

#define HGS_CONCAT_(a, b) HGS_CONCAT_IMPL_(a, b)
#define HGS_CONCAT_IMPL_(a, b) a##b

}  // namespace hgs

#endif  // HGS_COMMON_RESULT_H_
