// Status: the error-handling currency of the Historical Graph Store.
//
// Core library code does not throw exceptions; fallible operations return a
// Status (or a Result<T>, see result.h). This mirrors the convention of
// production database engines where errors are values, propagated explicitly.

#ifndef HGS_COMMON_STATUS_H_
#define HGS_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace hgs {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kAborted = 8,
  kAlreadyExists = 9,
  /// A stored value failed its per-value checksum at read time (bit rot,
  /// torn write, injected corruption). Distinct from kCorruption so the
  /// cluster can treat it as a replica failure and fail over, rather than
  /// as a malformed-input error that aborts the query.
  kChecksumMismatch = 10,
};

/// Human-readable name of a status code ("NotFound", "Corruption", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheaply copyable success-or-error value. OK carries no allocation; an
/// error holds a code and a message describing what failed.
///
/// [[nodiscard]] at class level: every function returning a Status is a
/// fallible operation, and silently dropping the return loses the failure.
/// Intentional drops must be written `(void)Foo();` with a comment saying
/// why the failure is ignorable.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ChecksumMismatch(std::string msg) {
    return Status(StatusCode::kChecksumMismatch, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsChecksumMismatch() const {
    return code() == StatusCode::kChecksumMismatch;
  }

  /// Message attached to an error status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

/// Propagates an error status out of the current function.
#define HGS_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::hgs::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace hgs

#endif  // HGS_COMMON_STATUS_H_
