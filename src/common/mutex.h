// Annotated locking primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the Clang Thread Safety Analysis
// capability attributes (common/thread_annotations.h). All mutex-protected
// state in src/ is guarded by these types — libstdc++'s std::mutex is not a
// TSA capability, so GUARDED_BY(a_std_mutex) would silently check nothing.
//
// Idiom:
//   mutable Mutex mu_;
//   std::deque<Task> queue_ GUARDED_BY(mu_);
//
//   void Push(Task t) EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     queue_.push_back(std::move(t));   // proven to hold mu_
//   }
//
// Condition waits go through CondVar, whose Wait() REQUIRES(mu) keeps the
// analysis sound across the unlock/relock inside the wait:
//   MutexLock lock(mu_);
//   while (queue_.empty()) cv_.Wait(mu_);
//
// Lock hierarchy (documented order; see README "Concurrency invariants"):
//   query meta/refresh locks -> cache shard locks -> cluster client state
//   -> storage-node mutexes. Leaf locks (logging, fault injector, epoch map)
//   never hold another lock while held.

#ifndef HGS_COMMON_MUTEX_H_
#define HGS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hgs {

/// A std::mutex carrying the TSA "mutex" capability. Prefer MutexLock over
/// calling Lock()/Unlock() directly; the lint gate bans naked unlock calls
/// outside this header.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op at runtime; tells the analysis the lock is known to be held on
  /// paths the checker cannot prove (e.g. across an opaque callback).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped holder: acquires in the constructor, releases in the destructor.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Wait() must be called with the mutex
/// held (enforced by REQUIRES); it atomically releases while blocked and
/// reacquires before returning, which TSA models as "still held" across the
/// call — exactly the std::condition_variable contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the wait, then
    // release the unique_lock's ownership claim so the caller's scoped
    // holder remains the one true owner.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hgs

#endif  // HGS_COMMON_MUTEX_H_
