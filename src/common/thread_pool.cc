#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace hgs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

ThreadPool& SharedWorkPool() {
  // Leaked on purpose: pool workers must outlive every static that might
  // still run a ParallelFor during its destructor, and joining threads in
  // a static destructor races with library teardown.
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 8;
    // Floor of 8: loop bodies in this codebase block on the simulated
    // storage latency, so more workers than cores still buy concurrency.
    return new ThreadPool(std::max<size_t>(hw, 8));
  }();
  return *pool;
}

namespace {

// State of one ParallelFor, shared with helper tasks via shared_ptr so a
// helper that is dequeued after the loop finished (it will find
// next >= n) can still touch it safely.
struct LoopState {
  explicit LoopState(size_t total, const std::function<void(size_t)>& f)
      : n(total), fn(&f) {}

  const size_t n;
  /// Valid while the issuing caller blocks in ParallelFor. Helpers only
  /// dereference it after claiming an item, and a claimed item keeps the
  /// caller blocked until `done` reaches n — so no helper can reach `fn`
  /// after the caller returned.
  const std::function<void(size_t)>* fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mu;    ///< serializes the done==n signal against the caller's wait
  CondVar cv;  ///< signaled once when done reaches n

  void RunShare() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        MutexLock lock(mu);
        cv.NotifyAll();
      }
    }
  }
};

}  // namespace

void ParallelFor(size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (parallelism <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = SharedWorkPool();
  // Degree cap: the caller plus at most the pool's worker count; no call
  // can oversubscribe the machine however deeply fetch loops nest.
  size_t degree = std::min({parallelism, n, pool.num_threads() + 1});
  auto state = std::make_shared<LoopState>(n, fn);
  for (size_t w = 1; w < degree; ++w) {
    pool.Submit([state] { state->RunShare(); });
  }
  state->RunShare();
  MutexLock lock(state->mu);
  while (state->done.load() != n) state->cv.Wait(state->mu);
}

Status StatusParallelFor(size_t n, size_t parallelism,
                         const std::function<Status(size_t)>& fn) {
  Mutex mu;
  size_t first_bad = n;
  Status first_status = Status::OK();
  ParallelFor(n, parallelism, [&](size_t i) {
    Status s = fn(i);
    if (s.ok()) return;
    MutexLock lock(mu);
    if (i < first_bad) {
      first_bad = i;
      first_status = std::move(s);
    }
  });
  return first_status;
}

}  // namespace hgs
