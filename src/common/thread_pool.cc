#include "common/thread_pool.h"

#include <atomic>

namespace hgs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ParallelFor(size_t n, size_t parallelism,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (parallelism <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  size_t workers = std::min(parallelism, n);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hgs
