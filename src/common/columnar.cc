#include "common/columnar.h"

namespace hgs {

std::string ColumnarBlockWriter::Finish() const {
  BinaryWriter w;
  for (unsigned char c : kColumnarMagic) w.PutFixed8(c);
  w.PutFixed8(static_cast<uint8_t>(schema_));
  w.PutVarint64(columns_.size());
  for (const std::string& col : columns_) w.PutVarint64(col.size());
  std::string out = w.Finish();
  for (const std::string& col : columns_) out += col;
  out.reserve(out.size() + kChecksumWireSize);
  uint64_t sum = Fnv1a64(out.data(), out.size());
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((sum >> (8 * i)) & 0xFF));
  }
  return out;
}

Result<ColumnarBlockReader> ColumnarBlockReader::Parse(
    std::string_view payload, ValueSchema expected_schema) {
  if (payload.size() < kColumnarMinPayloadSize || !IsColumnarPayload(payload)) {
    return Status::Corruption("columnar block: bad magic or truncated");
  }
  // The trailing checksum covers the whole container, so every parse error
  // past this point is genuine corruption, not a bit flip slipping through.
  size_t body = payload.size() - kChecksumWireSize;
  uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<unsigned char>(payload[body + static_cast<size_t>(i)]);
  }
  if (stored != Fnv1a64(payload.data(), body)) {
    return Status::Corruption("columnar block: checksum mismatch");
  }
  BinaryReader r(payload.substr(kColumnarMagicSize, body - kColumnarMagicSize));
  uint8_t schema = r.ReadFixed8();
  if (r.failed() || schema != static_cast<uint8_t>(expected_schema)) {
    return Status::Corruption("columnar block: schema mismatch");
  }
  uint64_t ncols = r.ReadVarint64();
  if (r.failed() || ncols > r.remaining()) {
    return Status::Corruption("columnar block: bad column count");
  }
  std::vector<uint64_t> lens(ncols);
  uint64_t total = 0;
  for (uint64_t i = 0; i < ncols; ++i) {
    lens[i] = r.ReadVarint64();
    if (lens[i] > r.remaining() || total > r.remaining() - lens[i]) {
      return Status::Corruption("columnar block: column length overflow");
    }
    total += lens[i];
  }
  if (r.failed() || total != r.remaining()) {
    return Status::Corruption("columnar block: column lengths disagree");
  }
  ColumnarBlockReader out;
  out.columns_.reserve(ncols);
  size_t offset = body - static_cast<size_t>(total);
  for (uint64_t i = 0; i < ncols; ++i) {
    out.columns_.push_back(
        payload.substr(offset, static_cast<size_t>(lens[i])));
    offset += static_cast<size_t>(lens[i]);
  }
  return out;
}

}  // namespace hgs
