// Binary serialization used for delta values stored in the key-value store.
//
// Encoding conventions:
//  * unsigned integers: LEB128 varint
//  * signed integers:   zigzag + varint
//  * strings/blobs:     varint length prefix + raw bytes
//  * records:           field-by-field, schema fixed by the caller
//
// A trailing FNV-1a checksum guards serialized deltas against corruption;
// see BinaryWriter::FinishWithChecksum / BinaryReader::VerifyChecksum.

#ifndef HGS_COMMON_SERDE_H_
#define HGS_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hgs {

/// 64-bit FNV-1a hash, used both as a checksum and a cheap content hash.
uint64_t Fnv1a64(const void* data, size_t n);

// -- wire-size arithmetic ----------------------------------------------------
// Exact encoded sizes of the primitives above, so value types can report
// their serialized size without writing a buffer (decoded-cache charging,
// Table 1 cost accounting).

/// Encoded size of PutVarint64(v).
inline size_t VarintWireSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Encoded size of PutSigned64(v) (zigzag + varint).
inline size_t Signed64WireSize(int64_t v) {
  return VarintWireSize((static_cast<uint64_t>(v) << 1) ^
                        static_cast<uint64_t>(v >> 63));
}

/// Encoded size of PutString(s) (varint length prefix + raw bytes).
inline size_t StringWireSize(std::string_view s) {
  return VarintWireSize(s.size()) + s.size();
}

/// Size of the trailing checksum appended by FinishWithChecksum.
inline constexpr size_t kChecksumWireSize = 8;

/// Append-only buffer with varint primitives.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutVarint64(uint64_t v);
  void PutVarint32(uint32_t v) { PutVarint64(v); }
  void PutSigned64(int64_t v);
  void PutFixed8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutFixed64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutBool(bool b) { PutFixed8(b ? 1 : 0); }

  /// Appends an 8-byte FNV-1a checksum of everything written so far and
  /// releases the buffer. After this the writer is reset.
  std::string FinishWithChecksum();

  /// Releases the buffer without a checksum.
  std::string Finish();

  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential reader over a serialized buffer. All getters return an error
/// Status on truncation rather than reading out of bounds.
///
/// Two decode interfaces share the cursor:
///  * scalar getters (Get*) return Result<> per field — convenient for
///    record decoders that bail out field by field;
///  * bulk readers (Read*) are the hot-loop fast path: pointer-bumping
///    decodes that return the value directly and latch a sticky failed()
///    flag on truncation/corruption, so tight loops pay no per-field
///    Result<> construction and check for errors once per record (or once
///    per buffer). After failed() flips, every further Read* returns a
///    zero value and the cursor stops advancing.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  /// Validates and strips the trailing checksum written by
  /// FinishWithChecksum. Must be called before any reads.
  Status VerifyChecksum();

  Result<uint64_t> GetVarint64();
  Result<uint32_t> GetVarint32();
  Result<int64_t> GetSigned64();
  Result<uint8_t> GetFixed8();
  Result<uint64_t> GetFixed64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<bool> GetBool();

  // -- bulk fast path ------------------------------------------------------
  uint64_t ReadVarint64();
  int64_t ReadSigned64() {
    uint64_t z = ReadVarint64();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  uint8_t ReadFixed8() {
    if (pos_ >= data_.size()) {
      failed_ = true;
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  bool ReadBool() { return ReadFixed8() != 0; }
  /// Length-prefixed bytes as a view into the underlying buffer (no copy);
  /// valid as long as the buffer passed to the constructor is.
  std::string_view ReadBytesView();

  bool failed() const { return failed_; }
  /// Latches the sticky error from a caller-side validity check (e.g. an
  /// out-of-range enum byte) so bulk decoding aborts uniformly.
  void MarkFailed() { failed_ = true; }
  /// Sticky-error check as a Status, for returning out of bulk decoders.
  Status BulkStatus() const {
    return failed_ ? Status::Corruption("truncated or corrupt buffer")
                   : Status::OK();
  }

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace hgs

#endif  // HGS_COMMON_SERDE_H_
