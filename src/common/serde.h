// Binary serialization used for delta values stored in the key-value store.
//
// Encoding conventions:
//  * unsigned integers: LEB128 varint
//  * signed integers:   zigzag + varint
//  * strings/blobs:     varint length prefix + raw bytes
//  * records:           field-by-field, schema fixed by the caller
//
// A trailing FNV-1a checksum guards serialized deltas against corruption;
// see BinaryWriter::FinishWithChecksum / BinaryReader::VerifyChecksum.

#ifndef HGS_COMMON_SERDE_H_
#define HGS_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hgs {

/// 64-bit FNV-1a hash, used both as a checksum and a cheap content hash.
uint64_t Fnv1a64(const void* data, size_t n);

/// Append-only buffer with varint primitives.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutVarint64(uint64_t v);
  void PutVarint32(uint32_t v) { PutVarint64(v); }
  void PutSigned64(int64_t v);
  void PutFixed8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutFixed64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutBool(bool b) { PutFixed8(b ? 1 : 0); }

  /// Appends an 8-byte FNV-1a checksum of everything written so far and
  /// releases the buffer. After this the writer is reset.
  std::string FinishWithChecksum();

  /// Releases the buffer without a checksum.
  std::string Finish();

  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential reader over a serialized buffer. All getters return an error
/// Status on truncation rather than reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  /// Validates and strips the trailing checksum written by
  /// FinishWithChecksum. Must be called before any reads.
  Status VerifyChecksum();

  Result<uint64_t> GetVarint64();
  Result<uint32_t> GetVarint32();
  Result<int64_t> GetSigned64();
  Result<uint8_t> GetFixed8();
  Result<uint64_t> GetFixed64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<bool> GetBool();

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hgs

#endif  // HGS_COMMON_SERDE_H_
