// Generic machinery of the columnar block codec (CompressionKind::kColumnar):
// a self-describing container that splits a record block into typed columns,
// plus the cursor/dictionary primitives schema codecs decode them with.
//
// A columnar payload is an *alternative serialization* of a value, not a
// compression of its legacy bytes:
//
//   [magic(4) | schema(1) | ncols:varint | len[0..n):varint | col bytes... |
//    fnv1a64(everything before)]
//
// The column lengths double as a per-column offset table (offsets are prefix
// sums), so a decoder slices column views straight out of the stored buffer —
// decompression never materializes anything. The magic begins with
// {0x80, 0x00}: a non-minimal varint encoding of zero, which BinaryWriter's
// minimal varint/zigzag emitters never produce as the leading bytes of a
// legacy payload, so a whole-value decoder can route on the first bytes with
// no possibility of collision.
//
// Schema-specific column layouts (EventList, Delta, VersionChainSegment) live
// next to their types; this header knows nothing about them.

#ifndef HGS_COMMON_COLUMNAR_H_
#define HGS_COMMON_COLUMNAR_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/serde.h"

namespace hgs {

/// What a stored value's payload means — the writer's declaration of which
/// columnar schema (if any) may encode the row. kOpaque rows are never
/// columnar-encoded.
enum class ValueSchema : uint8_t {
  kOpaque = 0,
  kEventList = 1,
  kDelta = 2,
  kVersionChain = 3,
};

inline constexpr size_t kColumnarMagicSize = 4;
/// First two bytes are a non-minimal varint prefix (see file comment); the
/// tail identifies the container and its version.
inline constexpr unsigned char kColumnarMagic[kColumnarMagicSize] = {
    0x80, 0x00, 0xC5, 0x01};

/// Smallest syntactically possible payload: magic, schema, ncols=0, checksum.
inline constexpr size_t kColumnarMinPayloadSize =
    kColumnarMagicSize + 1 + 1 + kChecksumWireSize;

/// True when `data` begins with the columnar container magic. Legacy
/// payloads (which begin with a minimally-encoded varint) can never match.
inline bool IsColumnarPayload(std::string_view data) {
  if (data.size() < kColumnarMagicSize) return false;
  for (size_t i = 0; i < kColumnarMagicSize; ++i) {
    if (static_cast<unsigned char>(data[i]) != kColumnarMagic[i]) return false;
  }
  return true;
}

/// Assembles a columnar payload: add each column's bytes in schema order,
/// then Finish() to get the container with its trailing checksum.
class ColumnarBlockWriter {
 public:
  explicit ColumnarBlockWriter(ValueSchema schema) : schema_(schema) {}

  void AddColumn(std::string bytes) { columns_.push_back(std::move(bytes)); }

  std::string Finish() const;

 private:
  ValueSchema schema_;
  std::vector<std::string> columns_;
};

/// Parses the container: verifies magic, schema, checksum and the column
/// length table, then exposes each column as a view into `payload` (which
/// must outlive the reader — in the read path it is the shared stored
/// buffer, so decoding is pure view slicing).
class ColumnarBlockReader {
 public:
  static Result<ColumnarBlockReader> Parse(std::string_view payload,
                                           ValueSchema expected_schema);

  size_t num_columns() const { return columns_.size(); }

  /// Bounds-checked column view; Corruption when the schema expected more
  /// columns than the block carries.
  Result<std::string_view> Column(size_t i) const {
    if (i >= columns_.size()) {
      return Status::Corruption("columnar block: missing column");
    }
    return columns_[i];
  }

 private:
  ColumnarBlockReader() = default;
  std::vector<std::string_view> columns_;
};

// -- encode/decode cursors ---------------------------------------------------

/// Delta-of-previous encoder for monotone-ish integer columns (timestamps,
/// sorted ids): emits zigzag varints of successive differences.
struct DeltaInt64Encoder {
  int64_t prev = 0;
  void Put(BinaryWriter* w, int64_t v) {
    w->PutSigned64(v - prev);
    prev = v;
  }
};

/// Decoding counterpart of DeltaInt64Encoder, running on the bulk reader
/// (sticky failed() instead of per-value Result).
struct DeltaInt64Decoder {
  int64_t prev = 0;
  int64_t Next(BinaryReader* r) {
    prev += r->ReadSigned64();
    return prev;
  }
};

/// Bit-packed bool column: varint count, then ceil(count/8) bytes, LSB
/// first.
class BitColumnWriter {
 public:
  void Append(bool b) {
    if (count_ % 8 == 0) bytes_.push_back(0);
    if (b) bytes_.back() |= static_cast<char>(1u << (count_ % 8));
    ++count_;
  }
  std::string Finish() const {
    BinaryWriter w;
    w.PutVarint64(count_);
    std::string out = w.Finish();
    out += bytes_;
    return out;
  }

 private:
  std::string bytes_;
  uint64_t count_ = 0;
};

class BitColumnReader {
 public:
  /// Binds to a column view; malformed lengths latch `r`'s failed() flag on
  /// the first Next().
  static BitColumnReader Bind(std::string_view column) {
    BitColumnReader out;
    BinaryReader r(column);
    out.count_ = r.ReadVarint64();
    if (r.failed() || (out.count_ + 7) / 8 > r.remaining()) {
      out.bad_ = true;
      return out;
    }
    out.bits_ = column.substr(column.size() - r.remaining());
    return out;
  }

  bool Next(BinaryReader* r) {
    if (bad_ || next_ >= count_) {
      r->MarkFailed();
      return false;
    }
    bool b = (static_cast<unsigned char>(bits_[next_ / 8]) >> (next_ % 8)) & 1;
    ++next_;
    return b;
  }

 private:
  std::string_view bits_;
  uint64_t count_ = 0;
  uint64_t next_ = 0;
  bool bad_ = false;
};

/// Nibble-packed small-enum column (event types: 8 codes fit in 4 bits):
/// varint count, then ceil(count/2) bytes, low nibble first.
class NibbleColumnWriter {
 public:
  void Append(uint8_t v) {
    if (count_ % 2 == 0) {
      bytes_.push_back(static_cast<char>(v & 0xF));
    } else {
      bytes_.back() |= static_cast<char>((v & 0xF) << 4);
    }
    ++count_;
  }
  std::string Finish() const {
    BinaryWriter w;
    w.PutVarint64(count_);
    std::string out = w.Finish();
    out += bytes_;
    return out;
  }

 private:
  std::string bytes_;
  uint64_t count_ = 0;
};

class NibbleColumnReader {
 public:
  static NibbleColumnReader Bind(std::string_view column) {
    NibbleColumnReader out;
    BinaryReader r(column);
    out.count_ = r.ReadVarint64();
    if (r.failed() || (out.count_ + 1) / 2 > r.remaining()) {
      out.bad_ = true;
      return out;
    }
    out.nibbles_ = column.substr(column.size() - r.remaining());
    return out;
  }

  uint8_t Next(BinaryReader* r) {
    if (bad_ || next_ >= count_) {
      r->MarkFailed();
      return 0;
    }
    uint8_t byte = static_cast<unsigned char>(nibbles_[next_ / 2]);
    uint8_t v = next_ % 2 == 0 ? (byte & 0xF) : (byte >> 4);
    ++next_;
    return v;
  }

 private:
  std::string_view nibbles_;
  uint64_t count_ = 0;
  uint64_t next_ = 0;
  bool bad_ = false;
};

// -- per-block string dictionary ---------------------------------------------

/// Builds the sorted dictionary segment of one block: collect every string
/// occurrence, Build() once, then map occurrences to dense ids. Sortedness
/// makes the segment deterministic for identical logical content (the ingest
/// determinism contract) and clusters shared prefixes for any outer codec.
class StringDictBuilder {
 public:
  /// Collects one occurrence. Views must stay valid until Serialize().
  void Add(std::string_view s) { entries_.push_back(s); }

  /// Sorts + dedups. Must be called before IdOf/Serialize.
  void Build() {
    std::sort(entries_.begin(), entries_.end());
    entries_.erase(std::unique(entries_.begin(), entries_.end()),
                   entries_.end());
  }

  uint32_t IdOf(std::string_view s) const {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), s);
    return static_cast<uint32_t>(it - entries_.begin());
  }

  /// Dictionary column: varint count, then length-prefixed entries in
  /// sorted order.
  std::string Serialize() const {
    BinaryWriter w;
    w.PutVarint64(entries_.size());
    for (std::string_view s : entries_) w.PutString(s);
    return w.Finish();
  }

 private:
  std::vector<std::string_view> entries_;
};

/// View-parsed dictionary segment: entry views point into the column (and
/// through it into the stored buffer).
class StringDictView {
 public:
  static Result<StringDictView> Parse(std::string_view column) {
    StringDictView out;
    BinaryReader r(column);
    uint64_t n = r.ReadVarint64();
    if (r.failed()) return Status::Corruption("columnar dict: bad count");
    out.entries_.reserve(std::min<uint64_t>(n, r.remaining()));
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view s = r.ReadBytesView();
      if (r.failed()) return Status::Corruption("columnar dict: truncated");
      out.entries_.push_back(s);
    }
    return out;
  }

  /// Entry for `id`; out-of-range ids latch `r`'s failed() flag.
  std::string_view Get(uint64_t id, BinaryReader* r) const {
    if (id >= entries_.size()) {
      r->MarkFailed();
      return {};
    }
    return entries_[id];
  }

  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::string_view> entries_;
};

}  // namespace hgs

#endif  // HGS_COMMON_COLUMNAR_H_
