// ShardedLruCache: a byte-budgeted, sharded LRU map used for read-side
// caching (the TGI partition-delta cache). Keys hash to one of N shards,
// each guarded by its own mutex, so concurrent fetch clients rarely
// contend. Eviction is least-recently-used within a shard, driven by the
// per-entry byte charge supplied at insert time.
//
// Optional TinyLFU-style admission (opt-in): each shard keeps a doorkeeper
// bit array in front of a 4-bit count-min sketch. Every probe and insert
// records the key's frequency (first sighting sets the doorkeeper bit;
// repeats feed the sketch), and an insert that would evict is admitted only
// if the candidate's estimated frequency beats the LRU victim's. One cold
// scan over the key space — every key seen once — then bounces off the
// doorkeeper instead of flushing a hot working set. Counters age by halving
// (and the doorkeeper resets) every sample-window accesses, so the sketch
// tracks recent popularity rather than all-time counts.

#ifndef HGS_COMMON_LRU_CACHE_H_
#define HGS_COMMON_LRU_CACHE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"

namespace hgs {

/// Aggregated counters of a ShardedLruCache (summed across shards).
struct LruCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t admission_rejects = 0;  ///< inserts bounced by TinyLFU admission
  uint64_t bytes_used = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

namespace internal {

/// Doorkeeper + 4-bit count-min sketch: the frequency estimator behind
/// TinyLFU admission. Not thread-safe; the owning shard's mutex guards it.
class FrequencySketch {
 public:
  /// Records one access. The first sighting of a hash lands in the
  /// doorkeeper; repeats increment the sketch (4 rows, conservative update:
  /// only counters at the current minimum grow, which keeps collision
  /// overestimation down; saturating at 15). Every kSampleWindow accesses
  /// all counters halve and the doorkeeper clears, aging out stale
  /// popularity.
  void Record(uint64_t hash) {
    if (++accesses_ >= kSampleWindow) Age();
    if (!TestAndSetDoor(hash)) return;
    uint8_t min_count = 15;
    for (int row = 0; row < kRows; ++row) {
      min_count = std::min(min_count, GetCounter(row, Slot(hash, row)));
    }
    if (min_count >= 15) return;
    for (int row = 0; row < kRows; ++row) {
      size_t slot = Slot(hash, row);
      if (GetCounter(row, slot) == min_count) {
        SetCounter(row, slot, static_cast<uint8_t>(min_count + 1));
      }
    }
  }

  /// Estimated recent frequency: doorkeeper bit + min over sketch rows.
  uint32_t Estimate(uint64_t hash) const {
    uint32_t est = TestDoor(hash) ? 1 : 0;
    uint8_t min_count = 15;
    for (int row = 0; row < kRows; ++row) {
      min_count = std::min(min_count, GetCounter(row, Slot(hash, row)));
    }
    return est + min_count;
  }

 private:
  static constexpr int kRows = 4;
  static constexpr size_t kSlots = 1024;          // per row, power of two
  // Short window relative to the table: long one-hit streams age out
  // before their collision floor can rival a genuinely hot key's count.
  static constexpr uint64_t kSampleWindow = 4 * kSlots;
  static constexpr size_t kDoorBits = 8 * kSlots;  // power of two

  static size_t Slot(uint64_t hash, int row) {
    // Independent-ish row hashes from one 64-bit input.
    uint64_t h = hash * (0x9E3779B97F4A7C15ull + 2ull * row + 1ull);
    return static_cast<size_t>(h >> 32) & (kSlots - 1);
  }

  bool TestDoor(uint64_t hash) const {
    size_t bit = static_cast<size_t>(hash ^ (hash >> 17)) & (kDoorBits - 1);
    return (door_[bit >> 3] >> (bit & 7)) & 1;
  }
  /// Returns true if the bit was already set (the key is a repeat).
  bool TestAndSetDoor(uint64_t hash) {
    size_t bit = static_cast<size_t>(hash ^ (hash >> 17)) & (kDoorBits - 1);
    uint8_t mask = static_cast<uint8_t>(1u << (bit & 7));
    bool was_set = (door_[bit >> 3] & mask) != 0;
    door_[bit >> 3] |= mask;
    return was_set;
  }

  uint8_t GetCounter(int row, size_t slot) const {
    uint8_t packed = counters_[row][slot >> 1];
    return (slot & 1) ? (packed >> 4) : (packed & 0x0F);
  }
  void SetCounter(int row, size_t slot, uint8_t v) {
    uint8_t& packed = counters_[row][slot >> 1];
    if (slot & 1) {
      packed = static_cast<uint8_t>((packed & 0x0F) | (v << 4));
    } else {
      packed = static_cast<uint8_t>((packed & 0xF0) | v);
    }
  }

  void Age() {
    accesses_ = 0;
    for (auto& row : counters_) {
      for (uint8_t& packed : row) {
        // Halve both nibbles in place.
        packed = static_cast<uint8_t>((packed >> 1) & 0x77);
      }
    }
    door_.fill(0);
  }

  uint64_t accesses_ = 0;
  std::array<std::array<uint8_t, kSlots / 2>, kRows> counters_{};
  std::array<uint8_t, kDoorBits / 8> door_{};
};

}  // namespace internal

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity_bytes` is the total budget across all shards; 0 disables the
  /// cache (every Get misses, Put is a no-op). `tinylfu_admission` enables
  /// the doorkeeper/sketch admission filter (see file comment).
  explicit ShardedLruCache(size_t capacity_bytes, size_t num_shards = 16,
                           bool tinylfu_admission = false)
      : capacity_bytes_(capacity_bytes), tinylfu_(tinylfu_admission) {
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      if (tinylfu_) {
        shards_.back()->sketch =
            std::make_unique<internal::FrequencySketch>();
      }
    }
    shard_capacity_ = capacity_bytes_ / num_shards;
    if (capacity_bytes_ > 0 && shard_capacity_ == 0) shard_capacity_ = 1;
  }

  /// Looks up `key`, refreshing its recency on a hit.
  std::optional<Value> Get(const Key& key) {
    if (capacity_bytes_ == 0) return std::nullopt;
    uint64_t hash = Hash{}(key);
    Shard& shard = ShardForHash(hash);
    MutexLock lock(shard.mu);
    if (shard.sketch != nullptr) shard.sketch->Record(hash);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts or replaces `key`, accounting `charge` bytes against the
  /// budget and evicting LRU entries as needed. An entry larger than a
  /// whole shard's budget is not admitted — and any existing entry under
  /// the key is dropped, so a rejected replacement never leaves a stale
  /// value behind. With TinyLFU admission on, a new key whose insert would
  /// evict must beat the LRU victim's estimated frequency to get in.
  void Put(const Key& key, Value value, size_t charge) {
    if (capacity_bytes_ == 0) return;
    if (charge > shard_capacity_) {
      Erase(key);
      return;
    }
    uint64_t hash = Hash{}(key);
    Shard& shard = ShardForHash(hash);
    MutexLock lock(shard.mu);
    if (shard.sketch != nullptr) shard.sketch->Record(hash);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->charge;
      shard.lru.erase(it->second);
      shard.map.erase(it);
    } else if (shard.sketch != nullptr &&
               shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
      // Admission: the candidate must beat EVERY entry its insert would
      // displace, walked coldest-first — a large-charge candidate cannot
      // buy its way in past one cold tiny victim, and an admitted one
      // never flushes a hotter entry sitting behind the tail. A one-hit
      // wonder (doorkeeper only) loses to anything the sketch has seen
      // again, so a cold sweep cannot flush the shard.
      const uint32_t cand = shard.sketch->Estimate(hash);
      size_t bytes_after = shard.bytes + charge;
      for (auto vit = shard.lru.rbegin();
           vit != shard.lru.rend() && bytes_after > shard_capacity_; ++vit) {
        if (cand <= shard.sketch->Estimate(Hash{}(vit->key))) {
          ++shard.admission_rejects;
          return;
        }
        bytes_after -= vit->charge;
      }
    }
    EvictToFitLocked(shard, charge);
    shard.lru.push_front(Entry{key, std::move(value), charge});
    shard.map[key] = shard.lru.begin();
    shard.bytes += charge;
    ++shard.insertions;
  }

  /// Removes `key` if present.
  bool Erase(const Key& key) {
    if (capacity_bytes_ == 0) return false;
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  /// Result of a RetainIf sweep.
  struct RetainResult {
    uint64_t retained = 0;
    uint64_t evicted = 0;
  };

  /// Keeps only the entries for which `pred(key)` is true, dropping the
  /// rest (counted as evictions). The precision-invalidation primitive:
  /// a publish evicts exactly the scopes it touched instead of Clear()ing
  /// the whole cache. Each shard is swept under its own mutex.
  template <typename Pred>
  RetainResult RetainIf(Pred pred) {
    RetainResult result;
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (pred(it->key)) {
          ++result.retained;
          ++it;
          continue;
        }
        shard.bytes -= it->charge;
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.evictions;
        ++result.evicted;
      }
    }
    return result;
  }

  /// Drops every entry (hit/miss counters are retained).
  void Clear() {
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      shard.lru.clear();
      shard.map.clear();
      shard.bytes = 0;
    }
  }

  LruCacheCounters Counters() const {
    LruCacheCounters out;
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      out.hits += shard.hits;
      out.misses += shard.misses;
      out.insertions += shard.insertions;
      out.evictions += shard.evictions;
      out.admission_rejects += shard.admission_rejects;
      out.bytes_used += shard.bytes;
      out.entries += shard.map.size();
    }
    return out;
  }

  size_t capacity_bytes() const { return capacity_bytes_; }
  bool enabled() const { return capacity_bytes_ > 0; }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t charge;
  };

  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map
        GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t insertions GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
    uint64_t admission_rejects GUARDED_BY(mu) = 0;
    // Present only with TinyLFU admission on (~2.5 KiB per shard). The
    // pointer is written once at construction; the sketch state behind it
    // mutates on every probe, under the shard lock.
    std::unique_ptr<internal::FrequencySketch> sketch PT_GUARDED_BY(mu);
  };

  /// Evicts LRU entries until `charge` more bytes fit in the shard budget.
  void EvictToFitLocked(Shard& shard, size_t charge) REQUIRES(shard.mu) {
    while (shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  Shard& ShardFor(const Key& key) const {
    return ShardForHash(Hash{}(key));
  }
  Shard& ShardForHash(uint64_t hash) const {
    return *shards_[hash % shards_.size()];
  }

  size_t capacity_bytes_;
  size_t shard_capacity_;
  bool tinylfu_;
  // unique_ptr keeps Shard (with its mutex) immovable while the vector is
  // sized once in the constructor.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hgs

#endif  // HGS_COMMON_LRU_CACHE_H_
