// ShardedLruCache: a byte-budgeted, sharded LRU map used for read-side
// caching (the TGI partition-delta cache). Keys hash to one of N shards,
// each guarded by its own mutex, so concurrent fetch clients rarely
// contend. Eviction is least-recently-used within a shard, driven by the
// per-entry byte charge supplied at insert time.

#ifndef HGS_COMMON_LRU_CACHE_H_
#define HGS_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace hgs {

/// Aggregated counters of a ShardedLruCache (summed across shards).
struct LruCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity_bytes` is the total budget across all shards; 0 disables the
  /// cache (every Get misses, Put is a no-op).
  explicit ShardedLruCache(size_t capacity_bytes, size_t num_shards = 16)
      : capacity_bytes_(capacity_bytes) {
    if (num_shards == 0) num_shards = 1;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    shard_capacity_ = capacity_bytes_ / num_shards;
    if (capacity_bytes_ > 0 && shard_capacity_ == 0) shard_capacity_ = 1;
  }

  /// Looks up `key`, refreshing its recency on a hit.
  std::optional<Value> Get(const Key& key) {
    if (capacity_bytes_ == 0) return std::nullopt;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts or replaces `key`, accounting `charge` bytes against the
  /// budget and evicting LRU entries as needed. An entry larger than a
  /// whole shard's budget is not admitted — and any existing entry under
  /// the key is dropped, so a rejected replacement never leaves a stale
  /// value behind.
  void Put(const Key& key, Value value, size_t charge) {
    if (capacity_bytes_ == 0) return;
    if (charge > shard_capacity_) {
      Erase(key);
      return;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->charge;
      shard.lru.erase(it->second);
      shard.map.erase(it);
    }
    while (shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.push_front(Entry{key, std::move(value), charge});
    shard.map[key] = shard.lru.begin();
    shard.bytes += charge;
    ++shard.insertions;
  }

  /// Removes `key` if present.
  bool Erase(const Key& key) {
    if (capacity_bytes_ == 0) return false;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.bytes -= it->second->charge;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  /// Drops every entry (hit/miss counters are retained).
  void Clear() {
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.map.clear();
      shard.bytes = 0;
    }
  }

  LruCacheCounters Counters() const {
    LruCacheCounters out;
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.mu);
      out.hits += shard.hits;
      out.misses += shard.misses;
      out.insertions += shard.insertions;
      out.evictions += shard.evictions;
      out.bytes_used += shard.bytes;
      out.entries += shard.map.size();
    }
    return out;
  }

  size_t capacity_bytes() const { return capacity_bytes_; }
  bool enabled() const { return capacity_bytes_ > 0; }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t charge;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) const {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  size_t capacity_bytes_;
  size_t shard_capacity_;
  // unique_ptr keeps Shard (with its mutex) immovable while the vector is
  // sized once in the constructor.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hgs

#endif  // HGS_COMMON_LRU_CACHE_H_
