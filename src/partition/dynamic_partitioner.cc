#include "partition/dynamic_partitioner.h"

namespace hgs {

Partitioning PartitionTimespan(const Graph& start_state,
                               std::span<const Event> events,
                               TimeInterval span,
                               const DynamicPartitionOptions& options) {
  if (options.strategy == PartitionStrategy::kRandom) {
    return Partitioning::Random(options.num_partitions);
  }
  WeightedGraph collapsed =
      CollapseTemporalGraph(start_state, events, span, options.collapse);
  LocalityPartitionOptions lp = options.locality;
  lp.k = options.num_partitions;
  return LocalityPartition(collapsed, lp);
}

}  // namespace hgs
