#include "partition/static_partitioner.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/rng.h"

namespace hgs {

Partitioning RandomPartition(uint32_t k) { return Partitioning::Random(k); }

namespace {

// Deterministic BFS-order node stream: visiting neighbors together lets the
// greedy pass see locality. Components are seeded from the highest-degree
// unvisited node.
std::vector<NodeId> BfsStreamOrder(const WeightedGraph& g, uint64_t seed) {
  std::vector<NodeId> order;
  order.reserve(g.NumNodes());
  std::vector<NodeId> by_degree;
  by_degree.reserve(g.NumNodes());
  for (const auto& [id, w] : g.node_weights) {
    (void)w;
    by_degree.push_back(id);
  }
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    size_t da = g.adjacency.at(a).size();
    size_t db = g.adjacency.at(b).size();
    return da != db ? da > db : a < b;
  });
  (void)seed;
  std::unordered_map<NodeId, bool> visited;
  visited.reserve(g.NumNodes());
  for (NodeId root : by_degree) {
    if (visited[root]) continue;
    std::deque<NodeId> queue{root};
    visited[root] = true;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (NodeId v : g.adjacency.at(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

Partitioning LocalityPartition(const WeightedGraph& g,
                               const LocalityPartitionOptions& options) {
  uint32_t k = std::max<uint32_t>(1, options.k);
  size_t n = g.NumNodes();
  if (n == 0) return Partitioning(k, {});
  size_t cap = (n + k - 1) / k;  // ceil(n/k): the paper's balance upper bound

  std::unordered_map<NodeId, PartitionId> assign;
  assign.reserve(n);
  std::vector<size_t> sizes(k, 0);

  // --- Phase 1: LDG streaming assignment in BFS order. -------------------
  // score(P) = w(neighbors already in P) * (1 - |P|/cap); ties to the
  // emptier partition.
  for (NodeId id : BfsStreamOrder(g, options.seed)) {
    std::vector<double> nbr_weight(k, 0.0);
    for (NodeId nb : g.adjacency.at(id)) {
      auto it = assign.find(nb);
      if (it != assign.end()) {
        nbr_weight[it->second] += g.EdgeWeight(id, nb);
      }
    }
    PartitionId best = 0;
    double best_score = -1.0;
    for (uint32_t p = 0; p < k; ++p) {
      if (sizes[p] >= cap) continue;
      double penalty =
          1.0 - static_cast<double>(sizes[p]) / static_cast<double>(cap);
      double score = nbr_weight[p] * penalty + 1e-9 * penalty;
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    assign[id] = best;
    ++sizes[best];
  }

  // --- Phase 2: FM-style refinement. --------------------------------------
  // Single-node moves with positive cut gain, respecting the balance bounds.
  size_t floor_size = n / k;
  Rng rng(options.seed);
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (const auto& [id, p] : assign) {
    (void)p;
    nodes.push_back(id);
  }
  std::sort(nodes.begin(), nodes.end());
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    // Deterministic shuffle per pass.
    for (size_t i = nodes.size(); i > 1; --i) {
      std::swap(nodes[i - 1], nodes[rng.Uniform(i)]);
    }
    size_t moves = 0;
    for (NodeId id : nodes) {
      PartitionId cur = assign[id];
      if (sizes[cur] <= floor_size) continue;  // would break lower bound
      std::vector<double> nbr_weight(k, 0.0);
      for (NodeId nb : g.adjacency.at(id)) {
        nbr_weight[assign[nb]] += g.EdgeWeight(id, nb);
      }
      PartitionId best = cur;
      double best_gain = 0.0;
      for (uint32_t p = 0; p < k; ++p) {
        if (p == cur || sizes[p] >= cap) continue;
        double gain = nbr_weight[p] - nbr_weight[cur];
        if (gain > best_gain) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != cur) {
        --sizes[cur];
        ++sizes[best];
        assign[id] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }

  return Partitioning(k, std::move(assign));
}

}  // namespace hgs
