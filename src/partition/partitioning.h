// Partition assignments and the weighted collapsed graphs they are computed
// from (Section 4.5 of the paper).

#ifndef HGS_PARTITION_PARTITIONING_H_
#define HGS_PARTITION_PARTITIONING_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace hgs {

/// A static weighted graph — the output of temporal collapse Ω and the input
/// of the static partitioners.
struct WeightedGraph {
  std::unordered_map<NodeId, double> node_weights;
  std::unordered_map<EdgeKey, double, EdgeKeyHash> edge_weights;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency;

  void AddNode(NodeId id, double w = 1.0) {
    auto [it, inserted] = node_weights.try_emplace(id, w);
    if (!inserted) it->second = w;
    adjacency.try_emplace(id);
  }

  void AddEdge(NodeId u, NodeId v, double w = 1.0) {
    AddNode(u, node_weights.count(u) ? node_weights[u] : 1.0);
    AddNode(v, node_weights.count(v) ? node_weights[v] : 1.0);
    auto [it, inserted] = edge_weights.try_emplace(EdgeKey(u, v), w);
    if (!inserted) {
      it->second = w;
      return;
    }
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }

  double EdgeWeight(NodeId u, NodeId v) const {
    auto it = edge_weights.find(EdgeKey(u, v));
    return it == edge_weights.end() ? 0.0 : it->second;
  }

  size_t NumNodes() const { return node_weights.size(); }
  size_t NumEdges() const { return edge_weights.size(); }
};

/// Assignment of nodes to k horizontal partitions. Nodes that appear later
/// (not present when the partitioning was computed) fall back to a hash.
class Partitioning {
 public:
  Partitioning() = default;
  Partitioning(uint32_t k, std::unordered_map<NodeId, PartitionId> map)
      : k_(k), assignment_(std::move(map)) {}

  /// Pure hash partitioning with no stored map.
  static Partitioning Random(uint32_t k) { return Partitioning(k, {}); }

  uint32_t k() const { return k_; }

  PartitionId Of(NodeId id) const {
    auto it = assignment_.find(id);
    if (it != assignment_.end()) return it->second;
    return HashFallback(id);
  }

  PartitionId HashFallback(NodeId id) const {
    uint64_t h = id * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    return static_cast<PartitionId>(h % (k_ == 0 ? 1 : k_));
  }

  bool HasExplicitAssignment(NodeId id) const {
    return assignment_.contains(id);
  }

  const std::unordered_map<NodeId, PartitionId>& assignment() const {
    return assignment_;
  }
  std::unordered_map<NodeId, PartitionId>* mutable_assignment() {
    return &assignment_;
  }

  /// Weighted edge-cut of this assignment on `g`.
  double EdgeCut(const WeightedGraph& g) const;

  /// Per-partition node counts over the nodes of `g`.
  std::vector<size_t> PartitionSizes(const WeightedGraph& g) const;

 private:
  uint32_t k_ = 1;
  std::unordered_map<NodeId, PartitionId> assignment_;
};

}  // namespace hgs

#endif  // HGS_PARTITION_PARTITIONING_H_
