// Dynamic graph partitioning (Section 4.5): per-timespan repartitioning.
// Within a timespan the assignment is fixed; at each timespan boundary the
// graph over the span is collapsed (Ω) and partitioned afresh.

#ifndef HGS_PARTITION_DYNAMIC_PARTITIONER_H_
#define HGS_PARTITION_DYNAMIC_PARTITIONER_H_

#include <span>
#include <vector>

#include "partition/static_partitioner.h"
#include "partition/temporal_collapse.h"

namespace hgs {

enum class PartitionStrategy {
  kRandom,    ///< node-id hash; no bookkeeping (Micropartitions table unused)
  kLocality,  ///< Ω-collapse + LDG/FM min-cut per timespan
};

struct DynamicPartitionOptions {
  PartitionStrategy strategy = PartitionStrategy::kRandom;
  uint32_t num_partitions = 4;
  CollapseOptions collapse;  // paper default: Union-Max edges, uniform nodes
  LocalityPartitionOptions locality;
};

/// Computes the partitioning to use for a timespan, from the state at span
/// start and the span's events.
Partitioning PartitionTimespan(const Graph& start_state,
                               std::span<const Event> events,
                               TimeInterval span,
                               const DynamicPartitionOptions& options);

}  // namespace hgs

#endif  // HGS_PARTITION_DYNAMIC_PARTITIONER_H_
