#include "partition/temporal_collapse.h"

#include <algorithm>
#include <cstdlib>

namespace hgs {

namespace {

double EdgeWeightOf(const Attributes& attrs, const std::string& weight_attr) {
  auto v = attrs.Get(weight_attr);
  if (!v.has_value()) return 1.0;
  return std::strtod(std::string(*v).c_str(), nullptr);
}

// Per-edge accumulation across the span: existence intervals and weights.
struct EdgeAccum {
  double max_weight = 0.0;
  double weight_time_integral = 0.0;  // Σ weight × duration
  bool ever_existed = false;
  // Open interval bookkeeping while replaying:
  bool currently_exists = false;
  double current_weight = 0.0;
  Timestamp since = 0;

  void Open(Timestamp t, double w) {
    currently_exists = true;
    current_weight = w;
    since = t;
    ever_existed = true;
    max_weight = std::max(max_weight, w);
  }
  void Close(Timestamp t) {
    if (!currently_exists) return;
    weight_time_integral +=
        current_weight * static_cast<double>(t - since);
    currently_exists = false;
  }
  void Reweight(Timestamp t, double w) {
    Close(t);
    Open(t, w);
  }
};

struct NodeAccum {
  bool ever_existed = false;
  double degree_time_integral = 0.0;
  size_t current_degree = 0;
  Timestamp degree_since = 0;
  bool alive = false;

  void TouchDegree(Timestamp t, int delta) {
    degree_time_integral +=
        static_cast<double>(current_degree) * static_cast<double>(t - degree_since);
    degree_since = t;
    current_degree = static_cast<size_t>(
        std::max<int64_t>(0, static_cast<int64_t>(current_degree) + delta));
  }
};

}  // namespace

WeightedGraph CollapseTemporalGraph(const Graph& start_state,
                                    std::span<const Event> events,
                                    TimeInterval span,
                                    const CollapseOptions& options) {
  if (options.edge_fn == CollapseFn::kMedian) {
    // Replay to the median timepoint and take that snapshot.
    Timestamp median = span.start + (span.end - span.start) / 2;
    Graph g = start_state;
    for (const Event& e : events) {
      if (e.time > median) break;
      ApplyEventToGraph(e, &g);
    }
    WeightedGraph out;
    g.ForEachNode([&](NodeId id, const NodeRecord&) { out.AddNode(id); });
    g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord& rec) {
      out.AddEdge(key.u, key.v, EdgeWeightOf(rec.attrs, options.weight_attr));
    });
    if (options.node_fn != NodeWeightFn::kUniform) {
      for (auto& [id, w] : out.node_weights) {
        w = static_cast<double>(out.adjacency.at(id).size());
      }
    }
    // Ω constraint: include every vertex that existed at least once.
    for (const Event& e : events) {
      if (e.time <= median) continue;
      if (e.type == EventType::kAddNode && !out.node_weights.contains(e.u)) {
        out.AddNode(e.u);
      }
      if (e.type == EventType::kAddEdge) {
        if (!out.node_weights.contains(e.u)) out.AddNode(e.u);
        if (!out.node_weights.contains(e.v)) out.AddNode(e.v);
      }
    }
    return out;
  }

  // Union-style collapse: track per-edge existence over the whole span.
  std::unordered_map<EdgeKey, EdgeAccum, EdgeKeyHash> edge_acc;
  std::unordered_map<NodeId, NodeAccum> node_acc;

  auto touch_node = [&](NodeId id) -> NodeAccum& {
    auto& acc = node_acc[id];
    acc.ever_existed = true;
    return acc;
  };

  // Seed from the start state.
  start_state.ForEachNode([&](NodeId id, const NodeRecord&) {
    auto& acc = touch_node(id);
    acc.alive = true;
    acc.degree_since = span.start;
  });
  start_state.ForEachEdge([&](const EdgeKey& key, const EdgeRecord& rec) {
    edge_acc[key].Open(span.start, EdgeWeightOf(rec.attrs, options.weight_attr));
    touch_node(key.u).current_degree++;
    touch_node(key.v).current_degree++;
  });

  for (const Event& e : events) {
    if (e.time >= span.end) break;
    switch (e.type) {
      case EventType::kAddNode: {
        auto& acc = touch_node(e.u);
        acc.alive = true;
        break;
      }
      case EventType::kRemoveNode: {
        auto it = node_acc.find(e.u);
        if (it != node_acc.end()) it->second.alive = false;
        break;
      }
      case EventType::kAddEdge: {
        double w = EdgeWeightOf(e.attrs, options.weight_attr);
        auto& acc = edge_acc[EdgeKey(e.u, e.v)];
        if (!acc.currently_exists) {
          acc.Open(e.time, w);
          touch_node(e.u).TouchDegree(e.time, +1);
          touch_node(e.v).TouchDegree(e.time, +1);
        } else {
          acc.Reweight(e.time, w);
        }
        break;
      }
      case EventType::kRemoveEdge: {
        auto it = edge_acc.find(EdgeKey(e.u, e.v));
        if (it != edge_acc.end() && it->second.currently_exists) {
          it->second.Close(e.time);
          touch_node(e.u).TouchDegree(e.time, -1);
          touch_node(e.v).TouchDegree(e.time, -1);
        }
        break;
      }
      case EventType::kSetEdgeAttr: {
        if (e.key == options.weight_attr) {
          auto it = edge_acc.find(EdgeKey(e.u, e.v));
          if (it != edge_acc.end() && it->second.currently_exists) {
            it->second.Reweight(e.time,
                                std::strtod(e.value.c_str(), nullptr));
          }
        }
        break;
      }
      default:
        break;  // attribute events don't affect structure
    }
  }
  // Close all open intervals at span end.
  for (auto& [key, acc] : edge_acc) acc.Close(span.end);
  for (auto& [id, acc] : node_acc) acc.TouchDegree(span.end, 0);

  WeightedGraph out;
  for (const auto& [id, acc] : node_acc) {
    if (acc.ever_existed) out.AddNode(id);
  }
  double span_len = std::max<double>(1.0, static_cast<double>(span.end - span.start));
  for (const auto& [key, acc] : edge_acc) {
    if (!acc.ever_existed) continue;
    double w = options.edge_fn == CollapseFn::kUnionMax
                   ? acc.max_weight
                   : acc.weight_time_integral / span_len;
    if (w <= 0.0) w = 1e-6;  // existed but infinitesimally: keep connectivity
    out.AddEdge(key.u, key.v, w);
  }
  switch (options.node_fn) {
    case NodeWeightFn::kUniform:
      break;
    case NodeWeightFn::kDegree:
      for (auto& [id, w] : out.node_weights) {
        w = static_cast<double>(out.adjacency.at(id).size());
      }
      break;
    case NodeWeightFn::kAvgDegree:
      for (auto& [id, w] : out.node_weights) {
        auto it = node_acc.find(id);
        w = it == node_acc.end()
                ? 1.0
                : it->second.degree_time_integral / span_len;
      }
      break;
  }
  return out;
}

}  // namespace hgs
