// Temporal collapse Ω (Section 4.5): projecting the evolving graph over a
// time span [ts, te) to a single weighted static graph that the static
// partitioner runs on. Gτ must contain every vertex that existed at least
// once during τ.

#ifndef HGS_PARTITION_TEMPORAL_COLLAPSE_H_
#define HGS_PARTITION_TEMPORAL_COLLAPSE_H_

#include <span>
#include <vector>

#include "delta/event.h"
#include "graph/graph.h"
#include "partition/partitioning.h"

namespace hgs {

/// Edge-weight collapse choice (paper's options 1-3).
enum class CollapseFn {
  /// State of the graph at the median timepoint of the span.
  kMedian,
  /// Edge included if it existed at any time; weight = max over time.
  kUnionMax,
  /// Edge included if it existed at any time; weight = time-weighted mean
  /// (non-existence counts as 0). Default for TGI is kUnionMax.
  kUnionMean,
};

/// Node-weight choice (paper's options 1-3 for w_n).
enum class NodeWeightFn {
  kUniform,    ///< w = 1
  kDegree,     ///< w = collapsed degree
  kAvgDegree,  ///< w = time-averaged degree over the span
};

struct CollapseOptions {
  CollapseFn edge_fn = CollapseFn::kUnionMax;
  NodeWeightFn node_fn = NodeWeightFn::kUniform;
  /// Attribute carrying the edge weight; absent attribute = weight 1.
  std::string weight_attr = "weight";
};

/// Collapses `start_state` evolved by `events` (chronological, timestamps in
/// [span.start, span.end)) into a weighted static graph.
WeightedGraph CollapseTemporalGraph(const Graph& start_state,
                                    std::span<const Event> events,
                                    TimeInterval span,
                                    const CollapseOptions& options);

}  // namespace hgs

#endif  // HGS_PARTITION_TEMPORAL_COLLAPSE_H_
