// Static graph partitioners (Section 4.5): the building blocks the dynamic
// (temporal) partitioner runs on the collapsed graph.
//
//  * RandomPartition: node-id hash, zero bookkeeping, poor locality — the
//    paper's "Random" configuration in Fig 15a.
//  * LocalityPartition: streaming linear deterministic greedy (LDG)
//    assignment in BFS order followed by bounded Fiduccia–Mattheyses-style
//    refinement — the paper's "Maxflow" (min-cut) configuration. Balance
//    constraint: ⌊V/k⌋ ≤ |Pr| ≤ ⌈V/k⌉.

#ifndef HGS_PARTITION_STATIC_PARTITIONER_H_
#define HGS_PARTITION_STATIC_PARTITIONER_H_

#include "partition/partitioning.h"

namespace hgs {

/// Hash-based partitioning (no stored assignment).
Partitioning RandomPartition(uint32_t k);

struct LocalityPartitionOptions {
  uint32_t k = 4;
  /// FM refinement passes over all nodes (0 disables refinement).
  int refine_passes = 2;
  /// Deterministic seed for tie-breaking.
  uint64_t seed = 42;
};

/// LDG + FM locality-aware partitioning of the weighted graph.
Partitioning LocalityPartition(const WeightedGraph& g,
                               const LocalityPartitionOptions& options);

}  // namespace hgs

#endif  // HGS_PARTITION_STATIC_PARTITIONER_H_
