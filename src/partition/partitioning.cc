#include "partition/partitioning.h"

namespace hgs {

double Partitioning::EdgeCut(const WeightedGraph& g) const {
  double cut = 0.0;
  for (const auto& [key, w] : g.edge_weights) {
    if (Of(key.u) != Of(key.v)) cut += w;
  }
  return cut;
}

std::vector<size_t> Partitioning::PartitionSizes(const WeightedGraph& g) const {
  std::vector<size_t> sizes(k_, 0);
  for (const auto& [id, w] : g.node_weights) {
    (void)w;
    ++sizes[Of(id)];
  }
  return sizes;
}

}  // namespace hgs
