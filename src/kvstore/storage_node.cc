#include "kvstore/storage_node.h"

#include <thread>

namespace hgs {

StorageNode::StorageNode(int node_id, size_t server_threads,
                         LatencyModel latency, uint64_t fault_seed)
    : node_id_(node_id),
      latency_(latency),
      faults_(fault_seed ^ (0x9E3779B97F4A7C15ull *
                            static_cast<uint64_t>(node_id + 1))),
      servers_(server_threads) {}

void StorageNode::ChargeLatency(size_t keys, size_t bytes,
                                int64_t extra_micros) {
  // Injected latency (slow node, spikes) is waited even when the base model
  // is disabled: a scripted fault is always real.
  int64_t micros = latency_.CostMicros(keys, bytes) + extra_micros;
  stats_.simulated_micros.fetch_add(static_cast<uint64_t>(micros),
                                    std::memory_order_relaxed);
  if (micros <= 0) return;
  if (!latency_.precise_wait) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
    return;
  }
  // sleep_for on many hosts has ~1ms granularity, far coarser than the
  // sub-millisecond latencies this model expresses. Wait to a wall-clock
  // deadline instead: a coarse sleep covers the bulk, then a yield-spin
  // reaches the deadline precisely. Because the deadline is absolute,
  // concurrent waits overlap exactly as real I/O would.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  constexpr int64_t kSleepGranularityMicros = 1'500;
  if (micros > kSleepGranularityMicros) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(micros - kSleepGranularityMicros));
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

Status StorageNode::DownError() const {
  return Status::IOError("storage node " + std::to_string(node_id_) +
                         " is down");
}

Status StorageNode::TransientFault() {
  stats_.injected_faults.fetch_add(1, std::memory_order_relaxed);
  return Status::IOError("storage node " + std::to_string(node_id_) +
                         ": transient fault");
}

SharedValue StorageNode::MaybeCorrupt(SharedValue value) {
  uint64_t seed = 0;
  if (value.empty() || !faults_.ShouldCorrupt(&seed)) return value;
  stats_.injected_corruptions.fetch_add(1, std::memory_order_relaxed);
  std::string bytes(value.view());
  bytes[seed % bytes.size()] ^= 0x40;
  return SharedValue(std::move(bytes));
}

Result<SharedValue> StorageNode::DoGet(const std::string& key) {
  if (IsDown()) return DownError();
  FaultDecision fault = faults_.OnRequest();
  if (fault.fail) {
    ChargeLatency(1, 0, fault.extra_micros);
    return TransientFault();
  }
  SharedValue value;
  {
    MutexLock lock(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) {
      // A miss still costs a seek.
      stats_.get_requests.fetch_add(1, std::memory_order_relaxed);
      ChargeLatency(1, 0, fault.extra_micros);
      return Status::NotFound("key not found");
    }
    value = SharedValue(it->second, *it->second);
  }
  stats_.get_requests.fetch_add(1, std::memory_order_relaxed);
  stats_.keys_read.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(value.size(), std::memory_order_relaxed);
  ChargeLatency(1, value.size(), fault.extra_micros);
  return MaybeCorrupt(std::move(value));
}

std::vector<Result<SharedValue>> StorageNode::DoMultiGet(
    const std::vector<std::string>& keys) {
  std::vector<Result<SharedValue>> out;
  out.reserve(keys.size());
  if (IsDown()) {
    Status down = DownError();
    for (size_t i = 0; i < keys.size(); ++i) out.push_back(down);
    return out;
  }
  FaultDecision fault = faults_.OnRequest();
  if (fault.fail) {
    ChargeLatency(keys.size(), 0, fault.extra_micros);
    Status st = TransientFault();
    for (size_t i = 0; i < keys.size(); ++i) out.push_back(st);
    return out;
  }
  size_t found = 0;
  size_t bytes = 0;
  {
    MutexLock lock(mu_);
    for (const std::string& key : keys) {
      auto it = data_.find(key);
      if (it == data_.end()) {
        out.push_back(Status::NotFound("key not found"));
      } else {
        ++found;
        bytes += it->second->size();
        out.push_back(SharedValue(it->second, *it->second));
      }
    }
  }
  for (Result<SharedValue>& res : out) {
    if (res.ok()) *res = MaybeCorrupt(std::move(*res));
  }
  stats_.get_requests.fetch_add(1, std::memory_order_relaxed);
  stats_.keys_read.fetch_add(found, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  // One round trip: a single seek covers the whole batch.
  ChargeLatency(keys.size(), bytes, fault.extra_micros);
  return out;
}

Result<std::vector<KVPair>> StorageNode::DoScan(const std::string& prefix) {
  if (IsDown()) return DownError();
  FaultDecision fault = faults_.OnRequest();
  if (fault.fail) {
    ChargeLatency(1, 0, fault.extra_micros);
    return TransientFault();
  }
  std::vector<KVPair> out;
  size_t bytes = 0;
  {
    MutexLock lock(mu_);
    for (auto it = data_.lower_bound(prefix);
         it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      out.push_back(KVPair{it->first, SharedValue(it->second, *it->second)});
      bytes += it->second->size();
    }
  }
  for (KVPair& kv : out) kv.value = MaybeCorrupt(std::move(kv.value));
  stats_.scan_requests.fetch_add(1, std::memory_order_relaxed);
  stats_.keys_read.fetch_add(out.size(), std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  // Clustered rows: one seek for the whole contiguous run.
  ChargeLatency(out.size(), bytes, fault.extra_micros);
  return out;
}

std::future<Result<SharedValue>> StorageNode::SubmitGet(std::string key) {
  return servers_.Submit(
      [this, key = std::move(key)]() { return DoGet(key); });
}

std::future<std::vector<Result<SharedValue>>> StorageNode::SubmitMultiGet(
    std::vector<std::string> keys) {
  return servers_.Submit(
      [this, keys = std::move(keys)]() { return DoMultiGet(keys); });
}

std::future<Result<std::vector<KVPair>>> StorageNode::SubmitScan(
    std::string prefix) {
  return servers_.Submit(
      [this, prefix = std::move(prefix)]() { return DoScan(prefix); });
}

Status StorageNode::Put(std::string key, std::string value) {
  auto stored = std::make_shared<const std::string>(std::move(value));
  std::vector<NodePutRow> rows;
  rows.push_back(NodePutRow{std::move(key), std::move(stored)});
  return PutBatch(std::move(rows));
}

Status StorageNode::PutBatch(std::vector<NodePutRow> rows) {
  if (IsDown()) return DownError();
  FaultDecision fault = faults_.OnRequest();
  if (fault.fail) {
    if (latency_.charge_writes) ChargeLatency(rows.size(), 0, fault.extra_micros);
    return TransientFault();
  }
  size_t bytes = 0;
  size_t count = rows.size();
  {
    MutexLock lock(mu_);
    for (NodePutRow& row : rows) {
      bytes += row.value->size();
      auto it = data_.find(row.key);
      if (it != data_.end()) {
        stats_.bytes_stored.fetch_sub(it->second->size(),
                                      std::memory_order_relaxed);
      }
      stats_.bytes_stored.fetch_add(row.value->size(),
                                    std::memory_order_relaxed);
      data_[std::move(row.key)] = std::move(row.value);
    }
  }
  stats_.put_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.rows_put.fetch_add(count, std::memory_order_relaxed);
  stats_.bytes_put.fetch_add(bytes, std::memory_order_relaxed);
  // One round trip commits the whole batch.
  if (latency_.charge_writes) ChargeLatency(count, bytes, fault.extra_micros);
  return Status::OK();
}

std::future<Status> StorageNode::SubmitPutBatch(std::vector<NodePutRow> rows) {
  return servers_.Submit(
      [this, rows = std::move(rows)]() mutable {
        return PutBatch(std::move(rows));
      });
}

Status StorageNode::Delete(const std::string& key, bool* existed) {
  if (existed != nullptr) *existed = false;
  if (IsDown()) return DownError();
  FaultDecision fault = faults_.OnRequest();
  if (fault.fail) return TransientFault();
  bool found = EraseRow(key);
  if (existed != nullptr) *existed = found;
  if (latency_.charge_writes) ChargeLatency(1, 0, fault.extra_micros);
  return Status::OK();
}

std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
StorageNode::SnapshotContents() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>> out;
  out.reserve(data_.size());
  for (const auto& [key, value] : data_) out.emplace_back(key, value);
  return out;
}

void StorageNode::RestoreRow(std::string key,
                             std::shared_ptr<const std::string> value) {
  MutexLock lock(mu_);
  auto it = data_.find(key);
  if (it != data_.end()) {
    stats_.bytes_stored.fetch_sub(it->second->size(),
                                  std::memory_order_relaxed);
  }
  stats_.bytes_stored.fetch_add(value->size(), std::memory_order_relaxed);
  data_[std::move(key)] = std::move(value);
}

bool StorageNode::EraseRow(const std::string& key) {
  MutexLock lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  stats_.bytes_stored.fetch_sub(it->second->size(), std::memory_order_relaxed);
  data_.erase(it);
  return true;
}

size_t StorageNode::NumKeys() const {
  MutexLock lock(mu_);
  return data_.size();
}

uint64_t StorageNode::ContentFingerprint() const {
  MutexLock lock(mu_);
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const auto& [key, value] : data_) {
    h ^= Fnv1a64(key.data(), key.size());
    h *= 1099511628211ull;
    h ^= Fnv1a64(value->data(), value->size());
    h *= 1099511628211ull;
  }
  return h;
}

void StorageNode::ResetStats() {
  stats_.get_requests.store(0);
  stats_.scan_requests.store(0);
  stats_.keys_read.store(0);
  stats_.bytes_read.store(0);
  stats_.simulated_micros.store(0);
  stats_.put_batches.store(0);
  stats_.rows_put.store(0);
  stats_.bytes_put.store(0);
  stats_.injected_faults.store(0);
  stats_.injected_corruptions.store(0);
}

}  // namespace hgs
