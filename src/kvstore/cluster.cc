#include "kvstore/cluster.h"

#include <future>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace hgs {

namespace {

/// Granularity of the hedged-read race and deadline polls. Coarse enough to
/// stay off the scheduler's back, fine relative to the millisecond-scale
/// latencies the simulation deals in.
constexpr auto kPollQuantum = std::chrono::microseconds(100);

/// Decompresses a stored value into a zero-copy window when possible,
/// bumping `*value_copies` when the codec forced a materialization.
Result<SharedValue> DecompressCounted(const SharedValue& stored,
                                      size_t* value_copies) {
  HGS_ASSIGN_OR_RETURN(SharedValue out, DecompressShared(stored));
  if (value_copies != nullptr && out.owner() != stored.owner()) {
    ++*value_copies;
  }
  return out;
}

/// Recovers the placement token embedded in a physical key
/// (table \0 token(8B ordered) key), so repair can re-derive a stored
/// row's replica set without knowing which logical table wrote it.
std::optional<uint64_t> TokenOfPhysicalKey(std::string_view phys) {
  size_t z = phys.find('\0');
  if (z == std::string_view::npos || z + 1 + 8 > phys.size()) {
    return std::nullopt;
  }
  return ReadOrdered64(phys.data() + z + 1);
}

bool Contains(const ReplicaSet& replicas, size_t node) {
  for (uint32_t r : replicas) {
    if (r == node) return true;
  }
  return false;
}

/// A replica's answer settles the read when it is a value or an (authori-
/// tative) absence; hard errors keep the race open.
template <typename T>
bool UsableAnswer(const Result<T>& res) {
  return res.ok() || res.status().IsNotFound();
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(options) {
  if (options_.num_nodes == 0) options_.num_nodes = 1;
  if (options_.replication == 0) options_.replication = 1;
  options_.replication =
      std::min({options_.replication, options_.num_nodes, kMaxReplicas});
  nodes_.reserve(options_.num_nodes);
  node_state_.reserve(options_.num_nodes);
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<StorageNode>(
        static_cast<int>(i), options_.server_threads_per_node,
        options_.latency, options_.fault_seed));
    node_state_.push_back(std::make_unique<NodeClientState>());
  }
}

std::string Cluster::PhysicalKey(std::string_view table, uint64_t partition,
                                 std::string_view key) const {
  // table \0 token(8B ordered) key — scanning a (table, token) prefix yields
  // the clustered rows of one partition in key order.
  std::string out;
  out.reserve(table.size() + 1 + 8 + key.size());
  out.append(table);
  out.push_back('\0');
  AppendOrdered64(&out, PlacementToken(table, partition));
  out.append(key);
  return out;
}

ReplicaSet Cluster::Replicas(uint64_t token) const {
  ReplicaSet out;
  size_t primary = static_cast<size_t>(token % nodes_.size());
  for (size_t i = 0; i < options_.replication; ++i) {
    out.nodes[out.count++] =
        static_cast<uint32_t>((primary + i) % nodes_.size());
  }
  return out;
}

size_t Cluster::RequiredAcks(size_t n_replicas) const {
  switch (options_.write_ack) {
    case WriteAck::kOne:
      return n_replicas == 0 ? 0 : 1;
    case WriteAck::kQuorum:
      return n_replicas / 2 + 1;
    case WriteAck::kAll:
      return n_replicas;
  }
  return n_replicas;
}

Cluster::Deadline Cluster::MakeDeadline() const {
  if (options_.request_deadline_micros <= 0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(options_.request_deadline_micros);
}

bool Cluster::DeadlinePassed(const Deadline& d) {
  return d.has_value() && std::chrono::steady_clock::now() >= *d;
}

Status Cluster::DeadlineError(const Status& last) const {
  std::string msg = "request deadline exceeded (" +
                    std::to_string(options_.request_deadline_micros) + "us)";
  if (!last.ok()) msg += "; last replica error: " + last.ToString();
  return Status::IOError(std::move(msg));
}

void Cluster::Backoff(size_t attempt, const Deadline& deadline) const {
  int64_t us = options_.retry_backoff_micros;
  for (size_t i = 1; i < attempt && us < options_.retry_backoff_cap_micros;
       ++i) {
    us *= 2;
  }
  us = std::min(us, options_.retry_backoff_cap_micros);
  if (deadline.has_value()) {
    auto remain = std::chrono::duration_cast<std::chrono::microseconds>(
                      *deadline - std::chrono::steady_clock::now())
                      .count();
    us = std::min(us, remain);
  }
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void Cluster::CountFailover(ReadCallStats* s) {
  resilience_.failovers.fetch_add(1, std::memory_order_relaxed);
  if (s != nullptr) ++s->failovers;
}

void Cluster::CountRetry(ReadCallStats* s) {
  resilience_.retries.fetch_add(1, std::memory_order_relaxed);
  if (s != nullptr) ++s->retries;
}

void Cluster::CountChecksumFailure(ReadCallStats* s) {
  resilience_.checksum_failures.fetch_add(1, std::memory_order_relaxed);
  if (s != nullptr) ++s->checksum_failures;
}

void Cluster::CountHedge(ReadCallStats* s) {
  resilience_.hedges.fetch_add(1, std::memory_order_relaxed);
  if (s != nullptr) ++s->hedges;
}

void Cluster::CountHedgeWin(ReadCallStats* s) {
  resilience_.hedge_wins.fetch_add(1, std::memory_order_relaxed);
  if (s != nullptr) ++s->hedge_wins;
}

std::shared_ptr<const std::string> Cluster::SealForStorage(
    std::string_view value, ValueSchema schema,
    std::optional<CompressionKind> codec) const {
  return std::make_shared<const std::string>(SealValue(
      Compress(value, codec.value_or(options_.compression), schema)));
}

// -- Hinted handoff ----------------------------------------------------------

void Cluster::EnqueueHint(size_t node, std::string phys,
                          std::shared_ptr<const std::string> value) {
  NodeClientState& st = *node_state_[node];
  MutexLock lock(st.mu);
  if (st.hints.size() >= options_.hint_limit_per_node) {
    // Bounded queue: drop the oldest hint. The node can no longer be made
    // whole by replay alone — only RepairNode clears the overflow.
    st.hints.pop_front();
    st.overflowed = true;
    resilience_.hints_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  st.hints.push_back(Hint{std::move(phys), std::move(value)});
  st.dirty.store(true, std::memory_order_relaxed);
  resilience_.hints_queued.fetch_add(1, std::memory_order_relaxed);
}

void Cluster::SupersedeHints(size_t node, const std::string& phys) {
  NodeClientState& st = *node_state_[node];
  if (!st.dirty.load(std::memory_order_relaxed)) return;
  MutexLock lock(st.mu);
  st.hints.erase(std::remove_if(st.hints.begin(), st.hints.end(),
                                [&phys](const Hint& h) {
                                  return h.key == phys;
                                }),
                 st.hints.end());
  if (st.hints.empty() && !st.overflowed) {
    st.dirty.store(false, std::memory_order_relaxed);
  }
}

bool Cluster::NodeDirty(size_t node) const {
  return node < node_state_.size() &&
         node_state_[node]->dirty.load(std::memory_order_relaxed);
}

size_t Cluster::PendingHints(size_t node) const {
  if (node >= node_state_.size()) return 0;
  MutexLock lock(node_state_[node]->mu);
  return node_state_[node]->hints.size();
}

Status Cluster::ReplayHints(size_t node) {
  if (node >= nodes_.size()) return Status::InvalidArgument("no such node");
  if (nodes_[node]->IsDown()) {
    return Status::FailedPrecondition(
        "node is down; rejoin it before replaying hints");
  }
  NodeClientState& st = *node_state_[node];
  while (true) {
    Hint hint;
    {
      MutexLock lock(st.mu);
      if (st.hints.empty()) break;
      hint = std::move(st.hints.front());
      st.hints.pop_front();
    }
    // Hints replay in queue order, so a later write of the same key lands
    // last and the node converges to the newest value.
    Status applied = hint.value == nullptr
                         ? DeleteRowFromNode(node, hint.key)
                         : WriteRowToNode(node, hint.key, hint.value);
    if (!applied.ok()) {
      // Node unreachable again mid-replay: put the hint back and report.
      MutexLock lock(st.mu);
      st.hints.push_front(std::move(hint));
      return applied;
    }
    resilience_.hints_replayed.fetch_add(1, std::memory_order_relaxed);
  }
  MutexLock lock(st.mu);
  if (st.hints.empty() && !st.overflowed) {
    st.dirty.store(false, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Cluster::RepairNode(size_t target) {
  if (target >= nodes_.size()) return Status::InvalidArgument("no such node");
  if (nodes_[target]->IsDown()) {
    return Status::FailedPrecondition(
        "node is down; rejoin it before repairing");
  }
  NodeClientState& st = *node_state_[target];
  {
    // Full reconciliation supersedes any queued hints (and recovers from
    // hint overflow — this is the only path that clears it).
    MutexLock lock(st.mu);
    st.hints.clear();
    st.overflowed = false;
  }

  // Authoritative contents the target should hold, assembled from live
  // peers. Replicas store identical sealed buffers, so any live holder is
  // authoritative; the first live peer holding a row wins.
  std::unordered_map<std::string, std::shared_ptr<const std::string>> expected;
  for (size_t peer = 0; peer < nodes_.size(); ++peer) {
    if (peer == target || nodes_[peer]->IsDown()) continue;
    for (auto& [key, value] : nodes_[peer]->SnapshotContents()) {
      std::optional<uint64_t> token = TokenOfPhysicalKey(key);
      if (!token.has_value()) continue;
      if (!Contains(Replicas(*token), target)) continue;
      expected.emplace(key, value);
    }
  }

  uint64_t streamed = 0;
  // Rows the target holds that no live peer says it should hold were
  // deleted while the target was away. Erase only when some live peer is
  // itself a replica for the row (so an authoritative view existed);
  // otherwise the target may be the sole surviving holder — keep the row.
  for (auto& [key, value] : nodes_[target]->SnapshotContents()) {
    auto it = expected.find(key);
    if (it != expected.end()) {
      if (*it->second == *value) {
        expected.erase(it);  // already correct; nothing to stream
      }
      continue;  // differs: restored below
    }
    std::optional<uint64_t> token = TokenOfPhysicalKey(key);
    if (!token.has_value()) continue;
    for (uint32_t r : Replicas(*token)) {
      if (r != target && !nodes_[r]->IsDown()) {
        nodes_[target]->EraseRow(key);
        ++streamed;
        break;
      }
    }
  }
  // Stream in missing and differing rows, sharing the peer's exact buffer
  // so the repaired node ends byte-identical to a never-faulted twin.
  for (auto& [key, value] : expected) {
    nodes_[target]->RestoreRow(key, value);
    ++streamed;
  }
  resilience_.repair_rows.fetch_add(streamed, std::memory_order_relaxed);
  st.dirty.store(false, std::memory_order_relaxed);
  return Status::OK();
}

// -- Writes ------------------------------------------------------------------

Status Cluster::WriteRowToNode(
    size_t node, const std::string& phys,
    const std::shared_ptr<const std::string>& value) {
  StorageNode* n = nodes_[node].get();
  for (size_t attempt = 0;; ++attempt) {
    std::vector<NodePutRow> rows;
    rows.push_back(NodePutRow{phys, value});
    Status st = n->PutBatch(std::move(rows));
    if (st.ok()) return st;
    if (n->IsDown() || attempt >= options_.max_retries) return st;
    CountRetry(nullptr);
    Backoff(attempt + 1, std::nullopt);
  }
}

Status Cluster::DeleteRowFromNode(size_t node, const std::string& phys,
                                  bool* existed) {
  StorageNode* n = nodes_[node].get();
  for (size_t attempt = 0;; ++attempt) {
    Status st = n->Delete(phys, existed);
    if (st.ok()) return st;
    if (n->IsDown() || attempt >= options_.max_retries) return st;
    CountRetry(nullptr);
    Backoff(attempt + 1, std::nullopt);
  }
}

Status Cluster::FinishWrite(size_t acks, size_t replicas, const char* what) {
  size_t required = RequiredAcks(replicas);
  if (acks < required) {
    resilience_.failed_writes.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError(std::string(what) + " acked by " +
                           std::to_string(acks) + " of " +
                           std::to_string(replicas) + " replicas (" +
                           std::to_string(required) +
                           " required); missed replicas hinted");
  }
  if (acks < replicas) {
    resilience_.degraded_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Cluster::Put(std::string_view table, uint64_t partition,
                    std::string_view key, std::string_view value,
                    ValueSchema schema, std::optional<CompressionKind> codec) {
  std::string phys = PhysicalKey(table, partition, key);
  std::shared_ptr<const std::string> stored =
      SealForStorage(value, schema, codec);
  ReplicaSet replicas = Replicas(PlacementToken(table, partition));
  size_t acks = 0;
  for (uint32_t node : replicas) {
    Status st = WriteRowToNode(node, phys, stored);
    if (st.ok()) {
      ++acks;
      // A committed write makes any hint queued for this key obsolete.
      SupersedeHints(node, phys);
    } else {
      EnqueueHint(node, phys, stored);
    }
  }
  return FinishWrite(acks, replicas.size(), "put");
}

Status Cluster::MultiPut(std::string_view table, std::vector<PutRow> rows,
                         size_t* put_batches) {
  if (put_batches != nullptr) *put_batches = 0;
  if (rows.empty()) return Status::OK();

  // Seal each row once and fan the shared buffer out to its replicas'
  // node groups.
  struct SealedRow {
    std::string phys;
    std::shared_ptr<const std::string> value;
    uint8_t replicas;
  };
  std::vector<SealedRow> sealed;
  sealed.reserve(rows.size());
  std::unordered_map<size_t, std::vector<size_t>> by_node;  // node -> rows
  for (PutRow& row : rows) {
    ReplicaSet replicas = Replicas(PlacementToken(table, row.partition));
    sealed.push_back(SealedRow{PhysicalKey(table, row.partition, row.key),
                               SealForStorage(row.value, row.schema, row.codec),
                               static_cast<uint8_t>(replicas.size())});
    for (uint32_t node : replicas) by_node[node].push_back(sealed.size() - 1);
  }

  auto build_batch = [&sealed](const std::vector<size_t>& idxs) {
    std::vector<NodePutRow> batch;
    batch.reserve(idxs.size());
    for (size_t i : idxs) {
      batch.push_back(NodePutRow{sealed[i].phys, sealed[i].value});
    }
    return batch;
  };

  // One concurrent batched submission per node: group commit.
  std::vector<
      std::tuple<size_t, std::vector<size_t>, std::future<Status>>>
      inflight;
  inflight.reserve(by_node.size());
  for (auto& [node, idxs] : by_node) {
    std::future<Status> fut = nodes_[node]->SubmitPutBatch(build_batch(idxs));
    inflight.emplace_back(node, std::move(idxs), std::move(fut));
  }
  if (put_batches != nullptr) *put_batches = inflight.size();

  std::vector<uint32_t> acks(sealed.size(), 0);
  for (auto& [node, idxs, fut] : inflight) {
    Status st = fut.get();
    // A failed node batch is retried synchronously with backoff (the other
    // nodes have already committed by now), then hinted row by row.
    for (size_t attempt = 0;
         !st.ok() && !nodes_[node]->IsDown() && attempt < options_.max_retries;
         ++attempt) {
      CountRetry(nullptr);
      Backoff(attempt + 1, std::nullopt);
      st = nodes_[node]->PutBatch(build_batch(idxs));
    }
    if (st.ok()) {
      if (node_state_[node]->dirty.load(std::memory_order_relaxed)) {
        for (size_t i : idxs) SupersedeHints(node, sealed[i].phys);
      }
      for (size_t i : idxs) ++acks[i];
    } else {
      for (size_t i : idxs) EnqueueHint(node, sealed[i].phys, sealed[i].value);
    }
  }

  size_t failed_rows = 0;
  size_t degraded_rows = 0;
  for (size_t i = 0; i < sealed.size(); ++i) {
    size_t required = RequiredAcks(sealed[i].replicas);
    if (acks[i] < required) {
      ++failed_rows;
    } else if (acks[i] < sealed[i].replicas) {
      ++degraded_rows;
    }
  }
  if (degraded_rows > 0) {
    resilience_.degraded_writes.fetch_add(degraded_rows,
                                          std::memory_order_relaxed);
  }
  if (failed_rows > 0) {
    resilience_.failed_writes.fetch_add(failed_rows,
                                        std::memory_order_relaxed);
    return Status::IOError("multiput: " + std::to_string(failed_rows) +
                           " of " + std::to_string(sealed.size()) +
                           " rows missed their ack level; missed replicas "
                           "hinted");
  }
  return Status::OK();
}

Result<bool> Cluster::Delete(std::string_view table, uint64_t partition,
                             std::string_view key) {
  std::string phys = PhysicalKey(table, partition, key);
  ReplicaSet replicas = Replicas(PlacementToken(table, partition));
  size_t acks = 0;
  bool any = false;
  for (uint32_t node : replicas) {
    bool existed = false;
    Status st = DeleteRowFromNode(node, phys, &existed);
    if (st.ok()) {
      ++acks;
      any |= existed;
      // The delete also obsoletes any queued (older) write hint for the key.
      SupersedeHints(node, phys);
    } else {
      // Tombstone hint: replay must delete, or the key would resurrect on
      // rejoin.
      EnqueueHint(node, phys, nullptr);
    }
  }
  HGS_RETURN_NOT_OK(FinishWrite(acks, replicas.size(), "delete"));
  return any;
}

// -- Reads -------------------------------------------------------------------

size_t Cluster::ServingOrder(const ReplicaSet& replicas,
                             std::array<uint32_t, kMaxReplicas>* order) const {
  size_t n = replicas.size();
  size_t start = read_counter_.fetch_add(1, std::memory_order_relaxed) % n;
  // Snapshot each replica's state once so a concurrent dirty-flag flip
  // can't make a node appear in both passes (or neither).
  std::array<uint8_t, kMaxReplicas> state{};  // 0 live+clean, 1 dirty, 2 down
  for (size_t i = 0; i < n; ++i) {
    uint32_t node = replicas[i];
    state[i] = nodes_[node]->IsDown() ? 2 : (NodeDirty(node) ? 1 : 0);
  }
  size_t count = 0;
  // Clean live replicas first (rotated for load balancing) ...
  for (size_t i = 0; i < n; ++i) {
    size_t slot = (start + i) % n;
    if (state[slot] == 0) (*order)[count++] = replicas[slot];
  }
  // ... dirty live replicas as a last resort: they may be missing writes,
  // so they only serve when no clean replica is available.
  for (size_t i = 0; i < n; ++i) {
    size_t slot = (start + i) % n;
    if (state[slot] == 1) (*order)[count++] = replicas[slot];
  }
  return count;
}

template <typename T, typename SubmitFn>
Result<T> Cluster::HedgedSubmit(size_t primary, const ReplicaSet& replicas,
                                const std::string& phys, SubmitFn&& submit,
                                const Deadline& deadline,
                                ReadCallStats* call_stats, size_t* winner) {
  *winner = primary;
  std::future<Result<T>> fut = submit(primary, phys);
  int64_t hedge_us = options_.hedge_after_micros;
  if (hedge_us <= 0) {
    if (!deadline.has_value()) return fut.get();
    // No hedging, but the deadline still bounds how long we wait: poll the
    // future and abandon it when the budget runs out.
    while (fut.wait_for(kPollQuantum) != std::future_status::ready) {
      if (DeadlinePassed(deadline)) return DeadlineError(Status::OK());
    }
    return fut.get();
  }
  if (fut.wait_for(std::chrono::microseconds(hedge_us)) ==
      std::future_status::ready) {
    return fut.get();
  }
  if (DeadlinePassed(deadline)) return DeadlineError(Status::OK());

  // Primary is slow: fire a second-chance request at another live replica
  // and race the two. The losing future is abandoned — its task completes
  // harmlessly in the node's server pool.
  size_t alt = nodes_.size();
  for (uint32_t r : replicas) {
    if (r != primary && !nodes_[r]->IsDown()) {
      alt = r;
      break;
    }
  }
  if (alt == nodes_.size()) return fut.get();  // nowhere to hedge
  CountHedge(call_stats);
  std::future<Result<T>> hedge = submit(alt, phys);

  auto wait_out = [this, &deadline](std::future<Result<T>>& f) {
    while (f.wait_for(kPollQuantum) != std::future_status::ready) {
      if (DeadlinePassed(deadline)) return false;
    }
    return true;
  };

  while (true) {
    if (fut.wait_for(kPollQuantum) == std::future_status::ready) {
      Result<T> res = fut.get();
      if (UsableAnswer(res)) return res;
      // Primary failed hard; the hedge is the only hope left.
      if (!wait_out(hedge)) return res;
      Result<T> second = hedge.get();
      if (UsableAnswer(second)) {
        CountHedgeWin(call_stats);
        *winner = alt;
        return second;
      }
      return res;
    }
    if (hedge.wait_for(kPollQuantum) == std::future_status::ready) {
      Result<T> second = hedge.get();
      if (UsableAnswer(second)) {
        CountHedgeWin(call_stats);
        *winner = alt;
        return second;
      }
      // Hedge failed hard; fall back to however long the primary takes.
      if (!wait_out(fut)) return second;
      return fut.get();
    }
    if (DeadlinePassed(deadline)) {
      return DeadlineError(Status::OK());
    }
  }
}

Result<SharedValue> Cluster::Get(std::string_view table, uint64_t partition,
                                 std::string_view key, size_t* value_copies,
                                 ReadCallStats* call_stats) {
  if (value_copies != nullptr) *value_copies = 0;
  if (call_stats != nullptr) *call_stats = ReadCallStats{};
  std::string phys = PhysicalKey(table, partition, key);
  ReplicaSet replicas = Replicas(PlacementToken(table, partition));
  Deadline deadline = MakeDeadline();

  std::array<uint32_t, kMaxReplicas> order;
  size_t candidates = ServingOrder(replicas, &order);
  Status last = Status::IOError("no replica available");
  bool tried = false;
  for (size_t i = 0; i < candidates; ++i) {
    size_t node = order[i];
    if (tried) CountFailover(call_stats);
    tried = true;
    for (size_t attempt = 0;; ++attempt) {
      if (DeadlinePassed(deadline)) return DeadlineError(last);
      size_t winner = node;
      Result<SharedValue> res = HedgedSubmit<SharedValue>(
          node, replicas, phys,
          [this](size_t target, const std::string& k) {
            return nodes_[target]->SubmitGet(k);
          },
          deadline, call_stats, &winner);
      if (res.ok()) {
        Result<SharedValue> unsealed = UnsealValue(*res);
        if (!unsealed.ok()) {
          // Corrupt bytes: a replica failure, not a query error. Fail over.
          CountChecksumFailure(call_stats);
          last = unsealed.status();
          break;
        }
        return DecompressCounted(*unsealed, value_copies);
      }
      if (res.status().IsNotFound()) {
        // NotFound from a clean replica is authoritative. From a dirty
        // replica (rejoined with hints pending) the key may simply have
        // missed it — fall through to the next replica.
        if (!NodeDirty(winner)) return res.status();
        last = res.status();
        break;
      }
      last = res.status();
      if (nodes_[node]->IsDown()) break;  // crashed mid-flight: fail over
      if (attempt >= options_.max_retries) break;
      CountRetry(call_stats);
      Backoff(attempt + 1, deadline);
    }
  }
  return last;
}

Result<std::vector<std::optional<SharedValue>>> Cluster::MultiGet(
    std::string_view table, const std::vector<MultiGetKey>& keys,
    size_t* node_batches, size_t* value_copies, ReadCallStats* call_stats,
    std::vector<Status>* key_status) {
  std::vector<std::optional<SharedValue>> out(keys.size());
  if (node_batches != nullptr) *node_batches = 0;
  if (value_copies != nullptr) *value_copies = 0;
  if (call_stats != nullptr) *call_stats = ReadCallStats{};
  if (key_status != nullptr) key_status->assign(keys.size(), Status::OK());
  if (keys.empty()) return out;

  Deadline deadline = MakeDeadline();

  // Pick a serving replica per key (clean live nodes preferred) and group
  // the key indices by node.
  std::vector<uint64_t> tokens(keys.size());
  std::unordered_map<size_t, std::vector<size_t>> by_node;
  for (size_t i = 0; i < keys.size(); ++i) {
    tokens[i] = PlacementToken(table, keys[i].partition);
    std::array<uint32_t, kMaxReplicas> order;
    size_t candidates = ServingOrder(Replicas(tokens[i]), &order);
    if (candidates == 0) {
      Status err = Status::IOError("no live replica for key");
      if (key_status == nullptr) return err;  // strict legacy contract
      (*key_status)[i] = err;                 // degrade: serve the rest
      continue;
    }
    by_node[order[0]].push_back(i);
  }

  struct Batch {
    size_t node;
    std::vector<size_t> idxs;  // indices into `keys`
    std::future<std::vector<Result<SharedValue>>> fut;
  };
  std::vector<Batch> inflight;
  inflight.reserve(by_node.size());
  for (auto& [node, idxs] : by_node) {
    std::vector<std::string> phys;
    phys.reserve(idxs.size());
    for (size_t i : idxs) {
      phys.push_back(PhysicalKey(table, keys[i].partition, keys[i].key));
    }
    std::future<std::vector<Result<SharedValue>>> fut =
        nodes_[node]->SubmitMultiGet(std::move(phys));
    inflight.push_back(Batch{node, std::move(idxs), std::move(fut)});
  }
  if (node_batches != nullptr) *node_batches += inflight.size();

  // Per-key final resolution, shared by the primary and hedge paths. A key
  // whose serving node failed mid-flight, served corrupt bytes, or answered
  // NotFound while dirty retries through the per-key Get path, which
  // carries the full retry/failover/hedging machinery.
  Status fatal;  // first unservable key's error, strict mode only
  auto resolve = [&](size_t i, size_t serving_node,
                     Result<SharedValue>& res) {
    if (res.ok()) {
      Result<SharedValue> unsealed = UnsealValue(*res);
      if (unsealed.ok()) {
        Result<SharedValue> plain =
            DecompressCounted(*unsealed, value_copies);
        if (plain.ok()) {
          out[i] = std::move(*plain);
          return;
        }
      } else {
        CountChecksumFailure(call_stats);
      }
    } else if (res.status().IsNotFound() && !NodeDirty(serving_node)) {
      return;  // authoritative absence -> nullopt
    }
    // (Get's out-params reset, so accumulate through locals.)
    if (node_batches != nullptr) ++*node_batches;
    size_t retry_copies = 0;
    ReadCallStats retry_stats;
    Result<SharedValue> retry =
        Get(table, keys[i].partition, keys[i].key, &retry_copies,
            &retry_stats);
    if (value_copies != nullptr) *value_copies += retry_copies;
    if (call_stats != nullptr) call_stats->Merge(retry_stats);
    if (retry.ok()) {
      out[i] = std::move(*retry);
      return;
    }
    if (retry.status().IsNotFound()) return;  // absent
    if (key_status != nullptr) {
      (*key_status)[i] = retry.status();
    } else if (fatal.ok()) {
      fatal = retry.status();
    }
  };

  struct HedgeGroup {
    size_t node;
    std::vector<size_t> idxs;
    std::future<std::vector<Result<SharedValue>>> fut;
  };

  const int64_t hedge_us = options_.hedge_after_micros;
  for (Batch& b : inflight) {
    std::vector<HedgeGroup> hedges;
    bool use_hedges = false;
    bool deadline_hit = false;
    if (hedge_us > 0 &&
        b.fut.wait_for(std::chrono::microseconds(hedge_us)) !=
            std::future_status::ready) {
      // Slow batch: regroup its keys by each key's next live replica and
      // fire second-chance batches there.
      std::unordered_map<size_t, std::vector<size_t>> alt_nodes;
      for (size_t i : b.idxs) {
        ReplicaSet replicas = Replicas(tokens[i]);
        for (uint32_t r : replicas) {
          if (r != b.node && !nodes_[r]->IsDown()) {
            alt_nodes[r].push_back(i);
            break;
          }
        }
      }
      for (auto& [node, idxs] : alt_nodes) {
        std::vector<std::string> phys;
        phys.reserve(idxs.size());
        for (size_t i : idxs) {
          phys.push_back(PhysicalKey(table, keys[i].partition, keys[i].key));
        }
        std::future<std::vector<Result<SharedValue>>> fut =
            nodes_[node]->SubmitMultiGet(std::move(phys));
        hedges.push_back(HedgeGroup{node, std::move(idxs), std::move(fut)});
        CountHedge(call_stats);
      }
      if (node_batches != nullptr) *node_batches += hedges.size();
      // Race the primary batch against the hedge side: whichever is fully
      // ready first serves the keys.
      while (!hedges.empty()) {
        if (b.fut.wait_for(kPollQuantum) == std::future_status::ready) break;
        bool all_ready = true;
        for (HedgeGroup& h : hedges) {
          if (h.fut.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            all_ready = false;
            break;
          }
        }
        if (all_ready) {
          use_hedges = true;
          break;
        }
        if (DeadlinePassed(deadline)) {
          deadline_hit = true;
          break;
        }
      }
    }

    if (deadline_hit) {
      Status derr = DeadlineError(Status::OK());
      if (key_status == nullptr) return derr;
      for (size_t i : b.idxs) {
        if (!out[i].has_value() && (*key_status)[i].ok()) {
          (*key_status)[i] = derr;
        }
      }
      continue;
    }

    if (use_hedges) {
      std::unordered_set<size_t> served;
      for (HedgeGroup& h : hedges) {
        CountHedgeWin(call_stats);
        std::vector<Result<SharedValue>> batch = h.fut.get();
        for (size_t j = 0; j < h.idxs.size(); ++j) {
          resolve(h.idxs[j], h.node, batch[j]);
          served.insert(h.idxs[j]);
        }
      }
      // Keys with no alternate replica still need the primary's answer;
      // otherwise the slow primary batch is abandoned.
      if (served.size() < b.idxs.size()) {
        std::vector<Result<SharedValue>> pbatch = b.fut.get();
        for (size_t j = 0; j < b.idxs.size(); ++j) {
          if (served.count(b.idxs[j]) != 0) continue;
          resolve(b.idxs[j], b.node, pbatch[j]);
        }
      }
    } else {
      std::vector<Result<SharedValue>> pbatch = b.fut.get();
      for (size_t j = 0; j < b.idxs.size(); ++j) {
        resolve(b.idxs[j], b.node, pbatch[j]);
      }
    }
    if (!fatal.ok()) return fatal;
  }
  return out;
}

Result<std::vector<KVPair>> Cluster::Scan(std::string_view table,
                                          uint64_t partition,
                                          std::string_view key_prefix,
                                          size_t* value_copies,
                                          ReadCallStats* call_stats) {
  if (value_copies != nullptr) *value_copies = 0;
  if (call_stats != nullptr) *call_stats = ReadCallStats{};
  std::string phys_prefix = PhysicalKey(table, partition, key_prefix);
  size_t strip = table.size() + 1 + 8;  // logical key offset
  ReplicaSet replicas = Replicas(PlacementToken(table, partition));
  Deadline deadline = MakeDeadline();

  std::array<uint32_t, kMaxReplicas> order;
  size_t candidates = ServingOrder(replicas, &order);
  Status last = Status::IOError("no replica available");
  bool tried = false;
  for (size_t i = 0; i < candidates; ++i) {
    size_t node = order[i];
    if (tried) CountFailover(call_stats);
    tried = true;
    for (size_t attempt = 0;; ++attempt) {
      if (DeadlinePassed(deadline)) return DeadlineError(last);
      size_t winner = node;
      Result<std::vector<KVPair>> res =
          HedgedSubmit<std::vector<KVPair>>(
              node, replicas, phys_prefix,
              [this](size_t target, const std::string& prefix) {
                return nodes_[target]->SubmitScan(prefix);
              },
              deadline, call_stats, &winner);
      if (res.ok()) {
        std::vector<KVPair> out;
        out.reserve(res->size());
        size_t copies = 0;
        bool clean = true;
        for (KVPair& kv : *res) {
          Result<SharedValue> unsealed = UnsealValue(kv.value);
          if (!unsealed.ok()) {
            // One corrupt row spoils the replica's whole answer: fail over.
            CountChecksumFailure(call_stats);
            last = unsealed.status();
            clean = false;
            break;
          }
          HGS_ASSIGN_OR_RETURN(SharedValue plain,
                               DecompressCounted(*unsealed, &copies));
          out.push_back(KVPair{kv.key.substr(strip), std::move(plain)});
        }
        if (clean) {
          if (value_copies != nullptr) *value_copies += copies;
          return out;
        }
        break;  // next replica
      }
      last = res.status();
      if (res.status().IsNotFound()) break;  // defensive: scans don't 404
      if (nodes_[node]->IsDown()) break;
      if (attempt >= options_.max_retries) break;
      CountRetry(call_stats);
      Backoff(attempt + 1, deadline);
    }
  }
  return last;
}

// -- Administration and telemetry --------------------------------------------

void Cluster::SetNodeDown(size_t node, bool down) {
  // Rejoining does NOT clear pending hints: the node stays dirty until
  // ReplayHints or RepairNode reconciles it.
  if (node < nodes_.size()) nodes_[node]->SetDown(down);
}

void Cluster::SetFaultProfile(size_t node, const FaultProfile& profile) {
  if (node < nodes_.size()) nodes_[node]->SetFaultProfile(profile);
}

uint64_t Cluster::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_stored.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalKeys() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n->NumKeys();
  return total;
}

uint64_t Cluster::TotalReadRequests() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().get_requests.load(std::memory_order_relaxed) +
             n->stats().scan_requests.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalBytesRead() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_read.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalPutBatches() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().put_batches.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalRowsPut() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().rows_put.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalBytesPut() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_put.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::ContentFingerprint() const {
  uint64_t h = 1469598103934665603ull;
  for (const auto& n : nodes_) {
    h ^= n->ContentFingerprint();
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Cluster::NodeContentFingerprint(size_t node) const {
  return node < nodes_.size() ? nodes_[node]->ContentFingerprint() : 0;
}

void Cluster::ResetStats() {
  for (auto& n : nodes_) n->ResetStats();
  resilience_.failovers.store(0);
  resilience_.retries.store(0);
  resilience_.hedges.store(0);
  resilience_.hedge_wins.store(0);
  resilience_.checksum_failures.store(0);
  resilience_.degraded_writes.store(0);
  resilience_.failed_writes.store(0);
  resilience_.hints_queued.store(0);
  resilience_.hints_replayed.store(0);
  resilience_.hints_dropped.store(0);
  resilience_.repair_rows.store(0);
}

void Cluster::PublishTouched(std::vector<EpochKey> touched) {
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  MutexLock lock(epoch_mu_);
  auto next = std::make_shared<EpochVector>(*epochs_);
  next->global += 1;
  for (EpochKey key : touched) {
    auto it = std::lower_bound(
        next->sub.begin(), next->sub.end(), key,
        [](const std::pair<EpochKey, uint64_t>& e, EpochKey k) {
          return e.first < k;
        });
    if (it != next->sub.end() && it->first == key) {
      it->second = next->global;
    } else {
      next->sub.insert(it, {key, next->global});
    }
  }
  epochs_ = std::move(next);
}

void Cluster::BumpPublishEpoch() {
  MutexLock lock(epoch_mu_);
  auto next = std::make_shared<EpochVector>();
  next->global = epochs_->global + 1;
  next->base = next->global;
  epochs_ = std::move(next);
}

}  // namespace hgs
