#include "kvstore/cluster.h"

#include <future>
#include <unordered_map>
#include <utility>

namespace hgs {

namespace {

/// Decompresses a stored value into a zero-copy window when possible,
/// bumping `*value_copies` when the codec forced a materialization.
Result<SharedValue> DecompressCounted(const SharedValue& stored,
                                      size_t* value_copies) {
  HGS_ASSIGN_OR_RETURN(SharedValue out, DecompressShared(stored));
  if (value_copies != nullptr && out.owner() != stored.owner()) {
    ++*value_copies;
  }
  return out;
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(options) {
  if (options_.num_nodes == 0) options_.num_nodes = 1;
  if (options_.replication == 0) options_.replication = 1;
  options_.replication = std::min(options_.replication, options_.num_nodes);
  nodes_.reserve(options_.num_nodes);
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<StorageNode>(
        static_cast<int>(i), options_.server_threads_per_node,
        options_.latency));
  }
}

std::string Cluster::PhysicalKey(std::string_view table, uint64_t partition,
                                 std::string_view key) const {
  // table \0 token(8B ordered) key — scanning a (table, token) prefix yields
  // the clustered rows of one partition in key order.
  std::string out;
  out.reserve(table.size() + 1 + 8 + key.size());
  out.append(table);
  out.push_back('\0');
  AppendOrdered64(&out, PlacementToken(table, partition));
  out.append(key);
  return out;
}

std::vector<size_t> Cluster::Replicas(uint64_t token) const {
  std::vector<size_t> out;
  out.reserve(options_.replication);
  size_t primary = static_cast<size_t>(token % nodes_.size());
  for (size_t i = 0; i < options_.replication; ++i) {
    out.push_back((primary + i) % nodes_.size());
  }
  return out;
}

Status Cluster::Put(std::string_view table, uint64_t partition,
                    std::string_view key, std::string_view value) {
  std::string phys = PhysicalKey(table, partition, key);
  std::string stored = Compress(value, options_.compression);
  uint64_t token = PlacementToken(table, partition);
  for (size_t node : Replicas(token)) {
    nodes_[node]->Put(phys, stored);
  }
  return Status::OK();
}

Status Cluster::MultiPut(std::string_view table, std::vector<PutRow> rows,
                         size_t* put_batches) {
  if (put_batches != nullptr) *put_batches = 0;
  if (rows.empty()) return Status::OK();

  // Compress each row once and fan the shared buffer out to its replicas'
  // node groups.
  std::unordered_map<size_t, std::vector<NodePutRow>> by_node;
  for (PutRow& row : rows) {
    std::string phys = PhysicalKey(table, row.partition, row.key);
    auto stored = std::make_shared<const std::string>(
        Compress(row.value, options_.compression));
    uint64_t token = PlacementToken(table, row.partition);
    for (size_t node : Replicas(token)) {
      by_node[node].push_back(NodePutRow{phys, stored});
    }
  }

  // One concurrent batched submission per node: group commit.
  std::vector<std::future<void>> inflight;
  inflight.reserve(by_node.size());
  for (auto& [node, batch] : by_node) {
    inflight.push_back(nodes_[node]->SubmitPutBatch(std::move(batch)));
  }
  if (put_batches != nullptr) *put_batches = inflight.size();
  for (auto& fut : inflight) fut.get();
  return Status::OK();
}

Result<SharedValue> Cluster::Get(std::string_view table, uint64_t partition,
                                 std::string_view key, size_t* value_copies) {
  if (value_copies != nullptr) *value_copies = 0;
  std::string phys = PhysicalKey(table, partition, key);
  uint64_t token = PlacementToken(table, partition);
  std::vector<size_t> replicas = Replicas(token);
  // Round-robin the starting replica so concurrent readers spread load.
  size_t start =
      read_counter_.fetch_add(1, std::memory_order_relaxed) % replicas.size();
  Status last = Status::IOError("no replica available");
  for (size_t i = 0; i < replicas.size(); ++i) {
    StorageNode* node = nodes_[replicas[(start + i) % replicas.size()]].get();
    if (node->IsDown()) continue;
    auto res = node->SubmitGet(phys).get();
    if (res.ok()) return DecompressCounted(*res, value_copies);
    if (res.status().IsNotFound()) return res.status();
    last = res.status();
  }
  return last;
}

Result<std::vector<std::optional<SharedValue>>> Cluster::MultiGet(
    std::string_view table, const std::vector<MultiGetKey>& keys,
    size_t* node_batches, size_t* value_copies) {
  std::vector<std::optional<SharedValue>> out(keys.size());
  if (node_batches != nullptr) *node_batches = 0;
  if (value_copies != nullptr) *value_copies = 0;
  if (keys.empty()) return out;

  // Pick a serving replica per key (load-balanced, skipping down nodes) and
  // group the key indices by node.
  std::unordered_map<size_t, std::vector<size_t>> by_node;
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t token = PlacementToken(table, keys[i].partition);
    std::vector<size_t> replicas = Replicas(token);
    size_t start = read_counter_.fetch_add(1, std::memory_order_relaxed) %
                   replicas.size();
    size_t chosen = nodes_.size();
    for (size_t j = 0; j < replicas.size(); ++j) {
      size_t node = replicas[(start + j) % replicas.size()];
      if (!nodes_[node]->IsDown()) {
        chosen = node;
        break;
      }
    }
    if (chosen == nodes_.size()) {
      return Status::IOError("no replica available");
    }
    by_node[chosen].push_back(i);
  }

  // One concurrent batch request per node; each node's server pool serves
  // its batch while the others are in flight.
  std::vector<std::pair<const std::vector<size_t>*,
                        std::future<std::vector<Result<SharedValue>>>>>
      inflight;
  inflight.reserve(by_node.size());
  for (const auto& [node, idxs] : by_node) {
    std::vector<std::string> phys;
    phys.reserve(idxs.size());
    for (size_t i : idxs) {
      phys.push_back(PhysicalKey(table, keys[i].partition, keys[i].key));
    }
    inflight.emplace_back(&idxs, nodes_[node]->SubmitMultiGet(std::move(phys)));
  }
  if (node_batches != nullptr) *node_batches += inflight.size();

  for (auto& [idxs, fut] : inflight) {
    std::vector<Result<SharedValue>> batch = fut.get();
    for (size_t j = 0; j < idxs->size(); ++j) {
      size_t i = (*idxs)[j];
      Result<SharedValue>& res = batch[j];
      if (res.ok()) {
        HGS_ASSIGN_OR_RETURN(out[i], DecompressCounted(*res, value_copies));
        continue;
      }
      if (res.status().IsNotFound()) continue;  // absent -> nullopt
      // The node failed mid-flight; retry through the failover Get path
      // (whose out-param resets, so accumulate through a local).
      if (node_batches != nullptr) ++*node_batches;
      size_t retry_copies = 0;
      auto retry = Get(table, keys[i].partition, keys[i].key, &retry_copies);
      if (value_copies != nullptr) *value_copies += retry_copies;
      if (retry.ok()) {
        out[i] = std::move(*retry);
      } else if (!retry.status().IsNotFound()) {
        return retry.status();
      }
    }
  }
  return out;
}

Result<std::vector<KVPair>> Cluster::Scan(std::string_view table,
                                          uint64_t partition,
                                          std::string_view key_prefix,
                                          size_t* value_copies) {
  if (value_copies != nullptr) *value_copies = 0;
  std::string phys_prefix = PhysicalKey(table, partition, key_prefix);
  size_t strip = table.size() + 1 + 8;  // logical key offset
  uint64_t token = PlacementToken(table, partition);
  std::vector<size_t> replicas = Replicas(token);
  size_t start =
      read_counter_.fetch_add(1, std::memory_order_relaxed) % replicas.size();
  Status last = Status::IOError("no replica available");
  for (size_t i = 0; i < replicas.size(); ++i) {
    StorageNode* node = nodes_[replicas[(start + i) % replicas.size()]].get();
    if (node->IsDown()) continue;
    auto res = node->SubmitScan(phys_prefix).get();
    if (!res.ok()) {
      last = res.status();
      continue;
    }
    std::vector<KVPair> out;
    out.reserve(res->size());
    for (auto& kv : *res) {
      HGS_ASSIGN_OR_RETURN(SharedValue raw,
                           DecompressCounted(kv.value, value_copies));
      out.push_back(KVPair{kv.key.substr(strip), std::move(raw)});
    }
    return out;
  }
  return last;
}

bool Cluster::Delete(std::string_view table, uint64_t partition,
                     std::string_view key) {
  std::string phys = PhysicalKey(table, partition, key);
  uint64_t token = PlacementToken(table, partition);
  bool any = false;
  for (size_t node : Replicas(token)) {
    any |= nodes_[node]->Delete(phys);
  }
  return any;
}

void Cluster::SetNodeDown(size_t node, bool down) {
  if (node < nodes_.size()) nodes_[node]->SetDown(down);
}

uint64_t Cluster::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_stored.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalKeys() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n->NumKeys();
  return total;
}

uint64_t Cluster::TotalReadRequests() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().get_requests.load(std::memory_order_relaxed) +
             n->stats().scan_requests.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalBytesRead() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_read.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalPutBatches() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().put_batches.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalRowsPut() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().rows_put.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::TotalBytesPut() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->stats().bytes_put.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Cluster::ContentFingerprint() const {
  uint64_t h = 1469598103934665603ull;
  for (const auto& n : nodes_) {
    h ^= n->ContentFingerprint();
    h *= 1099511628211ull;
  }
  return h;
}

void Cluster::ResetStats() {
  for (auto& n : nodes_) n->ResetStats();
}

void Cluster::PublishTouched(std::vector<EpochKey> touched) {
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::lock_guard<std::mutex> lock(epoch_mu_);
  auto next = std::make_shared<EpochVector>(*epochs_);
  next->global += 1;
  for (EpochKey key : touched) {
    auto it = std::lower_bound(
        next->sub.begin(), next->sub.end(), key,
        [](const std::pair<EpochKey, uint64_t>& e, EpochKey k) {
          return e.first < k;
        });
    if (it != next->sub.end() && it->first == key) {
      it->second = next->global;
    } else {
      next->sub.insert(it, {key, next->global});
    }
  }
  epochs_ = std::move(next);
}

void Cluster::BumpPublishEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  auto next = std::make_shared<EpochVector>();
  next->global = epochs_->global + 1;
  next->base = next->global;
  epochs_ = std::move(next);
}

}  // namespace hgs
