// Scriptable, deterministic-seeded fault injection for one simulated
// storage node. The paper's evaluation runs on a replicated Cassandra
// cluster whose failure modes (flaky disks, GC pauses, slow boxes, bit
// rot, dead machines) the analytical model abstracts away; the injector
// makes them expressible inside the simulation so the client-side
// resilience machinery (retries, hedged reads, checksum failover, hinted
// handoff, repair) can be exercised and measured.
//
// A profile is installed per node (Cluster::SetFaultProfile) and drawn
// from per decision by a seeded SplitMix64 stream, so a single-threaded
// scripted scenario replays identically run to run. The hot path is one
// relaxed atomic load when no profile is armed.

#ifndef HGS_KVSTORE_FAULT_INJECTOR_H_
#define HGS_KVSTORE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "common/mutex.h"
#include "common/rng.h"

namespace hgs {

/// What can go wrong on one storage node. All probabilities are per
/// request (transient/latency) or per value returned (corruption).
struct FaultProfile {
  /// Probability a request fails with a transient IOError (the replica is
  /// alive; an immediate retry may succeed). Models flaky NICs, dropped
  /// connections, overload shedding.
  double transient_error_prob = 0.0;
  /// Probability a returned value has one byte flipped (bit rot / torn
  /// read). Surfaces as ChecksumMismatch at the cluster client, which
  /// treats it as a replica failure.
  double corrupt_prob = 0.0;
  /// Latency added to every request (a uniformly slow node). Applied even
  /// when the base latency model is disabled — injected faults are always
  /// real.
  int64_t added_latency_micros = 0;
  /// Tail spikes: with `spike_prob`, a request additionally waits
  /// `spike_latency_micros` (GC pause / compaction stall — the p99 killer
  /// hedged reads exist for).
  double spike_prob = 0.0;
  int64_t spike_latency_micros = 0;
  /// Full crash: every request fails immediately with IOError until the
  /// node rejoins. Subsumes the old StorageNode::SetDown flag.
  bool crashed = false;

  bool HasTransientFaults() const {
    return transient_error_prob > 0 || corrupt_prob > 0 ||
           added_latency_micros > 0 || spike_prob > 0;
  }
};

/// Per-request fault decision, drawn once when a request starts.
struct FaultDecision {
  bool fail = false;            ///< fail the request with a transient error
  int64_t extra_micros = 0;     ///< added latency (slow node + spike)
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  void SetProfile(const FaultProfile& profile) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    profile_ = profile;
    crashed_.store(profile.crashed, std::memory_order_relaxed);
    armed_.store(profile.HasTransientFaults(), std::memory_order_relaxed);
  }

  FaultProfile profile() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return profile_;
  }

  void SetCrashed(bool crashed) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    profile_.crashed = crashed;
    crashed_.store(crashed, std::memory_order_relaxed);
  }

  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// Draws the transient-fault decision for one request. Cheap when no
  /// transient faults are armed.
  FaultDecision OnRequest() EXCLUDES(mu_) {
    FaultDecision d;
    if (!armed_.load(std::memory_order_relaxed)) return d;
    MutexLock lock(mu_);
    d.extra_micros = profile_.added_latency_micros;
    if (profile_.spike_prob > 0 && rng_.Bernoulli(profile_.spike_prob)) {
      d.extra_micros += profile_.spike_latency_micros;
    }
    if (profile_.transient_error_prob > 0 &&
        rng_.Bernoulli(profile_.transient_error_prob)) {
      d.fail = true;
    }
    return d;
  }

  /// Whether one value returned by the current request should be
  /// corrupted, and at which (pseudo-random) byte offset. Drawn per value.
  bool ShouldCorrupt(uint64_t* byte_offset_seed) EXCLUDES(mu_) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    MutexLock lock(mu_);
    if (profile_.corrupt_prob <= 0 || !rng_.Bernoulli(profile_.corrupt_prob)) {
      return false;
    }
    *byte_offset_seed = rng_.Next();
    return true;
  }

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  FaultProfile profile_ GUARDED_BY(mu_);
  // Relaxed mirrors of profile_ fields, so the unfaulted hot path is one
  // atomic load instead of a lock acquisition.
  std::atomic<bool> armed_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace hgs

#endif  // HGS_KVSTORE_FAULT_INJECTOR_H_
