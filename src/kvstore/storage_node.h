// One simulated storage machine: an ordered in-memory store served by a
// bounded pool of server threads behind a request queue, with a latency model
// that charges a seek per request plus per-key and per-byte costs.
//
// The bounded server pool is what makes the simulation faithful to the
// paper's cluster experiments: a machine can only serve `server_threads`
// requests concurrently (the paper's Cassandra boxes had 4 cores), so client
// parallelism c saturates near m * server_threads — the knee visible in
// Figs 11/12.
//
// Every request consults the node's FaultInjector first: a crashed node
// fails everything, a transient fault fails this one request, slow-node and
// spike profiles add latency (waited even when the base latency model is
// off), and corruption flips a byte in a returned value copy — the resident
// data stays intact, modeling rot on the read path, and the cluster's
// per-value checksum turns it into a ChecksumMismatch failover.

#ifndef HGS_KVSTORE_STORAGE_NODE_H_
#define HGS_KVSTORE_STORAGE_NODE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "kvstore/fault_injector.h"
#include "kvstore/kv_types.h"

namespace hgs {

/// Simulated I/O cost parameters (microseconds / bytes-per-microsecond).
struct LatencyModel {
  /// Charged once per Get/Scan request (network round trip + disk seek).
  int64_t seek_micros = 250;
  /// Charged per key touched by a request.
  int64_t per_key_micros = 5;
  /// Simulated transfer bandwidth; charged per value byte returned.
  double bytes_per_micro = 120.0;  // ~120 MB/s
  /// When false, requests complete instantly (pure in-memory store).
  bool enabled = true;
  /// When true, writes are charged the same seek/per-key/per-byte costs as
  /// reads (a put is a round trip too). Off by default: the paper's
  /// evaluation measures retrieval, not construction, and the existing
  /// figure benches assume free writes. The ingest bench turns this on to
  /// make the group-commit batching discipline measurable.
  bool charge_writes = false;
  /// Wait implementation. Precise waits hit sub-millisecond deadlines by
  /// spinning the residue the OS sleep can't express (use when exact
  /// per-request latency matters and waiter concurrency is low). Coarse
  /// waits sleep only — no CPU burn, exact overlap, but latencies are
  /// quantized to the host's ~1ms sleep granularity.
  bool precise_wait = true;

  int64_t CostMicros(size_t keys, size_t bytes) const {
    if (!enabled) return 0;
    return seek_micros + per_key_micros * static_cast<int64_t>(keys) +
           static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_micro);
  }
};

struct StorageNodeStats {
  std::atomic<uint64_t> get_requests{0};
  std::atomic<uint64_t> scan_requests{0};
  std::atomic<uint64_t> keys_read{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_stored{0};
  std::atomic<uint64_t> simulated_micros{0};
  // Write-side counters (the ingest path's FetchStats analogue): every
  // write submission is one batch, so row-at-a-time ingest shows
  // put_batches == rows_put while group-committed ingest shows
  // put_batches << rows_put.
  std::atomic<uint64_t> put_batches{0};
  std::atomic<uint64_t> rows_put{0};
  std::atomic<uint64_t> bytes_put{0};
  // Fault accounting: requests the injector failed transiently, and values
  // it corrupted on the way out.
  std::atomic<uint64_t> injected_faults{0};
  std::atomic<uint64_t> injected_corruptions{0};
};

/// One row of a group-committed write batch. The value buffer is shared:
/// the cluster compresses each logical row once and every replica stores
/// the same buffer.
struct NodePutRow {
  std::string key;
  std::shared_ptr<const std::string> value;
};

class StorageNode {
 public:
  StorageNode(int node_id, size_t server_threads, LatencyModel latency,
              uint64_t fault_seed = 0);

  int node_id() const { return node_id_; }

  /// Point read. NotFound if the key is absent. The returned value is a
  /// zero-copy view of the node's resident buffer; the shared owner keeps
  /// it valid across overwrites and deletes of the key.
  std::future<Result<SharedValue>> SubmitGet(std::string key);

  /// Batched point reads served as ONE request: the seek cost is charged
  /// once for the whole batch (per-key and per-byte costs still apply), and
  /// the batch counts as one get request in the stats. One Result per input
  /// key, in input order; absent keys yield NotFound. Values are zero-copy
  /// views of node memory, like SubmitGet's.
  std::future<std::vector<Result<SharedValue>>> SubmitMultiGet(
      std::vector<std::string> keys);

  /// Prefix scan: all pairs whose key starts with `prefix`, in key order.
  /// Values are zero-copy views of node memory.
  std::future<Result<std::vector<KVPair>>> SubmitScan(std::string prefix);

  /// Point write, counted as a degenerate batch of one. Synchronous; only
  /// charged simulated latency when the model's `charge_writes` is on.
  /// Fails (without applying) when the node is crashed or the injector
  /// draws a transient fault.
  Status Put(std::string key, std::string value);

  /// Group commit: applies all rows under one lock acquisition and counts
  /// the whole batch as ONE write submission (one seek when writes are
  /// charged), mirroring SubmitMultiGet on the read side. Fails atomically
  /// (no row applied) on crash or transient fault.
  Status PutBatch(std::vector<NodePutRow> rows);

  /// PutBatch through the node's server pool, so one client can commit to
  /// several nodes concurrently (Cluster::MultiPut waits on the futures).
  std::future<Status> SubmitPutBatch(std::vector<NodePutRow> rows);

  /// Client-path delete: fails on crash/transient fault; otherwise
  /// *existed reports whether the key was present.
  Status Delete(const std::string& key, bool* existed = nullptr);

  /// Failure injection. SetDown is the crash switch (kept for
  /// compatibility; it toggles FaultProfile::crashed): a down node fails
  /// every request with IOError. Richer fault modes are installed through
  /// SetFaultProfile.
  void SetDown(bool down) { faults_.SetCrashed(down); }
  bool IsDown() const { return faults_.crashed(); }
  void SetFaultProfile(const FaultProfile& profile) {
    faults_.SetProfile(profile);
  }
  FaultProfile fault_profile() const { return faults_.profile(); }

  size_t NumKeys() const;

  /// Order-stable FNV-1a fingerprint of the resident contents (key and
  /// value bytes in key order). Test/diagnostic hook: two nodes holding
  /// byte-identical data fingerprint equal regardless of write order.
  uint64_t ContentFingerprint() const;

  // -- Admin channel (repair/anti-entropy) ---------------------------------
  // These bypass the server pool, the latency model, the fault injector and
  // the client write counters: they model the out-of-band streaming path a
  // real cluster uses for repair, and they work while the node is down.

  /// A point-in-time copy of the resident contents (keys copied, value
  /// buffers shared).
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
  SnapshotContents() const;

  /// Installs a row exactly as given (used by repair to stream a replica's
  /// authoritative copy).
  void RestoreRow(std::string key, std::shared_ptr<const std::string> value);

  /// Removes a row; true if it existed (used by repair to drop rows deleted
  /// while the node was away).
  bool EraseRow(const std::string& key);

  const StorageNodeStats& stats() const { return stats_; }
  void ResetStats();

 private:
  Result<SharedValue> DoGet(const std::string& key);
  std::vector<Result<SharedValue>> DoMultiGet(
      const std::vector<std::string>& keys);
  Result<std::vector<KVPair>> DoScan(const std::string& prefix);
  void ChargeLatency(size_t keys, size_t bytes, int64_t extra_micros = 0);
  Status TransientFault();
  Status DownError() const;
  /// Applies the injector's corruption draw to a value about to be
  /// returned: materializes a copy with one byte flipped (resident data is
  /// untouched).
  SharedValue MaybeCorrupt(SharedValue value);

  const int node_id_;
  LatencyModel latency_;
  mutable Mutex mu_;
  // Values are shared buffers so reads hand out views without copying;
  // an overwrite swaps in a new buffer while live views keep the old one.
  std::map<std::string, std::shared_ptr<const std::string>> data_
      GUARDED_BY(mu_);
  FaultInjector faults_;
  StorageNodeStats stats_;
  ThreadPool servers_;  // must be last: tasks reference the members above
};

}  // namespace hgs

#endif  // HGS_KVSTORE_STORAGE_NODE_H_
