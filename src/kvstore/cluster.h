// The simulated distributed key-value store: m storage nodes, replication
// factor r, token-based placement. This is the repository's stand-in for the
// Apache Cassandra cluster of the paper (see DESIGN.md, substitutions).
//
// Tables are namespaces within one keyspace (the paper's five TGI tables:
// Deltas, Versions, Timespans, Graph, Micropartitions). A row is addressed by
// (table, partition-token, key); all rows of one partition are clustered on
// the same replica set and can be prefix-scanned with one "seek".
//
// Fault tolerance (client side, mirroring a Cassandra coordinator):
//   * every stored value is sealed with a per-value checksum, verified on
//     read; a mismatch is a replica failure, not a query error;
//   * reads retry transient errors with capped exponential backoff, fail
//     over across replicas, optionally hedge a second-chance request to
//     another replica after `hedge_after_micros`, and observe a per-request
//     deadline;
//   * writes honor an ack level (one/quorum/all) and queue hinted handoffs
//     for replicas that miss a write or delete; ReplayHints/RepairNode
//     bring a rejoined node back to byte-identical contents;
//   * a replica with pending hints is "dirty": the read path prefers clean
//     replicas and never treats a dirty replica's NotFound as authoritative.

#ifndef HGS_KVSTORE_CLUSTER_H_
#define HGS_KVSTORE_CLUSTER_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/compression.h"
#include "common/mutex.h"
#include "common/result.h"
#include "kvstore/storage_node.h"

namespace hgs {

/// Write acknowledgment level (Cassandra consistency levels ONE / QUORUM /
/// ALL). A write that reaches fewer live replicas than the level requires
/// fails loudly; missed replicas get hints either way.
enum class WriteAck : uint8_t {
  kOne = 0,
  kQuorum = 1,
  kAll = 2,
};

struct ClusterOptions {
  /// Number of storage machines (the paper's m).
  size_t num_nodes = 1;
  /// Replication factor (the paper's r). Clamped to num_nodes and to
  /// kMaxReplicas.
  size_t replication = 1;
  /// Server threads per node (the paper's Cassandra boxes had 4 cores).
  size_t server_threads_per_node = 4;
  /// Value compression applied at write time (Fig 13a).
  CompressionKind compression = CompressionKind::kNone;
  LatencyModel latency;

  // -- Resilience knobs ------------------------------------------------------
  /// Replica acks required before a write reports success.
  WriteAck write_ack = WriteAck::kAll;
  /// Transient-error retries per replica before failing over (reads) or
  /// hinting (writes).
  size_t max_retries = 2;
  /// Capped exponential backoff between retries: base * 2^(attempt-1), at
  /// most the cap.
  int64_t retry_backoff_micros = 100;
  int64_t retry_backoff_cap_micros = 2'000;
  /// Per-request wall-clock budget for reads; 0 = unbounded. Exceeding it
  /// fails the request with an IOError mentioning the deadline.
  int64_t request_deadline_micros = 0;
  /// Hedged reads: when > 0 and a replica has not answered within this
  /// budget, fire a second-chance request at another replica and take
  /// whichever usable answer lands first. 0 disables hedging.
  int64_t hedge_after_micros = 0;
  /// Per-node hinted-handoff queue bound. Overflow drops the oldest hint
  /// and pins the node dirty until a full RepairNode.
  size_t hint_limit_per_node = 65'536;
  /// Seed for the per-node fault injectors (deterministic scripting).
  uint64_t fault_seed = 0xFA17;
};

/// One key of a batched read: the partition it lives in plus its logical
/// key within that partition.
struct MultiGetKey {
  uint64_t partition = 0;
  std::string key;
};

/// One row of a batched write. `schema` declares what the value's payload
/// is (enables the kColumnar codec for rows the writer knows to be
/// canonical serializations); `codec` overrides the cluster-wide
/// compression for this row when set.
struct PutRow {
  uint64_t partition = 0;
  std::string key;
  std::string value;
  ValueSchema schema = ValueSchema::kOpaque;
  std::optional<CompressionKind> codec;
};

/// Replication is clamped to this (real deployments rarely exceed r=5);
/// keeping the bound small lets the replica set live inline on the stack in
/// the per-key hot loops instead of heap-allocating a vector.
inline constexpr size_t kMaxReplicas = 8;

/// Replica node indices for one token, primary first. Fixed-capacity
/// inline array — no allocation.
struct ReplicaSet {
  std::array<uint32_t, kMaxReplicas> nodes{};
  uint32_t count = 0;

  size_t size() const { return count; }
  uint32_t operator[](size_t i) const { return nodes[i]; }
  const uint32_t* begin() const { return nodes.data(); }
  const uint32_t* end() const { return nodes.data() + count; }
};

/// Per-call resilience accounting for one read. Aggregated into FetchStats
/// by the TGI query layer; lifetime totals are also kept on the Cluster.
struct ReadCallStats {
  uint64_t failovers = 0;          ///< replicas abandoned for another
  uint64_t retries = 0;            ///< same-replica transient-error retries
  uint64_t hedges = 0;             ///< second-chance requests fired
  uint64_t hedge_wins = 0;         ///< hedged requests whose answer was used
  uint64_t checksum_failures = 0;  ///< values rejected by the checksum

  void Merge(const ReadCallStats& o) {
    failovers += o.failovers;
    retries += o.retries;
    hedges += o.hedges;
    hedge_wins += o.hedge_wins;
    checksum_failures += o.checksum_failures;
  }
};

/// Cluster-lifetime resilience counters (atomic, aggregated like the
/// per-node read/write stats).
struct ClusterResilienceStats {
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> hedges{0};
  std::atomic<uint64_t> hedge_wins{0};
  std::atomic<uint64_t> checksum_failures{0};
  /// Writes that met their ack level but missed at least one replica.
  std::atomic<uint64_t> degraded_writes{0};
  /// Writes (rows) that failed to meet their ack level.
  std::atomic<uint64_t> failed_writes{0};
  std::atomic<uint64_t> hints_queued{0};
  std::atomic<uint64_t> hints_replayed{0};
  std::atomic<uint64_t> hints_dropped{0};
  /// Rows streamed (restored or erased) by RepairNode.
  std::atomic<uint64_t> repair_rows{0};
};

/// The publish-epoch map: an immutable snapshot of the index's visibility
/// state. `global` counts publishes; a scope absent from `sub` was last
/// invalidated at `base`. Readers pin one EpochVectorRef for the duration
/// of a query and key their caches by `SubEpoch(scope)`, so a publish that
/// touched scopes {A, B} leaves every other scope's cache entries valid.
struct EpochVector {
  uint64_t global = 0;
  uint64_t base = 0;
  /// Sorted by EpochKey; values are the epoch of the scope's last publish.
  std::vector<std::pair<EpochKey, uint64_t>> sub;

  uint64_t SubEpoch(EpochKey key) const {
    auto it = std::lower_bound(
        sub.begin(), sub.end(), key,
        [](const std::pair<EpochKey, uint64_t>& e, EpochKey k) {
          return e.first < k;
        });
    if (it != sub.end() && it->first == key) return it->second;
    return base;
  }
};

using EpochVectorRef = std::shared_ptr<const EpochVector>;

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  /// Writes to all replicas of the token's placement group. Succeeds when
  /// at least the configured ack level's replica count committed; replicas
  /// that missed the write get a hint. A met ack level with missed
  /// replicas counts as a degraded write.
  /// `schema` and `codec` mirror the PutRow fields: the writer's payload
  /// declaration (kColumnar eligibility) and an optional per-row override
  /// of the cluster-wide compression.
  Status Put(std::string_view table, uint64_t partition, std::string_view key,
             std::string_view value,
             ValueSchema schema = ValueSchema::kOpaque,
             std::optional<CompressionKind> codec = std::nullopt);

  /// Group-committed batch write: each row is compressed once, rows are
  /// grouped by replica storage node, and every node receives its whole
  /// group as ONE batched submission — the MultiGet batching discipline
  /// mirrored for writes. Replicas of a row share one value buffer. All
  /// node batches are committed concurrently through the nodes' server
  /// pools; failed node batches are retried with backoff, then hinted.
  /// Fails when any row misses its ack level. When `put_batches` is
  /// non-null it receives the number of node submissions this call issued.
  Status MultiPut(std::string_view table, std::vector<PutRow> rows,
                  size_t* put_batches = nullptr);

  /// Reads one replica (load-balanced over clean live replicas, dirty ones
  /// last), with transient-error retries, replica failover, checksum
  /// verification, optional hedging and a per-request deadline. NotFound
  /// when no replica holds the key — but NotFound from a dirty replica
  /// (rejoined with hints pending) falls through to the next replica. The
  /// returned value is a zero-copy view of the serving node's buffer
  /// (decompression of an uncompressed block is a header-stripping window;
  /// an LZ block materializes one shared buffer — the read path's only
  /// value copy, counted into `value_copies` when non-null).
  Result<SharedValue> Get(std::string_view table, uint64_t partition,
                          std::string_view key,
                          size_t* value_copies = nullptr,
                          ReadCallStats* call_stats = nullptr);

  /// Batched point reads. Keys are grouped by the storage node serving
  /// them (replica choice is load-balanced, preferring clean live nodes)
  /// and each group is dispatched as one node request, so the latency
  /// model charges one seek per node batch instead of one per key. Returns
  /// one entry per input key, in input order; absent keys yield nullopt.
  /// Keys whose node fails mid-flight (or whose value fails its checksum)
  /// fall back to per-key Get with its full resilience machinery. Slow
  /// node batches are hedged to the keys' alternate replicas when hedging
  /// is enabled.
  ///
  /// When `key_status` is non-null the batch degrades gracefully: keys
  /// with no live replica (or that exhaust failover) report their error
  /// per key while the rest of the batch is served, and the call itself
  /// returns OK. When null, any unservable key fails the whole call (the
  /// strict legacy contract).
  Result<std::vector<std::optional<SharedValue>>> MultiGet(
      std::string_view table, const std::vector<MultiGetKey>& keys,
      size_t* node_batches = nullptr, size_t* value_copies = nullptr,
      ReadCallStats* call_stats = nullptr,
      std::vector<Status>* key_status = nullptr);

  /// All pairs of the partition whose key begins with `key_prefix`, in key
  /// order, with the same resilience behavior as Get (retries, failover,
  /// checksum verification, hedging, deadline). Keys returned are logical
  /// (table/token stripped); values are zero-copy views (see Get for the
  /// `value_copies` contract).
  Result<std::vector<KVPair>> Scan(std::string_view table, uint64_t partition,
                                   std::string_view key_prefix,
                                   size_t* value_copies = nullptr,
                                   ReadCallStats* call_stats = nullptr);

  /// Deletes from all replicas, observing the write ack level like Put;
  /// replicas that miss the delete get a tombstone hint so the key cannot
  /// resurrect on rejoin. On success, the value reports whether any
  /// replica held the key.
  Result<bool> Delete(std::string_view table, uint64_t partition,
                      std::string_view key);

  // -- Failure injection and recovery ---------------------------------------

  /// Crash switch: a down node fails every request. Rejoining (down=false)
  /// does NOT clear pending hints — the node stays dirty until ReplayHints
  /// or RepairNode runs.
  void SetNodeDown(size_t node, bool down);

  /// Installs a scripted fault profile (transient errors, slow-node and
  /// spike latency, corruption, crash) on one node.
  void SetFaultProfile(size_t node, const FaultProfile& profile);

  /// Whether the node may be missing writes (hints pending, or hints were
  /// dropped on overflow). Dirty replicas are read last and their NotFound
  /// answers are never authoritative.
  bool NodeDirty(size_t node) const;

  /// Pending hinted-handoff entries queued for a node.
  size_t PendingHints(size_t node) const;

  /// Replays the node's hinted writes/deletes in order. On success (and if
  /// no hint was ever dropped) the node becomes clean. The node must be
  /// up; replay stops at the first hint that cannot be applied.
  Status ReplayHints(size_t node);

  /// Full anti-entropy: reconciles the node against its live peer
  /// replicas — streams differing/missing rows in, erases rows deleted
  /// while the node was away — and clears hints (repair supersedes them).
  /// Afterwards the node's ContentFingerprint matches a never-faulted
  /// twin's. The node must be up.
  Status RepairNode(size_t node);

  size_t num_nodes() const { return nodes_.size(); }
  size_t replication() const { return options_.replication; }
  const ClusterOptions& options() const { return options_; }

  /// Total stored bytes across nodes (replicas counted once each).
  uint64_t TotalStoredBytes() const;
  uint64_t TotalKeys() const;
  /// Aggregate read requests (gets + scans) across nodes.
  uint64_t TotalReadRequests() const;
  uint64_t TotalBytesRead() const;
  /// Aggregate write-side counters across nodes (replica writes counted at
  /// every replica): write submissions, rows written, value bytes written.
  uint64_t TotalPutBatches() const;
  uint64_t TotalRowsPut() const;
  uint64_t TotalBytesPut() const;
  /// Order-stable fingerprint of all resident contents, per node. Two
  /// clusters loaded with byte-identical data compare equal regardless of
  /// the order or batching of the writes that produced them.
  uint64_t ContentFingerprint() const;
  /// Fingerprint of one node's resident contents (chaos tests compare a
  /// killed/rejoined/repaired node against its never-faulted twin).
  uint64_t NodeContentFingerprint(size_t node) const;

  /// Lifetime resilience counters (failovers, retries, hedges, checksum
  /// failures, degraded writes, hint traffic).
  const ClusterResilienceStats& resilience() const { return resilience_; }
  void ResetStats();

  /// The current publish-epoch map. The returned snapshot is immutable;
  /// publishes swap in a fresh copy, so a pinned ref stays internally
  /// consistent across concurrent publishes.
  EpochVectorRef epochs() const EXCLUDES(epoch_mu_) {
    MutexLock lock(epoch_mu_);
    return epochs_;
  }

  /// The global publish counter (compatibility accessor): bumped by every
  /// publish, scoped or blanket.
  uint64_t publish_epoch() const { return epochs()->global; }

  /// Scoped publish: advances the global epoch and copies-on-write only
  /// the touched scopes' sub-epochs. Cache entries keyed under any other
  /// scope's sub-epoch remain valid.
  void PublishTouched(std::vector<EpochKey> touched);

  /// Blanket publish: advances the global epoch and invalidates every
  /// scope (base jumps to the new global, the sub map empties). The
  /// conservative fallback for writers that don't track what they touched.
  void BumpPublishEpoch();

 private:
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// One hinted write (value set) or delete (value null = tombstone).
  struct Hint {
    std::string key;
    std::shared_ptr<const std::string> value;
  };

  /// Cluster-side per-node client state: the hinted-handoff queue and the
  /// dirty flag the read path consults.
  struct NodeClientState {
    mutable Mutex mu;
    std::deque<Hint> hints GUARDED_BY(mu);
    // A hint was dropped; only RepairNode cleans.
    bool overflowed GUARDED_BY(mu) = false;
    // Lock-free mirror of "hints pending or overflowed" for the read path.
    std::atomic<bool> dirty{false};
  };

  std::string PhysicalKey(std::string_view table, uint64_t partition,
                          std::string_view key) const;
  ReplicaSet Replicas(uint64_t token) const;
  size_t RequiredAcks(size_t n_replicas) const;
  Deadline MakeDeadline() const;
  static bool DeadlinePassed(const Deadline& d);
  Status DeadlineError(const Status& last) const;
  void Backoff(size_t attempt, const Deadline& deadline) const;

  /// Seals (checksums) the compressed bytes of one logical value, encoding
  /// with `codec` (or the cluster-wide compression when unset) under the
  /// writer-declared `schema`.
  std::shared_ptr<const std::string> SealForStorage(
      std::string_view value, ValueSchema schema = ValueSchema::kOpaque,
      std::optional<CompressionKind> codec = std::nullopt) const;

  /// Commits one row to one node with transient-error retries; a final
  /// failure leaves the row to the caller (which hints it).
  Status WriteRowToNode(size_t node, const std::string& phys,
                        const std::shared_ptr<const std::string>& value);
  /// Ack-level bookkeeping shared by Put/MultiPut/Delete.
  Status FinishWrite(size_t acks, size_t replicas, const char* what);

  void EnqueueHint(size_t node, std::string phys,
                   std::shared_ptr<const std::string> value);
  /// Drops queued hints superseded by a newer committed write/delete of
  /// the same keys.
  void SupersedeHints(size_t node, const std::string& phys);

  /// Submits `submit(node)` with optional hedging: if the primary has not
  /// answered within hedge_after_micros and another live replica exists,
  /// fires a second-chance request there; the first usable answer (ok or
  /// NotFound) wins. `*winner` reports which node's answer was returned.
  template <typename T, typename SubmitFn>
  Result<T> HedgedSubmit(size_t primary, const ReplicaSet& replicas,
                         const std::string& phys, SubmitFn&& submit,
                         const Deadline& deadline, ReadCallStats* call_stats,
                         size_t* winner);

  /// Orders the live replicas of `replicas` for serving: clean nodes first
  /// (rotated by the load-balancing counter), dirty nodes last. Returns
  /// the number of candidates written into `order`.
  size_t ServingOrder(const ReplicaSet& replicas,
                      std::array<uint32_t, kMaxReplicas>* order) const;

  void CountFailover(ReadCallStats* s);
  void CountRetry(ReadCallStats* s);
  void CountChecksumFailure(ReadCallStats* s);
  void CountHedge(ReadCallStats* s);
  void CountHedgeWin(ReadCallStats* s);

  /// Delete one row on one node with transient-error retries.
  Status DeleteRowFromNode(size_t node, const std::string& phys,
                           bool* existed = nullptr);

  ClusterOptions options_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::vector<std::unique_ptr<NodeClientState>> node_state_;
  // Replica load balancing; mutable so const read-path helpers can rotate.
  mutable std::atomic<uint64_t> read_counter_{0};
  ClusterResilienceStats resilience_;
  mutable Mutex epoch_mu_;
  EpochVectorRef epochs_ GUARDED_BY(epoch_mu_) =
      std::make_shared<const EpochVector>();
};

}  // namespace hgs

#endif  // HGS_KVSTORE_CLUSTER_H_
