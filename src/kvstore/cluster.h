// The simulated distributed key-value store: m storage nodes, replication
// factor r, token-based placement. This is the repository's stand-in for the
// Apache Cassandra cluster of the paper (see DESIGN.md, substitutions).
//
// Tables are namespaces within one keyspace (the paper's five TGI tables:
// Deltas, Versions, Timespans, Graph, Micropartitions). A row is addressed by
// (table, partition-token, key); all rows of one partition are clustered on
// the same replica set and can be prefix-scanned with one "seek".

#ifndef HGS_KVSTORE_CLUSTER_H_
#define HGS_KVSTORE_CLUSTER_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/compression.h"
#include "common/result.h"
#include "kvstore/storage_node.h"

namespace hgs {

struct ClusterOptions {
  /// Number of storage machines (the paper's m).
  size_t num_nodes = 1;
  /// Replication factor (the paper's r). Clamped to num_nodes.
  size_t replication = 1;
  /// Server threads per node (the paper's Cassandra boxes had 4 cores).
  size_t server_threads_per_node = 4;
  /// Value compression applied at write time (Fig 13a).
  CompressionKind compression = CompressionKind::kNone;
  LatencyModel latency;
};

/// One key of a batched read: the partition it lives in plus its logical
/// key within that partition.
struct MultiGetKey {
  uint64_t partition = 0;
  std::string key;
};

/// One row of a batched write.
struct PutRow {
  uint64_t partition = 0;
  std::string key;
  std::string value;
};

/// The publish-epoch map: an immutable snapshot of the index's visibility
/// state. `global` counts publishes; a scope absent from `sub` was last
/// invalidated at `base`. Readers pin one EpochVectorRef for the duration
/// of a query and key their caches by `SubEpoch(scope)`, so a publish that
/// touched scopes {A, B} leaves every other scope's cache entries valid.
struct EpochVector {
  uint64_t global = 0;
  uint64_t base = 0;
  /// Sorted by EpochKey; values are the epoch of the scope's last publish.
  std::vector<std::pair<EpochKey, uint64_t>> sub;

  uint64_t SubEpoch(EpochKey key) const {
    auto it = std::lower_bound(
        sub.begin(), sub.end(), key,
        [](const std::pair<EpochKey, uint64_t>& e, EpochKey k) {
          return e.first < k;
        });
    if (it != sub.end() && it->first == key) return it->second;
    return base;
  }
};

using EpochVectorRef = std::shared_ptr<const EpochVector>;

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  /// Writes to all replicas of the token's placement group.
  Status Put(std::string_view table, uint64_t partition, std::string_view key,
             std::string_view value);

  /// Group-committed batch write: each row is compressed once, rows are
  /// grouped by replica storage node, and every node receives its whole
  /// group as ONE batched submission — the MultiGet batching discipline
  /// mirrored for writes. Replicas of a row share one value buffer. All
  /// node batches are committed concurrently through the nodes' server
  /// pools. When `put_batches` is non-null it receives the number of node
  /// submissions this call issued.
  Status MultiPut(std::string_view table, std::vector<PutRow> rows,
                  size_t* put_batches = nullptr);

  /// Reads one replica (load-balanced), failing over to others when a node
  /// is down. NotFound when no replica holds the key. The returned value is
  /// a zero-copy view of the serving node's buffer (decompression of an
  /// uncompressed block is a header-stripping window; an LZ block
  /// materializes one shared buffer — the read path's only value copy,
  /// counted into `value_copies` when non-null).
  Result<SharedValue> Get(std::string_view table, uint64_t partition,
                          std::string_view key,
                          size_t* value_copies = nullptr);

  /// Batched point reads. Keys are grouped by the storage node serving
  /// them (replica choice is load-balanced, skipping down nodes) and each
  /// group is dispatched as one node request, so the latency model charges
  /// one seek per node batch instead of one per key. Returns one entry per
  /// input key, in input order; absent keys yield nullopt. Keys whose node
  /// fails mid-flight fall back to per-key Get (with its replica failover).
  /// When `node_batches` is non-null it receives the number of node round
  /// trips issued (batches plus any per-key fallbacks); `value_copies`
  /// counts values that had to be materialized (LZ blocks) rather than
  /// viewed in place.
  Result<std::vector<std::optional<SharedValue>>> MultiGet(
      std::string_view table, const std::vector<MultiGetKey>& keys,
      size_t* node_batches = nullptr, size_t* value_copies = nullptr);

  /// All pairs of the partition whose key begins with `key_prefix`, in key
  /// order. Keys returned are logical (table/token stripped); values are
  /// zero-copy views (see Get for the `value_copies` contract).
  Result<std::vector<KVPair>> Scan(std::string_view table, uint64_t partition,
                                   std::string_view key_prefix,
                                   size_t* value_copies = nullptr);

  /// Deletes from all replicas; true if any replica held the key.
  bool Delete(std::string_view table, uint64_t partition,
              std::string_view key);

  /// Failure injection.
  void SetNodeDown(size_t node, bool down);

  size_t num_nodes() const { return nodes_.size(); }
  size_t replication() const { return options_.replication; }
  const ClusterOptions& options() const { return options_; }

  /// Total stored bytes across nodes (replicas counted once each).
  uint64_t TotalStoredBytes() const;
  uint64_t TotalKeys() const;
  /// Aggregate read requests (gets + scans) across nodes.
  uint64_t TotalReadRequests() const;
  uint64_t TotalBytesRead() const;
  /// Aggregate write-side counters across nodes (replica writes counted at
  /// every replica): write submissions, rows written, value bytes written.
  uint64_t TotalPutBatches() const;
  uint64_t TotalRowsPut() const;
  uint64_t TotalBytesPut() const;
  /// Order-stable fingerprint of all resident contents, per node. Two
  /// clusters loaded with byte-identical data compare equal regardless of
  /// the order or batching of the writes that produced them.
  uint64_t ContentFingerprint() const;
  void ResetStats();

  /// The current publish-epoch map. The returned snapshot is immutable;
  /// publishes swap in a fresh copy, so a pinned ref stays internally
  /// consistent across concurrent publishes.
  EpochVectorRef epochs() const {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    return epochs_;
  }

  /// The global publish counter (compatibility accessor): bumped by every
  /// publish, scoped or blanket.
  uint64_t publish_epoch() const { return epochs()->global; }

  /// Scoped publish: advances the global epoch and copies-on-write only
  /// the touched scopes' sub-epochs. Cache entries keyed under any other
  /// scope's sub-epoch remain valid.
  void PublishTouched(std::vector<EpochKey> touched);

  /// Blanket publish: advances the global epoch and invalidates every
  /// scope (base jumps to the new global, the sub map empties). The
  /// conservative fallback for writers that don't track what they touched.
  void BumpPublishEpoch();

 private:
  std::string PhysicalKey(std::string_view table, uint64_t partition,
                          std::string_view key) const;
  /// Replica node indices for a token, primary first.
  std::vector<size_t> Replicas(uint64_t token) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::atomic<uint64_t> read_counter_{0};  // replica load balancing
  mutable std::mutex epoch_mu_;
  EpochVectorRef epochs_ = std::make_shared<const EpochVector>();
};

}  // namespace hgs

#endif  // HGS_KVSTORE_CLUSTER_H_
