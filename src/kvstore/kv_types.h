// Key/value plumbing shared by the simulated distributed store.
//
// The paper stores micro-deltas in Cassandra keyed by the composite delta key
// {tsid, sid, did, pid} with placement key {tsid, sid} (Section 4.4). Here a
// full key is an order-preserving byte string so that a node-local ordered
// map clusters micro-deltas exactly as Cassandra's clustering columns would;
// the placement token (a hash of the placement key) drives replica placement.

#ifndef HGS_KVSTORE_KV_TYPES_H_
#define HGS_KVSTORE_KV_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/shared_value.h"

namespace hgs {

/// One scanned row. The key is owned (small, and the node's map entry may
/// be erased after the scan returns); the value is a zero-copy window into
/// the storage node's shared buffer.
struct KVPair {
  std::string key;
  SharedValue value;
};

/// Appends a big-endian fixed32 so lexicographic order == numeric order.
inline void AppendOrdered32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

inline void AppendOrdered64(std::string* out, uint64_t v) {
  AppendOrdered32(out, static_cast<uint32_t>(v >> 32));
  AppendOrdered32(out, static_cast<uint32_t>(v & 0xFFFFFFFFull));
}

/// Placement token for a (table, partition) pair.
inline uint64_t PlacementToken(std::string_view table, uint64_t partition) {
  uint64_t h = Fnv1a64(table.data(), table.size());
  h ^= partition * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

/// One invalidation scope in the publish-epoch map: a (table, partition)
/// pair collapsed to a bucketed identifier. Raw partitions are bucketed
/// because the versions table uses per-node 64-bit hash partitions — an
/// unbounded domain that would grow the epoch map without bound. A bucket
/// collision merges two scopes, which can only over-invalidate (a reader
/// re-fetches data that was still valid), never under-invalidate.
using EpochKey = uint64_t;

inline constexpr uint64_t kEpochPartitionBuckets = 1024;

inline EpochKey MakeEpochKey(std::string_view table, uint64_t partition) {
  return PlacementToken(table, partition % kEpochPartitionBuckets);
}

}  // namespace hgs

#endif  // HGS_KVSTORE_KV_TYPES_H_
