// Key/value plumbing shared by the simulated distributed store.
//
// The paper stores micro-deltas in Cassandra keyed by the composite delta key
// {tsid, sid, did, pid} with placement key {tsid, sid} (Section 4.4). Here a
// full key is an order-preserving byte string so that a node-local ordered
// map clusters micro-deltas exactly as Cassandra's clustering columns would;
// the placement token (a hash of the placement key) drives replica placement.

#ifndef HGS_KVSTORE_KV_TYPES_H_
#define HGS_KVSTORE_KV_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/shared_value.h"

namespace hgs {

/// One scanned row. The key is owned (small, and the node's map entry may
/// be erased after the scan returns); the value is a zero-copy window into
/// the storage node's shared buffer.
struct KVPair {
  std::string key;
  SharedValue value;
};

/// Appends a big-endian fixed32 so lexicographic order == numeric order.
inline void AppendOrdered32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

inline void AppendOrdered64(std::string* out, uint64_t v) {
  AppendOrdered32(out, static_cast<uint32_t>(v >> 32));
  AppendOrdered32(out, static_cast<uint32_t>(v & 0xFFFFFFFFull));
}

/// Reads back a big-endian fixed64 written by AppendOrdered64.
inline uint64_t ReadOrdered64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

// -- Per-value checksums ------------------------------------------------------
//
// Every stored value is sealed with an 8-byte FNV-1a checksum of its payload
// (the compressed bytes), written once at Put and verified on every read by
// the cluster client. A mismatch surfaces as Status::ChecksumMismatch and is
// treated as a replica failure: the read fails over to another replica
// instead of returning corrupted bytes. Sealing is deterministic, so two
// clusters loaded with the same logical writes stay byte-identical
// (ContentFingerprint-comparable) even though checksums live in the stored
// representation.

inline constexpr size_t kValueChecksumBytes = 8;

/// Prefixes `payload` with its checksum. The result is what storage nodes
/// hold resident.
inline std::string SealValue(std::string_view payload) {
  std::string out;
  out.reserve(kValueChecksumBytes + payload.size());
  AppendOrdered64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Verifies a sealed value and returns a zero-copy window onto its payload
/// (the checksum header stripped, no bytes moved).
inline Result<SharedValue> UnsealValue(const SharedValue& sealed) {
  if (sealed.size() < kValueChecksumBytes) {
    return Status::ChecksumMismatch("sealed value shorter than checksum");
  }
  std::string_view view = sealed;
  uint64_t expect = ReadOrdered64(view.data());
  std::string_view payload = view.substr(kValueChecksumBytes);
  if (Fnv1a64(payload.data(), payload.size()) != expect) {
    return Status::ChecksumMismatch("stored value failed checksum");
  }
  return SharedValue(sealed.owner(), payload);
}

/// Placement token for a (table, partition) pair.
inline uint64_t PlacementToken(std::string_view table, uint64_t partition) {
  uint64_t h = Fnv1a64(table.data(), table.size());
  h ^= partition * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

/// One invalidation scope in the publish-epoch map: a (table, partition)
/// pair collapsed to a bucketed identifier. Raw partitions are bucketed
/// because the versions table uses per-node 64-bit hash partitions — an
/// unbounded domain that would grow the epoch map without bound. A bucket
/// collision merges two scopes, which can only over-invalidate (a reader
/// re-fetches data that was still valid), never under-invalidate.
using EpochKey = uint64_t;

inline constexpr uint64_t kEpochPartitionBuckets = 1024;

inline EpochKey MakeEpochKey(std::string_view table, uint64_t partition) {
  return PlacementToken(table, partition % kEpochPartitionBuckets);
}

}  // namespace hgs

#endif  // HGS_KVSTORE_KV_TYPES_H_
