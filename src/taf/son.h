// SoN and SoTS (Definitions 6-7): the prime operands of the temporal graph
// algebra, with the operator library of Section 5.1:
//   Selection, Timeslice, Graph, NodeCompute, NodeComputeTemporal,
//   NodeComputeDelta, Compare, Evolution (TempAggregation lives in
//   taf/operators.h).
//
// Map-style operators execute data-parallel over the engine's workers.

#ifndef HGS_TAF_SON_H_
#define HGS_TAF_SON_H_

#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "taf/engine.h"
#include "taf/temporal_node.h"
#include "taf/temporal_subgraph.h"

namespace hgs::taf {

/// Timeseries of a scalar quantity.
using Series = std::vector<std::pair<Timestamp, double>>;

class SoN {
 public:
  SoN() = default;
  SoN(std::shared_ptr<const TAFEngine> engine, std::vector<NodeT> nodes,
      Timestamp from, Timestamp to)
      : engine_(std::move(engine)),
        nodes_(std::move(nodes)),
        from_(from),
        to_(to) {}

  size_t size() const { return nodes_.size(); }
  const std::vector<NodeT>& nodes() const { return nodes_; }
  Timestamp GetStartTime() const { return from_; }
  Timestamp GetEndTime() const { return to_; }

  /// Selection: entity-centric filtering; time and attribute dimensions are
  /// untouched (operator 1).
  SoN Select(const std::function<bool(const NodeT&)>& pred) const;

  /// Convenience selection on the node's attribute value at window start.
  SoN SelectByAttr(std::string_view key, std::string_view value) const;

  /// The paper's Filter operator: projects the *attribute dimension* of the
  /// SoN (Fig 6) — keeps only the listed attribute keys in node states and
  /// drops attribute events for other keys. Entity and time dimensions are
  /// untouched.
  SoN FilterAttributes(const std::vector<std::string>& keys) const;

  /// Timeslice to a point: each node narrowed to its state as of t
  /// (operator 2). The result has an empty event dimension.
  SoN Timeslice(Timestamp t) const;

  /// Timeslice to a sub-interval [from, to] of the current range.
  SoN Timeslice(Timestamp from, Timestamp to) const;

  /// The Graph operator (3): in-memory graph of the member nodes as of t,
  /// edges restricted to pairs inside the SoN.
  Graph GetGraphAt(Timestamp t) const;

  /// Union of all members' change points, ascending, deduplicated.
  std::vector<Timestamp> AllChangePoints() const;

  /// NodeCompute (4): map a function over the temporal nodes.
  template <typename R>
  std::vector<R> NodeCompute(
      const std::function<R(const NodeT&)>& fn) const {
    std::vector<R> out(nodes_.size());
    engine_->ParallelOver(nodes_.size(),
                          [&](size_t i) { out[i] = fn(nodes_[i]); });
    return out;
  }

  /// NodeComputeTemporal (5): evaluate `fn` on every version of every node
  /// (or on the versions selected by `timepoints`).
  template <typename R>
  std::vector<std::vector<std::pair<Timestamp, R>>> NodeComputeTemporal(
      const std::function<R(const StaticNodeView&)>& fn,
      const std::function<std::vector<Timestamp>(const NodeT&)>& timepoints =
          nullptr) const {
    std::vector<std::vector<std::pair<Timestamp, R>>> out(nodes_.size());
    engine_->ParallelOver(nodes_.size(), [&](size_t i) {
      const NodeT& node = nodes_[i];
      std::vector<std::pair<Timestamp, R>>& series = out[i];
      if (timepoints != nullptr) {
        for (Timestamp t : timepoints(node)) {
          series.emplace_back(t, fn(node.GetStateAt(t)));
        }
        return;
      }
      // Default: all points of change, computed fresh on each version.
      auto it = node.GetIterator();
      series.emplace_back(node.GetStartTime(), fn(it.CurrentVersion()));
      while (it.HasNextEvent()) {
        StaticNodeView v = it.GetNextVersion();
        series.emplace_back(it.CurrentTime(), fn(v));
      }
    });
    return out;
  }

  /// NodeComputeDelta (6): like NodeComputeTemporal, but each new version's
  /// value is produced incrementally by `fdelta(previous_view, previous
  /// value, event)` where `previous_view` is the state *before* the event.
  template <typename R>
  std::vector<std::vector<std::pair<Timestamp, R>>> NodeComputeDelta(
      const std::function<R(const StaticNodeView&)>& fn,
      const std::function<R(const StaticNodeView&, const R&, const Event&)>&
          fdelta) const {
    std::vector<std::vector<std::pair<Timestamp, R>>> out(nodes_.size());
    engine_->ParallelOver(nodes_.size(), [&](size_t i) {
      const NodeT& node = nodes_[i];
      std::vector<std::pair<Timestamp, R>>& series = out[i];
      auto it = node.GetIterator();
      R value = fn(it.CurrentVersion());
      series.emplace_back(node.GetStartTime(), value);
      while (it.HasNextEvent()) {
        StaticNodeView before = it.CurrentVersion();
        const Event& e = it.GetNextEvent();
        value = fdelta(before, value, e);
        series.emplace_back(e.time, value);
      }
    });
    return out;
  }

  /// Evolution (8): samples a graph-level quantity at `points` uniformly
  /// spaced timepoints over the window (or at explicitly given times).
  Series Evolution(const std::function<double(const Graph&)>& quantity,
                   size_t points) const;
  Series EvolutionAt(const std::function<double(const Graph&)>& quantity,
                     const std::vector<Timestamp>& times) const;

  const std::shared_ptr<const TAFEngine>& engine() const { return engine_; }

 private:
  std::shared_ptr<const TAFEngine> engine_;
  std::vector<NodeT> nodes_;
  Timestamp from_ = 0;
  Timestamp to_ = 0;
};

class SoTS {
 public:
  SoTS() = default;
  SoTS(std::shared_ptr<const TAFEngine> engine,
       std::vector<SubgraphT> subgraphs, Timestamp from, Timestamp to)
      : engine_(std::move(engine)),
        subgraphs_(std::move(subgraphs)),
        from_(from),
        to_(to) {}

  size_t size() const { return subgraphs_.size(); }
  const std::vector<SubgraphT>& subgraphs() const { return subgraphs_; }
  Timestamp GetStartTime() const { return from_; }
  Timestamp GetEndTime() const { return to_; }

  /// Selection over subgraphs.
  SoTS Select(const std::function<bool(const SubgraphT&)>& pred) const;

  /// NodeCompute over subgraphs: one value per temporal subgraph.
  template <typename R>
  std::vector<R> NodeCompute(
      const std::function<R(const SubgraphT&)>& fn) const {
    std::vector<R> out(subgraphs_.size());
    engine_->ParallelOver(subgraphs_.size(),
                          [&](size_t i) { out[i] = fn(subgraphs_[i]); });
    return out;
  }

  /// NodeComputeTemporal: `fn` evaluated afresh on every version of every
  /// subgraph — O(N·T) in the paper's analysis.
  template <typename R>
  std::vector<std::vector<std::pair<Timestamp, R>>> NodeComputeTemporal(
      const std::function<R(const Graph&)>& fn) const {
    std::vector<std::vector<std::pair<Timestamp, R>>> out(subgraphs_.size());
    engine_->ParallelOver(subgraphs_.size(), [&](size_t i) {
      auto& series = out[i];
      subgraphs_[i].ForEachVersion([&](Timestamp t, const Graph& g) {
        series.emplace_back(t, fn(g));
      });
    });
    return out;
  }

  /// NodeComputeDelta: the initial version is computed with `fn`; every
  /// subsequent version updates the value with `fdelta(state_before_event,
  /// previous_value, event)` — O(N + T).
  template <typename R>
  std::vector<std::vector<std::pair<Timestamp, R>>> NodeComputeDelta(
      const std::function<R(const Graph&)>& fn,
      const std::function<R(const Graph&, const R&, const Event&)>& fdelta)
      const {
    std::vector<std::vector<std::pair<Timestamp, R>>> out(subgraphs_.size());
    engine_->ParallelOver(subgraphs_.size(), [&](size_t i) {
      auto& series = out[i];
      const SubgraphT& sg = subgraphs_[i];
      R value{};
      sg.Walk(
          [&](const Graph& initial) {
            value = fn(initial);
            series.emplace_back(sg.GetStartTime(), value);
          },
          [&](const Graph& before, const Event& e) {
            value = fdelta(before, value, e);
            series.emplace_back(e.time, value);
          });
    });
    return out;
  }

  const std::shared_ptr<const TAFEngine>& engine() const { return engine_; }

 private:
  std::shared_ptr<const TAFEngine> engine_;
  std::vector<SubgraphT> subgraphs_;
  Timestamp from_ = 0;
  Timestamp to_ = 0;
};

}  // namespace hgs::taf

#endif  // HGS_TAF_SON_H_
