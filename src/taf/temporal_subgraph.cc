#include "taf/temporal_subgraph.h"

namespace hgs::taf {

Graph SubgraphT::MaterializeMembers(const Delta& d) const {
  Graph g;
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    if (rec.has_value() && members_.contains(id)) g.AddNode(id, rec->attrs);
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        if (members_.contains(key.u) && members_.contains(key.v) &&
            g.HasNode(key.u) && g.HasNode(key.v)) {
          g.AddEdge(rec->src, rec->dst, rec->directed, rec->attrs);
        }
      });
  return g;
}

Graph SubgraphT::GetVersionAt(Timestamp t) const {
  return MaterializeMembers(GetStateDeltaAt(t));
}

Delta SubgraphT::GetStateDeltaAt(Timestamp t) const {
  Delta state = initial_;
  events_.ApplyUpTo(t, &state);
  return state;
}

void SubgraphT::ForEachVersion(
    const std::function<void(Timestamp, const Graph&)>& fn) const {
  Graph g = MaterializeMembers(initial_);
  fn(from_, g);
  for (const Event& e : events_.events()) {
    // Maintain the member-induced graph incrementally.
    bool relevant = true;
    if (e.IsEdgeEvent()) {
      relevant = members_.contains(e.u) && members_.contains(e.v);
    } else {
      relevant = members_.contains(e.u);
    }
    if (relevant) ApplyEventToGraph(e, &g);
    fn(e.time, g);
  }
}

void SubgraphT::ForEachEventWithState(
    const std::function<void(const Graph&, const Event&)>& fn) const {
  Walk([](const Graph&) {}, fn);
}

void SubgraphT::Walk(
    const std::function<void(const Graph&)>& on_initial,
    const std::function<void(const Graph&, const Event&)>& before_event)
    const {
  Graph g = MaterializeMembers(initial_);
  on_initial(g);
  for (const Event& e : events_.events()) {
    before_event(g, e);  // state *before* the event
    bool relevant = true;
    if (e.IsEdgeEvent()) {
      relevant = members_.contains(e.u) && members_.contains(e.v);
    } else {
      relevant = members_.contains(e.u);
    }
    if (relevant) ApplyEventToGraph(e, &g);
  }
}

}  // namespace hgs::taf
