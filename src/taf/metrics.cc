#include "taf/metrics.h"

#include <unordered_set>

namespace hgs::taf::metrics {

double CountLabel(const Graph& g, const std::string& key,
                  const std::string& value) {
  return static_cast<double>(algo::CountLabel(g, key, value));
}

double CountLabelDelta(const Graph& before, double prev_value, const Event& e,
                       const std::string& key, const std::string& value) {
  double v = prev_value;
  auto had_label = [&](NodeId id) {
    const NodeRecord* rec = before.GetNode(id);
    if (rec == nullptr) return false;
    auto got = rec->attrs.Get(key);
    return got.has_value() && *got == value;
  };
  switch (e.type) {
    case EventType::kAddNode: {
      if (before.HasNode(e.u)) break;  // outside the member set or re-add
      auto got = e.attrs.Get(key);
      if (got.has_value() && *got == value) v += 1.0;
      break;
    }
    case EventType::kRemoveNode:
      if (had_label(e.u)) v -= 1.0;
      break;
    case EventType::kSetNodeAttr:
      if (e.key != key || !before.HasNode(e.u)) break;
      if (e.prev_value == value && e.value != value) v -= 1.0;
      if (e.prev_value != value && e.value == value) v += 1.0;
      break;
    case EventType::kDelNodeAttr:
      if (e.key == key && e.prev_value == value && before.HasNode(e.u)) {
        v -= 1.0;
      }
      break;
    default:
      break;  // edge events don't change node-label counts
  }
  return v;
}

double TriangleCount(const Graph& g) {
  return static_cast<double>(algo::TriangleCount(g));
}

double TriangleCountDelta(const Graph& before, double prev_value,
                          const Event& e) {
  auto common_neighbors = [&](NodeId u, NodeId v) {
    const auto& nu = before.Neighbors(u);
    const auto& nv = before.Neighbors(v);
    const auto& small = nu.size() < nv.size() ? nu : nv;
    const auto& large = nu.size() < nv.size() ? nv : nu;
    std::unordered_set<NodeId> large_set(large.begin(), large.end());
    double count = 0;
    for (NodeId w : small) {
      if (large_set.contains(w)) count += 1.0;
    }
    return count;
  };
  switch (e.type) {
    case EventType::kAddEdge:
      if (!before.HasNode(e.u) || !before.HasNode(e.v) ||
          before.HasEdge(e.u, e.v)) {
        return prev_value;  // boundary edge or duplicate: no member change
      }
      return prev_value + common_neighbors(e.u, e.v);
    case EventType::kRemoveEdge:
      if (!before.HasEdge(e.u, e.v)) return prev_value;
      return prev_value - common_neighbors(e.u, e.v);
    case EventType::kRemoveNode: {
      if (!before.HasNode(e.u)) return prev_value;
      // Well-formed streams remove incident edges first, so this is a
      // no-op; defensively subtract triangles through the node.
      double through = 0;
      const auto& nbrs = before.Neighbors(e.u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (before.HasEdge(nbrs[i], nbrs[j])) through += 1.0;
        }
      }
      return prev_value - through;
    }
    default:
      return prev_value;  // node/attr events don't change triangles
  }
}

}  // namespace hgs::taf::metrics
