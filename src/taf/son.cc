#include "taf/son.h"

#include <algorithm>
#include <unordered_set>

namespace hgs::taf {

SoN SoN::Select(const std::function<bool(const NodeT&)>& pred) const {
  std::vector<NodeT> kept;
  for (const NodeT& n : nodes_) {
    if (pred(n)) kept.push_back(n);
  }
  return SoN(engine_, std::move(kept), from_, to_);
}

SoN SoN::SelectByAttr(std::string_view key, std::string_view value) const {
  return Select([&](const NodeT& n) {
    StaticNodeView v = n.GetStateAt(n.GetStartTime());
    auto got = v.attrs.Get(key);
    return got.has_value() && *got == value;
  });
}

SoN SoN::FilterAttributes(const std::vector<std::string>& keys) const {
  std::unordered_set<std::string> keep(keys.begin(), keys.end());
  auto project_attrs = [&](const Attributes& attrs) {
    Attributes out;
    for (const auto& [k, v] : attrs.entries()) {
      if (keep.contains(k)) out.Set(k, v);
    }
    return out;
  };
  std::vector<NodeT> projected(nodes_.size());
  engine_->ParallelOver(nodes_.size(), [&](size_t i) {
    const NodeHistory& h = nodes_[i].history();
    NodeHistory out;
    out.node = h.node;
    out.from = h.from;
    out.to = h.to;
    // Project the initial state's node records (edges untouched).
    h.initial.ForEachNodeEntry(
        [&](NodeId id, const std::optional<NodeRecord>& rec) {
          if (rec.has_value()) {
            out.initial.PutNode(id,
                                NodeRecord{.attrs = project_attrs(rec->attrs)});
          } else {
            out.initial.TombstoneNode(id);
          }
        });
    h.initial.ForEachEdgeEntry(
        [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
          if (rec.has_value()) {
            out.initial.PutEdge(key, *rec);
          } else {
            out.initial.TombstoneEdge(key);
          }
        });
    // Drop node-attribute events for projected-away keys.
    out.events.SetScope(h.events.after(), h.events.upto());
    for (const Event& e : h.events.events()) {
      if ((e.type == EventType::kSetNodeAttr ||
           e.type == EventType::kDelNodeAttr) &&
          !keep.contains(e.key)) {
        continue;
      }
      if (e.type == EventType::kAddNode) {
        Event projected_event = e;
        projected_event.attrs = project_attrs(e.attrs);
        out.events.Append(std::move(projected_event));
        continue;
      }
      out.events.Append(e);
    }
    projected[i] = NodeT(std::move(out));
  });
  return SoN(engine_, std::move(projected), from_, to_);
}

SoN SoN::Timeslice(Timestamp t) const {
  std::vector<NodeT> sliced(nodes_.size());
  engine_->ParallelOver(nodes_.size(), [&](size_t i) {
    const NodeT& n = nodes_[i];
    NodeHistory h;
    h.node = n.id();
    h.from = t;
    h.to = t;
    h.initial = n.history().initial;
    n.history().events.ApplyUpTo(t, &h.initial);
    h.events.SetScope(t, t);
    sliced[i] = NodeT(std::move(h));
  });
  return SoN(engine_, std::move(sliced), t, t);
}

SoN SoN::Timeslice(Timestamp from, Timestamp to) const {
  std::vector<NodeT> sliced(nodes_.size());
  engine_->ParallelOver(nodes_.size(), [&](size_t i) {
    const NodeT& n = nodes_[i];
    NodeHistory h;
    h.node = n.id();
    h.from = from;
    h.to = to;
    h.initial = n.history().initial;
    n.history().events.ApplyUpTo(from, &h.initial);
    h.events = n.history().events.FilterByTime(from, to);
    sliced[i] = NodeT(std::move(h));
  });
  return SoN(engine_, std::move(sliced), from, to);
}

Graph SoN::GetGraphAt(Timestamp t) const {
  std::unordered_set<NodeId> member_ids;
  member_ids.reserve(nodes_.size());
  for (const NodeT& n : nodes_) member_ids.insert(n.id());
  Graph g;
  for (const NodeT& n : nodes_) {
    StaticNodeView v = n.GetStateAt(t);
    if (!v.exists) continue;
    g.AddNode(v.id, v.attrs);
  }
  for (const NodeT& n : nodes_) {
    StaticNodeView v = n.GetStateAt(t);
    for (const EdgeRecord& e : v.edges) {
      if (member_ids.contains(e.src) && member_ids.contains(e.dst) &&
          g.HasNode(e.src) && g.HasNode(e.dst)) {
        g.AddEdge(e.src, e.dst, e.directed, e.attrs);
      }
    }
  }
  return g;
}

std::vector<Timestamp> SoN::AllChangePoints() const {
  std::vector<Timestamp> all;
  for (const NodeT& n : nodes_) {
    auto pts = n.ChangePoints();
    all.insert(all.end(), pts.begin(), pts.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Series SoN::Evolution(const std::function<double(const Graph&)>& quantity,
                      size_t points) const {
  if (points == 0) return {};
  std::vector<Timestamp> times;
  times.reserve(points);
  if (points == 1 || to_ == from_) {
    times.push_back(to_);
  } else {
    for (size_t i = 0; i < points; ++i) {
      times.push_back(from_ + static_cast<Timestamp>(
                                  (to_ - from_) *
                                  static_cast<int64_t>(i) /
                                  static_cast<int64_t>(points - 1)));
    }
  }
  return EvolutionAt(quantity, times);
}

Series SoN::EvolutionAt(const std::function<double(const Graph&)>& quantity,
                        const std::vector<Timestamp>& times) const {
  Series out(times.size());
  engine_->ParallelOver(times.size(), [&](size_t i) {
    out[i] = {times[i], quantity(GetGraphAt(times[i]))};
  });
  return out;
}

SoTS SoTS::Select(const std::function<bool(const SubgraphT&)>& pred) const {
  std::vector<SubgraphT> kept;
  for (const SubgraphT& s : subgraphs_) {
    if (pred(s)) kept.push_back(s);
  }
  return SoTS(engine_, std::move(kept), from_, to_);
}

}  // namespace hgs::taf
