#include "taf/temporal_node.h"

#include <algorithm>

namespace hgs::taf {

std::vector<Timestamp> NodeT::ChangePoints() const {
  std::vector<Timestamp> out;
  out.reserve(history_.events.size());
  for (const Event& e : history_.events.events()) out.push_back(e.time);
  return out;
}

StaticNodeView NodeT::ViewFromDelta(NodeId id, const Delta& d) {
  StaticNodeView view;
  view.id = id;
  const auto* rec = d.FindNode(id);
  view.exists = rec != nullptr && rec->has_value();
  if (view.exists) view.attrs = (*rec)->attrs;
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& e) {
        if (!e.has_value()) return;
        if (key.u == id) {
          view.neighbors.push_back(key.v);
          view.edges.push_back(*e);
        } else if (key.v == id) {
          view.neighbors.push_back(key.u);
          view.edges.push_back(*e);
        }
      });
  std::sort(view.neighbors.begin(), view.neighbors.end());
  std::sort(view.edges.begin(), view.edges.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              return EdgeKey(a.src, a.dst) < EdgeKey(b.src, b.dst);
            });
  return view;
}

StaticNodeView NodeT::GetStateAt(Timestamp t) const {
  Delta state = history_.initial;
  history_.events.ApplyUpTo(t, &state);
  return ViewFromDelta(history_.node, state);
}

std::vector<std::pair<Timestamp, StaticNodeView>> NodeT::GetVersions() const {
  std::vector<std::pair<Timestamp, StaticNodeView>> out;
  out.reserve(history_.events.size() + 1);
  Delta state = history_.initial;
  out.emplace_back(history_.from, ViewFromDelta(history_.node, state));
  for (const Event& e : history_.events.events()) {
    state.ApplyEvent(e);
    out.emplace_back(e.time, ViewFromDelta(history_.node, state));
  }
  return out;
}

std::vector<NodeId> NodeT::GetNeighborIDsAt(Timestamp t) const {
  return GetStateAt(t).neighbors;
}

NodeT::Iterator::Iterator(const NodeT* node)
    : node_(node), state_(node->history_.initial),
      time_(node->history_.from) {}

const Event& NodeT::Iterator::PeekNextEvent() const {
  return node_->history_.events.events()[next_];
}

StaticNodeView NodeT::Iterator::GetNextVersion() {
  const Event& e = node_->history_.events.events()[next_++];
  state_.ApplyEvent(e);
  time_ = e.time;
  return ViewFromDelta(node_->history_.node, state_);
}

const Event& NodeT::Iterator::GetNextEvent() {
  const Event& e = node_->history_.events.events()[next_++];
  state_.ApplyEvent(e);
  time_ = e.time;
  return e;
}

StaticNodeView NodeT::Iterator::CurrentVersion() const {
  return ViewFromDelta(node_->history_.node, state_);
}

}  // namespace hgs::taf
