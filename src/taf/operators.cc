#include "taf/operators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace hgs::taf {

std::vector<std::pair<NodeId, double>> ComparePerNode(
    const SoN& a, const SoN& b,
    const std::function<double(const NodeT&)>& fn) {
  std::unordered_map<NodeId, double> va;
  std::unordered_map<NodeId, double> vb;
  for (const NodeT& n : a.nodes()) va[n.id()] = fn(n);
  for (const NodeT& n : b.nodes()) vb[n.id()] = fn(n);
  std::vector<std::pair<NodeId, double>> out;
  out.reserve(va.size() + vb.size());
  for (const auto& [id, v] : va) {
    auto it = vb.find(id);
    out.emplace_back(id, v - (it == vb.end() ? 0.0 : it->second));
  }
  for (const auto& [id, v] : vb) {
    if (!va.contains(id)) out.emplace_back(id, -v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CompareSeriesResult CompareSeries(
    const SoN& a, const SoN& b,
    const std::function<double(const SoN&, Timestamp)>& fn,
    const std::function<std::vector<Timestamp>(const SoN&, const SoN&)>&
        timepoints) {
  std::vector<Timestamp> times;
  if (timepoints != nullptr) {
    times = timepoints(a, b);
  } else {
    std::vector<Timestamp> pa = a.AllChangePoints();
    std::vector<Timestamp> pb = b.AllChangePoints();
    times.reserve(pa.size() + pb.size());
    std::merge(pa.begin(), pa.end(), pb.begin(), pb.end(),
               std::back_inserter(times));
    times.erase(std::unique(times.begin(), times.end()), times.end());
    if (times.empty()) times.push_back(a.GetStartTime());
  }
  CompareSeriesResult out;
  out.a.reserve(times.size());
  out.b.reserve(times.size());
  for (Timestamp t : times) {
    out.a.emplace_back(t, fn(a, t));
    out.b.emplace_back(t, fn(b, t));
  }
  return out;
}

double CountExisting(const SoN& son, Timestamp t) {
  double count = 0;
  for (const NodeT& n : son.nodes()) {
    if (n.GetStateAt(t).exists) count += 1.0;
  }
  return count;
}

namespace agg {

std::optional<std::pair<Timestamp, double>> Max(const Series& series) {
  if (series.empty()) return std::nullopt;
  auto it = std::max_element(
      series.begin(), series.end(),
      [](const auto& x, const auto& y) { return x.second < y.second; });
  return *it;
}

std::optional<std::pair<Timestamp, double>> Min(const Series& series) {
  if (series.empty()) return std::nullopt;
  auto it = std::min_element(
      series.begin(), series.end(),
      [](const auto& x, const auto& y) { return x.second < y.second; });
  return *it;
}

double Mean(const Series& series) {
  if (series.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, v] : series) sum += v;
  return sum / static_cast<double>(series.size());
}

double TimeWeightedMean(const Series& series) {
  if (series.size() < 2) return series.empty() ? 0.0 : series[0].second;
  double integral = 0.0;
  for (size_t i = 0; i + 1 < series.size(); ++i) {
    integral += series[i].second *
                static_cast<double>(series[i + 1].first - series[i].first);
  }
  double span =
      static_cast<double>(series.back().first - series.front().first);
  return span <= 0.0 ? series[0].second : integral / span;
}

std::vector<Timestamp> Peak(const Series& series) {
  std::vector<Timestamp> out;
  for (size_t i = 1; i + 1 < series.size(); ++i) {
    if (series[i].second > series[i - 1].second &&
        series[i].second > series[i + 1].second) {
      out.push_back(series[i].first);
    }
  }
  return out;
}

std::optional<Timestamp> Saturate(const Series& series, double tolerance) {
  if (series.empty()) return std::nullopt;
  double final_value = series.back().second;
  double band = std::abs(final_value) * tolerance;
  // Walk backwards: the saturation point is the first time after which the
  // series never leaves the band around its final value.
  size_t first_settled = series.size() - 1;
  for (size_t i = series.size(); i-- > 0;) {
    if (std::abs(series[i].second - final_value) <= band) {
      first_settled = i;
    } else {
      break;
    }
  }
  return series[first_settled].first;
}

}  // namespace agg

}  // namespace hgs::taf
