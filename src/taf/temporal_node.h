// NodeT (Definition 6): the sequence of states of one node over a time
// range, stored — exactly as Section 5.2 prescribes — as an initial snapshot
// of the node followed by chronologically sorted events, with iterator-style
// access to versions and events.

#ifndef HGS_TAF_TEMPORAL_NODE_H_
#define HGS_TAF_TEMPORAL_NODE_H_

#include <string>
#include <vector>

#include "tgi/query.h"

namespace hgs::taf {

/// The state of a node at one timepoint: record plus incident edges.
struct StaticNodeView {
  NodeId id = kInvalidNodeId;
  bool exists = false;
  Attributes attrs;
  std::vector<NodeId> neighbors;
  std::vector<EdgeRecord> edges;  ///< incident edges, canonical order

  size_t Degree() const { return neighbors.size(); }
};

class NodeT {
 public:
  NodeT() = default;
  explicit NodeT(NodeHistory history) : history_(std::move(history)) {}

  NodeId id() const { return history_.node; }
  Timestamp GetStartTime() const { return history_.from; }
  Timestamp GetEndTime() const { return history_.to; }
  const NodeHistory& history() const { return history_; }

  /// Number of change points in the range.
  size_t VersionCount() const { return history_.events.size(); }

  /// Timestamps at which this node changed, ascending.
  std::vector<Timestamp> ChangePoints() const;

  /// State of the node as of time t (GetVersionAt in the paper).
  StaticNodeView GetStateAt(Timestamp t) const;

  /// All versions in order: the initial state plus one per event.
  std::vector<std::pair<Timestamp, StaticNodeView>> GetVersions() const;

  /// Neighbor ids as of t (getNeighborIDsAt in the paper).
  std::vector<NodeId> GetNeighborIDsAt(Timestamp t) const;

  /// Chronological iteration over versions without materializing them all.
  class Iterator {
   public:
    explicit Iterator(const NodeT* node);
    bool HasNextEvent() const { return next_ < node_->history_.events.size(); }
    /// The event that produces the next version.
    const Event& PeekNextEvent() const;
    /// Advances past one event and returns the resulting version.
    StaticNodeView GetNextVersion();
    /// Advances past one event and returns it.
    const Event& GetNextEvent();
    /// Current (already reached) version.
    StaticNodeView CurrentVersion() const;
    Timestamp CurrentTime() const { return time_; }

   private:
    const NodeT* node_;
    Delta state_;
    Timestamp time_;
    size_t next_ = 0;
  };

  Iterator GetIterator() const { return Iterator(this); }

 private:
  static StaticNodeView ViewFromDelta(NodeId id, const Delta& d);

  NodeHistory history_;
};

}  // namespace hgs::taf

#endif  // HGS_TAF_TEMPORAL_NODE_H_
