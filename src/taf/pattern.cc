#include "taf/pattern.h"

namespace hgs::taf {

std::string WedgeState::LabelOf(const Graph& g, NodeId id,
                                const WedgePattern& pattern) {
  const NodeRecord* rec = g.GetNode(id);
  if (rec == nullptr) return "";
  auto v = rec->attrs.Get(pattern.label_key);
  return v.has_value() ? std::string(*v) : "";
}

double WedgeState::WedgesAt(const NodeAux& aux,
                            const WedgePattern& pattern) const {
  if (aux.label != pattern.center) return 0;
  auto tally = [&aux](const std::string& label) {
    auto it = aux.neighbor_labels.find(label);
    return it == aux.neighbor_labels.end() ? 0 : it->second;
  };
  if (pattern.left == pattern.right) {
    double n = tally(pattern.left);
    return n * (n - 1) / 2.0;
  }
  return static_cast<double>(tally(pattern.left)) *
         static_cast<double>(tally(pattern.right));
}

WedgeState WedgeState::FromGraph(const Graph& g, const WedgePattern& pattern) {
  WedgeState state;
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    NodeAux aux;
    aux.label = LabelOf(g, id, pattern);
    for (NodeId nb : g.Neighbors(id)) {
      aux.neighbor_labels[LabelOf(g, nb, pattern)]++;
    }
    state.count_ += state.WedgesAt(aux, pattern);
    state.nodes_.emplace(id, std::move(aux));
  });
  return state;
}

void WedgeState::ApplyEvent(const Graph& before, const Event& e,
                            const WedgePattern& pattern) {
  // Re-counts wedges at `id` around a mutation of its aux entry.
  auto mutate = [&](NodeId id, auto&& fn) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;
    count_ -= WedgesAt(it->second, pattern);
    fn(it->second);
    count_ += WedgesAt(it->second, pattern);
  };

  switch (e.type) {
    case EventType::kAddNode: {
      if (before.HasNode(e.u)) break;  // boundary re-add: out of scope
      NodeAux aux;
      auto v = e.attrs.Get(pattern.label_key);
      aux.label = v.has_value() ? std::string(*v) : "";
      nodes_.emplace(e.u, std::move(aux));  // no neighbors yet: 0 wedges
      break;
    }
    case EventType::kRemoveNode: {
      auto it = nodes_.find(e.u);
      if (it == nodes_.end()) break;
      std::string label = it->second.label;
      count_ -= WedgesAt(it->second, pattern);
      nodes_.erase(it);
      // Well-formed streams removed incident edges first; defensively sweep
      // any neighbor tallies still referencing the node.
      for (NodeId nb : before.Neighbors(e.u)) {
        mutate(nb, [&](NodeAux& aux) { aux.neighbor_labels[label]--; });
      }
      break;
    }
    case EventType::kAddEdge:
    case EventType::kRemoveEdge: {
      // Only edges fully inside the tracked node set count (member-induced
      // subgraph semantics).
      auto iu = nodes_.find(e.u);
      auto iv = nodes_.find(e.v);
      if (iu == nodes_.end() || iv == nodes_.end()) break;
      bool exists = before.HasEdge(e.u, e.v);
      if (e.type == EventType::kAddEdge && exists) break;
      if (e.type == EventType::kRemoveEdge && !exists) break;
      int delta = e.type == EventType::kAddEdge ? 1 : -1;
      std::string lu = iu->second.label;
      std::string lv = iv->second.label;
      mutate(e.u, [&](NodeAux& aux) { aux.neighbor_labels[lv] += delta; });
      mutate(e.v, [&](NodeAux& aux) { aux.neighbor_labels[lu] += delta; });
      break;
    }
    case EventType::kSetNodeAttr:
    case EventType::kDelNodeAttr: {
      if (e.key != pattern.label_key) break;
      auto it = nodes_.find(e.u);
      if (it == nodes_.end()) break;
      std::string old_label = it->second.label;
      std::string new_label =
          e.type == EventType::kSetNodeAttr ? e.value : "";
      if (old_label == new_label) break;
      // The node's own wedges change (center membership)...
      mutate(e.u, [&](NodeAux& aux) { aux.label = new_label; });
      // ...and every neighbor's tallies shift from old to new label.
      for (NodeId nb : before.Neighbors(e.u)) {
        mutate(nb, [&](NodeAux& aux) {
          aux.neighbor_labels[old_label]--;
          aux.neighbor_labels[new_label]++;
        });
      }
      break;
    }
    default:
      break;  // edge-attribute events don't affect the pattern
  }
}

double CountWedges(const Graph& g, const WedgePattern& pattern) {
  double total = 0;
  g.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    auto center = rec.attrs.Get(pattern.label_key);
    if (!center.has_value() || *center != pattern.center) return;
    int n_left = 0;
    int n_right = 0;
    for (NodeId nb : g.Neighbors(id)) {
      const NodeRecord* nrec = g.GetNode(nb);
      auto label = nrec->attrs.Get(pattern.label_key);
      std::string l = label.has_value() ? std::string(*label) : "";
      if (l == pattern.left) ++n_left;
      if (l == pattern.right) ++n_right;
    }
    if (pattern.left == pattern.right) {
      total += static_cast<double>(n_left) *
               static_cast<double>(n_left - 1) / 2.0;
    } else {
      total += static_cast<double>(n_left) * static_cast<double>(n_right);
    }
  });
  return total;
}

}  // namespace hgs::taf
