// The TAF execution engine: a fixed pool of `ma` workers (the paper's Spark
// cluster stand-in, see DESIGN.md substitutions) plus the connection to the
// TGI query manager used for the parallel fetch protocol of Fig 10 — every
// worker pulls its share of temporal nodes directly from the index.

#ifndef HGS_TAF_ENGINE_H_
#define HGS_TAF_ENGINE_H_

#include <functional>

#include "common/thread_pool.h"
#include "tgi/query.h"

namespace hgs::taf {

class TAFEngine {
 public:
  TAFEngine(TGIQueryManager* qm, size_t num_workers)
      : qm_(qm), num_workers_(num_workers == 0 ? 1 : num_workers) {}

  TGIQueryManager* query_manager() const { return qm_; }
  size_t num_workers() const { return num_workers_; }

  /// Data-parallel loop over n items across the worker cluster. Runs on
  /// the process-wide SharedWorkPool with degree `num_workers`, so every
  /// query reuses the same threads and nested parallel sections (a worker
  /// body issuing a parallel TGI fetch) compose without thread explosion.
  void ParallelOver(size_t n, const std::function<void(size_t)>& fn) const {
    ParallelFor(n, num_workers_, fn);
  }

 private:
  TGIQueryManager* qm_;
  size_t num_workers_;
};

}  // namespace hgs::taf

#endif  // HGS_TAF_ENGINE_H_
