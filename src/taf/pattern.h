// Incremental subgraph-pattern counting — the paper's "somewhat more
// intricate example" (Section 5.2): counting occurrences of a small labelled
// pattern across long sequences of subgraph versions requires an inverted
// index that is updated per event, so each version's answer costs O(1)-ish
// instead of a fresh subgraph-match.
//
// The pattern here is a labelled wedge  A — B — C : a center node whose
// `label_key` equals `center`, with two distinct neighbors labelled `left`
// and `right` (unordered when left == right). The auxiliary information the
// paper's f∆ signature calls for — "some auxiliary information pertaining to
// that state of the node" — is carried inside the operator's value type:
// WedgeState = running count + per-node label/neighbor-label tallies.

#ifndef HGS_TAF_PATTERN_H_
#define HGS_TAF_PATTERN_H_

#include <string>
#include <unordered_map>

#include "delta/event.h"
#include "graph/graph.h"

namespace hgs::taf {

/// The labelled wedge pattern A—B—C.
struct WedgePattern {
  std::string label_key = "label";
  std::string center;
  std::string left;
  std::string right;
};

/// Value + auxiliary index for incremental wedge counting. Copyable (it is
/// an operator value), but the interesting use is threading one instance
/// through a version sequence.
class WedgeState {
 public:
  WedgeState() = default;

  /// Builds the state (count + index) from a materialized graph — the
  /// paper's f(): a fresh evaluation that also seeds the auxiliary index.
  static WedgeState FromGraph(const Graph& g, const WedgePattern& pattern);

  /// The paper's f∆(): updates count and index for one event, given the
  /// subgraph state *before* the event. O(degree) per structural event,
  /// O(1) per attribute event.
  void ApplyEvent(const Graph& before, const Event& e,
                  const WedgePattern& pattern);

  double count() const { return count_; }

 private:
  struct NodeAux {
    std::string label;
    // label -> number of neighbors with that label
    std::unordered_map<std::string, int> neighbor_labels;
  };

  /// Wedges centered at `id`, computed from the aux tallies.
  double WedgesAt(const NodeAux& aux, const WedgePattern& pattern) const;

  static std::string LabelOf(const Graph& g, NodeId id,
                             const WedgePattern& pattern);

  std::unordered_map<NodeId, NodeAux> nodes_;
  double count_ = 0;
};

/// Fresh (non-incremental) wedge count, the brute-force reference.
double CountWedges(const Graph& g, const WedgePattern& pattern);

}  // namespace hgs::taf

#endif  // HGS_TAF_PATTERN_H_
