// SubgraphT: the sequence of states of a subgraph (typically a k-hop
// neighborhood) over a time range — an initial subgraph snapshot plus the
// events touching its members. Membership is frozen at the window start,
// the standard simplification for windowed neighborhood analytics; events
// that link members to outside nodes are retained (they change member
// degrees) but outside nodes never join the member set.

#ifndef HGS_TAF_TEMPORAL_SUBGRAPH_H_
#define HGS_TAF_TEMPORAL_SUBGRAPH_H_

#include <unordered_set>
#include <vector>

#include "delta/eventlist.h"
#include "graph/graph.h"

namespace hgs::taf {

class SubgraphT {
 public:
  SubgraphT() = default;
  SubgraphT(NodeId seed, std::unordered_set<NodeId> members, Delta initial,
            EventList events, Timestamp from, Timestamp to)
      : seed_(seed),
        members_(std::move(members)),
        initial_(std::move(initial)),
        events_(std::move(events)),
        from_(from),
        to_(to) {}

  NodeId seed() const { return seed_; }
  Timestamp GetStartTime() const { return from_; }
  Timestamp GetEndTime() const { return to_; }
  const std::unordered_set<NodeId>& members() const { return members_; }
  const EventList& events() const { return events_; }
  size_t VersionCount() const { return events_.size(); }

  std::vector<Timestamp> ChangePoints() const {
    std::vector<Timestamp> out;
    out.reserve(events_.size());
    for (const Event& e : events_.events()) out.push_back(e.time);
    return out;
  }

  /// Materialized member-induced subgraph as of t (GetVersionAt).
  Graph GetVersionAt(Timestamp t) const;

  /// Underlying state delta as of t (includes boundary edges).
  Delta GetStateDeltaAt(Timestamp t) const;

  /// Iterates versions chronologically, maintaining one rolling graph.
  /// `fn(time, graph)` is invoked for the initial state (at GetStartTime)
  /// and after each event.
  void ForEachVersion(
      const std::function<void(Timestamp, const Graph&)>& fn) const;

  /// Iterates events with the state visible *before* each event, which is
  /// what incremental functions (NodeComputeDelta's f∆) consume.
  void ForEachEventWithState(
      const std::function<void(const Graph&, const Event&)>& fn) const;

  /// Single-pass walk: `on_initial` sees the materialized state at the
  /// window start, then `before_event` sees (state before event, event) for
  /// each event. One rolling graph — this is what makes NodeComputeDelta
  /// O(N + T) rather than O(N·T).
  void Walk(const std::function<void(const Graph&)>& on_initial,
            const std::function<void(const Graph&, const Event&)>&
                before_event) const;

 private:
  Graph MaterializeMembers(const Delta& d) const;

  NodeId seed_ = kInvalidNodeId;
  std::unordered_set<NodeId> members_;
  Delta initial_;
  EventList events_;
  Timestamp from_ = 0;
  Timestamp to_ = 0;
};

}  // namespace hgs::taf

#endif  // HGS_TAF_TEMPORAL_SUBGRAPH_H_
