// Metric libraries for TAF analyses — the NodeMetrics / GraphMetrics of the
// paper's examples (Fig 7), including the incremental label-counting pair of
// Fig 8 used by NodeComputeDelta.

#ifndef HGS_TAF_METRICS_H_
#define HGS_TAF_METRICS_H_

#include <string>

#include "delta/event.h"
#include "graph/algorithms.h"
#include "taf/temporal_node.h"

namespace hgs::taf::metrics {

/// GraphMetrics.density.
inline double Density(const Graph& g) { return algo::Density(g); }

/// NodeMetrics.LCC on an ego network (the subgraph around `center`).
inline double LocalClusteringCoefficient(const Graph& ego, NodeId center) {
  return algo::LocalClusteringCoefficient(ego, center);
}

/// Degree of a temporal node at its window start.
inline double InitialDegree(const NodeT& n) {
  return static_cast<double>(n.GetStateAt(n.GetStartTime()).Degree());
}

/// Fig 8's fCountLabel: fresh count of nodes whose `key` equals `value`.
double CountLabel(const Graph& g, const std::string& key,
                  const std::string& value);

/// Fig 8's fCountLabelDel: incremental update of the label count from one
/// event. `before` is the subgraph state before the event.
double CountLabelDelta(const Graph& before, double prev_value,
                       const Event& e, const std::string& key,
                       const std::string& value);

/// Fresh triangle count — the f() of the paper's "more intricate"
/// incremental pattern-matching example (Section 5.2): counting a small
/// subgraph pattern over versions.
double TriangleCount(const Graph& g);

/// Incremental triangle count: an edge (u,v) add/remove changes the count
/// by |N(u) ∩ N(v)| in the state before the event — an O(deg) update versus
/// an O(|E|^1.5) recount.
double TriangleCountDelta(const Graph& before, double prev_value,
                          const Event& e);

}  // namespace hgs::taf::metrics

#endif  // HGS_TAF_METRICS_H_
