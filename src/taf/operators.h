// Cross-operand operators and temporal aggregation (Section 5.1, operators
// 7-9): Compare over two SoNs, and the TempAggregation family over scalar
// timeseries (Max, Min, Mean, Peak, Saturate).

#ifndef HGS_TAF_OPERATORS_H_
#define HGS_TAF_OPERATORS_H_

#include <functional>
#include <optional>
#include <vector>

#include "taf/son.h"

namespace hgs::taf {

/// Compare (7), per-node form: evaluates `fn` on the nodes of both operands
/// and returns (node-id, value_a - value_b) for every id present in either
/// (missing side contributes 0).
std::vector<std::pair<NodeId, double>> ComparePerNode(
    const SoN& a, const SoN& b,
    const std::function<double(const NodeT&)>& fn);

/// Compare, set-level form (the Fig 7b usage): evaluates a set-level scalar
/// on both operands at each timepoint produced by `timepoints` (defaults to
/// the union of both operands' change points) and returns the two series.
struct CompareSeriesResult {
  Series a;
  Series b;
};
CompareSeriesResult CompareSeries(
    const SoN& a, const SoN& b,
    const std::function<double(const SoN&, Timestamp)>& fn,
    const std::function<std::vector<Timestamp>(const SoN&, const SoN&)>&
        timepoints = nullptr);

/// Set-level count of nodes existing at t (the paper's SON.count()).
double CountExisting(const SoN& son, Timestamp t);

// -- TempAggregation (9) ----------------------------------------------------

namespace agg {

/// Largest value in the series (nullopt for an empty series).
std::optional<std::pair<Timestamp, double>> Max(const Series& series);

/// Smallest value in the series.
std::optional<std::pair<Timestamp, double>> Min(const Series& series);

/// Arithmetic mean of the values (0 for an empty series).
double Mean(const Series& series);

/// Time-weighted mean: each value holds until the next sample.
double TimeWeightedMean(const Series& series);

/// Timepoints of strict local maxima ("times at which there was a peak in
/// the network density").
std::vector<Timestamp> Peak(const Series& series);

/// First time the series reaches and holds within `tolerance` (relative) of
/// its final value — the saturation point. nullopt if it never settles.
std::optional<Timestamp> Saturate(const Series& series,
                                  double tolerance = 0.05);

}  // namespace agg

}  // namespace hgs::taf

#endif  // HGS_TAF_OPERATORS_H_
