#include "taf/context.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"

namespace hgs::taf {

namespace {

/// [begin, end) of share `w` out of `shares` over n items (Fig 10: each
/// worker pulls its contiguous share of the candidate set in one bulk
/// retrieval).
std::pair<size_t, size_t> ShareBounds(size_t n, size_t shares, size_t w) {
  return {n * w / shares, n * (w + 1) / shares};
}

}  // namespace

NodeSetSpec& NodeSetSpec::TimeRange(Timestamp from, Timestamp to) {
  from_ = from;
  to_ = to;
  return *this;
}

NodeSetSpec& NodeSetSpec::WithIds(std::vector<NodeId> ids) {
  explicit_ids_ = std::move(ids);
  return *this;
}

NodeSetSpec& NodeSetSpec::WhereId(std::function<bool(NodeId)> pred) {
  id_pred_ = std::move(pred);
  return *this;
}

NodeSetSpec& NodeSetSpec::WhereAttr(std::string key, std::string value) {
  attr_filter_ = std::make_pair(std::move(key), std::move(value));
  return *this;
}

NodeSetSpec& NodeSetSpec::IncludeArrivals(bool include) {
  include_arrivals_ = include;
  return *this;
}

Result<SoN> NodeSetSpec::Fetch(FetchStats* stats) const {
  TGIQueryManager* qm = engine_->query_manager();
  Timestamp from = std::max(from_, qm->HistoryStart() - 1);
  Timestamp to = std::min(to_, qm->HistoryEnd());

  // -- 1. Candidate enumeration. -------------------------------------------
  std::vector<NodeId> candidates;
  std::unordered_map<NodeId, const NodeRecord*> initial_records;
  Delta snapshot_delta;
  if (explicit_ids_.has_value()) {
    candidates = *explicit_ids_;
  } else {
    HGS_ASSIGN_OR_RETURN(snapshot_delta, qm->GetSnapshotDelta(from, stats));
    snapshot_delta.ForEachNodeEntry(
        [&](NodeId id, const std::optional<NodeRecord>& rec) {
          if (rec.has_value()) candidates.push_back(id);
        });
    if (include_arrivals_ && to > from) {
      HGS_ASSIGN_OR_RETURN(std::vector<Event> range_events,
                           qm->GetEventsInRange(from, to, stats));
      std::unordered_set<NodeId> have(candidates.begin(), candidates.end());
      for (const Event& e : range_events) {
        if (e.type == EventType::kAddNode && !have.contains(e.u)) {
          have.insert(e.u);
          candidates.push_back(e.u);
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());

  // -- 2. Cheap filters before any per-node fetch. --------------------------
  if (id_pred_ != nullptr) {
    std::erase_if(candidates, [&](NodeId id) { return !id_pred_(id); });
  }
  if (attr_filter_.has_value() && !explicit_ids_.has_value()) {
    // The snapshot delta already holds window-start attributes.
    std::erase_if(candidates, [&](NodeId id) {
      const auto* rec = snapshot_delta.FindNode(id);
      if (rec == nullptr || !rec->has_value()) return false;  // arrival
      auto v = (*rec)->attrs.Get(attr_filter_->first);
      return !(v.has_value() && *v == attr_filter_->second);
    });
  }
  // Explicit id lists may repeat ids (WithIds({5, 5})); a temporal node
  // must appear once per distinct id, and each history fetched once.
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // -- 3. Parallel fetch: each worker pulls its share in one bulk
  // GetNodeHistories call (Fig 10), so the physical fetch cost is bounded
  // by partitions touched per share, not by candidate count.
  std::vector<NodeT> nodes(candidates.size());
  std::atomic<bool> failed{false};
  Status first_error;
  Mutex mu;
  FetchStats agg;
  size_t shares = std::min(engine_->num_workers(),
                           std::max<size_t>(candidates.size(), 1));
  engine_->ParallelOver(shares, [&](size_t w) {
    if (failed.load(std::memory_order_relaxed)) return;
    auto [begin, end] = ShareBounds(candidates.size(), shares, w);
    if (begin == end) return;
    std::vector<NodeId> share(candidates.begin() + begin,
                              candidates.begin() + end);
    FetchStats local;
    auto hists = qm->GetNodeHistories(share, from, to, &local);
    {
      MutexLock lock(mu);
      agg.Merge(local);
      if (!hists.ok()) {
        if (!failed.exchange(true)) first_error = hists.status();
        return;
      }
    }
    // Shares write disjoint ranges: no lock while materializing nodes.
    for (size_t i = begin; i < end; ++i) {
      nodes[i] = NodeT(std::move((*hists)[i - begin]));
    }
  });
  if (stats != nullptr) {
    agg.wall_seconds = 0;  // absorbed in the caller's timing
    stats->Merge(agg);
  }
  if (failed.load()) return first_error;

  // Post-fetch attribute filter for explicit-id fetches.
  if (attr_filter_.has_value() && explicit_ids_.has_value()) {
    std::vector<NodeT> kept;
    for (NodeT& n : nodes) {
      auto v = n.GetStateAt(from).attrs.Get(attr_filter_->first);
      if (v.has_value() && *v == attr_filter_->second) {
        kept.push_back(std::move(n));
      }
    }
    nodes = std::move(kept);
  }
  return SoN(engine_, std::move(nodes), from, to);
}

SubgraphSetSpec& SubgraphSetSpec::TimeRange(Timestamp from, Timestamp to) {
  from_ = from;
  to_ = to;
  return *this;
}

SubgraphSetSpec& SubgraphSetSpec::WithSeeds(std::vector<NodeId> seeds) {
  seeds_ = std::move(seeds);
  return *this;
}

Result<SoTS> SubgraphSetSpec::Fetch(FetchStats* stats) const {
  TGIQueryManager* qm = engine_->query_manager();
  Timestamp from = std::max(from_, qm->HistoryStart() - 1);
  Timestamp to = std::min(to_, qm->HistoryEnd());
  if (seeds_.empty()) {
    return Status::InvalidArgument("SubgraphSetSpec requires seeds");
  }

  std::vector<SubgraphT> out(seeds_.size());
  std::atomic<bool> failed{false};
  Status first_error;
  Mutex mu;
  FetchStats agg;
  engine_->ParallelOver(seeds_.size(), [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    FetchStats local;
    auto fail = [&](const Status& s) {
      MutexLock lock(mu);
      agg.Merge(local);
      if (!failed.exchange(true)) first_error = s;
    };
    // Membership: the k-hop neighborhood at window start.
    auto hood = qm->GetKHopNeighborhood(seeds_[i], from, k_, &local);
    if (!hood.ok()) {
      fail(hood.status());
      return;
    }
    std::unordered_set<NodeId> members;
    for (NodeId id : hood->NodeIds()) members.insert(id);
    members.insert(seeds_[i]);
    Delta initial = Delta::FromGraph(*hood);

    // Member events arrive merged and deduplicated straight from the
    // index: one bulk retrieval per subgraph, eventlists shared by members
    // fetched once, and duplicates of internal edge events removed inside
    // each (timespan, eventlist) chunk — so no per-node histories are
    // materialized and no global sort over the union runs.
    std::vector<NodeId> member_ids(members.begin(), members.end());
    std::sort(member_ids.begin(), member_ids.end());
    auto merged = qm->GetMergedMemberEvents(member_ids, from, to, &local);
    if (!merged.ok()) {
      fail(merged.status());
      return;
    }
    EventList events(from, to);
    for (Event& e : *merged) events.Append(std::move(e));

    SubgraphT sg(seeds_[i], std::move(members), std::move(initial),
                 std::move(events), from, to);
    MutexLock lock(mu);
    agg.Merge(local);
    out[i] = std::move(sg);
  });
  if (stats != nullptr) {
    agg.wall_seconds = 0;
    stats->Merge(agg);
  }
  if (failed.load()) return first_error;
  return SoTS(engine_, std::move(out), from, to);
}

}  // namespace hgs::taf
