// TAFContext and the lazy fetch specifications — the C++ rendition of the
// paper's Python snippets (Fig 7):
//
//   TAFContext ctx(&qm, /*workers=*/4);                 // TGIHandler
//   auto son = ctx.Nodes()                              // SON(tgiH)
//                 .TimeRange(t0, t1)                    //   .Timeslice(...)
//                 .WhereId([](NodeId id){return id<5000;})  // .Select(...)
//                 .Fetch();                             //   .fetch()
//
// Nothing is retrieved until Fetch(): the combined instructions form one
// retrieval plan, and the engine's workers pull their shares of temporal
// nodes from the TGI query processors in parallel (Fig 10).

#ifndef HGS_TAF_CONTEXT_H_
#define HGS_TAF_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "taf/operators.h"
#include "taf/son.h"

namespace hgs::taf {

class NodeSetSpec {
 public:
  NodeSetSpec(std::shared_ptr<const TAFEngine> engine)
      : engine_(std::move(engine)) {}

  /// Temporal scope of the fetch (defaults to the whole history).
  NodeSetSpec& TimeRange(Timestamp from, Timestamp to);
  /// Point scope: state as of t only.
  NodeSetSpec& AtTime(Timestamp t) { return TimeRange(t, t); }

  /// Restrict to an explicit id set (skips candidate enumeration).
  NodeSetSpec& WithIds(std::vector<NodeId> ids);
  /// Restrict by id predicate (e.g. the paper's "id < 5000").
  NodeSetSpec& WhereId(std::function<bool(NodeId)> pred);
  /// Restrict by attribute value as of the window start.
  NodeSetSpec& WhereAttr(std::string key, std::string value);
  /// Include nodes that first appear during the window (default true).
  NodeSetSpec& IncludeArrivals(bool include);

  /// Executes the plan: enumerates candidates, filters, and fetches the
  /// temporal nodes in parallel across the engine's workers.
  Result<SoN> Fetch(FetchStats* stats = nullptr) const;

 private:
  std::shared_ptr<const TAFEngine> engine_;
  Timestamp from_ = kMinTimestamp;
  Timestamp to_ = kMaxTimestamp;
  bool include_arrivals_ = true;
  std::optional<std::vector<NodeId>> explicit_ids_;
  std::function<bool(NodeId)> id_pred_;
  std::optional<std::pair<std::string, std::string>> attr_filter_;
};

class SubgraphSetSpec {
 public:
  SubgraphSetSpec(std::shared_ptr<const TAFEngine> engine, int k)
      : engine_(std::move(engine)), k_(k) {}

  SubgraphSetSpec& TimeRange(Timestamp from, Timestamp to);
  /// Seeds of the k-hop subgraphs.
  SubgraphSetSpec& WithSeeds(std::vector<NodeId> seeds);

  Result<SoTS> Fetch(FetchStats* stats = nullptr) const;

 private:
  std::shared_ptr<const TAFEngine> engine_;
  int k_;
  Timestamp from_ = kMinTimestamp;
  Timestamp to_ = kMaxTimestamp;
  std::vector<NodeId> seeds_;
};

/// The TGIHandler analogue: binds a TGI query manager to a worker cluster.
class TAFContext {
 public:
  TAFContext(TGIQueryManager* qm, size_t num_workers)
      : engine_(std::make_shared<TAFEngine>(qm, num_workers)) {}

  /// Start a SoN retrieval plan.
  NodeSetSpec Nodes() const { return NodeSetSpec(engine_); }
  /// Start a SoTS retrieval plan with k-hop subgraphs.
  SubgraphSetSpec Subgraphs(int k) const {
    return SubgraphSetSpec(engine_, k);
  }

  const std::shared_ptr<const TAFEngine>& engine() const { return engine_; }
  TGIQueryManager* query_manager() const { return engine_->query_manager(); }

 private:
  std::shared_ptr<const TAFEngine> engine_;
};

}  // namespace hgs::taf

#endif  // HGS_TAF_CONTEXT_H_
