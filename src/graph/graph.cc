#include "graph/graph.h"

#include <algorithm>

namespace hgs {

bool Graph::AddNode(NodeId id, Attributes attrs) {
  auto [it, inserted] = nodes_.try_emplace(id);
  it->second.record.attrs = std::move(attrs);
  return inserted;
}

bool Graph::RemoveNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  // Remove incident edges (copy neighbor list: RemoveEdge mutates it).
  std::vector<NodeId> nbrs = it->second.neighbors;
  for (NodeId n : nbrs) RemoveEdge(id, n);
  nodes_.erase(id);
  return true;
}

bool Graph::AddEdge(NodeId u, NodeId v, bool directed, Attributes attrs) {
  if (u == v) return false;  // self-loops excluded from the data model
  nodes_.try_emplace(u);
  nodes_.try_emplace(v);
  EdgeKey key(u, v);
  auto [it, inserted] = edges_.try_emplace(key);
  it->second =
      EdgeRecord{.src = u, .dst = v, .directed = directed,
                 .attrs = std::move(attrs)};
  if (inserted) {
    nodes_[u].neighbors.push_back(v);
    nodes_[v].neighbors.push_back(u);
  }
  return inserted;
}

bool Graph::RemoveEdge(NodeId u, NodeId v) {
  if (edges_.erase(EdgeKey(u, v)) == 0) return false;
  DetachNeighbor(u, v);
  DetachNeighbor(v, u);
  return true;
}

void Graph::DetachNeighbor(NodeId from, NodeId nbr) {
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return;
  auto& vec = it->second.neighbors;
  auto pos = std::find(vec.begin(), vec.end(), nbr);
  if (pos != vec.end()) {
    *pos = vec.back();
    vec.pop_back();
  }
}

const NodeRecord* Graph::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second.record;
}

NodeRecord* Graph::GetMutableNode(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second.record;
}

const EdgeRecord* Graph::GetEdge(NodeId u, NodeId v) const {
  auto it = edges_.find(EdgeKey(u, v));
  return it == edges_.end() ? nullptr : &it->second;
}

EdgeRecord* Graph::GetMutableEdge(NodeId u, NodeId v) {
  auto it = edges_.find(EdgeKey(u, v));
  return it == edges_.end() ? nullptr : &it->second;
}

const std::vector<NodeId>& Graph::Neighbors(NodeId id) const {
  static const std::vector<NodeId> kEmpty;
  auto it = nodes_.find(id);
  return it == nodes_.end() ? kEmpty : it->second.neighbors;
}

void Graph::ForEachNode(
    const std::function<void(NodeId, const NodeRecord&)>& fn) const {
  for (const auto& [id, entry] : nodes_) fn(id, entry.record);
}

void Graph::ForEachEdge(
    const std::function<void(const EdgeKey&, const EdgeRecord&)>& fn) const {
  for (const auto& [key, rec] : edges_) fn(key, rec);
}

std::vector<NodeId> Graph::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) ids.push_back(id);
  return ids;
}

bool Graph::operator==(const Graph& o) const {
  if (nodes_.size() != o.nodes_.size() || edges_.size() != o.edges_.size()) {
    return false;
  }
  for (const auto& [id, entry] : nodes_) {
    const NodeRecord* other = o.GetNode(id);
    if (other == nullptr || !(entry.record == *other)) return false;
  }
  for (const auto& [key, rec] : edges_) {
    auto it = o.edges_.find(key);
    if (it == o.edges_.end() || !(it->second == rec)) return false;
  }
  return true;
}

}  // namespace hgs
