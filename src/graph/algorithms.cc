#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace hgs::algo {

size_t Degree(const Graph& g, NodeId id) { return g.Neighbors(id).size(); }

double AverageDegree(const Graph& g) {
  if (g.NumNodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.NumEdges()) /
         static_cast<double>(g.NumNodes());
}

double Density(const Graph& g) {
  size_t n = g.NumNodes();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(g.NumEdges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double LocalClusteringCoefficient(const Graph& g, NodeId id) {
  const auto& nbrs = g.Neighbors(id);
  size_t d = nbrs.size();
  if (d < 2) return 0.0;
  std::unordered_set<NodeId> nbr_set(nbrs.begin(), nbrs.end());
  size_t links = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    // Iterate the smaller adjacency to count edges among neighbors once.
    for (NodeId w : g.Neighbors(nbrs[i])) {
      if (w > nbrs[i] && nbr_set.contains(w)) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double AverageClusteringCoefficient(const Graph& g) {
  double sum = 0.0;
  size_t count = 0;
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    if (g.Neighbors(id).size() >= 2) {
      sum += LocalClusteringCoefficient(g, id);
      ++count;
    }
  });
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

uint64_t TriangleCount(const Graph& g) {
  // Count each triangle once via ordered wedge closure u < v < w.
  uint64_t triangles = 0;
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    NodeId u = key.u, v = key.v;  // u < v by canonical ordering
    const auto& nu = g.Neighbors(u);
    const auto& nv = g.Neighbors(v);
    const auto& smaller = nu.size() < nv.size() ? nu : nv;
    std::unordered_set<NodeId> larger_set;
    const auto& larger = nu.size() < nv.size() ? nv : nu;
    larger_set.insert(larger.begin(), larger.end());
    for (NodeId w : smaller) {
      if (w > v && larger_set.contains(w)) ++triangles;
    }
  });
  return triangles;
}

std::unordered_map<NodeId, double> PageRank(const Graph& g, int iterations,
                                            double damping) {
  std::unordered_map<NodeId, double> rank;
  size_t n = g.NumNodes();
  if (n == 0) return rank;
  double init = 1.0 / static_cast<double>(n);
  rank.reserve(n);
  g.ForEachNode([&](NodeId id, const NodeRecord&) { rank[id] = init; });
  std::unordered_map<NodeId, double> next;
  next.reserve(n);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    for (const auto& [id, r] : rank) {
      if (g.Neighbors(id).empty()) dangling += r;
    }
    double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    for (const auto& [id, r] : rank) next[id] = base;
    for (const auto& [id, r] : rank) {
      const auto& nbrs = g.Neighbors(id);
      if (nbrs.empty()) continue;
      double share = damping * r / static_cast<double>(nbrs.size());
      for (NodeId nb : nbrs) next[nb] += share;
    }
    std::swap(rank, next);
  }
  return rank;
}

std::unordered_map<NodeId, int> BfsDistances(const Graph& g, NodeId src,
                                             int max_depth) {
  std::unordered_map<NodeId, int> dist;
  if (!g.HasNode(src)) return dist;
  std::deque<NodeId> queue{src};
  dist[src] = 0;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    int d = dist[u];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (dist.try_emplace(v, d + 1).second) queue.push_back(v);
    }
  }
  return dist;
}

int ShortestPathLength(const Graph& g, NodeId src, NodeId dst) {
  if (!g.HasNode(src) || !g.HasNode(dst)) return -1;
  if (src == dst) return 0;
  auto dist = BfsDistances(g, src);
  auto it = dist.find(dst);
  return it == dist.end() ? -1 : it->second;
}

std::unordered_map<NodeId, NodeId> ConnectedComponents(const Graph& g) {
  std::unordered_map<NodeId, NodeId> label;
  label.reserve(g.NumNodes());
  for (NodeId root : g.NodeIds()) {
    if (label.contains(root)) continue;
    // BFS from root; label everything reachable with the component min id,
    // found on the fly (first pass collects, second pass assigns).
    std::vector<NodeId> members;
    std::deque<NodeId> queue{root};
    label[root] = root;
    members.push_back(root);
    NodeId min_id = root;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.Neighbors(u)) {
        if (label.try_emplace(v, root).second) {
          queue.push_back(v);
          members.push_back(v);
          min_id = std::min(min_id, v);
        }
      }
    }
    if (min_id != root) {
      for (NodeId m : members) label[m] = min_id;
    }
  }
  return label;
}

size_t LargestComponentSize(const Graph& g) {
  auto labels = ConnectedComponents(g);
  std::unordered_map<NodeId, size_t> counts;
  size_t best = 0;
  for (const auto& [id, comp] : labels) {
    best = std::max(best, ++counts[comp]);
  }
  return best;
}

size_t CountLabel(const Graph& g, std::string_view key,
                  std::string_view value) {
  size_t count = 0;
  g.ForEachNode([&](NodeId, const NodeRecord& rec) {
    auto v = rec.attrs.Get(key);
    if (v.has_value() && *v == value) ++count;
  });
  return count;
}

std::map<size_t, size_t> DegreeDistribution(const Graph& g) {
  std::map<size_t, size_t> hist;
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    ++hist[g.Neighbors(id).size()];
  });
  return hist;
}

NodeId HighestDegreeNode(const Graph& g) {
  NodeId best = kInvalidNodeId;
  size_t best_deg = 0;
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    size_t d = g.Neighbors(id).size();
    if (best == kInvalidNodeId || d > best_deg ||
        (d == best_deg && id < best)) {
      best = id;
      best_deg = d;
    }
  });
  return best;
}

double ClosenessCentrality(const Graph& g, NodeId id) {
  if (!g.HasNode(id) || g.NumNodes() < 2) return 0.0;
  auto dist = BfsDistances(g, id);
  if (dist.size() < 2) return 0.0;
  double sum = 0.0;
  for (const auto& [n, d] : dist) sum += d;
  double reachable = static_cast<double>(dist.size() - 1);
  double n_minus_1 = static_cast<double>(g.NumNodes() - 1);
  // Wasserman-Faust correction for disconnected graphs.
  return (reachable / n_minus_1) * (reachable / sum);
}

Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& ids) {
  Graph out;
  std::unordered_set<NodeId> keep(ids.begin(), ids.end());
  for (NodeId id : ids) {
    const NodeRecord* rec = g.GetNode(id);
    if (rec != nullptr) out.AddNode(id, rec->attrs);
  }
  for (NodeId id : ids) {
    if (!g.HasNode(id)) continue;
    for (NodeId nb : g.Neighbors(id)) {
      if (nb > id && keep.contains(nb)) {
        const EdgeRecord* e = g.GetEdge(id, nb);
        out.AddEdge(e->src, e->dst, e->directed, e->attrs);
      }
    }
  }
  return out;
}

std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId src, int k) {
  auto dist = BfsDistances(g, src, k);
  std::vector<NodeId> out;
  out.reserve(dist.size());
  for (const auto& [id, d] : dist) out.push_back(id);
  return out;
}

}  // namespace hgs::algo
