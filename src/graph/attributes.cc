#include "graph/attributes.h"

namespace hgs {

namespace {
struct KeyLess {
  bool operator()(const Attributes::Entry& e, std::string_view key) const {
    return e.first < key;
  }
};
}  // namespace

void Attributes::Set(std::string_view key, std::string_view value) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  if (it != entries_.end() && it->first == key) {
    it->second.assign(value);
  } else {
    entries_.insert(it, Entry(std::string(key), std::string(value)));
  }
}

void Attributes::SetOwned(std::string key, std::string value) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, Entry(std::move(key), std::move(value)));
  }
}

void Attributes::AppendSorted(std::string key, std::string value) {
  if (entries_.empty() || entries_.back().first < key) {
    entries_.emplace_back(std::move(key), std::move(value));
  } else {
    Set(key, value);
  }
}

bool Attributes::Erase(std::string_view key) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  if (it != entries_.end() && it->first == key) {
    entries_.erase(it);
    return true;
  }
  return false;
}

std::optional<std::string_view> Attributes::Get(std::string_view key) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  if (it != entries_.end() && it->first == key) {
    return std::string_view(it->second);
  }
  return std::nullopt;
}

Attributes Attributes::Intersect(const Attributes& a, const Attributes& b) {
  Attributes out;
  auto ia = a.entries_.begin();
  auto ib = b.entries_.begin();
  while (ia != a.entries_.end() && ib != b.entries_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      if (ia->second == ib->second) out.entries_.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace hgs
