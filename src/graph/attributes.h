// Property maps for nodes and edges: small ordered key-value collections.
//
// Stored as a sorted flat vector — graph components typically carry a handful
// of attributes, where a flat vector beats a hash map on both memory and
// lookup cost, and sortedness gives deterministic serialization (important
// for delta intersection/equality).

#ifndef HGS_GRAPH_ATTRIBUTES_H_
#define HGS_GRAPH_ATTRIBUTES_H_

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hgs {

class Attributes {
 public:
  using Entry = std::pair<std::string, std::string>;

  Attributes() = default;
  Attributes(std::initializer_list<Entry> init) {
    for (const auto& e : init) Set(e.first, e.second);
  }

  /// Inserts or overwrites `key`.
  void Set(std::string_view key, std::string_view value);

  /// Inserts or overwrites `key`, taking ownership of both strings. The
  /// consuming event-replay path donates attribute payloads through here
  /// instead of copying them.
  void SetOwned(std::string key, std::string value);

  /// Appends an entry expected to sort after every existing key — the shape
  /// of a serialized attribute stream, which is written in sorted order.
  /// Falls back to Set() when the precondition does not hold, so the sorted
  /// invariant survives malformed input.
  void AppendSorted(std::string key, std::string value);

  /// Removes `key`; returns true if it existed.
  bool Erase(std::string_view key);

  /// Value for `key`, or nullopt.
  std::optional<std::string_view> Get(std::string_view key) const;

  bool Has(std::string_view key) const { return Get(key).has_value(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Keeps only the entries present-and-equal in both; used by delta
  /// intersection (DeltaGraph-style temporal compression).
  static Attributes Intersect(const Attributes& a, const Attributes& b);

  bool operator==(const Attributes& o) const = default;

 private:
  std::vector<Entry> entries_;  // sorted by key
};

}  // namespace hgs

#endif  // HGS_GRAPH_ATTRIBUTES_H_
