// Static graph components (Definition 1 in the paper): the state of a vertex
// or an edge at one point in time. Deltas are keyed collections of these.
//
// Following the paper's node-centric logical model, a node's edge list is not
// embedded in the node record; edges are separate components keyed by their
// canonical endpoint pair, and partitioned snapshots replicate an edge into
// every partition holding one of its endpoints (Example 5).

#ifndef HGS_GRAPH_COMPONENTS_H_
#define HGS_GRAPH_COMPONENTS_H_

#include <string>

#include "common/types.h"
#include "graph/attributes.h"

namespace hgs {

/// State of a vertex: its attributes. Identity is the NodeId key under which
/// the record is stored.
struct NodeRecord {
  Attributes attrs;

  bool operator==(const NodeRecord& o) const = default;
};

/// State of an edge: actual direction plus attributes. Stored under the
/// canonical (min,max) EdgeKey; `src` preserves the real orientation.
struct EdgeRecord {
  NodeId src = kInvalidNodeId;
  NodeId dst = kInvalidNodeId;
  bool directed = false;
  Attributes attrs;

  bool operator==(const EdgeRecord& o) const = default;
};

}  // namespace hgs

#endif  // HGS_GRAPH_COMPONENTS_H_
