// An in-memory graph snapshot: the materialized state of the evolving graph
// at one timepoint. This is what TGI's GetSnapshot returns and what the graph
// algorithm library (graph/algorithms.h) operates on.

#ifndef HGS_GRAPH_GRAPH_H_
#define HGS_GRAPH_GRAPH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/components.h"

namespace hgs {

class Graph {
 public:
  Graph() = default;

  /// Inserts a node; returns false (and overwrites attrs) if it existed.
  bool AddNode(NodeId id, Attributes attrs = {});

  /// Removes a node and all incident edges; returns false if absent.
  bool RemoveNode(NodeId id);

  /// Inserts an edge; creates missing endpoints implicitly. Returns false
  /// (and overwrites the record) if the edge existed.
  bool AddEdge(NodeId u, NodeId v, bool directed = false,
               Attributes attrs = {});

  /// Removes an edge; returns false if absent.
  bool RemoveEdge(NodeId u, NodeId v);

  bool HasNode(NodeId id) const { return nodes_.contains(id); }
  bool HasEdge(NodeId u, NodeId v) const {
    return edges_.contains(EdgeKey(u, v));
  }

  /// Node record, or nullptr.
  const NodeRecord* GetNode(NodeId id) const;
  NodeRecord* GetMutableNode(NodeId id);

  /// Edge record, or nullptr.
  const EdgeRecord* GetEdge(NodeId u, NodeId v) const;
  EdgeRecord* GetMutableEdge(NodeId u, NodeId v);

  /// Neighbor ids of `id` (both directions); empty vector if absent.
  const std::vector<NodeId>& Neighbors(NodeId id) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  void ForEachNode(
      const std::function<void(NodeId, const NodeRecord&)>& fn) const;
  void ForEachEdge(
      const std::function<void(const EdgeKey&, const EdgeRecord&)>& fn) const;

  /// All node ids (unordered).
  std::vector<NodeId> NodeIds() const;

  bool operator==(const Graph& o) const;

 private:
  struct NodeEntry {
    NodeRecord record;
    std::vector<NodeId> neighbors;
  };

  void DetachNeighbor(NodeId from, NodeId nbr);

  std::unordered_map<NodeId, NodeEntry> nodes_;
  std::unordered_map<EdgeKey, EdgeRecord, EdgeKeyHash> edges_;
};

}  // namespace hgs

#endif  // HGS_GRAPH_GRAPH_H_
