// Static graph analysis routines used by the TAF metric libraries, the
// examples, and the benchmark harness. All treat the graph as undirected
// unless noted (matching the paper's evaluation workloads).

#ifndef HGS_GRAPH_ALGORITHMS_H_
#define HGS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace hgs::algo {

/// Number of neighbors of `id` (0 if absent).
size_t Degree(const Graph& g, NodeId id);

/// Mean degree over all nodes (0 for the empty graph).
double AverageDegree(const Graph& g);

/// 2|E| / (|V| (|V|-1)) for undirected interpretation.
double Density(const Graph& g);

/// Local clustering coefficient of `id`: closed wedges / possible wedges.
double LocalClusteringCoefficient(const Graph& g, NodeId id);

/// Mean of the local clustering coefficient over all nodes with degree >= 2.
double AverageClusteringCoefficient(const Graph& g);

/// Total number of triangles in the graph.
uint64_t TriangleCount(const Graph& g);

/// PageRank with uniform teleport; returns id -> score.
std::unordered_map<NodeId, double> PageRank(const Graph& g,
                                            int iterations = 20,
                                            double damping = 0.85);

/// BFS hop distances from `src`, bounded by `max_depth` (-1: unbounded).
/// Unreachable nodes are absent from the result.
std::unordered_map<NodeId, int> BfsDistances(const Graph& g, NodeId src,
                                             int max_depth = -1);

/// Hop distance between two nodes, or -1 if disconnected.
int ShortestPathLength(const Graph& g, NodeId src, NodeId dst);

/// Weakly connected components: id -> component label (smallest member id).
std::unordered_map<NodeId, NodeId> ConnectedComponents(const Graph& g);

/// Size of the largest connected component.
size_t LargestComponentSize(const Graph& g);

/// Number of nodes whose attribute `key` equals `value`.
size_t CountLabel(const Graph& g, std::string_view key,
                  std::string_view value);

/// Degree histogram: degree -> node count (ordered).
std::map<size_t, size_t> DegreeDistribution(const Graph& g);

/// Degree centrality argmax; kInvalidNodeId on the empty graph.
NodeId HighestDegreeNode(const Graph& g);

/// Closeness centrality of `id`: (reachable-1) / Σ distances, scaled by the
/// reachable fraction (Wasserman-Faust for disconnected graphs). 0 for
/// isolated or absent nodes.
double ClosenessCentrality(const Graph& g, NodeId id);

/// The subgraph induced by `ids` (nodes absent from g are skipped).
Graph InducedSubgraph(const Graph& g, const std::vector<NodeId>& ids);

/// Ids within `k` hops of `src`, including `src` itself.
std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId src, int k);

}  // namespace hgs::algo

#endif  // HGS_GRAPH_ALGORITHMS_H_
