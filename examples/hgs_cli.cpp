// hgs_cli: load an event history (TSV, or a built-in generated dataset),
// build the Temporal Graph Index, and run retrieval queries from the command
// line — the quickest way to point the store at external data.
//
//   hgs_cli gen wiki 20000 /tmp/wiki.tsv          # generate a history file
//   hgs_cli stats /tmp/wiki.tsv                   # history summary
//   hgs_cli snapshot /tmp/wiki.tsv 10000          # |V|,|E| and metrics @t
//   hgs_cli node /tmp/wiki.tsv 42 10000           # node state @t
//   hgs_cli history /tmp/wiki.tsv 42 0 20000      # node's events in range
//   hgs_cli hood /tmp/wiki.tsv 42 10000 2         # k-hop neighborhood @t

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "tgi/tgi.h"
#include "workload/event_io.h"
#include "workload/generators.h"

using namespace hgs;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hgs_cli gen (wiki|friendster|dblp) <num_events> <out.tsv>\n"
      "  hgs_cli stats <events.tsv>\n"
      "  hgs_cli snapshot <events.tsv> <t>\n"
      "  hgs_cli node <events.tsv> <id> <t>\n"
      "  hgs_cli history <events.tsv> <id> <from> <to>\n"
      "  hgs_cli hood <events.tsv> <id> <t> <k>\n");
  return 2;
}

Result<std::unique_ptr<TGIQueryManager>> BuildIndex(Cluster* cluster,
                                                    const std::string& path,
                                                    std::vector<Event>* out) {
  HGS_ASSIGN_OR_RETURN(*out, workload::ReadEventsTsv(path));
  TGIOptions opts;
  opts.events_per_timespan = 20'000;
  opts.eventlist_size = 250;
  opts.micro_delta_size = 500;
  opts.num_horizontal_partitions = 2;
  TGI tgi(cluster, opts);
  HGS_RETURN_NOT_OK(tgi.BuildFrom(*out));
  return tgi.OpenQueryManager(4);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string cmd = argv[1];

  if (cmd == "gen") {
    if (argc != 5) return Usage();
    std::string kind = argv[2];
    auto n = static_cast<uint64_t>(std::strtoull(argv[3], nullptr, 10));
    std::vector<Event> events;
    if (kind == "wiki") {
      events = workload::GenerateWikiGrowth({.num_events = n, .seed = 1});
    } else if (kind == "friendster") {
      events = workload::GenerateFriendster(
          {.num_nodes = n / 5, .num_edges = n * 4 / 5, .seed = 1});
    } else if (kind == "dblp") {
      events = workload::GenerateDblp({.num_authors = n / 20,
                                       .num_papers = n / 7,
                                       .num_attr_events = n / 2});
    } else {
      return Usage();
    }
    if (Status s = workload::WriteEventsTsv(events, argv[4]); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu events to %s\n", events.size(), argv[4]);
    return 0;
  }

  // All remaining commands read a history and build an index.
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);
  std::vector<Event> events;
  auto qm_or = BuildIndex(&cluster, argv[2], &events);
  if (!qm_or.ok()) {
    std::fprintf(stderr, "%s\n", qm_or.status().ToString().c_str());
    return 1;
  }
  auto& qm = *qm_or;

  if (cmd == "stats") {
    Graph final_state = workload::ReplayToGraph(events, kMaxTimestamp);
    std::printf("events:        %zu\n", events.size());
    std::printf("time range:    [%lld, %lld]\n",
                static_cast<long long>(qm->HistoryStart()),
                static_cast<long long>(qm->HistoryEnd()));
    std::printf("final |V|,|E|: %zu, %zu\n", final_state.NumNodes(),
                final_state.NumEdges());
    std::printf("stored rows:   %llu (%llu bytes)\n",
                static_cast<unsigned long long>(cluster.TotalKeys()),
                static_cast<unsigned long long>(cluster.TotalStoredBytes()));
    return 0;
  }
  if (cmd == "snapshot") {
    if (argc != 4) return Usage();
    Timestamp t = std::strtoll(argv[3], nullptr, 10);
    FetchStats stats;
    auto snap = qm->GetSnapshot(t, &stats);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    std::printf("snapshot @%lld: |V|=%zu |E|=%zu density=%.6f avg_deg=%.2f\n",
                static_cast<long long>(t), snap->NumNodes(),
                snap->NumEdges(), algo::Density(*snap),
                algo::AverageDegree(*snap));
    std::printf("fetched %llu micro-deltas, %llu bytes, %.1f ms\n",
                static_cast<unsigned long long>(stats.micro_deltas),
                static_cast<unsigned long long>(stats.bytes),
                stats.wall_seconds * 1e3);
    return 0;
  }
  if (cmd == "node") {
    if (argc != 5) return Usage();
    NodeId id = std::strtoull(argv[3], nullptr, 10);
    Timestamp t = std::strtoll(argv[4], nullptr, 10);
    auto state = qm->GetNodeStateDelta(id, t);
    if (!state.ok()) {
      std::fprintf(stderr, "%s\n", state.status().ToString().c_str());
      return 1;
    }
    const auto* rec = state->FindNode(id);
    if (rec == nullptr || !rec->has_value()) {
      std::printf("node %llu does not exist at t=%lld\n",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(t));
      return 0;
    }
    std::printf("node %llu @%lld:\n", static_cast<unsigned long long>(id),
                static_cast<long long>(t));
    for (const auto& [k, v] : (*rec)->attrs.entries()) {
      std::printf("  %s = %s\n", k.c_str(), v.c_str());
    }
    size_t degree = 0;
    state->ForEachEdgeEntry(
        [&](const EdgeKey&, const std::optional<EdgeRecord>& e) {
          if (e.has_value()) ++degree;
        });
    std::printf("  degree = %zu\n", degree);
    return 0;
  }
  if (cmd == "history") {
    if (argc != 6) return Usage();
    NodeId id = std::strtoull(argv[3], nullptr, 10);
    Timestamp from = std::strtoll(argv[4], nullptr, 10);
    Timestamp to = std::strtoll(argv[5], nullptr, 10);
    auto hist = qm->GetNodeHistory(id, from, to);
    if (!hist.ok()) {
      std::fprintf(stderr, "%s\n", hist.status().ToString().c_str());
      return 1;
    }
    std::printf("node %llu changed %zu times in (%lld, %lld]:\n",
                static_cast<unsigned long long>(id), hist->VersionCount(),
                static_cast<long long>(from), static_cast<long long>(to));
    for (const Event& e : hist->events.events()) {
      std::printf("  t=%lld %s\n", static_cast<long long>(e.time),
                  workload::EventToTsvLine(e).c_str());
    }
    return 0;
  }
  if (cmd == "hood") {
    if (argc != 6) return Usage();
    NodeId id = std::strtoull(argv[3], nullptr, 10);
    Timestamp t = std::strtoll(argv[4], nullptr, 10);
    int k = static_cast<int>(std::strtol(argv[5], nullptr, 10));
    auto hood = qm->GetKHopNeighborhood(id, t, k);
    if (!hood.ok()) {
      std::fprintf(stderr, "%s\n", hood.status().ToString().c_str());
      return 1;
    }
    std::printf("%d-hop neighborhood of %llu @%lld: |V|=%zu |E|=%zu\n", k,
                static_cast<unsigned long long>(id),
                static_cast<long long>(t), hood->NumNodes(),
                hood->NumEdges());
    return 0;
  }
  return Usage();
}
