// Influence analysis (the paper's Fig 7a scenario): "find the node with the
// highest local clustering coefficient in a historical snapshot" — plus the
// most central node by PageRank at several past timepoints, showing how
// influence shifts as the network evolves.
//
//   ./build/examples/influence_analysis

#include <algorithm>
#include <iostream>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/metrics.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

using namespace hgs;

int main() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);

  // Friendster-like social graph: clustered communities make LCC
  // interesting.
  auto events = workload::GenerateFriendster(
      {.num_nodes = 4'000, .num_edges = 16'000, .community_size = 80});
  Timestamp end = workload::EndTime(events);

  TGIOptions topts;
  topts.events_per_timespan = 5'000;
  topts.eventlist_size = 250;
  topts.micro_delta_size = 200;
  TGI tgi(&cluster, topts);
  if (Status s = tgi.BuildFrom(events); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  auto qm = tgi.OpenQueryManager(4).value();
  taf::TAFContext ctx(qm.get(), 2);

  // --- Highest local clustering coefficient at a historical timepoint. ----
  // Fig 7a's pipeline: timeslice -> per-node LCC via 1-hop subgraphs -> max.
  Timestamp when = end / 2;
  Graph snap = qm->GetSnapshot(when).value();
  std::cout << "snapshot @t=" << when << ": " << snap.NumNodes()
            << " nodes\n";

  // Seeds: nodes with degree >= 4 (LCC is noisy below that).
  std::vector<NodeId> seeds;
  snap.ForEachNode([&](NodeId id, const NodeRecord&) {
    if (snap.Neighbors(id).size() >= 4) seeds.push_back(id);
  });
  std::sort(seeds.begin(), seeds.end());
  seeds.resize(std::min<size_t>(seeds.size(), 300));

  auto sots = ctx.Subgraphs(1).TimeRange(when, when).WithSeeds(seeds)
                  .Fetch().value();
  std::function<double(const taf::SubgraphT&)> lcc =
      [when](const taf::SubgraphT& sg) {
        return taf::metrics::LocalClusteringCoefficient(
            sg.GetVersionAt(when), sg.seed());
      };
  std::vector<double> coefficients = sots.NodeCompute(lcc);

  size_t best = 0;
  for (size_t i = 1; i < coefficients.size(); ++i) {
    if (coefficients[i] > coefficients[best]) best = i;
  }
  std::cout << "highest LCC @t=" << when << ": node "
            << sots.subgraphs()[best].seed() << " with coefficient "
            << coefficients[best] << "\n\n";

  // --- Most central node across time (PageRank at three timepoints). ------
  std::cout << "most central node (PageRank) over time:\n";
  for (Timestamp t : {end / 4, end / 2, end}) {
    Graph g = qm->GetSnapshot(t).value();
    auto pr = algo::PageRank(g, 20);
    NodeId central = kInvalidNodeId;
    double best_score = -1;
    for (const auto& [id, score] : pr) {
      if (score > best_score) {
        best_score = score;
        central = id;
      }
    }
    auto community = g.GetNode(central)->attrs.Get("community");
    std::cout << "  t=" << t << "  node " << central << " (community "
              << (community ? *community : "?") << ", score " << best_score
              << ")\n";
  }
  return 0;
}
