// Community comparison (the paper's Fig 7b scenario): juxtapose two
// communities' membership and interconnectivity over a time window using the
// Compare operator, then find the moment the gap peaked.
//
//   ./build/examples/community_evolution

#include <iostream>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/operators.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

using namespace hgs;

int main() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);

  auto events = workload::GenerateFriendster(
      {.num_nodes = 3'000, .num_edges = 12'000, .community_size = 150});
  Timestamp end = workload::EndTime(events);

  TGIOptions topts;
  topts.events_per_timespan = 5'000;
  topts.eventlist_size = 250;
  topts.micro_delta_size = 200;
  TGI tgi(&cluster, topts);
  if (Status s = tgi.BuildFrom(events); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  auto qm = tgi.OpenQueryManager(4).value();
  taf::TAFContext ctx(qm.get(), 2);

  // The paper's snippet:
  //   son  = SON(tgiH).Timeslice(year).Filter("community")
  //   sonA = son.Select('community = "A"').fetch()
  //   sonB = son.Select('community = "B"').fetch()
  //   compAB = SON.Compare(sonA, sonB, SON.count())
  Timestamp window_start = end / 4;
  auto son = ctx.Nodes().TimeRange(window_start, end).Fetch().value();
  taf::SoN son_a = son.SelectByAttr("community", "0");
  taf::SoN son_b = son.SelectByAttr("community", "1");
  std::cout << "community 0: " << son_a.size() << " temporal nodes\n";
  std::cout << "community 1: " << son_b.size() << " temporal nodes\n\n";

  // Membership over time, compared at 12 uniform timepoints (a custom
  // timepoint function, as in Fig 9b).
  auto twelve_points = [](const taf::SoN& a,
                          const taf::SoN& b) -> std::vector<Timestamp> {
    std::vector<Timestamp> out;
    Timestamp from = std::min(a.GetStartTime(), b.GetStartTime());
    Timestamp to = std::max(a.GetEndTime(), b.GetEndTime());
    for (int i = 0; i < 12; ++i) {
      out.push_back(from + (to - from) * i / 11);
    }
    return out;
  };
  auto comp =
      taf::CompareSeries(son_a, son_b, taf::CountExisting, twelve_points);

  std::cout << "membership over time (A=community 0, B=community 1):\n";
  for (size_t i = 0; i < comp.a.size(); ++i) {
    std::cout << "  t=" << comp.a[i].first << "  A=" << comp.a[i].second
              << "  B=" << comp.b[i].second
              << "  diff=" << comp.a[i].second - comp.b[i].second << "\n";
  }
  std::cout << "average membership: A=" << taf::agg::Mean(comp.a)
            << "  B=" << taf::agg::Mean(comp.b) << "\n\n";

  // Where did the membership gap peak?
  taf::Series gap;
  for (size_t i = 0; i < comp.a.size(); ++i) {
    gap.emplace_back(comp.a[i].first,
                     comp.a[i].second - comp.b[i].second);
  }
  if (auto peak = taf::agg::Max(gap)) {
    std::cout << "largest A-over-B gap: " << peak->second << " at t="
              << peak->first << "\n";
  }

  // Which community knits tighter? Average clustering inside each at `end`.
  Graph ga = son_a.GetGraphAt(end);
  Graph gb = son_b.GetGraphAt(end);
  std::cout << "clustering coefficient @end: A="
            << algo::AverageClusteringCoefficient(ga)
            << "  B=" << algo::AverageClusteringCoefficient(gb) << "\n";
  return 0;
}
