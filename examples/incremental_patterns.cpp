// Incremental computation (the paper's Fig 8): count "Author"-labelled nodes
// in 2-hop neighborhoods over a time window, once by recomputing on every
// version (NodeComputeTemporal) and once incrementally (NodeComputeDelta),
// verifying they agree and reporting the speedup — the effect Fig 17
// measures at scale.
//
//   ./build/examples/incremental_patterns

#include <chrono>
#include <iostream>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/metrics.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

using namespace hgs;

int main() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);

  // DBLP-like labelled graph with attribute churn.
  auto events = workload::GenerateDblp({.num_authors = 800,
                                        .num_papers = 2'400,
                                        .authors_per_paper = 3,
                                        .num_attr_events = 12'000});
  Timestamp end = workload::EndTime(events);

  TGIOptions topts;
  topts.events_per_timespan = 6'000;
  topts.eventlist_size = 250;
  topts.micro_delta_size = 200;
  TGI tgi(&cluster, topts);
  if (Status s = tgi.BuildFrom(events); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  auto qm = tgi.OpenQueryManager(4).value();
  taf::TAFContext ctx(qm.get(), 2);

  // 2-hop subgraphs around busy papers, over the churn-heavy second half.
  Graph final_state = workload::ReplayToGraph(events, end);
  std::vector<NodeId> seeds;
  final_state.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    auto type = rec.attrs.Get("EntityType");
    if (type && *type == "Paper" && final_state.Neighbors(id).size() >= 3 &&
        seeds.size() < 20) {
      seeds.push_back(id);
    }
  });
  auto sots =
      ctx.Subgraphs(2).TimeRange(end / 2, end).WithSeeds(seeds).Fetch()
          .value();
  size_t total_versions = 0;
  for (const auto& sg : sots.subgraphs()) total_versions += sg.VersionCount();
  std::cout << "fetched " << sots.size() << " 2-hop temporal subgraphs, "
            << total_versions << " total versions\n\n";

  // Fig 8a: fresh evaluation on every version.
  std::function<double(const Graph&)> count_authors = [](const Graph& g) {
    return taf::metrics::CountLabel(g, "EntityType", "Author");
  };
  auto t0 = std::chrono::steady_clock::now();
  auto fresh = sots.NodeComputeTemporal(count_authors);
  auto t1 = std::chrono::steady_clock::now();

  // Fig 8b: incremental evaluation from the event stream.
  std::function<double(const Graph&, const double&, const Event&)> delta_fn =
      [](const Graph& before, const double& prev, const Event& e) {
        return taf::metrics::CountLabelDelta(before, prev, e, "EntityType",
                                             "Author");
      };
  auto t2 = std::chrono::steady_clock::now();
  auto incremental = sots.NodeComputeDelta(count_authors, delta_fn);
  auto t3 = std::chrono::steady_clock::now();

  // The two operators must agree version-for-version.
  size_t mismatches = 0;
  for (size_t i = 0; i < fresh.size(); ++i) {
    for (size_t j = 0; j < fresh[i].size(); ++j) {
      if (fresh[i][j].second != incremental[i][j].second) ++mismatches;
    }
  }
  double fresh_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  double inc_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();
  std::cout << "NodeComputeTemporal (fresh):      " << fresh_ms << " ms\n";
  std::cout << "NodeComputeDelta   (incremental): " << inc_ms << " ms\n";
  std::cout << "agreement: " << (mismatches == 0 ? "exact" : "MISMATCH")
            << "\n";
  if (inc_ms > 0) {
    std::cout << "speedup: " << fresh_ms / inc_ms << "x\n";
  }

  // Show one subgraph's label-count series.
  if (!fresh.empty() && fresh[0].size() > 1) {
    std::cout << "\nauthor count in subgraph of paper "
              << sots.subgraphs()[0].seed() << " (first 8 versions):\n";
    for (size_t j = 0; j < std::min<size_t>(8, fresh[0].size()); ++j) {
      std::cout << "  t=" << fresh[0][j].first
                << "  count=" << fresh[0][j].second << "\n";
    }
  }
  return mismatches == 0 ? 0 : 1;
}
