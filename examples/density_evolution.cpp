// Density evolution (the paper's Fig 7c scenario): track the density of a
// node subset ("id < 5000") over ten sampled timepoints, with a custom
// minimal timepoint selector (Fig 9a) and temporal aggregation — peaks,
// saturation point, time-weighted mean.
//
//   ./build/examples/density_evolution

#include <iostream>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/metrics.h"
#include "taf/operators.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

using namespace hgs;

int main() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);

  auto events = workload::GenerateWikiGrowth({.num_events = 12'000, .seed = 21});
  events = workload::AugmentWithChurn(std::move(events),
                                      {.num_events = 8'000, .seed = 22});
  Timestamp end = workload::EndTime(events);

  TGIOptions topts;
  topts.events_per_timespan = 5'000;
  topts.eventlist_size = 250;
  topts.micro_delta_size = 200;
  TGI tgi(&cluster, topts);
  if (Status s = tgi.BuildFrom(events); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  auto qm = tgi.OpenQueryManager(4).value();
  taf::TAFContext ctx(qm.get(), 2);

  // The paper's snippet:
  //   son  = SON(tgiH).Select("id < 5000").Timeslice("t >= ...").fetch()
  //   evol = son.GetGraph().Evolution(gm.density, 10)
  auto son = ctx.Nodes()
                 .TimeRange(end / 4, end)
                 .WhereId([](NodeId id) { return id < 5000; })
                 .Fetch()
                 .value();
  std::cout << "SoN: " << son.size() << " temporal nodes over [t="
            << son.GetStartTime() << ", t=" << son.GetEndTime() << "]\n\n";

  taf::Series evol = son.Evolution(taf::metrics::Density, 10);
  std::cout << "graph density over 10 points:\n";
  for (const auto& [t, v] : evol) {
    std::cout << "  t=" << t << "  density=" << v << "\n";
  }

  // Fig 9a: a minimal selector — start, middle, end only.
  taf::Series coarse = son.EvolutionAt(
      taf::metrics::Density,
      {son.GetStartTime(), (son.GetStartTime() + son.GetEndTime()) / 2,
       son.GetEndTime()});
  std::cout << "\ndensity over 3 points (custom selector):\n";
  for (const auto& [t, v] : coarse) {
    std::cout << "  t=" << t << "  density=" << v << "\n";
  }

  // Temporal aggregation over the evolution series.
  std::cout << "\naggregates:\n";
  std::cout << "  mean density          = " << taf::agg::Mean(evol) << "\n";
  std::cout << "  time-weighted mean    = " << taf::agg::TimeWeightedMean(evol)
            << "\n";
  if (auto mx = taf::agg::Max(evol)) {
    std::cout << "  max density           = " << mx->second << " at t="
              << mx->first << "\n";
  }
  auto peaks = taf::agg::Peak(evol);
  std::cout << "  density peaks at      : ";
  for (Timestamp t : peaks) std::cout << t << " ";
  std::cout << (peaks.empty() ? "(none)" : "") << "\n";
  if (auto sat = taf::agg::Saturate(evol, 0.1)) {
    std::cout << "  saturates (±10%) at t = " << *sat << "\n";
  }
  return 0;
}
