// Quickstart: build a Historical Graph Store over a small evolving social
// graph, then run each retrieval primitive — snapshots, node histories,
// neighborhood versions — and a first TAF analysis.
//
//   ./build/examples/quickstart

#include <iostream>

#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

using namespace hgs;

int main() {
  std::cout << "== Historical Graph Store quickstart ==\n\n";

  // --- 1. A simulated storage cluster (the paper used Cassandra on EC2). --
  ClusterOptions cluster_opts;
  cluster_opts.num_nodes = 2;        // m = 2 storage machines
  cluster_opts.replication = 1;      // r = 1
  cluster_opts.latency.enabled = false;  // instant I/O for the demo
  Cluster cluster(cluster_opts);

  // --- 2. An evolving graph: 20k events of citation-style growth + churn. -
  auto events = workload::GenerateWikiGrowth({.num_events = 15'000, .seed = 7});
  events = workload::AugmentWithChurn(std::move(events),
                                      {.num_events = 5'000, .seed = 8});
  Timestamp end = workload::EndTime(events);
  std::cout << "history: " << events.size() << " events over ticks [1, "
            << end << "]\n";

  // --- 3. Build the Temporal Graph Index. ---------------------------------
  TGIOptions tgi_opts;
  tgi_opts.events_per_timespan = 5'000;  // repartition every 5k events
  tgi_opts.eventlist_size = 250;         // l
  tgi_opts.micro_delta_size = 200;       // ps
  tgi_opts.num_horizontal_partitions = 2;
  TGI tgi(&cluster, tgi_opts);
  if (Status s = tgi.BuildFrom(events); !s.ok()) {
    std::cerr << "build failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "TGI built: " << tgi.builder()->timespans_built()
            << " timespans, " << cluster.TotalKeys() << " stored rows\n\n";

  auto qm = tgi.OpenQueryManager(/*fetch_parallelism=*/4).value();

  // --- 4. Snapshot retrieval: the graph as of any past timepoint. ---------
  for (Timestamp t : {end / 4, end / 2, end}) {
    FetchStats stats;
    Graph snap = qm->GetSnapshot(t, &stats).value();
    std::cout << "snapshot @t=" << t << ": " << snap.NumNodes() << " nodes, "
              << snap.NumEdges() << " edges  (" << stats.micro_deltas
              << " micro-deltas, " << stats.bytes << " bytes fetched)\n";
  }

  // --- 5. Node history: how one entity evolved. ---------------------------
  Graph final_state = workload::ReplayToGraph(events, end);
  NodeId hub = algo::HighestDegreeNode(final_state);
  auto history = qm->GetNodeHistory(hub, 0, end).value();
  std::cout << "\nnode " << hub << " (highest degree) changed "
            << history.VersionCount() << " times; final degree "
            << final_state.Neighbors(hub).size() << "\n";

  // --- 6. Historical neighborhood: the hub's 1-hop ego net at mid-history.
  Graph ego = qm->GetKHopNeighborhood(hub, end / 2, 1).value();
  std::cout << "1-hop neighborhood of node " << hub << " @t=" << end / 2
            << ": " << ego.NumNodes() << " nodes\n";

  // --- 7. A first TAF analysis: average degree over time. -----------------
  taf::TAFContext ctx(qm.get(), /*workers=*/2);
  auto son = ctx.Nodes().TimeRange(0, end).Fetch().value();
  taf::Series avg_degree = son.Evolution(
      [](const Graph& g) { return algo::AverageDegree(g); }, 5);
  std::cout << "\naverage degree over time:\n";
  for (const auto& [t, v] : avg_degree) {
    std::cout << "  t=" << t << "  avg_degree=" << v << "\n";
  }

  std::cout << "\nok.\n";
  return 0;
}
