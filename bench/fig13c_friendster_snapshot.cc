// Figure 13c: snapshot retrieval times on the Friendster analogue
// (Dataset 4); m=6, r=1, c=1, ps=500.
//
// Paper shape: retrieval time grows ~linearly with snapshot size, the same
// behavior as on the citation dataset — the index is workload-agnostic.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
std::vector<hgs::Timestamp> g_probes;

void BM_Snapshot(benchmark::State& state) {
  hgs::Timestamp t = g_probes[static_cast<size_t>(state.range(0))];
  size_t nodes = 0;
  for (auto _ : state) {
    auto snap = g_bundle->qm->GetSnapshot(t);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    nodes = snap->NumNodes();
  }
  state.counters["snapshot_nodes"] = static_cast<double>(nodes);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 13c: Friendster-analogue snapshot retrieval; m=6 r=1 c=1 ps=500",
      "retrieval time ~ linear in snapshot size");

  auto bundle = hgs::bench::BuildBundle(hgs::bench::Dataset4(),
                                        hgs::bench::DefaultTGIOptions(),
                                        hgs::bench::MakeClusterOptions(6, 1),
                                        /*fetch_parallelism=*/1);
  g_bundle = &bundle;
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    g_probes.push_back(static_cast<hgs::Timestamp>(
        static_cast<double>(bundle.end) * frac));
  }
  for (int64_t p = 0; p < static_cast<int64_t>(g_probes.size()); ++p) {
    std::string name = "snapshot/t_pct:" + std::to_string((p + 1) * 20);
    benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
        ->Arg(p)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.6);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
