// Figure 11: snapshot retrieval time vs snapshot size for varying parallel
// fetch factor c ∈ {1,2,4,8,16,32}; m=4, r=1, ps=500 (Dataset 1 analogue).
//
// Paper shape: retrieval time grows ~linearly with the retrieved snapshot
// size; adding fetch clients gives near-linear speedup at low c and
// saturates once the m*server_threads service capacity is reached.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
std::vector<hgs::Timestamp> g_probes;

void BM_Snapshot(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  hgs::Timestamp t = g_probes[static_cast<size_t>(state.range(1))];
  g_bundle->qm->set_fetch_parallelism(c);
  size_t nodes = 0;
  hgs::FetchStats agg;
  for (auto _ : state) {
    hgs::FetchStats stats;
    auto snap = g_bundle->qm->GetSnapshot(t, &stats);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    nodes = snap->NumNodes();
    agg.Merge(stats);
  }
  auto iters = static_cast<double>(state.iterations());
  state.counters["snapshot_nodes"] = static_cast<double>(nodes);
  state.counters["micro_deltas"] = static_cast<double>(agg.micro_deltas) / iters;
  state.counters["MB_fetched"] =
      static_cast<double>(agg.bytes) / iters / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 11: snapshot retrieval vs size, c in {1..32}; m=4 r=1 ps=500",
      "time ~ linear in snapshot size; near-linear speedup in c, "
      "saturating at the cluster's service capacity");

  auto events = hgs::bench::Dataset1();
  hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
  auto bundle = hgs::bench::BuildBundle(
      std::move(events), topts, hgs::bench::MakeClusterOptions(4, 1));
  g_bundle = &bundle;
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    g_probes.push_back(static_cast<hgs::Timestamp>(
        static_cast<double>(bundle.end) * frac));
  }

  for (int64_t c : {1, 2, 4, 8, 16, 32}) {
    for (int64_t p = 0; p < static_cast<int64_t>(g_probes.size()); ++p) {
      std::string name = "snapshot/c:" + std::to_string(c) + "/t_pct:" +
                         std::to_string((p + 1) * 25);
      benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
          ->Args({c, p})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.6);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
