// Figure 16: node-version retrieval on the Friendster analogue (Dataset 4)
// for parallel fetch factors c ∈ {1, 2}; m=6, r=1, ps=500.
//
// Paper shape: latency grows with the node's change count; c=2 is uniformly
// faster than c=1.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
std::vector<std::pair<hgs::NodeId, size_t>> g_nodes;

void BM_NodeVersions(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  auto [node, changes] = g_nodes[static_cast<size_t>(state.range(1))];
  g_bundle->qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    auto hist = g_bundle->qm->GetNodeHistory(node, 0, g_bundle->end);
    if (!hist.ok()) {
      state.SkipWithError(hist.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(hist->VersionCount());
  }
  state.counters["changes"] = static_cast<double>(changes);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 16: Friendster-analogue node-version retrieval, c in {1,2}",
      "latency grows with change count; c=2 beats c=1 throughout");

  auto copts = hgs::bench::MakeClusterOptions(6, 1);
  copts.latency = hgs::bench::VersionBenchLatency();
  auto bundle = hgs::bench::BuildBundle(
      hgs::bench::Dataset4(), hgs::bench::DefaultTGIOptions(), copts);
  g_bundle = &bundle;
  g_nodes =
      hgs::bench::NodesByVersionCount(bundle.events, {5, 10, 20, 35});

  for (int64_t c : {1, 2}) {
    for (int64_t n = 0; n < static_cast<int64_t>(g_nodes.size()); ++n) {
      std::string name =
          "versions/c:" + std::to_string(c) + "/changes:" +
          std::to_string(g_nodes[static_cast<size_t>(n)].second);
      benchmark::RegisterBenchmark(name.c_str(), BM_NodeVersions)
          ->Args({c, n})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.2);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
