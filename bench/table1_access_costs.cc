// Table 1: access costs of the temporal indexes — Log, Copy, Copy+Log,
// NodeCentric, DeltaGraph, TGI — for five retrieval primitives, measured as
// the number of deltas fetched (ΣΔ1) and cumulative bytes (the concrete
// realization of Σ|Δ|), plus total index storage.
//
// Paper shape (qualitative, from Table 1):
//   storage:   Log ≪ Copy+Log ≪ Copy;  NodeCentric ≈ 2·Log;  TGI ≈ (2h+3)·Log
//   snapshot:  Copy 1 fetch; Copy+Log 2; DeltaGraph/TGI ~2h; Log |G|/|E|;
//              NodeCentric |N|
//   vertex history: NodeCentric/TGI ~1 small fetch; all others scan.
//   1-hop:     TGI partitioned ≪ monolithic-snapshot indexes.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "baselines/copy_index.h"
#include "baselines/copy_log_index.h"
#include "baselines/delta_graph_index.h"
#include "baselines/log_index.h"
#include "baselines/node_centric_index.h"
#include "bench_common.h"

namespace {

using namespace hgs;

// TGI itself behind the HistoricalIndex interface for this comparison.
class TGIAdapter : public HistoricalIndex {
 public:
  explicit TGIAdapter(Cluster* cluster) : cluster_(cluster) {
    TGIOptions opts;
    opts.events_per_timespan = 10'000;
    opts.eventlist_size = 125;
    opts.checkpoint_interval = 500;
    opts.micro_delta_size = 250;
    opts.num_horizontal_partitions = 2;
    tgi_ = std::make_unique<TGI>(cluster, opts);
  }
  std::string name() const override { return "TGI"; }
  Status Build(const std::vector<Event>& events) override {
    HGS_RETURN_NOT_OK(tgi_->BuildFrom(events));
    auto qm = tgi_->OpenQueryManager(1);
    if (!qm.ok()) return qm.status();
    qm_ = std::move(*qm);
    return Status::OK();
  }
  Status Append(const std::vector<Event>& events) {
    return tgi_->AppendBatch(events);
  }
  Result<Graph> GetSnapshot(Timestamp t, FetchStats* stats) override {
    return qm_->GetSnapshot(t, stats);
  }
  Result<Delta> GetNodeStateDelta(NodeId id, Timestamp t,
                                  FetchStats* stats) override {
    return qm_->GetNodeStateDelta(id, t, stats);
  }
  Result<NodeHistory> GetNodeHistory(NodeId id, Timestamp from, Timestamp to,
                                     FetchStats* stats) override {
    return qm_->GetNodeHistory(id, from, to, stats);
  }
  Result<Graph> GetOneHop(NodeId id, Timestamp t, FetchStats* stats) override {
    return qm_->GetKHopNeighborhood(id, t, 1, stats);
  }
  uint64_t StorageBytes() const override {
    return cluster_->TotalStoredBytes();
  }

 private:
  Cluster* cluster_;
  std::unique_ptr<TGI> tgi_;
  std::unique_ptr<TGIQueryManager> qm_;
};

// Generic "1-hop versions": neighborhood members at `from`, then each
// member's history — composable over any index, costed per that index.
Status OneHopVersions(HistoricalIndex* index, NodeId center, Timestamp from,
                      Timestamp to, FetchStats* stats) {
  auto hood = index->GetOneHop(center, from, stats);
  if (!hood.ok()) return hood.status();
  for (NodeId id : hood->NodeIds()) {
    auto hist = index->GetNodeHistory(id, from, to, stats);
    if (!hist.ok()) return hist.status();
  }
  return Status::OK();
}

struct Row {
  std::string name;
  uint64_t storage = 0;
  FetchStats snapshot, vertex, versions, one_hop, one_hop_versions;
};

// bytes(Sum|D|) counts value bytes *viewed* — every byte the query consumed
// regardless of source — while `copies` counts the values whose bytes
// actually *moved* into a fresh buffer. On the shared-buffer read path the
// only moves left are LZ-block materializations, so uncompressed runs (and
// every warm run) report 0: bytes-viewed stays constant while bytes-moved
// collapses.
void PrintStats(const char* primitive, const std::vector<Row>& rows,
                FetchStats Row::*member) {
  std::printf("\n%-18s %14s %14s %10s %10s %7s %8s %8s %7s %10s\n", primitive,
              "deltas(SumD1)", "bytes(Sum|D|)", "fetches", "rtrips", "hit%",
              "decodes", "dec_hits", "copies", "time(ms)");
  for (const Row& r : rows) {
    const FetchStats& s = r.*member;
    std::printf("%-18s %14" PRIu64 " %14" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %6.1f%% %8" PRIu64 " %8" PRIu64 " %7" PRIu64 " %10.2f\n",
                r.name.c_str(), s.micro_deltas, s.bytes, s.kv_requests,
                hgs::bench::FetchRoundTrips(s), 100.0 * s.CacheHitRate(),
                s.decodes, s.decode_hits, s.value_copies,
                s.wall_seconds * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  hgs::bench::PrintPreamble(
      "Table 1: index access costs across retrieval primitives",
      "see header comment — Copy fastest/biggest, Log smallest/slowest, "
      "TGI near-best everywhere at modest storage");

  // Small history: the Copy baseline is O(|G|^2) storage by design.
  auto events = workload::GenerateWikiGrowth(
      {.num_events = hgs::bench::Scaled(5'000), .seed = 2024});
  events = workload::AugmentWithChurn(
      std::move(events),
      {.num_events = hgs::bench::Scaled(3'000), .seed = 2025});
  Timestamp end = workload::EndTime(events);
  Timestamp mid = end / 2;

  Graph final_state = workload::ReplayToGraph(events, end);
  NodeId probe_node = algo::HighestDegreeNode(final_state);
  // A medium-degree node for neighborhood primitives.
  NodeId hop_node = probe_node;
  final_state.ForEachNode([&](NodeId id, const NodeRecord&) {
    size_t d = final_state.Neighbors(id).size();
    if (d >= 4 && d <= 12) hop_node = id;
  });

  std::vector<Row> rows;
  // `passes` > 1 re-measures the same index with its read cache warm: the
  // extra rows expose the round-trip and hit-rate win of the TGI cache.
  // `post_append` (TGI only) then appends a live batch of brand-new nodes
  // and re-measures warm: the partition-scoped publish touches only the
  // new span's scopes, so the warm working set must survive the write.
  auto run = [&](std::unique_ptr<Cluster> cluster,
                 std::unique_ptr<HistoricalIndex> index, int passes = 1,
                 bool post_append = false) {
    (void)cluster;  // owned here so it outlives the index's queries
    Status s = index->Build(events);
    if (!s.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n", index->name().c_str(),
                   s.ToString().c_str());
      return;
    }
    // Wall time is measured here (not all baselines track it internally).
    auto timed = [](FetchStats* stats, auto&& call) {
      auto start = std::chrono::steady_clock::now();
      call();
      stats->wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    };
    for (int pass = 0; pass < passes; ++pass) {
      Row row;
      row.name = pass == 0 ? index->name() : index->name() + " (warm)";
      row.storage = index->StorageBytes();
      timed(&row.snapshot,
            [&] { (void)index->GetSnapshot(mid, &row.snapshot); });
      timed(&row.vertex, [&] {
        (void)index->GetNodeStateDelta(probe_node, mid, &row.vertex);
      });
      timed(&row.versions, [&] {
        (void)index->GetNodeHistory(probe_node, 0, end, &row.versions);
      });
      timed(&row.one_hop,
            [&] { (void)index->GetOneHop(hop_node, mid, &row.one_hop); });
      timed(&row.one_hop_versions, [&] {
        (void)OneHopVersions(index.get(), hop_node, mid, end,
                             &row.one_hop_versions);
      });
      rows.push_back(std::move(row));
    }
    auto* adapter = dynamic_cast<TGIAdapter*>(index.get());
    if (post_append && adapter != nullptr) {
      std::vector<Event> batch;
      for (uint64_t i = 0; i < 256; ++i) {
        batch.push_back(Event::AddNode(end + 1 + static_cast<Timestamp>(i),
                                       50'000'000 + i));
      }
      Status as = adapter->Append(batch);
      if (!as.ok()) {
        std::fprintf(stderr, "append failed: %s\n", as.ToString().c_str());
        return;
      }
      Row row;
      row.name = index->name() + " (post-append)";
      row.storage = index->StorageBytes();
      timed(&row.snapshot,
            [&] { (void)index->GetSnapshot(mid, &row.snapshot); });
      timed(&row.vertex, [&] {
        (void)index->GetNodeStateDelta(probe_node, mid, &row.vertex);
      });
      timed(&row.versions, [&] {
        (void)index->GetNodeHistory(probe_node, 0, end, &row.versions);
      });
      timed(&row.one_hop,
            [&] { (void)index->GetOneHop(hop_node, mid, &row.one_hop); });
      timed(&row.one_hop_versions, [&] {
        (void)OneHopVersions(index.get(), hop_node, mid, end,
                             &row.one_hop_versions);
      });
      // The first post-append query refreshed metadata and swept the
      // caches; its stats carry the sweep's precision counters.
      uint64_t retained = row.snapshot.cache_entries_retained;
      uint64_t invalidated = row.snapshot.cache_entries_invalidated;
      std::printf("# post-append cache sweep: retained=%" PRIu64
                  " invalidated=%" PRIu64 "\n",
                  retained, invalidated);
      hgs::bench::JsonRow("table1", "TGI_post_append_entries_retained",
                          static_cast<double>(retained), "count");
      hgs::bench::JsonRow("table1", "TGI_post_append_entries_invalidated",
                          static_cast<double>(invalidated), "count");
      rows.push_back(std::move(row));
    }
  };

  auto copts = hgs::bench::MakeClusterOptions(2, 1);
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<LogIndex>(c.get(), 125);
    run(std::move(c), std::move(idx));
  }
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<CopyIndex>(c.get(), /*copy_every=*/16);
    run(std::move(c), std::move(idx));
  }
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<CopyLogIndex>(c.get(), 1'000, 125);
    run(std::move(c), std::move(idx));
  }
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<NodeCentricIndex>(c.get());
    run(std::move(c), std::move(idx));
  }
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<DeltaGraphIndex>(c.get(), 125, 500);
    run(std::move(c), std::move(idx));
  }
  {
    auto c = std::make_unique<Cluster>(copts);
    auto idx = std::make_unique<TGIAdapter>(c.get());
    run(std::move(c), std::move(idx), /*passes=*/2, /*post_append=*/true);
  }

  std::printf("\n== index storage ==\n%-18s %14s\n", "index", "bytes");
  for (const Row& r : rows) {
    std::printf("%-18s %14" PRIu64 "\n", r.name.c_str(), r.storage);
  }
  PrintStats("== snapshot ==", rows, &Row::snapshot);
  PrintStats("== static vertex ==", rows, &Row::vertex);
  PrintStats("== vertex versions ==", rows, &Row::versions);
  PrintStats("== 1-hop ==", rows, &Row::one_hop);
  PrintStats("== 1-hop versions ==", rows, &Row::one_hop_versions);

  std::printf("\n== fetch efficiency (snapshot) ==\n");
  for (const Row& r : rows) {
    hgs::bench::PrintFetchEfficiency(r.name.c_str(), r.snapshot);
    hgs::bench::JsonRow("table1", r.name + "_storage_bytes",
                        static_cast<double>(r.storage), "bytes");
    hgs::bench::JsonRow("table1", r.name + "_snapshot_ms",
                        r.snapshot.wall_seconds * 1e3, "ms");
    hgs::bench::JsonRow(
        "table1", r.name + "_snapshot_round_trips",
        static_cast<double>(hgs::bench::FetchRoundTrips(r.snapshot)),
        "round trips");
  }
  return 0;
}
