// Decoded-object cache: cold vs warm retrieval latency and decode counts.
//
// With fetches batched (MultiGet) and raw bytes cached (partition-delta
// cache), the remaining per-query cost of a repeated retrieval is CPU:
// re-deserializing the same micro-deltas and eventlists, and copying them
// through the assembly pipeline. The decoded tier removes exactly that
// term, so the shape to expect is
//
//   bytes-only warm:    decodes == cold decodes (every repeat re-decodes)
//   bytes+decoded warm: decodes == 0, latency well below the bytes-only
//                       warm run; peak RSS higher (two tiers resident).
//
// Rows: primitive x cache configuration x cold/warm, with wall time,
// decode counts and round trips; peak RSS prints at exit via the shared
// preamble hook.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

using namespace hgs;

struct RunResult {
  double cold_ms = 0;
  double warm_ms = 0;
  FetchStats cold;
  FetchStats warm;
};

template <typename Fn>
RunResult Run(Fn&& query) {
  RunResult r;
  auto timed = [&](FetchStats* stats) {
    auto start = std::chrono::steady_clock::now();
    query(stats);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() *
           1e3;
  };
  r.cold_ms = timed(&r.cold);
  r.warm_ms = timed(&r.warm);
  return r;
}

void PrintRow(const char* primitive, const char* config, const RunResult& r) {
  std::printf("%-10s %-14s cold_ms=%8.2f warm_ms=%8.2f cold_decodes=%6" PRIu64
              " warm_decodes=%6" PRIu64 " warm_decode_hits=%6" PRIu64
              " warm_round_trips=%5" PRIu64 "\n",
              primitive, config, r.cold_ms, r.warm_ms, r.cold.decodes,
              r.warm.decodes, r.warm.decode_hits,
              hgs::bench::FetchRoundTrips(r.warm));
  std::string stem = std::string(primitive) + "_" + config;
  hgs::bench::JsonRow("decode_cache", stem + "_cold_ms", r.cold_ms, "ms");
  hgs::bench::JsonRow("decode_cache", stem + "_warm_ms", r.warm_ms, "ms");
  hgs::bench::JsonRow("decode_cache", stem + "_warm_decodes",
                      static_cast<double>(r.warm.decodes), "decodes");
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  hgs::bench::PrintPreamble(
      "Decoded-object read cache: cold vs warm latency and decode counts",
      "warm bytes-only re-decodes everything; warm bytes+decoded performs "
      "zero deserialization and is measurably faster");

  auto events = hgs::bench::Dataset2();
  Timestamp end = workload::EndTime(events);
  Timestamp mid = end / 2;
  std::vector<NodeId> history_ids =
      hgs::bench::SampleNodes(events, end, 64, /*seed=*/99, /*min_degree=*/1);

  struct Config {
    const char* name;
    size_t byte_cache;
    size_t decoded_cache;
  };
  const Config configs[] = {
      {"bytes-only", 64u << 20, 0},
      {"decoded-only", 0, 64u << 20},
      {"bytes+decoded", 64u << 20, 64u << 20},
  };

  for (const Config& config : configs) {
    TGIOptions opts = hgs::bench::DefaultTGIOptions();
    opts.read_cache_bytes = config.byte_cache;
    opts.decoded_cache_bytes = config.decoded_cache;
    auto bundle = hgs::bench::BuildBundle(
        events, opts, hgs::bench::MakeClusterOptions(2, 1),
        /*fetch_parallelism=*/4);

    auto snapshot = Run([&](FetchStats* stats) {
      auto res = bundle.qm->GetSnapshotDelta(mid, stats);
      if (!res.ok()) std::abort();
    });
    PrintRow("snapshot", config.name, snapshot);

    auto histories = Run([&](FetchStats* stats) {
      auto res = bundle.qm->GetNodeHistories(history_ids, 0, end, stats);
      if (!res.ok()) std::abort();
    });
    PrintRow("histories", config.name, histories);

    auto multipoint = Run([&](FetchStats* stats) {
      auto res = bundle.qm->GetMultipointSnapshots(
          {end / 4, end / 2, 3 * end / 4}, stats);
      if (!res.ok()) std::abort();
    });
    PrintRow("multipoint", config.name, multipoint);
  }
  return 0;
}
