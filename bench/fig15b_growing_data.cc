// Figure 15b: snapshot retrieval as the indexed history grows — Datasets 1,
// 2 and 3 (the base citation trace plus increasing synthetic churn).
//
// Paper shape: only a marginal difference in snapshot retrieval latency as
// the index grows — cost follows the *retrieved* snapshot size, not the
// total history volume.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

struct DatasetRun {
  const char* label;
  hgs::bench::TGIBundle bundle;
  std::vector<hgs::Timestamp> probes;  // equal snapshot sizes across runs
};

std::vector<DatasetRun>* g_runs = nullptr;

void BM_Snapshot(benchmark::State& state) {
  DatasetRun& run = (*g_runs)[static_cast<size_t>(state.range(0))];
  hgs::Timestamp t = run.probes[static_cast<size_t>(state.range(1))];
  run.bundle.qm->set_fetch_parallelism(4);
  size_t nodes = 0;
  for (auto _ : state) {
    auto snap = run.bundle.qm->GetSnapshot(t);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    nodes = snap->NumNodes();
  }
  state.counters["snapshot_nodes"] = static_cast<double>(nodes);
  state.counters["indexed_events"] =
      static_cast<double>(run.bundle.events.size());
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 15b: snapshot retrieval for growing dataset sizes (D1/D2/D3)",
      "near-identical latency at equal snapshot sizes despite the index "
      "holding up to ~2.3x more events");

  std::vector<DatasetRun> runs;
  auto add = [&](const char* label, std::vector<hgs::Event> events) {
    runs.push_back({label,
                    hgs::bench::BuildBundle(std::move(events),
                                            hgs::bench::DefaultTGIOptions(),
                                            hgs::bench::MakeClusterOptions(4, 1)),
                    {}});
  };
  add("dataset1", hgs::bench::Dataset1());
  add("dataset2", hgs::bench::Dataset2());
  add("dataset3", hgs::bench::Dataset3());

  // Probe every run at the *same* absolute times (those of dataset 1's
  // quarters) so the retrieved snapshots are comparable in size.
  hgs::Timestamp d1_end = runs[0].bundle.end;
  for (auto& run : runs) {
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      run.probes.push_back(static_cast<hgs::Timestamp>(
          static_cast<double>(d1_end) * frac));
    }
  }
  g_runs = &runs;

  for (int64_t r = 0; r < static_cast<int64_t>(runs.size()); ++r) {
    for (int64_t p = 0; p < 4; ++p) {
      std::string name = std::string("snapshot/") +
                         runs[static_cast<size_t>(r)].label +
                         "/t_pct:" + std::to_string((p + 1) * 25);
      benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
          ->Args({r, p})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.6);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
