// Fault-tolerance curves for the replicated kvstore (ROADMAP item 4):
//
//   Phase A — tail latency vs hedging. One of four nodes is degraded (a
//   uniformly slow disk plus p99 GC-pause spikes, injected via the scripted
//   fault profiles). The same random point-read workload runs with hedged
//   reads off and on; hedging should leave p50 alone and collapse the p99 /
//   p999 tail to roughly the hedge delay, because the slow replica's answer
//   is raced against the healthy one.
//
//   Phase B — recovery time vs replication factor. For r in {1,2,3}: load a
//   base set, kill a node, write a live delta (quorum-surviving writes hint
//   the dead replica), rejoin, then time hint replay and a full anti-entropy
//   repair. After recovery the rejoined node must be byte-identical to its
//   twin in a never-faulted cluster — the bench aborts if not.
//
// `--json=<path>` adds machine-readable rows for CI trending.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace hgs::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

std::string RowKey(uint64_t i) { return "k" + std::to_string(i); }

std::string RowValue(uint64_t i) {
  std::string v;
  v.reserve(256);
  while (v.size() < 256) v += "v" + std::to_string(i * 2654435761u) + "|";
  v.resize(256);
  return v;
}

std::vector<PutRow> MakeRows(uint64_t begin, uint64_t count,
                             uint64_t partitions) {
  std::vector<PutRow> rows;
  rows.reserve(count);
  for (uint64_t i = begin; i < begin + count; ++i) {
    rows.push_back({i % partitions, RowKey(i), RowValue(i)});
  }
  return rows;
}

// -- Phase A: hedged reads vs a degraded replica ----------------------------

struct TailOutcome {
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
};

TailOutcome RunTail(bool hedge, uint64_t keys, uint64_t reads,
                    uint64_t partitions) {
  ClusterOptions opts = MakeClusterOptions(4, 2);
  if (hedge) opts.hedge_after_micros = 3'000;
  Cluster cluster(opts);

  if (!cluster.MultiPut("tail", MakeRows(0, keys, partitions)).ok()) {
    std::abort();
  }

  // Node 0 degrades after the load: an 8ms-slow disk with 40ms stalls on
  // 5% of requests — the tail profile hedged reads exist for.
  FaultProfile slow;
  slow.added_latency_micros = 8'000;
  slow.spike_prob = 0.05;
  slow.spike_latency_micros = 40'000;
  cluster.SetFaultProfile(0, slow);

  Rng rng(hedge ? 71 : 17);
  std::vector<double> lat_ms;
  lat_ms.reserve(reads);
  for (uint64_t q = 0; q < reads; ++q) {
    uint64_t i = rng.Uniform(keys);
    auto t0 = Clock::now();
    auto got = cluster.Get("tail", i % partitions, RowKey(i));
    if (!got.ok()) std::abort();
    lat_ms.push_back(MsSince(t0));
  }
  std::sort(lat_ms.begin(), lat_ms.end());

  TailOutcome out;
  out.p50_ms = PercentileMs(lat_ms, 0.50);
  out.p99_ms = PercentileMs(lat_ms, 0.99);
  out.p999_ms = PercentileMs(lat_ms, 0.999);
  out.hedges = cluster.resilience().hedges.load();
  out.hedge_wins = cluster.resilience().hedge_wins.load();
  return out;
}

// -- Phase B: recovery time vs replication factor ---------------------------

void RunRecovery(size_t r, uint64_t base, uint64_t delta,
                 uint64_t partitions) {
  const size_t kNodes = 4;
  const size_t victim = 1;
  ClusterOptions opts = MakeClusterOptions(kNodes, r);
  opts.write_ack = WriteAck::kOne;  // keep committing with the victim dead
  Cluster cluster(opts);
  Cluster twin(opts);

  if (!cluster.MultiPut("rec", MakeRows(0, base, partitions)).ok() ||
      !twin.MultiPut("rec", MakeRows(0, base, partitions)).ok()) {
    std::abort();
  }

  cluster.SetNodeDown(victim, true);
  // The live delta: rows whose only replica is the victim (possible at
  // r=1) fail loudly and are hinted; everything else commits and hints
  // the victim's missed copy.
  Status delta_status =
      cluster.MultiPut("rec", MakeRows(base, delta, partitions));
  if (!twin.MultiPut("rec", MakeRows(base, delta, partitions)).ok()) {
    std::abort();
  }

  const size_t hints = cluster.PendingHints(victim);
  cluster.SetNodeDown(victim, false);

  auto t0 = Clock::now();
  if (!cluster.ReplayHints(victim).ok()) std::abort();
  double replay_ms = MsSince(t0);

  t0 = Clock::now();
  if (!cluster.RepairNode(victim).ok()) std::abort();
  double repair_ms = MsSince(t0);

  for (size_t n = 0; n < kNodes; ++n) {
    if (cluster.NodeContentFingerprint(n) != twin.NodeContentFingerprint(n)) {
      std::fprintf(stderr, "r=%zu: node %zu diverged from twin\n", r, n);
      std::abort();
    }
  }

  std::printf("r=%zu hints=%zu replay_ms=%.1f repair_ms=%.1f "
              "delta_write=%s failed_rows=%" PRIu64 "\n",
              r, hints, replay_ms, repair_ms,
              delta_status.ok() ? "ok" : "degraded",
              cluster.resilience().failed_writes.load());
  std::string suffix = "_r" + std::to_string(r);
  JsonRow("fault_tolerance", "hints" + suffix, static_cast<double>(hints),
          "rows");
  JsonRow("fault_tolerance", "replay_ms" + suffix, replay_ms, "ms");
  JsonRow("fault_tolerance", "repair_ms" + suffix, repair_ms, "ms");
}

int Main(int argc, char** argv) {
  InitBenchTelemetry(&argc, argv);
  PrintPreamble("fault_tolerance",
                "hedging trims read p99/p999 to ~hedge delay under a slow "
                "replica; recovery time grows with replication factor");

  const uint64_t partitions = 64;
  const uint64_t keys = std::max<uint64_t>(Scaled(4'000), 256);
  const uint64_t reads = std::max<uint64_t>(Scaled(3'000), 400);

  std::printf("# phase A: m=4 r=2, node 0 slow (+8ms, 5%% 40ms spikes), "
              "%" PRIu64 " keys, %" PRIu64 " reads\n", keys, reads);
  for (bool hedge : {false, true}) {
    TailOutcome o = RunTail(hedge, keys, reads, partitions);
    const char* mode = hedge ? "hedge_on" : "hedge_off";
    std::printf("%s: p50=%.2fms p99=%.2fms p999=%.2fms hedges=%" PRIu64
                " hedge_wins=%" PRIu64 "\n",
                mode, o.p50_ms, o.p99_ms, o.p999_ms, o.hedges, o.hedge_wins);
    std::string suffix = std::string("_") + mode;
    JsonRow("fault_tolerance", "read_p50_ms" + suffix, o.p50_ms, "ms");
    JsonRow("fault_tolerance", "read_p99_ms" + suffix, o.p99_ms, "ms");
    JsonRow("fault_tolerance", "read_p999_ms" + suffix, o.p999_ms, "ms");
    JsonRow("fault_tolerance", "hedges" + suffix,
            static_cast<double>(o.hedges), "count");
    JsonRow("fault_tolerance", "hedge_wins" + suffix,
            static_cast<double>(o.hedge_wins), "count");
  }

  const uint64_t base = std::max<uint64_t>(Scaled(6'000), 512);
  const uint64_t delta = std::max<uint64_t>(Scaled(1'500), 128);
  std::printf("# phase B: m=4, kill node 1, %" PRIu64 " base + %" PRIu64
              " delta rows, rejoin, replay hints, full repair\n",
              base, delta);
  for (size_t r : {1, 2, 3}) {
    RunRecovery(r, base, delta, partitions);
  }
  return 0;
}

}  // namespace
}  // namespace hgs::bench

int main(int argc, char** argv) { return hgs::bench::Main(argc, argv); }
