// Figure 13b: effect of the micro-delta partition size ps on snapshot
// retrieval; m=4, c=8. Paper sweeps ps ∈ {1000, 2000, 4000}; we sweep the
// same values scaled to the dataset.
//
// Paper shape: partition size affects snapshot retrieval only to a small
// degree — all micro-partitions of a delta are stored contiguously, so a
// snapshot scan pays one seek per (delta, storage partition) regardless of
// how finely the delta is chopped.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

std::vector<std::pair<size_t, hgs::bench::TGIBundle>>* g_bundles = nullptr;
std::vector<hgs::Timestamp> g_probes;

void BM_Snapshot(benchmark::State& state) {
  auto& [ps, bundle] = (*g_bundles)[static_cast<size_t>(state.range(0))];
  hgs::Timestamp t = g_probes[static_cast<size_t>(state.range(1))];
  bundle.qm->set_fetch_parallelism(8);
  hgs::FetchStats agg;
  for (auto _ : state) {
    hgs::FetchStats stats;
    auto snap = bundle.qm->GetSnapshot(t, &stats);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    agg.Merge(stats);
  }
  state.counters["micro_deltas"] =
      static_cast<double>(agg.micro_deltas) /
      static_cast<double>(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 13b: snapshot retrieval vs micro-delta partition size; m=4 c=8",
      "only a small effect of ps on snapshot latency (contiguous "
      "micro-partitions cost one seek per delta scan)");

  auto events = hgs::bench::Dataset1();
  std::vector<std::pair<size_t, hgs::bench::TGIBundle>> bundles;
  for (size_t ps : {1'000u, 2'000u, 4'000u}) {
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.micro_delta_size = ps;
    bundles.emplace_back(ps,
                         hgs::bench::BuildBundle(
                             events, topts,
                             hgs::bench::MakeClusterOptions(4, 1)));
  }
  g_bundles = &bundles;
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    g_probes.push_back(static_cast<hgs::Timestamp>(
        static_cast<double>(bundles[0].second.end) * frac));
  }

  for (int64_t b = 0; b < static_cast<int64_t>(bundles.size()); ++b) {
    for (int64_t p = 0; p < static_cast<int64_t>(g_probes.size()); ++p) {
      std::string name =
          "snapshot/ps:" + std::to_string(bundles[static_cast<size_t>(b)].first) +
          "/t_pct:" + std::to_string((p + 1) * 25);
      benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
          ->Args({b, p})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.6);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
