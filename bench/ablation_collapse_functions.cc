// Ablation (Section 4.5): the temporal collapse functions Ω — Median,
// Union-Max, Union-Mean — combined with the node-weight choices, evaluated
// by the edge-cut quality of the resulting per-timespan partitioning and by
// the realized 1-hop fetch cost.
//
// Expectation: union-style collapses beat Median on churny spans (Median is
// blind to edges that exist only in the other half of the span); the
// paper's default (Union-Max + uniform node weights) is a solid choice.

#include <cstdio>

#include "bench_common.h"
#include "partition/dynamic_partitioner.h"

namespace {

using namespace hgs;

const char* CollapseName(CollapseFn fn) {
  switch (fn) {
    case CollapseFn::kMedian:
      return "median";
    case CollapseFn::kUnionMax:
      return "union-max";
    case CollapseFn::kUnionMean:
      return "union-mean";
  }
  return "?";
}

const char* WeightName(NodeWeightFn fn) {
  switch (fn) {
    case NodeWeightFn::kUniform:
      return "uniform";
    case NodeWeightFn::kDegree:
      return "degree";
    case NodeWeightFn::kAvgDegree:
      return "avg-degree";
  }
  return "?";
}

}  // namespace

int main() {
  hgs::bench::PrintPreamble(
      "Ablation: collapse functions for dynamic partitioning (Section 4.5)",
      "union-style collapse <= median edge-cut on churny spans; node-weight "
      "choice is secondary");

  // A churny community graph span: Friendster-analogue structure plus
  // add/delete churn, so the collapse functions actually disagree.
  auto events = workload::GenerateFriendster({.num_nodes = hgs::bench::Scaled(4'000),
                                              .num_edges = hgs::bench::Scaled(16'000),
                                              .community_size = 100,
                                              .seed = 31});
  events = workload::AugmentWithChurn(
      std::move(events),
      {.num_events = hgs::bench::Scaled(12'000), .delete_prob = 0.5,
       .seed = 32});
  Timestamp end = workload::EndTime(events);
  TimeInterval span{1, end + 1};
  Graph empty_start;

  // The reference graph to judge cuts on: the union graph over the span
  // (every edge weighted by its lifetime fraction).
  CollapseOptions ref_opts;
  ref_opts.edge_fn = CollapseFn::kUnionMean;
  WeightedGraph reference =
      CollapseTemporalGraph(empty_start, events, span, ref_opts);

  std::printf("\n%-12s %-12s %14s %14s\n", "collapse", "node-weight",
              "edge-cut", "cut-fraction");
  for (CollapseFn edge_fn :
       {CollapseFn::kMedian, CollapseFn::kUnionMax, CollapseFn::kUnionMean}) {
    for (NodeWeightFn node_fn :
         {NodeWeightFn::kUniform, NodeWeightFn::kDegree}) {
      DynamicPartitionOptions opts;
      opts.strategy = PartitionStrategy::kLocality;
      opts.num_partitions = 16;
      opts.collapse.edge_fn = edge_fn;
      opts.collapse.node_fn = node_fn;
      Partitioning p = PartitionTimespan(empty_start, events, span, opts);
      double cut = p.EdgeCut(reference);
      double total = 0;
      for (const auto& [key, w] : reference.edge_weights) {
        (void)key;
        total += w;
      }
      std::printf("%-12s %-12s %14.1f %13.1f%%\n", CollapseName(edge_fn),
                  WeightName(node_fn), cut,
                  total > 0 ? 100.0 * cut / total : 0.0);
    }
  }

  // Random baseline for context.
  Partitioning random = Partitioning::Random(16);
  double cut = random.EdgeCut(reference);
  double total = 0;
  for (const auto& [key, w] : reference.edge_weights) {
    (void)key;
    total += w;
  }
  std::printf("%-12s %-12s %14.1f %13.1f%%\n", "random", "-", cut,
              total > 0 ? 100.0 * cut / total : 0.0);
  return 0;
}
