// Figure 12 (a-c): snapshot retrieval across storage-machine count m and
// replication factor r — (m=1,r=1), (m=2,r=1), (m=2,r=2) — with the parallel
// fetch factor c swept per panel.
//
// Paper shape: the three configurations perform similarly overall; m=2 has a
// slight edge over m=1 at higher c, and (m=2, r=2) sustains higher c than
// (m=1, r=1) before saturating.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

struct Panel {
  const char* label;
  hgs::bench::TGIBundle bundle;
};

std::vector<Panel>* g_panels = nullptr;
hgs::Timestamp g_probe = 0;

void BM_Snapshot(benchmark::State& state) {
  Panel& panel = (*g_panels)[static_cast<size_t>(state.range(0))];
  size_t c = static_cast<size_t>(state.range(1));
  panel.bundle.qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    auto snap = panel.bundle.qm->GetSnapshot(g_probe);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(snap->NumNodes());
  }
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 12: snapshot retrieval across (m, r) panels, c swept",
      "similar latency across panels; m=2 slightly ahead of m=1 for c>1; "
      "r=2 sustains higher c before saturation");

  auto events = hgs::bench::Dataset1();
  hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();

  std::vector<Panel> panels;
  panels.push_back(
      {"m1_r1", hgs::bench::BuildBundle(
                    events, topts, hgs::bench::MakeClusterOptions(1, 1))});
  panels.push_back(
      {"m2_r1", hgs::bench::BuildBundle(
                    events, topts, hgs::bench::MakeClusterOptions(2, 1))});
  panels.push_back(
      {"m2_r2", hgs::bench::BuildBundle(
                    events, topts, hgs::bench::MakeClusterOptions(2, 2))});
  g_panels = &panels;
  g_probe = panels[0].bundle.end;

  const int64_t c_values[3][4] = {{1, 2, 4, 8}, {1, 2, 4, 8}, {1, 4, 8, 16}};
  for (int64_t p = 0; p < 3; ++p) {
    for (int64_t c : c_values[p]) {
      std::string name = std::string("snapshot/") + panels[static_cast<size_t>(p)].label +
                         "/c:" + std::to_string(c);
      benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
          ->Args({p, c})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.6);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
