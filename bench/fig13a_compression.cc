// Figure 13a: compressed vs uncompressed delta storage; m=2, c=8, r=1.
//
// Paper shape: the net effect of store-side delta compression on snapshot
// retrieval latency is negligible (seeks and deserialization dominate; the
// transfer savings are offset by decompression work).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_plain = nullptr;
hgs::bench::TGIBundle* g_compressed = nullptr;
std::vector<hgs::Timestamp> g_probes;

void BM_Snapshot(benchmark::State& state) {
  hgs::bench::TGIBundle* bundle = state.range(0) == 0 ? g_plain : g_compressed;
  hgs::Timestamp t = g_probes[static_cast<size_t>(state.range(1))];
  bundle->qm->set_fetch_parallelism(8);
  size_t nodes = 0;
  for (auto _ : state) {
    auto snap = bundle->qm->GetSnapshot(t);
    if (!snap.ok()) {
      state.SkipWithError(snap.status().ToString().c_str());
      return;
    }
    nodes = snap->NumNodes();
  }
  state.counters["snapshot_nodes"] = static_cast<double>(nodes);
  state.counters["stored_MB"] =
      static_cast<double>(bundle->cluster->TotalStoredBytes()) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 13a: compressed vs uncompressed delta storage; m=2 c=8 r=1",
      "negligible latency difference; compression shrinks stored bytes");

  auto events = hgs::bench::Dataset1();
  hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
  auto plain = hgs::bench::BuildBundle(
      events, topts, hgs::bench::MakeClusterOptions(2, 1));
  auto compressed = hgs::bench::BuildBundle(
      events, topts,
      hgs::bench::MakeClusterOptions(2, 1, hgs::CompressionKind::kLz));
  g_plain = &plain;
  g_compressed = &compressed;
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    g_probes.push_back(static_cast<hgs::Timestamp>(
        static_cast<double>(plain.end) * frac));
  }

  for (int64_t mode : {0, 1}) {
    for (int64_t p = 0; p < static_cast<int64_t>(g_probes.size()); ++p) {
      std::string name = std::string("snapshot/") +
                         (mode == 0 ? "uncompressed" : "compressed") +
                         "/t_pct:" + std::to_string((p + 1) * 25);
      benchmark::RegisterBenchmark(name.c_str(), BM_Snapshot)
          ->Args({mode, p})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.6);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
