// Figure 13a: effect of store-side compression, extended into a three-way
// block-codec comparison (kNone / kLz / kColumnar) over the payloads the
// TGI actually stores.
//
// Two sections:
//   * codec microbench — serialized eventlist and delta blocks pushed
//     through Compress / DecompressShared. Reports compression ratio,
//     encode MB/s, decode MB/s (to usable bytes) and value_copies per
//     codec. Expect: kColumnar ratio >= kLz on event payloads (the codec
//     falls back to the LZ arm per block whenever LZ is smaller), decode
//     far faster than kLz because DecompressShared returns a window into
//     the stored block instead of materializing, so value_copies == 0.
//   * whole-index reads — three identical indexes built with each codec;
//     cold snapshot latency, stored bytes and read-path value_copies. The
//     paper shape (negligible latency difference, smaller stored bytes)
//     should hold, with kColumnar additionally reporting zero copies.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/columnar.h"
#include "common/compression.h"
#include "delta/delta.h"
#include "delta/eventlist.h"

namespace {

using namespace hgs;

const char* CodecName(CompressionKind k) {
  switch (k) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kLz:
      return "lz";
    case CompressionKind::kColumnar:
      return "columnar";
  }
  return "?";
}

struct Payload {
  std::string bytes;
  ValueSchema schema;
};

// The block shapes the builder stores: eventlist chunks at the default
// chunk size plus the checkpoint deltas they roll up into.
std::vector<Payload> MakeCorpus(const std::vector<Event>& events) {
  std::vector<Payload> corpus;
  const size_t chunk = 250;
  Delta checkpoint;
  for (size_t i = 0; i < events.size(); i += chunk) {
    size_t end = std::min(events.size(), i + chunk);
    EventList el(events[i].time - 1, events[end - 1].time);
    for (size_t j = i; j < end; ++j) el.Append(events[j]);
    el.ApplyTo(&checkpoint);
    corpus.push_back({el.Serialize(), ValueSchema::kEventList});
    if ((i / chunk) % 8 == 7) {
      checkpoint.Compact();
      corpus.push_back({checkpoint.Serialize(), ValueSchema::kDelta});
    }
  }
  return corpus;
}

struct CodecRun {
  double ratio = 0;        // raw bytes / stored bytes
  double encode_mbps = 0;  // raw MB per second of Compress
  double decode_mbps = 0;  // raw MB per second of DecompressShared
  uint64_t value_copies = 0;
  uint64_t raw_bytes = 0;
  uint64_t stored_bytes = 0;
  uint64_t checksum = 0;  // consumed output, so nothing is optimized away
};

CodecRun RunCodec(const std::vector<Payload>& corpus, CompressionKind kind,
                  int reps) {
  CodecRun run;
  for (const Payload& p : corpus) run.raw_bytes += p.bytes.size();

  std::vector<SharedValue> stored;
  stored.reserve(corpus.size());
  auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    stored.clear();
    for (const Payload& p : corpus) {
      stored.emplace_back(Compress(p.bytes, kind, p.schema));
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  for (const SharedValue& s : stored) run.stored_bytes += s.size();
  run.ratio = static_cast<double>(run.raw_bytes) /
              static_cast<double>(run.stored_bytes);
  double encode_s = std::chrono::duration<double>(t1 - t0).count();
  run.encode_mbps =
      static_cast<double>(run.raw_bytes) * reps / 1e6 / encode_s;

  auto t2 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const SharedValue& s : stored) {
      auto out = DecompressShared(s);
      if (!out.ok()) std::abort();
      if (out->owner() != s.owner()) ++run.value_copies;
      run.checksum ^= Fnv1a64(out->data(), std::min<size_t>(out->size(), 64));
    }
  }
  auto t3 = std::chrono::steady_clock::now();
  double decode_s = std::chrono::duration<double>(t3 - t2).count();
  run.decode_mbps =
      static_cast<double>(run.raw_bytes) * reps / 1e6 / decode_s;
  run.value_copies /= reps;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  hgs::bench::PrintPreamble(
      "Fig 13a: block codecs kNone/kLz/kColumnar — ratio, throughput, "
      "copies; then whole-index snapshot reads per codec",
      "columnar ratio >= lz on event blocks with view-speed decode and "
      "zero value copies; index read latency stays within noise of "
      "uncompressed while stored bytes shrink");

  auto events = hgs::bench::Dataset2();
  auto corpus = MakeCorpus(events);
  uint64_t corpus_bytes = 0;
  for (const auto& p : corpus) corpus_bytes += p.bytes.size();
  std::printf("# corpus: %zu blocks, %.1f MB raw\n", corpus.size(),
              static_cast<double>(corpus_bytes) / 1e6);

  const int kReps = 5;
  const CompressionKind kinds[] = {CompressionKind::kNone,
                                   CompressionKind::kLz,
                                   CompressionKind::kColumnar};
  for (CompressionKind kind : kinds) {
    CodecRun run = RunCodec(corpus, kind, kReps);
    std::printf("codec %-9s ratio=%5.2f encode_MBps=%8.1f "
                "decode_MBps=%9.1f value_copies=%" PRIu64 "\n",
                CodecName(kind), run.ratio, run.encode_mbps, run.decode_mbps,
                run.value_copies);
    std::string stem = std::string("codec_") + CodecName(kind);
    hgs::bench::JsonRow("fig13a", stem + "_ratio", run.ratio, "x");
    hgs::bench::JsonRow("fig13a", stem + "_encode_MBps", run.encode_mbps,
                        "MB/s");
    hgs::bench::JsonRow("fig13a", stem + "_decode_MBps", run.decode_mbps,
                        "MB/s");
    hgs::bench::JsonRow("fig13a", stem + "_value_copies",
                        static_cast<double>(run.value_copies), "copies");
  }

  // -- whole-index reads per codec ------------------------------------------
  for (CompressionKind kind : kinds) {
    TGIOptions topts = hgs::bench::DefaultTGIOptions();
    CompressionKind cluster_kind = kind;
    if (kind == CompressionKind::kColumnar) {
      // Columnar is a row-family codec: the TGI declares it per family so
      // the blocks carry their schema; everything else stays uncompressed.
      cluster_kind = CompressionKind::kNone;
      topts.row_compression = kind;
      topts.eventlist_compression = kind;
      topts.versions_compression = kind;
    }
    auto bundle = hgs::bench::BuildBundle(
        events, topts, hgs::bench::MakeClusterOptions(2, 1, cluster_kind));
    bundle.qm->set_fetch_parallelism(8);
    double total_ms = 0;
    FetchStats stats;
    size_t nodes = 0;
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      Timestamp t = static_cast<Timestamp>(
          static_cast<double>(bundle.end) * frac);
      auto t0 = std::chrono::steady_clock::now();
      auto snap = bundle.qm->GetSnapshot(t, &stats);
      auto t1 = std::chrono::steady_clock::now();
      if (!snap.ok()) std::abort();
      nodes = snap->NumNodes();
      total_ms += std::chrono::duration<double>(t1 - t0).count() * 1e3;
    }
    double stored_mb =
        static_cast<double>(bundle.cluster->TotalStoredBytes()) / 1e6;
    std::printf("index %-9s snapshot4_ms=%8.2f stored_MB=%7.2f "
                "value_copies=%" PRIu64 " nodes=%zu\n",
                CodecName(kind), total_ms, stored_mb, stats.value_copies,
                nodes);
    std::string stem = std::string("index_") + CodecName(kind);
    hgs::bench::JsonRow("fig13a", stem + "_snapshot4_ms", total_ms, "ms");
    hgs::bench::JsonRow("fig13a", stem + "_stored_MB", stored_mb, "MB");
    hgs::bench::JsonRow("fig13a", stem + "_value_copies",
                        static_cast<double>(stats.value_copies), "copies");
  }
  return 0;
}
