// Figure 17: label counting in 2-hop neighborhoods via version-based
// (NodeComputeTemporal) vs incremental (NodeComputeDelta) computation —
// cumulative compute time (fetch excluded) against the number of versions
// processed.
//
// Paper shape: incremental computation is far cheaper, and the gap widens
// as the version count grows (O(N·T) vs O(N+T)).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "taf/context.h"
#include "taf/metrics.h"

namespace {

// One SoTS per version-count bucket: subgraphs truncated to k versions.
std::vector<std::pair<size_t, hgs::taf::SoTS>>* g_sots = nullptr;

const std::function<double(const hgs::Graph&)>& FreshFn() {
  static const std::function<double(const hgs::Graph&)> fn =
      [](const hgs::Graph& g) {
        return hgs::taf::metrics::CountLabel(g, "EntityType", "Author");
      };
  return fn;
}

const std::function<double(const hgs::Graph&, const double&,
                           const hgs::Event&)>&
DeltaFn() {
  static const std::function<double(const hgs::Graph&, const double&,
                                    const hgs::Event&)>
      fn = [](const hgs::Graph& before, const double& prev,
              const hgs::Event& e) {
        return hgs::taf::metrics::CountLabelDelta(before, prev, e,
                                                  "EntityType", "Author");
      };
  return fn;
}

void BM_Temporal(benchmark::State& state) {
  auto& [versions, sots] = (*g_sots)[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto series = sots.NodeComputeTemporal<double>(FreshFn());
    benchmark::DoNotOptimize(series.data());
  }
  state.counters["version_count"] = static_cast<double>(versions);
}

void BM_Delta(benchmark::State& state) {
  auto& [versions, sots] = (*g_sots)[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto series = sots.NodeComputeDelta<double>(FreshFn(), DeltaFn());
    benchmark::DoNotOptimize(series.data());
  }
  state.counters["version_count"] = static_cast<double>(versions);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 17: NodeComputeTemporal vs NodeComputeDelta (2-hop label count)",
      "incremental (Delta) is much cheaper than per-version recompute "
      "(Temporal); the gap widens with version count");

  auto bundle = hgs::bench::BuildBundle(hgs::bench::DatasetDblp(),
                                        hgs::bench::DefaultTGIOptions(),
                                        hgs::bench::MakeClusterOptions(2, 1),
                                        /*fetch_parallelism=*/4);
  // Seeds: papers co-authored by the most prolific author, so their 2-hop
  // neighborhoods are large (the paper's experiment used wide subgraphs —
  // the O(N·T) vs O(N+T) separation needs a non-trivial N).
  hgs::Graph final_state =
      hgs::workload::ReplayToGraph(bundle.events, bundle.end);
  hgs::NodeId hub_author = hgs::kInvalidNodeId;
  size_t hub_degree = 0;
  final_state.ForEachNode([&](hgs::NodeId id, const hgs::NodeRecord& rec) {
    auto type = rec.attrs.Get("EntityType");
    if (type && *type == "Author" &&
        final_state.Neighbors(id).size() > hub_degree) {
      hub_degree = final_state.Neighbors(id).size();
      hub_author = id;
    }
  });
  std::vector<hgs::NodeId> seeds;
  for (hgs::NodeId paper : final_state.Neighbors(hub_author)) {
    seeds.push_back(paper);
    if (seeds.size() == 12) break;
  }

  hgs::taf::TAFContext ctx(bundle.qm.get(), 2);
  auto full = ctx.Subgraphs(2)
                  .TimeRange(bundle.end / 2, bundle.end)
                  .WithSeeds(seeds)
                  .Fetch();
  if (!full.ok()) {
    std::fprintf(stderr, "fetch failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }

  // Buckets: the same subgraphs truncated to ~5/10/15/20 versions each, so
  // the x-axis is the processed version count (as in the paper's figure).
  static std::vector<std::pair<size_t, hgs::taf::SoTS>> sots_buckets;
  for (size_t versions : {5u, 10u, 15u, 20u}) {
    std::vector<hgs::taf::SubgraphT> truncated;
    for (const auto& sg : full->subgraphs()) {
      std::vector<hgs::Event> kept;
      for (const auto& e : sg.events().events()) {
        if (kept.size() >= versions) break;
        kept.push_back(e);
      }
      hgs::EventList events(sg.GetStartTime(),
                            kept.empty() ? sg.GetStartTime()
                                         : kept.back().time);
      for (auto& e : kept) events.Append(std::move(e));
      hgs::Timestamp to =
          kept.empty() ? sg.GetStartTime() : events.events().back().time;
      truncated.emplace_back(sg.seed(), sg.members(),
                             sg.GetStateDeltaAt(sg.GetStartTime()),
                             std::move(events), sg.GetStartTime(), to);
    }
    sots_buckets.emplace_back(
        versions, hgs::taf::SoTS(ctx.engine(), std::move(truncated),
                                 full->GetStartTime(), full->GetEndTime()));
  }
  g_sots = &sots_buckets;

  for (int64_t b = 0; b < static_cast<int64_t>(sots_buckets.size()); ++b) {
    size_t v = sots_buckets[static_cast<size_t>(b)].first;
    benchmark::RegisterBenchmark(
        ("label_count/NodeComputeTemporal/versions:" + std::to_string(v))
            .c_str(),
        BM_Temporal)
        ->Arg(b)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.2);
    benchmark::RegisterBenchmark(
        ("label_count/NodeComputeDelta/versions:" + std::to_string(v))
            .c_str(),
        BM_Delta)
        ->Arg(b)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
