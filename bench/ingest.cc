// Ingest pipeline throughput: row-at-a-time puts vs group commit vs the
// sharded encode pipeline (thread sweep) vs BulkLoad, on the Dataset 2
// event stream.
//
// Two regimes, same stream:
//   * io  — the simulated commodity-store latency model with write charging
//     enabled. Every row-at-a-time Put pays a seek; a group commit pays one
//     seek per storage-node batch. Expect the group-commit rows to beat the
//     row-puts baseline by roughly (rows per span / node count), visible
//     even on a single-core host.
//   * cpu — latency disabled. Isolates the encode pipeline (leaf
//     compaction, intersection-tree algebra, partition splits, row
//     serialization) sharded across the worker pool; scaling with the
//     thread sweep shows only on multi-core hosts.
//
// Every configuration must produce byte-identical storage (the pipeline's
// determinism contract); the bench cross-checks content fingerprints and
// aborts on a mismatch. Write counters (put_batches / rows_put / bytes_put)
// print per row, and every figure is emitted through the JSON telemetry
// sink (--json=<path> or HGS_BENCH_JSON).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace hgs;

struct Spec {
  const char* name;    // table label
  const char* metric;  // JSON metric stem
  size_t threads;      // TGIOptions::ingest_threads
  bool group_commit;   // TGIOptions::group_commit_puts
  bool bulk;           // BulkLoad instead of BuildFrom
};

struct Outcome {
  double seconds = 0;
  double events_per_sec = 0;
  uint64_t put_batches = 0;
  uint64_t rows_put = 0;
  uint64_t bytes_put = 0;
  uint64_t keys = 0;
  uint64_t fingerprint = 0;
};

Outcome RunOnce(const std::vector<Event>& events, const ClusterOptions& copts,
                const Spec& spec) {
  TGIOptions opts = hgs::bench::DefaultTGIOptions();
  opts.ingest_threads = spec.threads;
  opts.group_commit_puts = spec.group_commit;
  Cluster cluster(copts);
  TGI tgi(&cluster, opts);
  auto start = std::chrono::steady_clock::now();
  Status s = spec.bulk ? tgi.BulkLoad(events) : tgi.BuildFrom(events);
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  if (!s.ok()) {
    std::fprintf(stderr, "%s ingest failed: %s\n", spec.name,
                 s.ToString().c_str());
    std::abort();
  }
  Outcome out;
  out.seconds = secs;
  out.events_per_sec =
      secs > 0 ? static_cast<double>(events.size()) / secs : 0;
  out.put_batches = cluster.TotalPutBatches();
  out.rows_put = cluster.TotalRowsPut();
  out.bytes_put = cluster.TotalBytesPut();
  out.keys = cluster.TotalKeys();
  out.fingerprint = cluster.ContentFingerprint();
  return out;
}

void PrintRow(const char* regime, const Spec& spec, const Outcome& o) {
  std::printf("%-4s %-24s events_per_sec=%10.0f time_s=%8.3f "
              "put_batches=%8" PRIu64 " rows_put=%8" PRIu64
              " bytes_put=%11" PRIu64 "\n",
              regime, spec.name, o.events_per_sec, o.seconds, o.put_batches,
              o.rows_put, o.bytes_put);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  hgs::bench::PrintPreamble(
      "Ingest pipeline: row-at-a-time vs group commit vs sharded encode vs "
      "BulkLoad",
      "group commit collapses per-row seeks into per-node batches; the "
      "thread sweep shards the encode work; all configurations store "
      "byte-identical contents");

  auto events = hgs::bench::Dataset2();
  std::printf("# events=%zu\n", events.size());

  const Spec kRowPuts = {"row-puts (1t)", "row_puts_1t", 1, false, false};
  const Spec kSweep[] = {
      {"group-commit (1t)", "group_commit_1t", 1, true, false},
      {"sharded (2t)", "sharded_2t", 2, true, false},
      {"sharded (4t)", "sharded_4t", 4, true, false},
      {"sharded (8t)", "sharded_8t", 8, true, false},
      {"bulkload (8t)", "bulkload_8t", 8, true, true},
  };

  uint64_t fingerprint = 0;
  uint64_t keys = 0;
  bool identical = true;
  auto check = [&](const Outcome& o) {
    if (fingerprint == 0 && keys == 0) {
      fingerprint = o.fingerprint;
      keys = o.keys;
      return;
    }
    if (o.fingerprint != fingerprint || o.keys != keys) identical = false;
  };

  // -- io regime: write latency charged -------------------------------------
  ClusterOptions io_opts = hgs::bench::MakeClusterOptions(4, 1);
  io_opts.latency.charge_writes = true;

  std::printf("\n== io regime (write latency charged, 4 nodes) ==\n");
  Outcome io_base = RunOnce(events, io_opts, kRowPuts);
  PrintRow("io", kRowPuts, io_base);
  check(io_base);
  hgs::bench::JsonRow("ingest", std::string("io_") + kRowPuts.metric +
                                    "_events_per_sec",
                      io_base.events_per_sec, "events/s");

  double io_group_1t = 0;
  double io_sharded_8t = 0;
  for (const Spec& spec : kSweep) {
    Outcome o = RunOnce(events, io_opts, spec);
    PrintRow("io", spec, o);
    check(o);
    hgs::bench::JsonRow("ingest",
                        std::string("io_") + spec.metric + "_events_per_sec",
                        o.events_per_sec, "events/s");
    if (std::string(spec.metric) == "group_commit_1t") {
      io_group_1t = o.events_per_sec;
      // The batching win in counters: same rows, far fewer round trips.
      hgs::bench::JsonRow("ingest", "io_group_commit_put_batches",
                          static_cast<double>(o.put_batches), "batches");
      hgs::bench::JsonRow("ingest", "io_row_puts_put_batches",
                          static_cast<double>(io_base.put_batches),
                          "batches");
      hgs::bench::JsonRow("ingest", "rows_put",
                          static_cast<double>(o.rows_put), "rows");
      hgs::bench::JsonRow("ingest", "bytes_put",
                          static_cast<double>(o.bytes_put), "bytes");
    }
    if (std::string(spec.metric) == "sharded_8t") {
      io_sharded_8t = o.events_per_sec;
    }
  }
  double group_speedup =
      io_base.events_per_sec > 0 ? io_group_1t / io_base.events_per_sec : 0;
  double sharded_speedup =
      io_base.events_per_sec > 0 ? io_sharded_8t / io_base.events_per_sec : 0;
  std::printf("group-commit vs row-puts: %.2fx; sharded 8t vs row-puts: "
              "%.2fx\n",
              group_speedup, sharded_speedup);
  hgs::bench::JsonRow("ingest", "io_group_commit_speedup_vs_row_puts",
                      group_speedup, "x");
  hgs::bench::JsonRow("ingest", "io_sharded_8t_speedup_vs_row_puts",
                      sharded_speedup, "x");

  // -- cpu regime: latency off ----------------------------------------------
  ClusterOptions cpu_opts = hgs::bench::MakeClusterOptions(4, 1);
  cpu_opts.latency.enabled = false;

  std::printf("\n== cpu regime (latency off, encode-bound) ==\n");
  double cpu_1t = 0;
  double cpu_8t = 0;
  for (const Spec& spec : kSweep) {
    Outcome o = RunOnce(events, cpu_opts, spec);
    PrintRow("cpu", spec, o);
    check(o);
    hgs::bench::JsonRow("ingest",
                        std::string("cpu_") + spec.metric + "_events_per_sec",
                        o.events_per_sec, "events/s");
    if (std::string(spec.metric) == "group_commit_1t") {
      cpu_1t = o.events_per_sec;
    }
    if (std::string(spec.metric) == "sharded_8t") cpu_8t = o.events_per_sec;
  }
  double cpu_scaling = cpu_1t > 0 ? cpu_8t / cpu_1t : 0;
  std::printf("encode scaling 8t vs 1t: %.2fx (shows on multi-core hosts)\n",
              cpu_scaling);
  hgs::bench::JsonRow("ingest", "cpu_sharded_8t_speedup_vs_1t", cpu_scaling,
                      "x");

  std::printf("\nstorage determinism across all configurations: %s "
              "(fingerprint=%016" PRIx64 ", keys=%" PRIu64 ")\n",
              identical ? "IDENTICAL" : "MISMATCH", fingerprint, keys);
  hgs::bench::JsonRow("ingest", "fingerprints_all_equal", identical ? 1 : 0,
                      "bool");
  if (!identical) std::abort();
  return 0;
}
