// Figure 14c: node-version retrieval (for a node with ~100 change points) vs
// the micro-delta partition size ps.
//
// Paper shape: version retrieval degrades as ps grows — each version-chain
// pointer fetches a whole micro-eventlist, and bigger partitions mean more
// irrelevant events read and deserialized. This is the deliberate trade-off
// against Fig 13b (snapshots are ps-insensitive).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

std::vector<std::pair<size_t, hgs::bench::TGIBundle>>* g_bundles = nullptr;
hgs::NodeId g_node = 0;
size_t g_changes = 0;

void BM_NodeVersions(benchmark::State& state) {
  auto& [ps, bundle] = (*g_bundles)[static_cast<size_t>(state.range(0))];
  hgs::FetchStats agg;
  for (auto _ : state) {
    hgs::FetchStats stats;
    auto hist = bundle.qm->GetNodeHistory(g_node, 0, bundle.end, &stats);
    if (!hist.ok()) {
      state.SkipWithError(hist.status().ToString().c_str());
      return;
    }
    agg.Merge(stats);
  }
  state.counters["changes"] = static_cast<double>(g_changes);
  state.counters["KB_fetched"] = static_cast<double>(agg.bytes) /
                                 static_cast<double>(state.iterations()) /
                                 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 14c: node-version retrieval vs micro-delta partition size ps",
      "latency grows with ps (bigger micro-eventlists per chain pointer) — "
      "the inverse of Fig 13b's snapshot behavior");

  auto events = hgs::bench::Dataset1();
  auto nodes = hgs::bench::NodesByVersionCount(events, {100});
  g_node = nodes[0].first;
  g_changes = nodes[0].second;

  std::vector<std::pair<size_t, hgs::bench::TGIBundle>> bundles;
  for (size_t ps : {250u, 500u, 1'000u, 2'000u, 4'000u}) {
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.micro_delta_size = ps;
    auto copts = hgs::bench::MakeClusterOptions(4, 1);
    copts.latency = hgs::bench::VersionBenchLatency();
    bundles.emplace_back(ps, hgs::bench::BuildBundle(events, topts, copts));
  }
  g_bundles = &bundles;

  for (int64_t b = 0; b < static_cast<int64_t>(bundles.size()); ++b) {
    std::string name =
        "versions/ps:" +
        std::to_string(bundles[static_cast<size_t>(b)].first);
    benchmark::RegisterBenchmark(name.c_str(), BM_NodeVersions)
        ->Arg(b)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
