// Standing mixed read/write workload: live ingest racing point-in-time
// readers over one index.
//
// A writer thread appends the second half of the history batch by batch
// (each AppendBatch publishes), while open-loop reader threads keep issuing
// snapshot and node-history queries against the seeded prefix at a fixed
// arrival rate — latencies are measured from the scheduled arrival, so
// queueing behind a slow (cold) read counts against the tail.
//
// The experiment contrasts the two publish modes:
//   * scoped (default): PublishTouched invalidates only the (table,
//     partition) scopes the append wrote; the readers' warm working set
//     over the old spans survives every publish.
//   * coarse (--coarse baseline, TGIOptions::coarse_publish_epoch): the
//     old blanket global-epoch bump; every publish colds both cache tiers,
//     so the warm hit rate under write collapses and the read tail absorbs
//     the re-fetches.
//
// Reported per mode: append events/sec, queries/sec, read latency p50 /
// p99 / p999, cache hit rate under write, and the refreshes' retained /
// invalidated entry counts. `--json=<path>` adds machine-readable rows.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace hgs::bench {
namespace {

struct Config {
  size_t readers = 3;
  double read_hz = 30.0;       ///< per-reader open-loop arrival rate
  size_t batches = 8;          ///< writer appends of the live half
  double write_pause_ms = 80;  ///< writer think time between appends
};

struct Outcome {
  double events_per_sec = 0;
  double queries_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double hit_rate = 0;
  double decode_hit_rate = 0;
  uint64_t queries = 0;
  uint64_t retained = 0;
  uint64_t invalidated = 0;
};

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

Outcome RunOnce(bool coarse, const Config& cfg,
                const std::vector<Event>& events) {
  const size_t seed_count = events.size() / 2;
  std::vector<Event> seed(events.begin(), events.begin() + seed_count);
  const Timestamp seed_end = seed.back().time;

  ClusterOptions copts = MakeClusterOptions(4, 1);
  TGIOptions topts = DefaultTGIOptions();
  // Columnar blocks for all three row families: the standing workload runs
  // against the codec the index ships with by default.
  topts.row_compression = CompressionKind::kColumnar;
  topts.eventlist_compression = CompressionKind::kColumnar;
  topts.versions_compression = CompressionKind::kColumnar;
  topts.events_per_timespan = 10'000;
  topts.read_cache_bytes = 64ull << 20;
  topts.decoded_cache_bytes = 32ull << 20;
  topts.coarse_publish_epoch = coarse;
  Cluster cluster(copts);
  TGI tgi(&cluster, topts);
  if (!tgi.BuildFrom(seed).ok()) std::abort();
  auto qm_or = tgi.OpenQueryManager(4);
  if (!qm_or.ok()) std::abort();
  TGIQueryManager* qm = qm_or->get();

  // The readers' working set: a handful of timestamps across the seeded
  // prefix and a node sample — small enough to stay resident, so the hit
  // rate under write isolates invalidation, not capacity.
  std::vector<Timestamp> read_times;
  for (size_t i = 1; i <= 16; ++i) {
    read_times.push_back(1 + seed_end * i / 16);
  }
  std::vector<NodeId> read_nodes = SampleNodes(seed, seed_end, 32, 4242);
  if (read_nodes.empty()) std::abort();

  // Warm pass over the whole working set, then the standing phase starts.
  for (Timestamp t : read_times) {
    if (!qm->GetSnapshot(t).ok()) std::abort();
  }
  for (NodeId id : read_nodes) {
    if (!qm->GetNodeHistory(id, 0, seed_end).ok()) std::abort();
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};

  // Writer: open-loop appends of the live half, one publish per batch.
  uint64_t appended = 0;
  double write_seconds = 0;
  std::thread writer([&] {
    const size_t live = events.size() - seed_count;
    const size_t per_batch = std::max<size_t>(1, live / cfg.batches);
    auto start = std::chrono::steady_clock::now();
    for (size_t b = 0; b < cfg.batches; ++b) {
      auto begin = events.begin() + seed_count + b * per_batch;
      auto end = b + 1 == cfg.batches
                     ? events.end()
                     : std::min(events.end(), begin + per_batch);
      if (begin >= end) break;
      if (!tgi.AppendBatch({begin, end}).ok()) {
        failures.fetch_add(1);
        break;
      }
      appended += static_cast<uint64_t>(end - begin);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          cfg.write_pause_ms));
    }
    write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    done.store(true);
  });

  // Readers: fixed arrival schedule; a query that can't start on time still
  // charges its wait (open loop, no coordinated omission).
  std::mutex agg_mu;
  std::vector<double> latencies_ms;
  FetchStats agg;
  std::vector<std::thread> readers;
  for (size_t r = 0; r < cfg.readers; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      std::vector<double> local_ms;
      FetchStats local;
      auto start = std::chrono::steady_clock::now();
      uint64_t i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / cfg.read_hz));
        std::this_thread::sleep_until(scheduled);
        FetchStats stats;
        bool ok;
        if (rng.Uniform(10) < 7) {
          ok = qm->GetSnapshot(read_times[rng.Uniform(read_times.size())],
                               &stats)
                   .ok();
        } else {
          ok = qm->GetNodeHistory(read_nodes[rng.Uniform(read_nodes.size())],
                                  0, seed_end, &stats)
                   .ok();
        }
        if (!ok) failures.fetch_add(1);
        auto now = std::chrono::steady_clock::now();
        local_ms.push_back(
            std::chrono::duration<double, std::milli>(now - scheduled)
                .count());
        local.Merge(stats);
        ++i;
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      agg.Merge(local);
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "mixed workload: %llu failures\n",
                 static_cast<unsigned long long>(failures.load()));
    std::abort();
  }

  Outcome out;
  out.queries = latencies_ms.size();
  out.events_per_sec =
      write_seconds > 0 ? static_cast<double>(appended) / write_seconds : 0;
  out.queries_per_sec =
      write_seconds > 0 ? static_cast<double>(out.queries) / write_seconds
                        : 0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  out.p50_ms = PercentileMs(latencies_ms, 0.50);
  out.p99_ms = PercentileMs(latencies_ms, 0.99);
  out.p999_ms = PercentileMs(latencies_ms, 0.999);
  out.hit_rate = agg.CacheHitRate();
  uint64_t decode_total = agg.decodes + agg.decode_hits;
  out.decode_hit_rate =
      decode_total > 0
          ? static_cast<double>(agg.decode_hits) /
                static_cast<double>(decode_total)
          : 0;
  out.retained = qm->CacheEntriesRetained();
  out.invalidated = qm->CacheEntriesInvalidated();
  return out;
}

void Report(const char* mode, const Outcome& o) {
  std::printf("%-7s %9.0f %9.1f %7" PRIu64 " %8.2f %8.2f %8.2f %7.3f %7.3f"
              " %9" PRIu64 " %11" PRIu64 "\n",
              mode, o.events_per_sec, o.queries_per_sec, o.queries, o.p50_ms,
              o.p99_ms, o.p999_ms, o.hit_rate, o.decode_hit_rate, o.retained,
              o.invalidated);
  std::string b = std::string("mixed_workload/") + mode;
  JsonRow(b, "append_events_per_sec", o.events_per_sec, "events/s");
  JsonRow(b, "queries_per_sec", o.queries_per_sec, "queries/s");
  JsonRow(b, "queries", static_cast<double>(o.queries), "count");
  JsonRow(b, "read_p50_ms", o.p50_ms, "ms");
  JsonRow(b, "read_p99_ms", o.p99_ms, "ms");
  JsonRow(b, "read_p999_ms", o.p999_ms, "ms");
  JsonRow(b, "cache_hit_rate_under_write", o.hit_rate, "ratio");
  JsonRow(b, "decode_hit_rate_under_write", o.decode_hit_rate, "ratio");
  JsonRow(b, "cache_entries_retained", static_cast<double>(o.retained),
          "count");
  JsonRow(b, "cache_entries_invalidated", static_cast<double>(o.invalidated),
          "count");
}

int Main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      cfg.readers = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--read-hz=", 10) == 0) {
      cfg.read_hz = std::strtod(argv[i] + 10, nullptr);
    } else if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      cfg.batches = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--write-pause-ms=", 17) == 0) {
      cfg.write_pause_ms = std::strtod(argv[i] + 17, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  PrintPreamble("mixed read/write workload: live ingest vs pinned readers",
                "scoped publishes keep the warm set hot under writes; the "
                "blanket-bump baseline drives the hit rate toward zero");
  std::printf("# readers=%zu read_hz=%.1f batches=%zu write_pause_ms=%.0f\n",
              cfg.readers, cfg.read_hz, cfg.batches, cfg.write_pause_ms);

  std::vector<Event> events = Dataset2();
  std::printf("# events=%zu (seed half, then %zu live append batches)\n",
              events.size(), cfg.batches);
  std::printf("%-7s %9s %9s %7s %8s %8s %8s %7s %7s %9s %11s\n", "mode",
              "ev/s", "q/s", "reads", "p50ms", "p99ms", "p999ms", "hit",
              "dhit", "retained", "invalidated");
  Outcome scoped = RunOnce(/*coarse=*/false, cfg, events);
  Report("scoped", scoped);
  Outcome coarse = RunOnce(/*coarse=*/true, cfg, events);
  Report("coarse", coarse);

  std::printf("# warm hit-rate under write: scoped=%.3f coarse=%.3f\n",
              scoped.hit_rate, coarse.hit_rate);
  return 0;
}

}  // namespace
}  // namespace hgs::bench

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  return hgs::bench::Main(argc, argv);
}
