// Figure 14a: node-version retrieval vs number of change points, for
// eventlist sizes l ∈ {2500, 5000, 10000} in the paper — here the same 1:2:4
// ratio scaled to the dataset (l ∈ {250, 500, 1000}).
//
// Paper shape: smaller eventlists mean lower version-retrieval latency
// (fewer irrelevant events fetched and deserialized per version-chain
// pointer), and latency grows with the node's change count.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

std::vector<std::pair<size_t, hgs::bench::TGIBundle>>* g_bundles = nullptr;
std::vector<std::pair<hgs::NodeId, size_t>> g_nodes;  // (node, #changes)

void BM_NodeVersions(benchmark::State& state) {
  auto& [l, bundle] = (*g_bundles)[static_cast<size_t>(state.range(0))];
  auto [node, changes] = g_nodes[static_cast<size_t>(state.range(1))];
  hgs::FetchStats agg;
  for (auto _ : state) {
    hgs::FetchStats stats;
    auto hist = bundle.qm->GetNodeHistory(node, 0, bundle.end, &stats);
    if (!hist.ok()) {
      state.SkipWithError(hist.status().ToString().c_str());
      return;
    }
    agg.Merge(stats);
    benchmark::DoNotOptimize(hist->VersionCount());
  }
  state.counters["changes"] = static_cast<double>(changes);
  state.counters["KB_fetched"] = static_cast<double>(agg.bytes) /
                                 static_cast<double>(state.iterations()) /
                                 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 14a: node-version retrieval vs change points, l in "
      "{1000,2000,4000}",
      "smaller eventlist size l -> lower latency; latency grows with the "
      "node's change count");

  auto events = hgs::bench::Dataset1();
  std::vector<std::pair<size_t, hgs::bench::TGIBundle>> bundles;
  for (size_t l : {1'000u, 2'000u, 4'000u}) {  // the paper's 1:2:4 ratio
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.eventlist_size = l;
    topts.checkpoint_interval = 4'000;  // fixed so only l varies
    auto copts = hgs::bench::MakeClusterOptions(4, 1);
    copts.latency = hgs::bench::VersionBenchLatency();
    bundles.emplace_back(l, hgs::bench::BuildBundle(events, topts, copts));
  }
  g_bundles = &bundles;
  g_nodes = hgs::bench::NodesByVersionCount(events, {10, 25, 50, 100, 150});

  for (int64_t b = 0; b < static_cast<int64_t>(bundles.size()); ++b) {
    for (int64_t n = 0; n < static_cast<int64_t>(g_nodes.size()); ++n) {
      std::string name =
          "versions/l:" +
          std::to_string(bundles[static_cast<size_t>(b)].first) +
          "/changes:" + std::to_string(g_nodes[static_cast<size_t>(n)].second);
      benchmark::RegisterBenchmark(name.c_str(), BM_NodeVersions)
          ->Args({b, n})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.2);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
