// Figure 14b: node-version retrieval speedup from the parallel fetch factor
// c ∈ {1, 2, 4}, plus the set-at-a-time extension: retrieving many node
// histories through GetNodeHistories instead of per-node GetNodeHistory
// loops.
//
// Paper shape: a higher parallel fetch factor reduces version-retrieval
// latency — the version chain's eventlist pointers are fetched concurrently.
// Bulk shape: GetNodeHistories over co-partitioned nodes issues one
// versions-table scan per touched partition and one deduplicated eventlist
// batch, so its cost is bounded by partitions touched rather than nodes
// requested (strictly fewer round trips than N sequential retrievals; the
// fetch-efficiency lines printed after the table quantify it).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
std::vector<std::pair<hgs::NodeId, size_t>> g_nodes;
std::vector<hgs::NodeId> g_bulk_ids;

void BM_NodeVersions(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  auto [node, changes] = g_nodes[static_cast<size_t>(state.range(1))];
  g_bundle->qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    auto hist = g_bundle->qm->GetNodeHistory(node, 0, g_bundle->end);
    if (!hist.ok()) {
      state.SkipWithError(hist.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(hist->VersionCount());
  }
  state.counters["changes"] = static_cast<double>(changes);
}

// N histories per iteration, one set-at-a-time retrieval.
void BM_BulkNodeVersions(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  g_bundle->qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    auto hists = g_bundle->qm->GetNodeHistories(g_bulk_ids, 0, g_bundle->end);
    if (!hists.ok()) {
      state.SkipWithError(hists.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(hists->size());
  }
  state.counters["nodes"] = static_cast<double>(g_bulk_ids.size());
}

// The same N histories per iteration as sequential per-node retrievals —
// the pre-bulk TAF fetch pattern, for direct comparison.
void BM_LoopedNodeVersions(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  g_bundle->qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    size_t total = 0;
    for (hgs::NodeId id : g_bulk_ids) {
      auto hist = g_bundle->qm->GetNodeHistory(id, 0, g_bundle->end);
      if (!hist.ok()) {
        state.SkipWithError(hist.status().ToString().c_str());
        return;
      }
      total += hist->VersionCount();
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["nodes"] = static_cast<double>(g_bulk_ids.size());
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 14b: node-version retrieval speedup with c in {1,2,4}, and bulk "
      "GetNodeHistories vs per-node loops",
      "higher c -> lower latency, most visible for nodes with many changes; "
      "bulk retrieval -> strictly fewer round trips than per-node loops");

  auto events = hgs::bench::Dataset1();
  auto bundle = hgs::bench::BuildBundle(std::move(events),
                                        hgs::bench::DefaultTGIOptions(),
                                        hgs::bench::MakeClusterOptions(4, 1));
  g_bundle = &bundle;
  g_nodes = hgs::bench::NodesByVersionCount(bundle.events, {10, 50, 100});

  // Bulk id set: the 32 busiest nodes (most shared eventlists).
  {
    std::unordered_map<hgs::NodeId, size_t> counts;
    for (const hgs::Event& e : bundle.events) {
      counts[e.u]++;
      if (e.IsEdgeEvent()) counts[e.v]++;
    }
    std::vector<std::pair<size_t, hgs::NodeId>> ranked;
    ranked.reserve(counts.size());
    for (const auto& [id, c] : counts) ranked.emplace_back(c, id);
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < 32 && i < ranked.size(); ++i) {
      g_bulk_ids.push_back(ranked[i].second);
    }
  }

  // Fetch-efficiency preview (logical vs physical work), printed before the
  // latency table so it survives benchmark filtering.
  {
    hgs::FetchStats bulk_stats;
    g_bundle->qm->set_fetch_parallelism(4);
    auto bulk = g_bundle->qm->GetNodeHistories(g_bulk_ids, 0, g_bundle->end,
                                               &bulk_stats);
    hgs::FetchStats loop_stats;
    bool loop_ok = true;
    for (hgs::NodeId id : g_bulk_ids) {
      auto hist = g_bundle->qm->GetNodeHistory(id, 0, g_bundle->end,
                                               &loop_stats);
      if (!hist.ok()) {
        loop_ok = false;
        break;
      }
    }
    if (bulk.ok() && loop_ok) {
      hgs::bench::PrintBulkEfficiency("bulk_fetch(32 nodes)", bulk_stats);
      hgs::bench::PrintBulkEfficiency("per_node_loop(32 nodes)", loop_stats);
    }
  }

  for (int64_t c : {1, 2, 4}) {
    for (int64_t n = 0; n < static_cast<int64_t>(g_nodes.size()); ++n) {
      std::string name =
          "versions/c:" + std::to_string(c) + "/changes:" +
          std::to_string(g_nodes[static_cast<size_t>(n)].second);
      benchmark::RegisterBenchmark(name.c_str(), BM_NodeVersions)
          ->Args({c, n})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.2);
    }
    std::string bulk_name = "versions_bulk/c:" + std::to_string(c);
    benchmark::RegisterBenchmark(bulk_name.c_str(), BM_BulkNodeVersions)
        ->Args({c})
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.2);
    std::string loop_name = "versions_loop/c:" + std::to_string(c);
    benchmark::RegisterBenchmark(loop_name.c_str(), BM_LoopedNodeVersions)
        ->Args({c})
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
