// Figure 14b: node-version retrieval speedup from the parallel fetch factor
// c ∈ {1, 2, 4}.
//
// Paper shape: a higher parallel fetch factor reduces version-retrieval
// latency — the version chain's eventlist pointers are fetched concurrently.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
std::vector<std::pair<hgs::NodeId, size_t>> g_nodes;

void BM_NodeVersions(benchmark::State& state) {
  size_t c = static_cast<size_t>(state.range(0));
  auto [node, changes] = g_nodes[static_cast<size_t>(state.range(1))];
  g_bundle->qm->set_fetch_parallelism(c);
  for (auto _ : state) {
    auto hist = g_bundle->qm->GetNodeHistory(node, 0, g_bundle->end);
    if (!hist.ok()) {
      state.SkipWithError(hist.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(hist->VersionCount());
  }
  state.counters["changes"] = static_cast<double>(changes);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 14b: node-version retrieval speedup with c in {1,2,4}",
      "higher c -> lower latency, most visible for nodes with many changes");

  auto events = hgs::bench::Dataset1();
  auto bundle = hgs::bench::BuildBundle(std::move(events),
                                        hgs::bench::DefaultTGIOptions(),
                                        hgs::bench::MakeClusterOptions(4, 1));
  g_bundle = &bundle;
  g_nodes = hgs::bench::NodesByVersionCount(bundle.events, {10, 50, 100});

  for (int64_t c : {1, 2, 4}) {
    for (int64_t n = 0; n < static_cast<int64_t>(g_nodes.size()); ++n) {
      std::string name =
          "versions/c:" + std::to_string(c) + "/changes:" +
          std::to_string(g_nodes[static_cast<size_t>(n)].second);
      benchmark::RegisterBenchmark(name.c_str(), BM_NodeVersions)
          ->Args({c, n})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.2);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
