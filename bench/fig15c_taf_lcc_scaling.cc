// Figure 15c: TAF computation times for local clustering coefficient over
// snapshots of growing size (the paper's N ∈ {77k, 134k, 202k} nodes), with
// the worker-cluster size swept 1..5.
//
// Paper shape: compute time grows with graph size and falls with added
// workers, with better speedups on larger graphs. NOTE: worker scaling is
// real thread parallelism — on a host with fewer cores than workers, the
// curve flattens at the core count (recorded in EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "taf/context.h"

namespace {

hgs::bench::TGIBundle* g_bundle = nullptr;
// Pre-fetched SoNs per probe point (fetch excluded from the measured time,
// as in the paper's Fig 15c which reports computation time).
std::vector<std::pair<size_t, hgs::taf::SoN>>* g_sons = nullptr;

void BM_Lcc(benchmark::State& state) {
  auto& [n_nodes, son] = (*g_sons)[static_cast<size_t>(state.range(0))];
  size_t workers = static_cast<size_t>(state.range(1));
  // Re-bind the SoN to an engine with the requested worker count.
  hgs::taf::TAFContext ctx(g_bundle->qm.get(), workers);
  hgs::taf::SoN bound(ctx.engine(), son.nodes(), son.GetStartTime(),
                      son.GetEndTime());
  hgs::Timestamp t = son.GetEndTime();
  hgs::Graph snapshot = bound.GetGraphAt(t);
  std::function<double(const hgs::taf::NodeT&)> lcc =
      [&snapshot](const hgs::taf::NodeT& node) {
        return hgs::algo::LocalClusteringCoefficient(snapshot, node.id());
      };
  for (auto _ : state) {
    auto values = bound.NodeCompute(lcc);
    benchmark::DoNotOptimize(values.data());
  }
  state.counters["graph_nodes"] = static_cast<double>(n_nodes);
  state.counters["workers"] = static_cast<double>(workers);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 15c: TAF LCC computation vs worker count on growing graphs",
      "time falls with workers (up to the host's core count) and grows "
      "with graph size");

  auto bundle = hgs::bench::BuildBundle(hgs::bench::Dataset1(),
                                        hgs::bench::DefaultTGIOptions(),
                                        hgs::bench::MakeClusterOptions(4, 1),
                                        /*fetch_parallelism=*/8);
  g_bundle = &bundle;

  // Three growing snapshot populations (the paper's three N series). The
  // SoN extraction runs through the set-at-a-time parallel fetch protocol
  // (each worker pulls its share in one GetNodeHistories call); the
  // fetch-efficiency lines show the logical-vs-physical gap that batching
  // and eventlist dedup open up.
  hgs::taf::TAFContext fetch_ctx(bundle.qm.get(), 4);
  std::vector<std::pair<size_t, hgs::taf::SoN>> sons;
  for (double frac : {0.4, 0.7, 1.0}) {
    auto t = static_cast<hgs::Timestamp>(static_cast<double>(bundle.end) * frac);
    hgs::FetchStats fetch_stats;
    auto son = fetch_ctx.Nodes().TimeRange(t, t).Fetch(&fetch_stats);
    if (!son.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   son.status().ToString().c_str());
      return 1;
    }
    std::string label = "son_fetch/N:" + std::to_string(son->size());
    hgs::bench::PrintFetchEfficiency(label.c_str(), fetch_stats);
    hgs::bench::PrintBulkEfficiency(label.c_str(), fetch_stats);
    sons.emplace_back(son->size(), std::move(*son));
  }
  g_sons = &sons;

  for (int64_t s = 0; s < static_cast<int64_t>(sons.size()); ++s) {
    for (int64_t workers = 1; workers <= 5; ++workers) {
      std::string name =
          "lcc/N:" + std::to_string(sons[static_cast<size_t>(s)].first) +
          "/workers:" + std::to_string(workers);
      benchmark::RegisterBenchmark(name.c_str(), BM_Lcc)
          ->Args({s, workers})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime()
          ->MinTime(0.2);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
