// Delta merge & replay micro-benchmark: the sorted flat-map representation
// vs the hash-map baseline it replaced.
//
// Kernels, each the hot loop of a read-path stage:
//  1. micro-merge:   fold K micro-deltas into a snapshot accumulator
//                    (GetSnapshotDelta's ordered merge)
//  2. large-merge:   one snapshot-half into another (worst-case Delta::Add)
//  3. materialize:   replay a whole history into an empty delta (eventlist
//                    materialization, the Copy+Log / NodeCentric path)
//  4. attr-replay:   attribute-churn eventlist onto a snapshot-scale delta
//                    (keys repeat; per-key grouping pays off)
//  5. growth-replay: add/remove churn of mostly-new keys onto a snapshot
//                    delta — the one insert-bound shape where the hash map
//                    keeps an edge; reported for honesty
//  6. removal-heavy: remove-node storm (the quadratic incident-edge scan
//                    regression)
//
// Output: entries-or-events per second per implementation, and peak RSS at
// exit (the flat representation also shrinks decoded residency).
// HGS_SCALE scales the dataset (CI smoke runs use HGS_SCALE=0.05).

#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "delta/delta.h"
#include "delta/eventlist.h"

// -- live-heap accounting ----------------------------------------------------
// Counts bytes currently allocated (glibc malloc_usable_size), so the
// resident footprint of the flat vs hash representation can be compared
// exactly instead of through process-wide RSS. Disabled under ASan (user
// replacement operators conflict with its interceptors); the residency
// kernel reports n/a there.
#if defined(__SANITIZE_ADDRESS__)
#define HGS_HEAP_ACCOUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HGS_HEAP_ACCOUNTING 0
#else
#define HGS_HEAP_ACCOUNTING 1
#endif
#else
#define HGS_HEAP_ACCOUNTING 1
#endif

static std::atomic<long long> g_live_bytes{0};

#if HGS_HEAP_ACCOUNTING
// The replacement operators pair malloc with free correctly; GCC's
// static checker cannot see through the replacement and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  g_live_bytes.fetch_add(static_cast<long long>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<long long>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }

#pragma GCC diagnostic pop
#endif  // HGS_HEAP_ACCOUNTING

namespace hgs::bench {
namespace {

// The pre-flat-map Delta: two unordered_maps with identical apply/merge
// semantics. Kept here as the measured baseline.
struct HashDelta {
  std::unordered_map<NodeId, std::optional<NodeRecord>> nodes;
  std::unordered_map<EdgeKey, std::optional<EdgeRecord>, EdgeKeyHash> edges;

  void Apply(const Event& e) {
    switch (e.type) {
      case EventType::kAddNode:
        nodes[e.u] = NodeRecord{.attrs = e.attrs};
        break;
      case EventType::kRemoveNode:
        nodes[e.u] = std::nullopt;
        for (auto& [key, rec] : edges) {
          if ((key.u == e.u || key.v == e.u) && rec.has_value()) {
            rec = std::nullopt;
          }
        }
        break;
      case EventType::kAddEdge:
        edges[EdgeKey(e.u, e.v)] = EdgeRecord{
            .src = e.u, .dst = e.v, .directed = e.directed, .attrs = e.attrs};
        break;
      case EventType::kRemoveEdge:
        edges[EdgeKey(e.u, e.v)] = std::nullopt;
        break;
      case EventType::kSetNodeAttr: {
        auto& slot = nodes[e.u];
        if (!slot.has_value()) slot = NodeRecord{};
        slot->attrs.Set(e.key, e.value);
        break;
      }
      case EventType::kDelNodeAttr: {
        auto it = nodes.find(e.u);
        if (it != nodes.end() && it->second.has_value()) {
          it->second->attrs.Erase(e.key);
        }
        break;
      }
      case EventType::kSetEdgeAttr: {
        auto& slot = edges[EdgeKey(e.u, e.v)];
        if (!slot.has_value()) {
          slot = EdgeRecord{
              .src = e.u, .dst = e.v, .directed = e.directed, .attrs = {}};
        }
        slot->attrs.Set(e.key, e.value);
        break;
      }
      case EventType::kDelEdgeAttr: {
        auto it = edges.find(EdgeKey(e.u, e.v));
        if (it != edges.end() && it->second.has_value()) {
          it->second->attrs.Erase(e.key);
        }
        break;
      }
    }
  }

  void Add(const HashDelta& o) {
    nodes.reserve(nodes.size() + o.nodes.size());
    edges.reserve(edges.size() + o.edges.size());
    for (const auto& [id, rec] : o.nodes) nodes[id] = rec;
    for (const auto& [key, rec] : o.edges) edges[key] = rec;
  }

  size_t Cardinality() const { return nodes.size() + edges.size(); }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PrintRate(const char* kernel, const char* impl, uint64_t ops,
               double seconds) {
  std::printf("%-14s %-14s ops=%10llu  time=%8.4fs  Mops/s=%8.2f\n", kernel,
              impl, static_cast<unsigned long long>(ops), seconds,
              seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0);
}

// Splits a snapshot delta into k micro-deltas by node-id bucket; edges are
// replicated into both endpoints' buckets (partitioned-snapshot semantics).
std::vector<Delta> SplitFlat(const Delta& d, size_t k) {
  std::vector<Delta> out(k);
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    if (rec.has_value()) out[id % k].PutNode(id, *rec);
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        out[key.u % k].PutEdge(key, *rec);
        if (key.v % k != key.u % k) out[key.v % k].PutEdge(key, *rec);
      });
  for (Delta& slot : out) slot.Compact();
  return out;
}

std::vector<HashDelta> SplitHash(const Delta& d, size_t k) {
  std::vector<HashDelta> out(k);
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    if (rec.has_value()) out[id % k].nodes[id] = rec;
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        if (!rec.has_value()) return;
        out[key.u % k].edges[key] = rec;
        if (key.v % k != key.u % k) out[key.v % k].edges[key] = rec;
      });
  return out;
}

void RunMicroMerge(const Delta& snapshot, size_t k, size_t rounds) {
  const std::vector<Delta> flat_parts = SplitFlat(snapshot, k);
  const std::vector<HashDelta> hash_parts = SplitHash(snapshot, k);
  uint64_t merged_entries = 0;
  for (const Delta& p : flat_parts) merged_entries += p.Cardinality();
  merged_entries *= rounds;

  double flat_s = 0, hash_s = 0;
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<Delta> parts = flat_parts;  // copies excluded from timing
    auto start = std::chrono::steady_clock::now();
    Delta acc;
    for (Delta& p : parts) acc.Add(std::move(p));
    flat_s += SecondsSince(start);
    sink += acc.Cardinality();
  }
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<HashDelta> parts = hash_parts;
    auto start = std::chrono::steady_clock::now();
    HashDelta acc;
    for (HashDelta& p : parts) acc.Add(p);
    hash_s += SecondsSince(start);
    sink += acc.Cardinality();
  }
  PrintRate("micro-merge", "flat", merged_entries, flat_s);
  PrintRate("micro-merge", "hash", merged_entries, hash_s);
  std::printf("# micro-merge sink=%zu k=%zu\n", sink, k);
}

void RunLargeMerge(const Delta& snapshot, size_t rounds) {
  std::vector<Delta> halves = SplitFlat(snapshot, 2);
  std::vector<HashDelta> hash_halves = SplitHash(snapshot, 2);
  const uint64_t ops =
      (halves[0].Cardinality() + halves[1].Cardinality()) * rounds;

  double flat_s = 0, hash_s = 0;
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) {
    Delta acc = halves[0];
    Delta other = halves[1];
    auto start = std::chrono::steady_clock::now();
    acc.Add(std::move(other));
    flat_s += SecondsSince(start);
    sink += acc.Cardinality();
  }
  for (size_t r = 0; r < rounds; ++r) {
    HashDelta acc = hash_halves[0];
    auto start = std::chrono::steady_clock::now();
    acc.Add(hash_halves[1]);
    hash_s += SecondsSince(start);
    sink += acc.Cardinality();
  }
  PrintRate("large-merge", "flat", ops, flat_s);
  PrintRate("large-merge", "hash", ops, hash_s);
  std::printf("# large-merge sink=%zu\n", sink);
}

// Replays `tail_events` onto a copy of `base` (pass empty deltas for the
// materialization kernel): batched ApplyEvents vs the per-event flat loop
// vs the hash baseline.
void RunReplay(const char* kernel, const Delta& base,
               const HashDelta& hash_base,
               const std::vector<Event>& tail_events, size_t rounds) {
  EventList list(kMinTimestamp, kMaxTimestamp);
  for (const Event& e : tail_events) list.Append(e);
  const uint64_t ops = tail_events.size() * rounds;

  double batched_s = 0, scalar_s = 0, hash_s = 0;
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) {
    Delta d = base;
    auto start = std::chrono::steady_clock::now();
    d.ApplyEvents(list, kMinTimestamp, kMaxTimestamp);
    batched_s += SecondsSince(start);
    sink += d.Cardinality();
  }
  for (size_t r = 0; r < rounds; ++r) {
    Delta d = base;
    auto start = std::chrono::steady_clock::now();
    for (const Event& e : tail_events) d.ApplyEvent(e);
    scalar_s += SecondsSince(start);
    sink += d.Cardinality();
  }
  for (size_t r = 0; r < rounds; ++r) {
    HashDelta d = hash_base;
    auto start = std::chrono::steady_clock::now();
    for (const Event& e : tail_events) d.Apply(e);
    hash_s += SecondsSince(start);
    sink += d.Cardinality();
  }
  PrintRate(kernel, "flat-batched", ops, batched_s);
  PrintRate(kernel, "flat-scalar", ops, scalar_s);
  PrintRate(kernel, "hash", ops, hash_s);
  std::printf("# %s sink=%zu\n", kernel, sink);
}

void RunRemovalReplay(size_t num_edges, size_t num_removals, size_t rounds) {
  Delta base;
  HashDelta hash_base;
  const NodeId stride = static_cast<NodeId>(num_edges);
  for (NodeId i = 0; i < stride; ++i) {
    Event n1 = Event::AddNode(1, i);
    Event n2 = Event::AddNode(1, i + stride);
    Event ed = Event::AddEdge(2, i, i + stride);
    base.ApplyEvent(n1);
    base.ApplyEvent(n2);
    base.ApplyEvent(ed);
    hash_base.Apply(n1);
    hash_base.Apply(n2);
    hash_base.Apply(ed);
  }
  base.Compact();
  EventList removals(kMinTimestamp, kMaxTimestamp);
  std::vector<Event> removal_events;
  for (size_t i = 0; i < num_removals; ++i) {
    Event e = Event::RemoveNode(static_cast<Timestamp>(10 + i),
                                static_cast<NodeId>(i));
    removals.Append(e);
    removal_events.push_back(e);
  }
  const uint64_t ops = num_removals * rounds;

  double batched_s = 0, hash_s = 0;
  size_t sink = 0;
  for (size_t r = 0; r < rounds; ++r) {
    Delta d = base;
    auto start = std::chrono::steady_clock::now();
    d.ApplyEvents(removals, kMinTimestamp, kMaxTimestamp);
    batched_s += SecondsSince(start);
    sink += d.Cardinality();
  }
  for (size_t r = 0; r < rounds; ++r) {
    HashDelta d = hash_base;
    auto start = std::chrono::steady_clock::now();
    for (const Event& e : removal_events) d.Apply(e);
    hash_s += SecondsSince(start);
    sink += d.Cardinality();
  }
  PrintRate("removal-heavy", "flat-batched", ops, batched_s);
  PrintRate("removal-heavy", "hash", ops, hash_s);
  std::printf("# removal-heavy sink=%zu edges=%zu removals=%zu\n", sink,
              num_edges, num_removals);
}

// Live-heap footprint of one snapshot-scale delta per representation.
void RunResidency(const Delta& snapshot, const HashDelta& hash_snapshot) {
  if (!HGS_HEAP_ACCOUNTING) {
    std::printf("residency      (n/a under sanitizers)\n");
    return;
  }
  const size_t entries = snapshot.Cardinality();
  long long flat_bytes = 0, hash_bytes = 0;
  {
    long long before = g_live_bytes.load();
    Delta copy = snapshot;
    flat_bytes = g_live_bytes.load() - before;
  }
  {
    long long before = g_live_bytes.load();
    HashDelta copy = hash_snapshot;
    hash_bytes = g_live_bytes.load() - before;
  }
  std::printf(
      "residency      flat           entries=%zu bytes=%lld (%.1f B/entry)\n",
      entries, flat_bytes,
      static_cast<double>(flat_bytes) / static_cast<double>(entries));
  std::printf(
      "residency      hash           entries=%zu bytes=%lld (%.1f B/entry)\n",
      entries, hash_bytes,
      static_cast<double>(hash_bytes) / static_cast<double>(entries));
}

void Run() {
  PrintPreamble("delta_merge: flat-map Delta vs hash-map baseline",
                "flat merges/replays faster at lower peak RSS");

  auto events = Dataset2();
  const size_t cut = events.size() * 9 / 10;
  std::vector<Event> head(events.begin(),
                          events.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<Event> tail(events.begin() + static_cast<ptrdiff_t>(cut),
                          events.end());

  Delta snapshot;
  HashDelta hash_snapshot;
  for (const Event& e : head) {
    snapshot.ApplyEvent(e);
    hash_snapshot.Apply(e);
  }
  snapshot.Compact();
  std::printf("# snapshot cardinality=%zu  replay tail=%zu events\n",
              snapshot.Cardinality(), tail.size());

  const size_t rounds = Scaled(6) > 0 ? Scaled(6) : 1;
  RunResidency(snapshot, hash_snapshot);
  RunMicroMerge(snapshot, /*k=*/64, rounds);
  RunLargeMerge(snapshot, rounds);

  // Materialize: the whole history into an empty delta.
  RunReplay("materialize", Delta(), HashDelta(), events, rounds);

  // Attribute churn onto an existing snapshot (DBLP shape: repeated keys).
  {
    auto dblp = DatasetDblp();
    const size_t dcut = dblp.size() * 6 / 10;
    Delta dbase;
    HashDelta dhash;
    for (size_t i = 0; i < dcut; ++i) {
      dbase.ApplyEvent(dblp[i]);
      dhash.Apply(dblp[i]);
    }
    dbase.Compact();
    std::vector<Event> dtail(dblp.begin() + static_cast<ptrdiff_t>(dcut),
                             dblp.end());
    RunReplay("attr-replay", dbase, dhash, dtail, rounds);
  }

  // Mostly-new-key growth churn onto an existing snapshot: the insert-bound
  // shape where a hash map keeps an edge over any sorted structure.
  RunReplay("growth-replay", snapshot, hash_snapshot, tail, rounds);

  RunRemovalReplay(Scaled(4'000), Scaled(1'000), rounds);
}

}  // namespace
}  // namespace hgs::bench

int main() {
  hgs::bench::Run();
  return 0;
}
