// Shared plumbing for the figure/table reproduction benches.
//
// Scale: datasets are laptop-scale analogues of the paper's traces (see
// DESIGN.md). HGS_SCALE (default 1.0) multiplies dataset sizes, e.g.
// HGS_SCALE=4 ./build/bench/fig11_snapshot_parallel.
//
// Latency: benches run the storage cluster with the simulated latency model
// ENABLED (seek + per-key + bandwidth costs), which is what makes retrieval
// times behave like the paper's Cassandra cluster rather than like a hash
// map.

#ifndef HGS_BENCH_BENCH_COMMON_H_
#define HGS_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("HGS_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::strtod(env, nullptr);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * ScaleFromEnv());
}

// -- Machine-readable telemetry ---------------------------------------------

/// Accumulates `{bench, metric, value, unit}` rows and writes them as a JSON
/// array at process exit. The sink stays inert until a path is configured via
/// the `--json=<path>` flag (see InitBenchTelemetry) or the HGS_BENCH_JSON
/// environment variable, so interactive runs are unaffected.
class BenchJsonSink {
 public:
  static BenchJsonSink& Instance() {
    // Leaked on purpose so the atexit flush never races static teardown.
    static BenchJsonSink* sink = new BenchJsonSink();
    return *sink;
  }

  void SetPath(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = std::move(path);
  }

  void Add(const std::string& bench, const std::string& metric, double value,
           const std::string& unit) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(Row{bench, metric, unit, value});
  }

  void Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench json: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.6g, \"unit\": \"%s\"}%s\n",
                   Escaped(r.bench).c_str(), Escaped(r.metric).c_str(),
                   r.value, Escaped(r.unit).c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    rows_.clear();
  }

 private:
  struct Row {
    std::string bench;
    std::string metric;
    std::string unit;
    double value;
  };

  BenchJsonSink() {
    const char* env = std::getenv("HGS_BENCH_JSON");
    if (env != nullptr && env[0] != '\0') path_ = env;
    std::atexit([] { Instance().Flush(); });
  }

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::mutex mu_;
  std::string path_;
  std::vector<Row> rows_;
};

/// Records one telemetry row; a no-op unless a JSON path is configured.
inline void JsonRow(const std::string& bench, const std::string& metric,
                    double value, const std::string& unit) {
  BenchJsonSink::Instance().Add(bench, metric, value, unit);
}

/// Consumes a `--json=<path>` flag from argv (leaving all other flags for
/// the bench's own parsing) and arms the JSON sink. Call first in main().
inline void InitBenchTelemetry(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      BenchJsonSink::Instance().SetPath(argv[i] + 7);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// The cluster latency model used by all benches (a commodity disk/network:
/// 600us seek+RTT per request, 60 MB/s transfer). I/O-heavy on purpose: the
/// paper's EC2/Cassandra testbed was I/O-bound, and this keeps the parallel
/// fetch effects visible even on a host with few cores.
inline LatencyModel BenchLatency() {
  LatencyModel m;
  m.enabled = true;
  m.seek_micros = 600;
  m.per_key_micros = 8;
  m.bytes_per_micro = 60.0;
  // Coarse (sleep-only) waits: many concurrent waiters in the parallel-
  // fetch benches; spin residue would burn the host's few cores.
  m.precise_wait = false;
  return m;
}

/// Bandwidth-bound variant for the version-retrieval benches (Figs 14a/14c/
/// 16): at the paper's scale a version-chain pointer dereference reads a
/// large micro-eventlist row, so transfer and deserialization — not seeks —
/// dominate. A lower seek cost and lower bandwidth put the scaled-down
/// benches into the same regime.
inline LatencyModel VersionBenchLatency() {
  LatencyModel m;
  m.enabled = true;
  m.seek_micros = 120;
  m.per_key_micros = 2;
  // Effective row-read-and-deserialize throughput. Deliberately very low:
  // the paper's fetch path was Python/Pickle, where per-byte costs dwarf
  // seeks by orders of magnitude (their 100-change version retrievals take
  // seconds). This keeps the scaled-down benches in the same bytes-bound
  // regime.
  m.bytes_per_micro = 0.3;
  return m;
}

inline ClusterOptions MakeClusterOptions(
    size_t m, size_t r, CompressionKind compression = CompressionKind::kNone) {
  ClusterOptions opts;
  opts.num_nodes = m;
  opts.replication = r;
  opts.server_threads_per_node = 4;  // the paper's 4-core Cassandra boxes
  opts.compression = compression;
  opts.latency = BenchLatency();
  return opts;
}

// -- Dataset analogues (DESIGN.md substitution table) -----------------------

/// Dataset 1: Wikipedia-citation-style growth. ~60k events at scale 1.
inline std::vector<Event> Dataset1() {
  return workload::GenerateWikiGrowth(
      {.num_events = Scaled(60'000), .seed = 1001});
}

/// Dataset 2: Dataset 1 plus ~50% synthetic add/delete churn.
inline std::vector<Event> Dataset2() {
  return workload::AugmentWithChurn(
      Dataset1(), {.num_events = Scaled(30'000), .seed = 1002});
}

/// Dataset 3: Dataset 1 plus ~130% synthetic churn.
inline std::vector<Event> Dataset3() {
  return workload::AugmentWithChurn(
      Dataset1(), {.num_events = Scaled(80'000), .seed = 1003});
}

/// Dataset 4: Friendster-like community graph with uniform timestamps.
inline std::vector<Event> Dataset4() {
  return workload::GenerateFriendster({.num_nodes = Scaled(12'000),
                                       .num_edges = Scaled(48'000),
                                       .community_size = 120,
                                       .seed = 1004});
}

/// DBLP-like labelled graph for the incremental-computation experiments.
inline std::vector<Event> DatasetDblp() {
  return workload::GenerateDblp({.num_authors = Scaled(1'500),
                                 .num_papers = Scaled(4'500),
                                 .authors_per_paper = 3,
                                 .num_attr_events = Scaled(25'000),
                                 .seed = 1005});
}

/// Default TGI tuning for benches (the paper's ps=500, l=250-scaled).
/// Both read-side caches are disabled: benchmark loops repeat identical
/// queries, and a warm byte cache would hide fetch costs while a warm
/// decoded cache would hide deserialization costs — the very sweeps these
/// figure reproductions make. Caching is benchmarked explicitly (warm rows
/// in table1_access_costs, cold/warm splits in bench_decode_cache).
inline TGIOptions DefaultTGIOptions() {
  TGIOptions opts;
  opts.events_per_timespan = 20'000;
  opts.eventlist_size = 250;
  opts.micro_delta_size = 500;
  opts.num_horizontal_partitions = 4;
  opts.read_cache_bytes = 0;
  opts.decoded_cache_bytes = 0;
  return opts;
}

/// A built index plus everything needed to query it.
struct TGIBundle {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<TGI> tgi;
  std::unique_ptr<TGIQueryManager> qm;
  std::vector<Event> events;
  Timestamp end = 0;
};

inline TGIBundle BuildBundle(std::vector<Event> events,
                             const TGIOptions& tgi_opts,
                             const ClusterOptions& cluster_opts,
                             size_t fetch_parallelism = 1) {
  TGIBundle b;
  b.cluster = std::make_unique<Cluster>(cluster_opts);
  b.tgi = std::make_unique<TGI>(b.cluster.get(), tgi_opts);
  b.events = std::move(events);
  b.end = workload::EndTime(b.events);
  Status s = b.tgi->BuildFrom(b.events);
  if (!s.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  auto qm = b.tgi->OpenQueryManager(fetch_parallelism);
  if (!qm.ok()) {
    std::fprintf(stderr, "open failed: %s\n", qm.status().ToString().c_str());
    std::abort();
  }
  b.qm = std::move(*qm);
  return b;
}

/// n nodes sampled from the state at `t`, optionally with a degree floor.
inline std::vector<NodeId> SampleNodes(const std::vector<Event>& events,
                                       Timestamp t, size_t n, uint64_t seed,
                                       size_t min_degree = 0) {
  Graph g = workload::ReplayToGraph(events, t);
  std::vector<NodeId> pool;
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    if (g.Neighbors(id).size() >= min_degree) pool.push_back(id);
  });
  std::sort(pool.begin(), pool.end());
  Rng rng(seed);
  std::vector<NodeId> out;
  out.reserve(n);
  for (size_t i = 0; i < n && !pool.empty(); ++i) {
    out.push_back(pool[rng.Uniform(pool.size())]);
  }
  return out;
}

/// Nodes bucketed by how many change points they have over the history:
/// returns for each target (approximately) the node whose version count is
/// closest.
inline std::vector<std::pair<NodeId, size_t>> NodesByVersionCount(
    const std::vector<Event>& events, const std::vector<size_t>& targets) {
  std::unordered_map<NodeId, size_t> counts;
  for (const Event& e : events) {
    counts[e.u]++;
    if (e.IsEdgeEvent()) counts[e.v]++;
  }
  std::vector<std::pair<NodeId, size_t>> out;
  std::unordered_set<NodeId> used;
  for (size_t target : targets) {
    NodeId best = kInvalidNodeId;
    size_t best_diff = SIZE_MAX;
    for (const auto& [id, c] : counts) {
      if (used.contains(id)) continue;
      size_t diff = c > target ? c - target : target - c;
      if (diff < best_diff || (diff == best_diff && id < best)) {
        best_diff = diff;
        best = id;
      }
    }
    if (best != kInvalidNodeId) {
      used.insert(best);
      out.emplace_back(best, counts[best]);
    }
  }
  return out;
}

/// Physical fetch round trips behind a FetchStats. Indexes that never go
/// through the batched/cached fetch helpers leave kv_batches at 0; for
/// them every logical request was its own round trip. Any batching, byte-
/// cache or decoded-cache evidence means kv_batches is authoritative.
inline uint64_t FetchRoundTrips(const FetchStats& s) {
  return s.kv_batches > 0 || s.cache_hits > 0 || s.decode_hits > 0
             ? s.kv_batches
             : s.kv_requests;
}

/// One-line fetch-efficiency summary (requests vs round trips vs the two
/// cache tiers), greppable into BENCH_*.json post-processing.
inline void PrintFetchEfficiency(const char* label, const FetchStats& s) {
  std::printf(
      "%s: requests=%" PRIu64 " round_trips=%" PRIu64 " cache_hits=%" PRIu64
      " cache_misses=%" PRIu64 " hit_rate=%.3f decodes=%" PRIu64
      " decode_hits=%" PRIu64 " decoded_bytes=%" PRIu64 "\n",
      label, s.kv_requests, FetchRoundTrips(s), s.cache_hits, s.cache_misses,
      s.CacheHitRate(), s.decodes, s.decode_hits, s.decoded_bytes);
}

/// One-line bulk node-history summary: logical work requested (node
/// histories, eventlist references) vs physical work issued after grouping
/// and dedup (version scans, unique eventlist rows, node round trips).
inline void PrintBulkEfficiency(const char* label, const FetchStats& s) {
  std::printf("%s: node_requests=%" PRIu64 " version_scans=%" PRIu64
              " eventlist_refs=%" PRIu64 " eventlist_fetches=%" PRIu64
              " round_trips=%" PRIu64 "\n",
              label, s.node_requests, s.version_scans, s.eventlist_refs,
              s.eventlist_fetches, FetchRoundTrips(s));
}

/// Peak resident set size of this process so far, in bytes (Linux
/// semantics: ru_maxrss is KiB).
inline uint64_t PeakRssBytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

inline void PrintPeakRssAtExit() {
  double mib = static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0);
  std::printf("# peak_rss_mib=%.1f\n", mib);
  JsonRow("process", "peak_rss_mib", mib, "MiB");
}

inline void PrintPreamble(const char* experiment, const char* paper_shape) {
  std::printf("# %s\n", experiment);
  std::printf("# paper shape to reproduce: %s\n", paper_shape);
  std::printf("# HGS_SCALE=%.2f\n", ScaleFromEnv());
  // Touch the sink first so its flush handler is registered before the RSS
  // hook below (atexit runs in reverse order): the RSS row must land in the
  // file even when the sink is armed by HGS_BENCH_JSON alone.
  BenchJsonSink::Instance();
  // Every figure bench reports its memory high-water mark alongside wall
  // time, so the byte-cache vs decoded-cache memory tradeoff is visible.
  std::atexit(PrintPeakRssAtExit);
}

}  // namespace hgs::bench

#endif  // HGS_BENCH_BENCH_COMMON_H_
