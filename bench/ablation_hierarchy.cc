// Ablation (Sections 4.3/4.4): the temporal-compression hierarchy's arity
// and the clustering order of the micro-delta key.
//
//  * Arity k: higher arity lowers the tree (fewer deltas per snapshot path)
//    but each derived delta is larger — the classic height/size trade-off
//    behind Table 1's h terms.
//  * Clustering order (did,pid) vs (pid,did) — Section 4.4 item 5: delta-
//    major favors snapshot scans, partition-major favors entity fetches.

#include <cinttypes>
#include <cstdio>

#include "bench_common.h"

namespace {
using namespace hgs;
}  // namespace

int main() {
  hgs::bench::PrintPreamble(
      "Ablation: hierarchy arity and clustering order",
      "higher arity -> fewer deltas per snapshot but more storage per "
      "derived delta; delta-major clustering favors snapshots, "
      "partition-major favors node fetches");

  auto events = hgs::bench::Dataset1();
  Timestamp end = workload::EndTime(events);
  auto probe_nodes = hgs::bench::NodesByVersionCount(events, {60});

  std::printf("\n== hierarchy arity ==\n");
  std::printf("%-8s %12s %16s %16s %14s\n", "arity", "stored_MB",
              "snap_deltas", "snap_ms", "snap_MB");
  for (uint32_t arity : {2u, 4u, 8u}) {
    TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.hierarchy_arity = arity;
    topts.checkpoint_interval = 1'250;  // 16 checkpoints/span: depth varies
    auto bundle = hgs::bench::BuildBundle(
        events, topts, hgs::bench::MakeClusterOptions(4, 1), 4);
    FetchStats stats;
    auto snap = bundle.qm->GetSnapshot(end * 3 / 4, &stats);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8u %12.1f %16" PRIu64 " %16.2f %14.2f\n", arity,
                static_cast<double>(bundle.cluster->TotalStoredBytes()) / 1e6,
                stats.micro_deltas, stats.wall_seconds * 1e3,
                static_cast<double>(stats.bytes) / 1e6);
  }

  std::printf("\n== clustering order ==\n");
  std::printf("%-16s %14s %14s %16s %16s\n", "order", "snap_ms",
              "snap_reqs", "node_state_ms", "node_state_reqs");
  for (ClusteringOrder order :
       {ClusteringOrder::kDeltaMajor, ClusteringOrder::kPartitionMajor}) {
    TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.clustering_order = order;
    auto bundle = hgs::bench::BuildBundle(
        events, topts, hgs::bench::MakeClusterOptions(4, 1), 4);
    FetchStats snap_stats;
    auto snap = bundle.qm->GetSnapshot(end * 3 / 4, &snap_stats);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    // Average node-state fetch over a handful of nodes.
    FetchStats node_stats;
    for (int i = 0; i < 10; ++i) {
      auto state = bundle.qm->GetNodeStateDelta(
          probe_nodes[0].first, end * (i + 1) / 12, &node_stats);
      if (!state.ok()) {
        std::fprintf(stderr, "%s\n", state.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("%-16s %14.2f %14" PRIu64 " %16.2f %16" PRIu64 "\n",
                order == ClusteringOrder::kDeltaMajor ? "delta-major"
                                                      : "partition-major",
                snap_stats.wall_seconds * 1e3, snap_stats.kv_requests,
                node_stats.wall_seconds * 1e3 / 10,
                node_stats.kv_requests / 10);
  }
  return 0;
}
