// Ablation (Section 4.5, last paragraph): choosing the timespan length.
//
// Short timespans keep the locality partitioning fresh on an evolving graph
// (lower 1-hop cost, the paper's f(T) term) but make interval queries cross
// more spans (higher version-retrieval cost, the g(T) term). The right
// length sits at the maxima of g(T) - f(T); this bench exposes both curves.

#include <cinttypes>
#include <cstdio>

#include "bench_common.h"

namespace {
using namespace hgs;
}  // namespace

int main() {
  hgs::bench::PrintPreamble(
      "Ablation: timespan length (Section 4.5's g(T) - f(T) trade-off)",
      "short spans -> cheaper 1-hop (fresh partitioning); long spans -> "
      "cheaper long-range version queries (fewer span crossings)");

  // Community graph with churn so the partitioning actually drifts.
  auto events = workload::GenerateFriendster({.num_nodes = hgs::bench::Scaled(8'000),
                                              .num_edges = hgs::bench::Scaled(24'000),
                                              .community_size = 100,
                                              .seed = 51});
  events = workload::AugmentWithChurn(
      std::move(events),
      {.num_events = hgs::bench::Scaled(24'000), .delete_prob = 0.35,
       .seed = 52});
  Timestamp end = workload::EndTime(events);
  auto probe_nodes = hgs::bench::NodesByVersionCount(events, {30});
  auto hop_sample =
      hgs::bench::SampleNodes(events, end, 40, 61, /*min_degree=*/1);

  std::printf("\n%-14s %8s %14s %14s %16s\n", "span_events", "spans",
              "one_hop_ms", "long_versions_ms", "version_reqs");
  for (size_t span_len : {5'000u, 10'000u, 20'000u, 60'000u}) {
    TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.events_per_timespan = span_len;
    topts.partition_strategy = PartitionStrategy::kLocality;
    topts.replicate_one_hop = true;
    auto bundle = hgs::bench::BuildBundle(
        events, topts, hgs::bench::MakeClusterOptions(4, 1), 1);

    // f(T): average 1-hop fetch at the *end* of the history, where a long
    // span's partitioning (computed over the whole span) is most stale.
    FetchStats hop_stats;
    for (NodeId id : hop_sample) {
      auto hood = bundle.qm->GetKHopNeighborhood(id, end, 1, &hop_stats);
      if (!hood.ok()) {
        std::fprintf(stderr, "%s\n", hood.status().ToString().c_str());
        return 1;
      }
    }

    // g(T): a whole-history version query for a busy node — it must visit
    // every span the node changed in.
    FetchStats ver_stats;
    for (int rep = 0; rep < 5; ++rep) {
      auto hist =
          bundle.qm->GetNodeHistory(probe_nodes[0].first, 0, end, &ver_stats);
      if (!hist.ok()) {
        std::fprintf(stderr, "%s\n", hist.status().ToString().c_str());
        return 1;
      }
    }

    std::printf("%-14zu %8u %14.2f %14.2f %16.1f\n", span_len,
                bundle.tgi->builder()->timespans_built(),
                hop_stats.wall_seconds * 1e3 /
                    static_cast<double>(hop_sample.size()),
                ver_stats.wall_seconds * 1e3 / 5.0,
                static_cast<double>(ver_stats.kv_requests) / 5.0);
  }
  return 0;
}
