// Zero-copy storage values: copy counts, allocation volume and latency of
// the shared-buffer read path against the string-copy contract it replaced.
//
// Two sections:
//   * storage primitives — the same Scan / MultiGet traffic consumed once
//     as zero-copy views (checksummed in place) and once through a forced
//     per-value std::string materialization (the pre-refactor contract).
//     Expect: view rows report 0 value copies and an allocation count that
//     does not scale with the row count; copy rows pay one allocation and
//     one buffer's worth of moved bytes per value.
//   * warm TGI reads — GetSnapshotDelta / GetNodeHistories with both cache
//     tiers warm. Expect: value_copies == 0, zero decodes, and an
//     allocation volume dominated by the result assembly alone.
//
// Allocation counting replaces global new/delete in this binary (disabled
// under ASan, where interposition conflicts).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

#if defined(__SANITIZE_ADDRESS__)
#define HGS_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HGS_ALLOC_COUNTING 0
#else
#define HGS_ALLOC_COUNTING 1
#endif
#else
#define HGS_ALLOC_COUNTING 1
#endif

static thread_local bool g_count_allocs = false;
static thread_local size_t g_alloc_count = 0;
static thread_local size_t g_alloc_bytes = 0;

#if HGS_ALLOC_COUNTING
void* operator new(std::size_t n) {
  if (g_count_allocs) {
    ++g_alloc_count;
    g_alloc_bytes += n;
  }
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // HGS_ALLOC_COUNTING

namespace {

using namespace hgs;

class ScopedAllocCounter {
 public:
  ScopedAllocCounter() {
    g_alloc_count = 0;
    g_alloc_bytes = 0;
    g_count_allocs = true;
  }
  ~ScopedAllocCounter() { g_count_allocs = false; }
  size_t count() const { return g_alloc_count; }
  size_t bytes() const { return g_alloc_bytes; }
};

struct Measured {
  double ms = 0;
  size_t allocs = 0;
  size_t alloc_bytes = 0;
  size_t value_copies = 0;
  uint64_t checksum = 0;  // consumed bytes, so nothing is optimized away
};

void PrintRow(const char* section, const char* mode, const Measured& m) {
  std::printf("%-10s %-14s time_ms=%8.2f allocs=%9zu alloc_bytes=%11zu "
              "value_copies=%7zu\n",
              section, mode, m.ms, m.allocs, m.alloc_bytes, m.value_copies);
  std::string stem = std::string(section) + "_" + mode;
  hgs::bench::JsonRow("zero_copy", stem + "_time_ms", m.ms, "ms");
  hgs::bench::JsonRow("zero_copy", stem + "_value_copies",
                      static_cast<double>(m.value_copies), "copies");
  hgs::bench::JsonRow("zero_copy", stem + "_alloc_bytes",
                      static_cast<double>(m.alloc_bytes), "bytes");
}

template <typename Fn>
Measured Measure(Fn&& fn) {
  Measured m;
  ScopedAllocCounter allocs;
  auto start = std::chrono::steady_clock::now();
  fn(&m);
  m.ms = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() *
         1e3;
  m.allocs = allocs.count();
  m.alloc_bytes = allocs.bytes();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::InitBenchTelemetry(&argc, argv);
  hgs::bench::PrintPreamble(
      "Zero-copy storage values: copies, allocations and latency vs the "
      "string-copy baseline",
      "view modes move zero value bytes and allocate O(1) per request; "
      "copy modes pay one allocation + one buffer per value; warm TGI "
      "reads report value_copies == 0 and zero decodes");

  // -- storage primitives ---------------------------------------------------
  // 4 KiB values: the scale of a serialized micro-delta row, where the
  // bytes moved by a per-value copy dominate the request machinery.
  const size_t kRows = hgs::bench::Scaled(4'000);
  const int kReps = 8;
  ClusterOptions copts;  // in-memory: isolate CPU + allocator behavior
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);
  {
    std::string payload;
    for (size_t i = 0; i < kRows; ++i) {
      payload = "row-" + std::to_string(i) + "-";
      while (payload.size() < 4'096) payload += "abcdefgh";
      if (!cluster.Put("zc", i % 8, "key" + std::to_string(i), payload)
               .ok()) {
        std::abort();
      }
    }
  }

  auto scan_view = Measure([&](Measured* m) {
    for (int rep = 0; rep < kReps; ++rep) {
      for (uint64_t p = 0; p < 8; ++p) {
        size_t copies = 0;
        auto rows = cluster.Scan("zc", p, "", &copies);
        if (!rows.ok()) std::abort();
        m->value_copies += copies;
        for (const KVPair& kv : *rows) {
          m->checksum ^= Fnv1a64(kv.value.data(), kv.value.size());
        }
      }
    }
  });
  PrintRow("scan", "view", scan_view);

  auto scan_copy = Measure([&](Measured* m) {
    for (int rep = 0; rep < kReps; ++rep) {
      for (uint64_t p = 0; p < 8; ++p) {
        size_t copies = 0;
        auto rows = cluster.Scan("zc", p, "", &copies);
        if (!rows.ok()) std::abort();
        m->value_copies += copies;
        for (const KVPair& kv : *rows) {
          // The pre-refactor contract: every value lands in its own string.
          std::string owned = kv.value.ToString();
          ++m->value_copies;
          m->checksum ^= Fnv1a64(owned.data(), owned.size());
        }
      }
    }
  });
  PrintRow("scan", "string-copy", scan_copy);

  std::vector<MultiGetKey> keys;
  keys.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    keys.push_back(MultiGetKey{i % 8, "key" + std::to_string(i)});
  }
  auto multiget_view = Measure([&](Measured* m) {
    for (int rep = 0; rep < kReps; ++rep) {
      size_t copies = 0;
      auto got = cluster.MultiGet("zc", keys, nullptr, &copies);
      if (!got.ok()) std::abort();
      m->value_copies += copies;
      for (const auto& v : *got) {
        if (v.has_value()) m->checksum ^= Fnv1a64(v->data(), v->size());
      }
    }
  });
  PrintRow("multiget", "view", multiget_view);

  auto multiget_copy = Measure([&](Measured* m) {
    for (int rep = 0; rep < kReps; ++rep) {
      size_t copies = 0;
      auto got = cluster.MultiGet("zc", keys, nullptr, &copies);
      if (!got.ok()) std::abort();
      m->value_copies += copies;
      for (const auto& v : *got) {
        if (!v.has_value()) continue;
        std::string owned = v->ToString();
        ++m->value_copies;
        m->checksum ^= Fnv1a64(owned.data(), owned.size());
      }
    }
  });
  PrintRow("multiget", "string-copy", multiget_copy);

  // -- warm TGI reads -------------------------------------------------------
  TGIOptions opts = hgs::bench::DefaultTGIOptions();
  opts.read_cache_bytes = 64u << 20;
  opts.decoded_cache_bytes = 64u << 20;
  // Columnar row families: zero-copy must hold even with compression on —
  // decoding works over windows into the stored (or cached) block.
  opts.row_compression = hgs::CompressionKind::kColumnar;
  opts.eventlist_compression = hgs::CompressionKind::kColumnar;
  opts.versions_compression = hgs::CompressionKind::kColumnar;
  auto bundle = hgs::bench::BuildBundle(
      hgs::bench::Dataset2(), opts, hgs::bench::MakeClusterOptions(2, 1),
      /*fetch_parallelism=*/1);
  Timestamp mid = bundle.end / 2;
  std::vector<NodeId> ids = hgs::bench::SampleNodes(
      bundle.events, bundle.end, 64, /*seed=*/7, /*min_degree=*/1);

  FetchStats cold;
  if (!bundle.qm->GetSnapshotDelta(mid, &cold).ok()) std::abort();
  if (!bundle.qm->GetNodeHistories(ids, 0, bundle.end, &cold).ok()) {
    std::abort();
  }

  FetchStats snap_stats;
  auto warm_snap = Measure([&](Measured* m) {
    auto res = bundle.qm->GetSnapshotDelta(mid, &snap_stats);
    if (!res.ok()) std::abort();
    m->value_copies = snap_stats.value_copies;
    m->checksum = res->NodeEntryCount();
  });
  PrintRow("snapshot", "warm", warm_snap);

  FetchStats hist_stats;
  auto warm_hist = Measure([&](Measured* m) {
    auto res = bundle.qm->GetNodeHistories(ids, 0, bundle.end, &hist_stats);
    if (!res.ok()) std::abort();
    m->value_copies = hist_stats.value_copies;
    m->checksum = res->size();
  });
  PrintRow("histories", "warm", warm_hist);

  std::printf("\nwarm snapshot:  decodes=%" PRIu64 " decode_hits=%" PRIu64
              " round_trips=%" PRIu64 " value_copies=%" PRIu64 "\n",
              snap_stats.decodes, snap_stats.decode_hits,
              hgs::bench::FetchRoundTrips(snap_stats),
              snap_stats.value_copies);
  std::printf("warm histories: decodes=%" PRIu64 " decode_hits=%" PRIu64
              " round_trips=%" PRIu64 " value_copies=%" PRIu64 "\n",
              hist_stats.decodes, hist_stats.decode_hits,
              hgs::bench::FetchRoundTrips(hist_stats),
              hist_stats.value_copies);
  return 0;
}
