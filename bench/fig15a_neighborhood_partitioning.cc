// Figure 15a: 1-hop neighborhood retrieval under three partitioning and
// replication regimes — Random, Maxflow (locality min-cut), and
// Maxflow+Replication — averaged over random nodes (the paper uses 250; we
// sample proportionally to scale).
//
// Paper shape: locality partitioning clearly beats random (fewer
// micro-partitions touched per ego-net), and 1-hop replication beats both
// (a single partition plus its auxiliary rows answers the query).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

struct Regime {
  const char* label;
  hgs::bench::TGIBundle bundle;
};

std::vector<Regime>* g_regimes = nullptr;
std::vector<hgs::NodeId>* g_sample = nullptr;

void BM_OneHop(benchmark::State& state) {
  Regime& regime = (*g_regimes)[static_cast<size_t>(state.range(0))];
  const auto& sample = *g_sample;
  size_t cursor = 0;
  hgs::FetchStats agg;
  size_t queries = 0;
  for (auto _ : state) {
    hgs::FetchStats stats;
    auto hood = regime.bundle.qm->GetKHopNeighborhood(
        sample[cursor], regime.bundle.end, 1, &stats);
    cursor = (cursor + 1) % sample.size();
    if (!hood.ok()) {
      state.SkipWithError(hood.status().ToString().c_str());
      return;
    }
    agg.Merge(stats);
    ++queries;
    benchmark::DoNotOptimize(hood->NumNodes());
  }
  state.counters["kv_requests_per_query"] =
      static_cast<double>(agg.kv_requests) / static_cast<double>(queries);
}

}  // namespace

int main(int argc, char** argv) {
  hgs::bench::PrintPreamble(
      "Fig 15a: 1-hop retrieval — Random vs Maxflow vs Maxflow+Replication",
      "locality (min-cut) partitioning < random; +replication lowest "
      "(single partition + aux rows per query)");

  auto events = hgs::bench::Dataset4();  // community structure matters here
  std::vector<Regime> regimes;
  {
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.partition_strategy = hgs::PartitionStrategy::kRandom;
    regimes.push_back({"random", hgs::bench::BuildBundle(
                                     events, topts,
                                     hgs::bench::MakeClusterOptions(4, 1))});
  }
  {
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.partition_strategy = hgs::PartitionStrategy::kLocality;
    regimes.push_back({"maxflow", hgs::bench::BuildBundle(
                                      events, topts,
                                      hgs::bench::MakeClusterOptions(4, 1))});
  }
  {
    hgs::TGIOptions topts = hgs::bench::DefaultTGIOptions();
    topts.partition_strategy = hgs::PartitionStrategy::kLocality;
    topts.replicate_one_hop = true;
    regimes.push_back(
        {"maxflow_repl", hgs::bench::BuildBundle(
                             events, topts,
                             hgs::bench::MakeClusterOptions(4, 1))});
  }
  g_regimes = &regimes;
  auto sample = hgs::bench::SampleNodes(
      regimes[0].bundle.events, regimes[0].bundle.end,
      hgs::bench::Scaled(100), /*seed=*/77, /*min_degree=*/1);
  g_sample = &sample;

  for (int64_t r = 0; r < static_cast<int64_t>(regimes.size()); ++r) {
    std::string name =
        std::string("one_hop/") + regimes[static_cast<size_t>(r)].label;
    benchmark::RegisterBenchmark(name.c_str(), BM_OneHop)
        ->Arg(r)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MinTime(0.3);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
