// Tests for the graph snapshot structure and the algorithm library.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/attributes.h"
#include "graph/graph.h"

namespace hgs {
namespace {

Graph Triangle() {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  return g;
}

// A 5-node path 1-2-3-4-5.
Graph Path5() {
  Graph g;
  for (NodeId i = 1; i < 5; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(AttributesTest, SetGetEraseOrdered) {
  Attributes a;
  a.Set("b", "2");
  a.Set("a", "1");
  a.Set("c", "3");
  EXPECT_EQ(*a.Get("a"), "1");
  EXPECT_EQ(*a.Get("b"), "2");
  a.Set("b", "20");
  EXPECT_EQ(*a.Get("b"), "20");
  EXPECT_TRUE(a.Erase("b"));
  EXPECT_FALSE(a.Erase("b"));
  EXPECT_FALSE(a.Get("b").has_value());
  // Entries stay sorted for deterministic serialization.
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.entries()[0].first, "a");
  EXPECT_EQ(a.entries()[1].first, "c");
}

TEST(AttributesTest, IntersectKeepsEqualEntries) {
  Attributes a{{"x", "1"}, {"y", "2"}, {"z", "3"}};
  Attributes b{{"x", "1"}, {"y", "9"}, {"w", "0"}};
  Attributes i = Attributes::Intersect(a, b);
  EXPECT_EQ(i.size(), 1u);
  EXPECT_EQ(*i.Get("x"), "1");
}

TEST(GraphTest, AddRemoveNodes) {
  Graph g;
  EXPECT_TRUE(g.AddNode(1));
  EXPECT_FALSE(g.AddNode(1));  // duplicate
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_TRUE(g.RemoveNode(1));
  EXPECT_FALSE(g.RemoveNode(1));
  EXPECT_EQ(g.NumNodes(), 0u);
}

TEST(GraphTest, EdgesCreateEndpointsImplicitly) {
  Graph g;
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(2, 1));  // undirected key canonicalization
}

TEST(GraphTest, SelfLoopsRejected) {
  Graph g;
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, RemoveNodeDetachesEdges) {
  Graph g = Triangle();
  g.RemoveNode(2);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_EQ(g.Neighbors(1).size(), 1u);
}

TEST(GraphTest, EdgeRecordPreservesDirection) {
  Graph g;
  g.AddEdge(5, 2, /*directed=*/true);
  const EdgeRecord* rec = g.GetEdge(2, 5);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->src, 5u);
  EXPECT_EQ(rec->dst, 2u);
  EXPECT_TRUE(rec->directed);
}

TEST(GraphTest, EqualityIsStructural) {
  Graph a = Triangle();
  Graph b = Triangle();
  EXPECT_TRUE(a == b);
  b.AddNode(99);
  EXPECT_FALSE(a == b);
}

TEST(AlgorithmsTest, DegreeAndDensity) {
  Graph g = Triangle();
  EXPECT_EQ(algo::Degree(g, 1), 2u);
  EXPECT_DOUBLE_EQ(algo::AverageDegree(g), 2.0);
  EXPECT_DOUBLE_EQ(algo::Density(g), 1.0);  // complete graph
  Graph p = Path5();
  EXPECT_DOUBLE_EQ(algo::Density(p), 2.0 * 4 / (5 * 4));
}

TEST(AlgorithmsTest, ClusteringCoefficient) {
  Graph g = Triangle();
  EXPECT_DOUBLE_EQ(algo::LocalClusteringCoefficient(g, 1), 1.0);
  // Star: center has no neighbor links.
  Graph star;
  for (NodeId i = 2; i <= 5; ++i) star.AddEdge(1, i);
  EXPECT_DOUBLE_EQ(algo::LocalClusteringCoefficient(star, 1), 0.0);
  EXPECT_DOUBLE_EQ(algo::LocalClusteringCoefficient(star, 2), 0.0);
  // Triangle + pendant on node 1.
  Graph g2 = Triangle();
  g2.AddEdge(1, 4);
  EXPECT_DOUBLE_EQ(algo::LocalClusteringCoefficient(g2, 1), 1.0 / 3.0);
}

TEST(AlgorithmsTest, TriangleCount) {
  EXPECT_EQ(algo::TriangleCount(Triangle()), 1u);
  EXPECT_EQ(algo::TriangleCount(Path5()), 0u);
  // K4 has 4 triangles.
  Graph k4;
  for (NodeId i = 1; i <= 4; ++i) {
    for (NodeId j = i + 1; j <= 4; ++j) k4.AddEdge(i, j);
  }
  EXPECT_EQ(algo::TriangleCount(k4), 4u);
}

TEST(AlgorithmsTest, PageRankSumsToOneAndRanksHubs) {
  Graph star;
  for (NodeId i = 2; i <= 6; ++i) star.AddEdge(1, i);
  auto pr = algo::PageRank(star, 30);
  double sum = 0;
  for (const auto& [id, score] : pr) sum += score;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (NodeId i = 2; i <= 6; ++i) EXPECT_GT(pr[1], pr[i]);
}

TEST(AlgorithmsTest, BfsAndShortestPath) {
  Graph p = Path5();
  auto dist = algo::BfsDistances(p, 1);
  EXPECT_EQ(dist[5], 4);
  EXPECT_EQ(algo::ShortestPathLength(p, 1, 5), 4);
  EXPECT_EQ(algo::ShortestPathLength(p, 1, 1), 0);
  p.AddNode(99);
  EXPECT_EQ(algo::ShortestPathLength(p, 1, 99), -1);
  // Bounded BFS.
  auto bounded = algo::BfsDistances(p, 1, 2);
  EXPECT_TRUE(bounded.contains(3));
  EXPECT_FALSE(bounded.contains(4));
}

TEST(AlgorithmsTest, ConnectedComponents) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddNode(5);
  auto cc = algo::ConnectedComponents(g);
  EXPECT_EQ(cc[1], cc[2]);
  EXPECT_EQ(cc[3], cc[4]);
  EXPECT_NE(cc[1], cc[3]);
  EXPECT_EQ(cc[5], 5u);
  EXPECT_EQ(algo::LargestComponentSize(g), 2u);
}

TEST(AlgorithmsTest, CountLabel) {
  Graph g;
  g.AddNode(1, Attributes{{"EntityType", "Author"}});
  g.AddNode(2, Attributes{{"EntityType", "Paper"}});
  g.AddNode(3, Attributes{{"EntityType", "Author"}});
  EXPECT_EQ(algo::CountLabel(g, "EntityType", "Author"), 2u);
  EXPECT_EQ(algo::CountLabel(g, "EntityType", "Editor"), 0u);
}

TEST(AlgorithmsTest, DegreeDistributionAndHub) {
  Graph star;
  for (NodeId i = 2; i <= 5; ++i) star.AddEdge(1, i);
  auto hist = algo::DegreeDistribution(star);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(algo::HighestDegreeNode(star), 1u);
  EXPECT_EQ(algo::HighestDegreeNode(Graph()), kInvalidNodeId);
}

TEST(AlgorithmsTest, InducedSubgraph) {
  Graph g = Triangle();
  g.AddEdge(3, 4);
  Graph sub = algo::InducedSubgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.NumNodes(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);
  EXPECT_FALSE(sub.HasNode(4));
}

TEST(AlgorithmsTest, KHopNeighborhood) {
  Graph p = Path5();
  auto one_hop = algo::KHopNeighborhood(p, 3, 1);
  EXPECT_EQ(one_hop.size(), 3u);  // {2,3,4}
  auto two_hop = algo::KHopNeighborhood(p, 3, 2);
  EXPECT_EQ(two_hop.size(), 5u);
}

}  // namespace
}  // namespace hgs
