// Unit tests for the common module: Status/Result, serialization,
// compression, thread pool, RNG determinism, string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/compression.h"
#include "common/lru_cache.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace hgs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key xyz");
  EXPECT_EQ(s.ToString(), "NotFound: key xyz");
}

TEST(StatusTest, CopyIsCheapAndEqualityHolds) {
  Status a = Status::Corruption("bad block");
  Status b = a;  // shared rep
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.IsCorruption());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(SerdeTest, VarintRoundTrip) {
  BinaryWriter w;
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  1u << 20,         (1ull << 35) + 17,
                             UINT64_MAX};
  for (uint64_t v : values) w.PutVarint64(v);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  for (uint64_t v : values) {
    auto got = r.GetVarint64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, SignedZigzagRoundTrip) {
  BinaryWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456};
  for (int64_t v : values) w.PutSigned64(v);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  for (int64_t v : values) {
    auto got = r.GetSigned64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(SerdeTest, StringAndDoubleRoundTrip) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  w.PutDouble(3.14159);
  w.PutBool(true);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(r.GetString()->size(), 1000u);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_TRUE(*r.GetBool());
}

TEST(SerdeTest, TruncationIsCorruptionNotCrash) {
  BinaryWriter w;
  w.PutString("some payload");
  std::string buf = w.Finish();
  BinaryReader r(buf.substr(0, 3));
  auto res = r.GetString();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption());
}

TEST(SerdeTest, ChecksumDetectsFlippedBit) {
  BinaryWriter w;
  w.PutString("protected content");
  std::string buf = w.FinishWithChecksum();
  {
    BinaryReader ok_reader(buf);
    EXPECT_TRUE(ok_reader.VerifyChecksum().ok());
  }
  buf[3] ^= 0x40;
  BinaryReader bad_reader(buf);
  EXPECT_TRUE(bad_reader.VerifyChecksum().IsCorruption());
}

TEST(SerdeTest, ChecksumTooShortBuffer) {
  BinaryReader r("abc");
  EXPECT_TRUE(r.VerifyChecksum().IsCorruption());
}

TEST(SerdeTest, BulkReadersMatchScalarGetters) {
  BinaryWriter w;
  const uint64_t varints[] = {0,    1,        127,       128,
                              300,  1u << 20, UINT64_MAX, 42};
  const int64_t signeds[] = {0, -1, 1, INT64_MIN, INT64_MAX, -123456};
  for (uint64_t v : varints) w.PutVarint64(v);
  for (int64_t v : signeds) w.PutSigned64(v);
  w.PutFixed8(0xAB);
  w.PutBool(true);
  w.PutString("bulk payload");
  w.PutString("");
  std::string buf = w.Finish();

  BinaryReader bulk(buf);
  for (uint64_t v : varints) EXPECT_EQ(bulk.ReadVarint64(), v);
  for (int64_t v : signeds) EXPECT_EQ(bulk.ReadSigned64(), v);
  EXPECT_EQ(bulk.ReadFixed8(), 0xAB);
  EXPECT_TRUE(bulk.ReadBool());
  EXPECT_EQ(bulk.ReadBytesView(), "bulk payload");
  EXPECT_EQ(bulk.ReadBytesView(), "");
  EXPECT_FALSE(bulk.failed());
  EXPECT_TRUE(bulk.AtEnd());
  EXPECT_TRUE(bulk.BulkStatus().ok());
}

TEST(SerdeTest, BulkReaderFailureIsStickyOnTruncation) {
  BinaryWriter w;
  w.PutVarint64(7);
  w.PutString("payload");
  std::string buf = w.Finish();
  BinaryReader r(buf.substr(0, 3));  // cuts the string mid-length
  EXPECT_EQ(r.ReadVarint64(), 7u);
  EXPECT_FALSE(r.failed());
  (void)r.ReadBytesView();  // truncated: latches the error
  EXPECT_TRUE(r.failed());
  // Every further read returns zero values and never advances.
  EXPECT_EQ(r.ReadVarint64(), 0u);
  EXPECT_EQ(r.ReadBytesView(), std::string_view());
  EXPECT_TRUE(r.BulkStatus().IsCorruption());
}

TEST(SerdeTest, BulkVarintOverflowIsCorruption) {
  // An 11-byte continuation run cannot encode a 64-bit value.
  std::string bad(10, '\x80');
  bad.push_back('\x02');
  BinaryReader r(bad);
  (void)r.ReadVarint64();
  EXPECT_TRUE(r.failed());
}

TEST(CompressionTest, RoundTripCompressible) {
  std::string input;
  for (int i = 0; i < 500; ++i) input += "node:12345,attr=value;";
  std::string packed = Compress(input, CompressionKind::kLz);
  EXPECT_LT(packed.size(), input.size() / 2);
  auto out = Decompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressionTest, IncompressibleFallsBackToStored) {
  Rng rng(99);
  std::string input;
  for (int i = 0; i < 4096; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xFF));
  }
  std::string packed = Compress(input, CompressionKind::kLz);
  EXPECT_LE(packed.size(), input.size() + 16);
  auto out = Decompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressionTest, NoneKindIsIdentityPlusHeader) {
  std::string input = "abcdef";
  std::string packed = Compress(input, CompressionKind::kNone);
  auto out = Decompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressionTest, EmptyInput) {
  auto out = Decompress(Compress("", CompressionKind::kLz));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(CompressionTest, CorruptBlockRejected) {
  std::string packed = Compress("hello world hello world", CompressionKind::kLz);
  packed.resize(packed.size() / 2);
  auto out = Decompress(packed);
  EXPECT_FALSE(out.ok());
}

TEST(CompressionTest, OverlappingMatchDecodes) {
  // "aaaa..." exercises the dist < len overlapping-copy path.
  std::string input(10'000, 'a');
  auto out = Decompress(Compress(input, CompressionKind::kLz));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 123; });
  EXPECT_EQ(f.get(), 123);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done++;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 8, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SequentialFallback) {
  int order_violations = 0;
  size_t last = 0;
  ParallelFor(100, 1, [&](size_t i) {
    if (i < last) ++order_violations;
    last = i;
  });
  EXPECT_EQ(order_violations, 0);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(2);
  uint64_t low = 0;
  const int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(1000, 1.0) < 100) ++low;
  }
  // Zipf(1.0) puts far more than the uniform 10% in the first decile.
  EXPECT_GT(low, static_cast<uint64_t>(kTrials) * 3 / 10);
}

TEST(StringUtilTest, Thousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.0 MiB");
}

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Fnv1aTest, StableKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64("", 0), 0xCBF29CE484222325ull);
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
}

TEST(LruCacheTest, HitMissAndCounters) {
  ShardedLruCache<std::string, int> cache(1024, 2);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1, 10);
  cache.Put("b", 2, 10);
  auto a = cache.Get("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  LruCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 2u);
  EXPECT_EQ(counters.bytes_used, 20u);
  EXPECT_DOUBLE_EQ(counters.HitRate(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWithinByteBudget) {
  // One shard so eviction order is fully deterministic.
  ShardedLruCache<std::string, int> cache(30, 1);
  cache.Put("a", 1, 10);
  cache.Put("b", 2, 10);
  cache.Put("c", 3, 10);
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh "a": "b" is now LRU
  cache.Put("d", 4, 10);
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_TRUE(cache.Get("d").has_value());
  EXPECT_EQ(cache.Counters().evictions, 1u);
  EXPECT_LE(cache.Counters().bytes_used, 30u);
}

TEST(LruCacheTest, OversizedEntryIsNotAdmitted) {
  ShardedLruCache<std::string, int> cache(30, 1);
  cache.Put("big", 1, 100);
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_EQ(cache.Counters().entries, 0u);
  // An oversized replacement must drop the old value, not serve it stale.
  cache.Put("big", 2, 10);
  cache.Put("big", 3, 100);
  EXPECT_FALSE(cache.Get("big").has_value());
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  ShardedLruCache<std::string, int> cache(0);
  cache.Put("a", 1, 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.enabled());
}

TEST(LruCacheTest, PutReplacesAndClearKeepsCounters) {
  ShardedLruCache<std::string, int> cache(100, 1);
  cache.Put("a", 1, 10);
  cache.Put("a", 2, 20);
  auto a = cache.Get("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 2);
  EXPECT_EQ(cache.Counters().bytes_used, 20u);
  cache.Clear();
  EXPECT_EQ(cache.Counters().entries, 0u);
  EXPECT_EQ(cache.Counters().bytes_used, 0u);
  EXPECT_EQ(cache.Counters().hits, 1u);  // retained across Clear
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(LruCacheTest, TinyLfuAdmissionProtectsHotSetFromColdSweep) {
  // A hot working set keeps serving traffic while a long one-hit-wonder
  // sweep (a cold snapshot scan) streams through. With TinyLFU admission
  // the sweep bounces off the doorkeeper once the cache is full; with
  // plain LRU every round of the sweep flushes the entire cache.
  auto hot_survivors = [](bool admission) {
    ShardedLruCache<uint64_t, int> cache(/*capacity_bytes=*/64 * 16,
                                         /*num_shards=*/1, admission);
    for (int round = 0; round < 8; ++round) {
      for (uint64_t k = 0; k < 32; ++k) {
        if (!cache.Get(k).has_value()) cache.Put(k, 1, 16);
      }
    }
    uint64_t cold = 1'000;
    for (int round = 0; round < 30; ++round) {
      for (uint64_t k = 0; k < 32; ++k) {
        if (!cache.Get(k).has_value()) cache.Put(k, 1, 16);
      }
      for (int j = 0; j < 64; ++j, ++cold) {
        cache.Get(cold);  // the miss records the sighting
        cache.Put(cold, 1, 16);
      }
    }
    size_t survivors = 0;
    for (uint64_t k = 0; k < 32; ++k) {
      if (cache.Get(k).has_value()) ++survivors;
    }
    return survivors;
  };
  EXPECT_EQ(hot_survivors(true), 32u);  // the whole hot set survives
  EXPECT_EQ(hot_survivors(false), 0u);  // plain LRU is flushed every round
}

TEST(LruCacheTest, TinyLfuAdmitsKeyOnceItProvesFrequency) {
  ShardedLruCache<uint64_t, int> cache(/*capacity_bytes=*/4 * 16,
                                       /*num_shards=*/1, true);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 4; ++k) {
      cache.Get(k);
      cache.Put(k, 1, 16);
    }
  }
  // A cold newcomer bounces at first...
  cache.Get(99);
  cache.Put(99, 1, 16);
  EXPECT_FALSE(cache.Get(99).has_value());
  EXPECT_GT(cache.Counters().admission_rejects, 0u);
  // ...but sustained demand builds frequency past the victim's and wins
  // admission.
  bool admitted = false;
  for (int i = 0; i < 16 && !admitted; ++i) {
    cache.Put(99, 1, 16);
    admitted = cache.Get(99).has_value();
  }
  EXPECT_TRUE(admitted);
}

TEST(LruCacheTest, ConcurrentReadersAndWritersDoNotRace) {
  ShardedLruCache<uint64_t, uint64_t> cache(1 << 16, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 2'000; ++i) {
        uint64_t key = rng.Uniform(256);
        if (rng.Uniform(2) == 0) {
          cache.Put(key, key * 2, 16);
        } else {
          auto v = cache.Get(key);
          if (v.has_value()) EXPECT_EQ(*v, key * 2);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.Counters().bytes_used, 1u << 16);
}

}  // namespace
}  // namespace hgs
