// Tests for graph partitioning: balance constraints, locality vs random
// edge-cut quality, temporal collapse functions Ω, and the per-timespan
// dynamic partitioner.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/dynamic_partitioner.h"
#include "partition/static_partitioner.h"
#include "partition/temporal_collapse.h"
#include "workload/generators.h"

namespace hgs {
namespace {

// Two dense cliques joined by a single bridge edge: the canonical case where
// locality partitioning must beat random.
WeightedGraph TwoCliques(size_t clique_size) {
  WeightedGraph g;
  for (NodeId c = 0; c < 2; ++c) {
    NodeId base = c * clique_size;
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j, 1.0);
      }
    }
  }
  g.AddEdge(0, clique_size, 1.0);  // bridge
  return g;
}

TEST(PartitioningTest, RandomCoversAllPartitions) {
  Partitioning p = RandomPartition(4);
  std::vector<size_t> counts(4, 0);
  for (NodeId id = 0; id < 10'000; ++id) ++counts[p.Of(id)];
  for (size_t c : counts) {
    EXPECT_GT(c, 2'000u);
    EXPECT_LT(c, 3'000u);
  }
}

TEST(PartitioningTest, FallbackIsDeterministic) {
  Partitioning p = RandomPartition(8);
  for (NodeId id = 0; id < 100; ++id) EXPECT_EQ(p.Of(id), p.Of(id));
}

TEST(LocalityPartitionTest, SeparatesCliques) {
  WeightedGraph g = TwoCliques(20);
  LocalityPartitionOptions opts;
  opts.k = 2;
  Partitioning p = LocalityPartition(g, opts);
  // All of clique 0 in one partition, all of clique 1 in the other.
  EXPECT_LE(p.EdgeCut(g), 1.0);  // only the bridge may be cut
  auto sizes = p.PartitionSizes(g);
  EXPECT_EQ(sizes[0], 20u);
  EXPECT_EQ(sizes[1], 20u);
}

TEST(LocalityPartitionTest, RespectsBalanceBounds) {
  WeightedGraph g = TwoCliques(25);  // 50 nodes
  for (uint32_t k : {2u, 3u, 4u, 7u}) {
    LocalityPartitionOptions opts;
    opts.k = k;
    Partitioning p = LocalityPartition(g, opts);
    auto sizes = p.PartitionSizes(g);
    size_t n = g.NumNodes();
    for (size_t s : sizes) {
      EXPECT_LE(s, (n + k - 1) / k) << "k=" << k;
    }
  }
}

TEST(LocalityPartitionTest, BeatsRandomOnCommunityGraph) {
  auto events = workload::GenerateFriendster(
      {.num_nodes = 2'000, .num_edges = 8'000, .community_size = 100});
  Graph g = workload::ReplayToGraph(events, kMaxTimestamp);
  WeightedGraph wg;
  g.ForEachNode([&](NodeId id, const NodeRecord&) { wg.AddNode(id); });
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    wg.AddEdge(key.u, key.v, 1.0);
  });
  LocalityPartitionOptions opts;
  opts.k = 8;
  Partitioning local = LocalityPartition(wg, opts);
  Partitioning random = RandomPartition(8);
  EXPECT_LT(local.EdgeCut(wg), 0.6 * random.EdgeCut(wg));
}

TEST(LocalityPartitionTest, EmptyAndTinyGraphs) {
  WeightedGraph empty;
  Partitioning p = LocalityPartition(empty, {.k = 4});
  EXPECT_EQ(p.k(), 4u);
  WeightedGraph one;
  one.AddNode(7);
  Partitioning p1 = LocalityPartition(one, {.k = 4});
  EXPECT_LT(p1.Of(7), 4u);
}

TEST(LocalityPartitionTest, DeterministicForSeed) {
  WeightedGraph g = TwoCliques(15);
  LocalityPartitionOptions opts;
  opts.k = 3;
  opts.seed = 11;
  Partitioning a = LocalityPartition(g, opts);
  Partitioning b = LocalityPartition(g, opts);
  for (const auto& [id, pid] : a.assignment()) {
    EXPECT_EQ(pid, b.Of(id));
  }
}

TEST(CollapseTest, UnionMaxIncludesEverEdge) {
  Graph start;
  start.AddNode(1);
  start.AddNode(2);
  start.AddEdge(1, 2);
  std::vector<Event> events = {
      Event::RemoveEdge(10, 1, 2),   // edge gone early
      Event::AddNode(11, 3),
      Event::AddEdge(12, 2, 3),      // new edge later
  };
  CollapseOptions opts;
  opts.edge_fn = CollapseFn::kUnionMax;
  WeightedGraph g =
      CollapseTemporalGraph(start, events, TimeInterval{0, 20}, opts);
  // Both edges existed at least once.
  EXPECT_GT(g.EdgeWeight(1, 2), 0.0);
  EXPECT_GT(g.EdgeWeight(2, 3), 0.0);
  // All three nodes existed at least once (Ω constraint).
  EXPECT_EQ(g.NumNodes(), 3u);
}

TEST(CollapseTest, UnionMeanWeighsByDuration) {
  Graph start;
  start.AddNode(1);
  start.AddNode(2);
  start.AddNode(3);
  std::vector<Event> events = {
      Event::AddEdge(0, 1, 2),    // exists for whole span [0,100)
      Event::AddEdge(90, 2, 3),   // exists for 10% of the span
  };
  CollapseOptions opts;
  opts.edge_fn = CollapseFn::kUnionMean;
  WeightedGraph g =
      CollapseTemporalGraph(start, events, TimeInterval{0, 100}, opts);
  EXPECT_GT(g.EdgeWeight(1, 2), 5.0 * g.EdgeWeight(2, 3));
}

TEST(CollapseTest, MedianTakesMidpointState) {
  Graph start;
  start.AddNode(1);
  start.AddNode(2);
  std::vector<Event> events = {
      Event::AddEdge(10, 1, 2),
      Event::RemoveEdge(80, 1, 2),  // after the median of [0,100)
  };
  CollapseOptions opts;
  opts.edge_fn = CollapseFn::kMedian;
  WeightedGraph g =
      CollapseTemporalGraph(start, events, TimeInterval{0, 100}, opts);
  EXPECT_GT(g.EdgeWeight(1, 2), 0.0);  // present at t=50
  std::vector<Event> events2 = {
      Event::AddEdge(60, 1, 2),  // only after the median
  };
  WeightedGraph g2 =
      CollapseTemporalGraph(start, events2, TimeInterval{0, 100}, opts);
  EXPECT_EQ(g2.EdgeWeight(1, 2), 0.0);
}

TEST(CollapseTest, NodeWeightOptions) {
  Graph start;
  start.AddEdge(1, 2);
  start.AddEdge(1, 3);
  CollapseOptions opts;
  opts.edge_fn = CollapseFn::kUnionMax;
  opts.node_fn = NodeWeightFn::kDegree;
  WeightedGraph g =
      CollapseTemporalGraph(start, {}, TimeInterval{0, 10}, opts);
  EXPECT_DOUBLE_EQ(g.node_weights.at(1), 2.0);
  EXPECT_DOUBLE_EQ(g.node_weights.at(2), 1.0);
  opts.node_fn = NodeWeightFn::kUniform;
  WeightedGraph gu =
      CollapseTemporalGraph(start, {}, TimeInterval{0, 10}, opts);
  EXPECT_DOUBLE_EQ(gu.node_weights.at(1), 1.0);
}

TEST(CollapseTest, WeightAttributeRespected) {
  Graph start;
  start.AddNode(1);
  start.AddNode(2);
  std::vector<Event> events = {
      Event::AddEdge(5, 1, 2, false, Attributes{{"weight", "4.0"}}),
  };
  CollapseOptions opts;
  opts.edge_fn = CollapseFn::kUnionMax;
  WeightedGraph g =
      CollapseTemporalGraph(start, events, TimeInterval{0, 10}, opts);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 4.0);
}

TEST(DynamicPartitionerTest, RandomStrategyHasNoExplicitMap) {
  Graph start;
  Partitioning p = PartitionTimespan(
      start, {}, TimeInterval{0, 10},
      {.strategy = PartitionStrategy::kRandom, .num_partitions = 4, .collapse = {}, .locality = {}});
  EXPECT_TRUE(p.assignment().empty());
  EXPECT_EQ(p.k(), 4u);
}

TEST(DynamicPartitionerTest, LocalityStrategyAssignsExistingNodes) {
  auto events = workload::GenerateFriendster(
      {.num_nodes = 500, .num_edges = 2'000, .community_size = 50});
  Graph start;
  DynamicPartitionOptions opts;
  opts.strategy = PartitionStrategy::kLocality;
  opts.num_partitions = 5;
  Partitioning p = PartitionTimespan(
      start, events, TimeInterval{0, workload::EndTime(events) + 1}, opts);
  EXPECT_EQ(p.k(), 5u);
  // Every node that ever existed gets an explicit assignment.
  Graph final_state = workload::ReplayToGraph(events, kMaxTimestamp);
  size_t assigned = 0;
  final_state.ForEachNode([&](NodeId id, const NodeRecord&) {
    if (p.HasExplicitAssignment(id)) ++assigned;
  });
  EXPECT_EQ(assigned, final_state.NumNodes());
}

}  // namespace
}  // namespace hgs
