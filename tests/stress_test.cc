// Stress and sweep tests: the TGI correctness invariant across the tuning
// space (hierarchy arity, checkpoint interval, eventlist size), concurrent
// query execution against one query manager, concurrent KV clients, and
// corruption handling end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "kvstore/cluster.h"
#include "tgi/layout.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster(size_t nodes = 2) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.latency.enabled = false;
  return opts;
}

std::vector<Event> History(uint64_t seed, uint64_t n) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 9});
}

// (arity, checkpoint_interval, eventlist_size)
using TuningParam = std::tuple<uint32_t, size_t, size_t>;

class TGITuningSweep : public ::testing::TestWithParam<TuningParam> {};

TEST_P(TGITuningSweep, SnapshotInvariantHolds) {
  auto [arity, cp, l] = GetParam();
  TGIOptions opts;
  opts.events_per_timespan = 2'500;
  opts.eventlist_size = l;
  opts.checkpoint_interval = cp;
  opts.hierarchy_arity = arity;
  opts.micro_delta_size = 100;
  opts.num_horizontal_partitions = 2;

  Cluster cluster(FastCluster());
  TGI tgi(&cluster, opts);
  auto events = History(arity * 1000 + l, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  for (double frac : {0.15, 0.4, 0.62, 0.87, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto snap = qm->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t))
        << "arity=" << arity << " cp=" << cp << " l=" << l << " t=" << t;
  }
}

TEST_P(TGITuningSweep, NodeHistoryInvariantHolds) {
  auto [arity, cp, l] = GetParam();
  TGIOptions opts;
  opts.events_per_timespan = 2'500;
  opts.eventlist_size = l;
  opts.checkpoint_interval = cp;
  opts.hierarchy_arity = arity;
  opts.micro_delta_size = 100;
  opts.num_horizontal_partitions = 2;

  Cluster cluster(FastCluster());
  TGI tgi(&cluster, opts);
  auto events = History(arity * 1000 + l + 1, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp from = events[events.size() / 5].time;
  Timestamp to = events[events.size() * 4 / 5].time;
  Rng rng(arity + l);
  Graph at_from = workload::ReplayToGraph(events, from);
  auto ids = at_from.NodeIds();
  for (int trial = 0; trial < 6; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hist = qm->GetNodeHistory(id, from, to);
    ASSERT_TRUE(hist.ok());
    size_t expected = 0;
    for (const Event& e : events) {
      if (e.time > from && e.time <= to && e.Touches(id)) ++expected;
    }
    EXPECT_EQ(hist->events.size(), expected) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, TGITuningSweep,
    ::testing::Values(TuningParam{2, 500, 125}, TuningParam{2, 250, 250},
                      TuningParam{3, 750, 125}, TuningParam{4, 500, 250},
                      TuningParam{8, 1000, 125}, TuningParam{2, 2500, 500}));

TEST(ConcurrentQueryTest, ManyThreadsOneQueryManager) {
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  TGI tgi(&cluster, opts);
  auto events = History(333, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, end);
  auto ids = final_state.NodeIds();
  std::atomic<int> failures{0};
  ParallelFor(48, 8, [&](size_t i) {
    Rng rng(i);
    switch (i % 3) {
      case 0: {
        Timestamp t = end * static_cast<Timestamp>(1 + i % 4) / 4;
        auto snap = qm->GetSnapshot(t);
        if (!snap.ok() ||
            !(*snap == workload::ReplayToGraph(events, t))) {
          failures++;
        }
        break;
      }
      case 1: {
        NodeId id = ids[rng.Uniform(ids.size())];
        auto hist = qm->GetNodeHistory(id, 0, end);
        if (!hist.ok()) failures++;
        break;
      }
      case 2: {
        NodeId id = ids[rng.Uniform(ids.size())];
        auto hood = qm->GetKHopNeighborhood(id, end, 1);
        if (!hood.ok()) failures++;
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentKVTest, ParallelPutsAndGetsAreConsistent) {
  Cluster cluster(FastCluster(3));
  constexpr int kKeys = 400;
  ParallelFor(kKeys, 8, [&](size_t i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(
        cluster.Put("stress", i % 7, key, "value" + std::to_string(i)).ok());
  });
  std::atomic<int> bad{0};
  ParallelFor(kKeys, 8, [&](size_t i) {
    std::string key = "key" + std::to_string(i);
    auto got = cluster.Get("stress", i % 7, key);
    if (!got.ok() || *got != "value" + std::to_string(i)) bad++;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CorruptionTest, FlippedDeltaByteSurfacesAsCorruption) {
  // Build a tiny index, then corrupt one stored delta row in place and
  // verify queries report Corruption instead of returning wrong data.
  ClusterOptions copts = FastCluster(1);
  Cluster cluster(copts);
  TGIOptions opts;
  opts.events_per_timespan = 1'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 200;
  opts.micro_delta_size = 1 << 20;  // single micro-partition: easy target
  opts.num_horizontal_partitions = 1;
  TGI tgi(&cluster, opts);
  auto events = History(777, 1'500);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());

  // Corrupt every stored row of the first timespan's partition, then probe
  // a time inside that span.
  uint64_t placement = tgi::DeltaPlacement(0, 0, 1);
  auto rows = cluster.Scan(tgi::kDeltasTable, placement, "");
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  for (const KVPair& kv : *rows) {
    std::string corrupted = kv.value;
    corrupted[corrupted.size() / 2] ^= 0x08;
    ASSERT_TRUE(
        cluster.Put(tgi::kDeltasTable, placement, kv.key, corrupted).ok());
  }

  auto qm = tgi.OpenQueryManager().value();
  auto snap = qm->GetSnapshot(events[900].time);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsCorruption());
}

TEST(UpdateStressTest, ManySmallBatchesEqualOneBigBuild) {
  auto events = History(555, 6'000);
  Cluster incremental_cluster(FastCluster());
  Cluster bulk_cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;

  TGI incremental(&incremental_cluster, opts);
  for (size_t start = 0; start < events.size(); start += 700) {
    size_t end = std::min(events.size(), start + 700);
    std::vector<Event> batch(events.begin() + static_cast<long>(start),
                             events.begin() + static_cast<long>(end));
    ASSERT_TRUE(incremental.AppendBatch(batch).ok());
  }
  TGI bulk(&bulk_cluster, opts);
  ASSERT_TRUE(bulk.BuildFrom(events).ok());

  auto qm_inc = incremental.OpenQueryManager(2).value();
  auto qm_bulk = bulk.OpenQueryManager(2).value();
  for (double frac : {0.3, 0.7, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto a = qm_inc->GetSnapshot(t);
    auto b = qm_bulk->GetSnapshot(t);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(*a == *b) << "t=" << t;
    EXPECT_TRUE(*a == workload::ReplayToGraph(events, t));
  }
}

}  // namespace
}  // namespace hgs
