// Stress and sweep tests: the TGI correctness invariant across the tuning
// space (hierarchy arity, checkpoint interval, eventlist size), concurrent
// query execution against one query manager, concurrent KV clients, and
// corruption handling end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "kvstore/cluster.h"
#include "tgi/layout.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster(size_t nodes = 2) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.latency.enabled = false;
  return opts;
}

std::vector<Event> History(uint64_t seed, uint64_t n) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 9});
}

// (arity, checkpoint_interval, eventlist_size)
using TuningParam = std::tuple<uint32_t, size_t, size_t>;

class TGITuningSweep : public ::testing::TestWithParam<TuningParam> {};

TEST_P(TGITuningSweep, SnapshotInvariantHolds) {
  auto [arity, cp, l] = GetParam();
  TGIOptions opts;
  opts.events_per_timespan = 2'500;
  opts.eventlist_size = l;
  opts.checkpoint_interval = cp;
  opts.hierarchy_arity = arity;
  opts.micro_delta_size = 100;
  opts.num_horizontal_partitions = 2;

  Cluster cluster(FastCluster());
  TGI tgi(&cluster, opts);
  auto events = History(arity * 1000 + l, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  for (double frac : {0.15, 0.4, 0.62, 0.87, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto snap = qm->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t))
        << "arity=" << arity << " cp=" << cp << " l=" << l << " t=" << t;
  }
}

TEST_P(TGITuningSweep, NodeHistoryInvariantHolds) {
  auto [arity, cp, l] = GetParam();
  TGIOptions opts;
  opts.events_per_timespan = 2'500;
  opts.eventlist_size = l;
  opts.checkpoint_interval = cp;
  opts.hierarchy_arity = arity;
  opts.micro_delta_size = 100;
  opts.num_horizontal_partitions = 2;

  Cluster cluster(FastCluster());
  TGI tgi(&cluster, opts);
  auto events = History(arity * 1000 + l + 1, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp from = events[events.size() / 5].time;
  Timestamp to = events[events.size() * 4 / 5].time;
  Rng rng(arity + l);
  Graph at_from = workload::ReplayToGraph(events, from);
  auto ids = at_from.NodeIds();
  for (int trial = 0; trial < 6; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hist = qm->GetNodeHistory(id, from, to);
    ASSERT_TRUE(hist.ok());
    size_t expected = 0;
    for (const Event& e : events) {
      if (e.time > from && e.time <= to && e.Touches(id)) ++expected;
    }
    EXPECT_EQ(hist->events.size(), expected) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, TGITuningSweep,
    ::testing::Values(TuningParam{2, 500, 125}, TuningParam{2, 250, 250},
                      TuningParam{3, 750, 125}, TuningParam{4, 500, 250},
                      TuningParam{8, 1000, 125}, TuningParam{2, 2500, 500}));

TEST(ConcurrentQueryTest, ManyThreadsOneQueryManager) {
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  TGI tgi(&cluster, opts);
  auto events = History(333, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, end);
  auto ids = final_state.NodeIds();
  std::atomic<int> failures{0};
  ParallelFor(48, 8, [&](size_t i) {
    Rng rng(i);
    switch (i % 3) {
      case 0: {
        Timestamp t = end * static_cast<Timestamp>(1 + i % 4) / 4;
        auto snap = qm->GetSnapshot(t);
        if (!snap.ok() ||
            !(*snap == workload::ReplayToGraph(events, t))) {
          failures++;
        }
        break;
      }
      case 1: {
        NodeId id = ids[rng.Uniform(ids.size())];
        auto hist = qm->GetNodeHistory(id, 0, end);
        if (!hist.ok()) failures++;
        break;
      }
      case 2: {
        NodeId id = ids[rng.Uniform(ids.size())];
        auto hood = qm->GetKHopNeighborhood(id, end, 1);
        if (!hood.ok()) failures++;
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

// Regression: set_fetch_parallelism used to write a plain size_t that
// in-flight queries read concurrently — a data race TSan flags (the CI
// tsan job runs this suite). fetch_parallelism_ is atomic now; tuning the
// knob mid-flight must neither race nor change results.
TEST(ConcurrentQueryTest, SetFetchParallelismRacesQueries) {
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  TGI tgi(&cluster, opts);
  auto events = History(77, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  Graph want = workload::ReplayToGraph(events, end);
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    size_t c = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      qm->set_fetch_parallelism(1 + (c++ % 8));
      std::this_thread::yield();
    }
  });
  std::atomic<int> failures{0};
  ParallelFor(24, 6, [&](size_t) {
    auto snap = qm->GetSnapshot(end);
    if (!snap.ok() || !(*snap == want)) failures++;
  });
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(qm->fetch_parallelism(), 1u);
}

// Regression: Open() used to flip a plain bool that concurrent queries
// read through EnsureFresh — racing Open against queries was a data race
// (and a torn read could have served a query off a half-open manager).
// The flag is an acquire/release atomic now: a query must either see the
// manager open (and answer correctly) or fail FailedPrecondition.
TEST(ConcurrentQueryTest, OpenRacesQueries) {
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  TGI tgi(&cluster, opts);
  auto events = History(11, 3'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());

  Timestamp end = workload::EndTime(events);
  Graph want = workload::ReplayToGraph(events, end);
  for (int round = 0; round < 4; ++round) {
    TGIQueryManager qm(&cluster, 2);
    std::atomic<int> failures{0};
    std::thread opener([&] { ASSERT_TRUE(qm.Open().ok()); });
    ParallelFor(8, 4, [&](size_t) {
      auto snap = qm.GetSnapshot(end);
      if (snap.ok()) {
        if (!(*snap == want)) failures++;
      } else if (snap.status().code() != StatusCode::kFailedPrecondition) {
        failures++;
      }
    });
    opener.join();
    EXPECT_EQ(failures.load(), 0);
    // Once Open returned, queries must succeed.
    auto snap = qm.GetSnapshot(end);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(*snap == want);
  }
}

TEST(ConcurrentKVTest, ParallelPutsAndGetsAreConsistent) {
  Cluster cluster(FastCluster(3));
  constexpr int kKeys = 400;
  ParallelFor(kKeys, 8, [&](size_t i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(
        cluster.Put("stress", i % 7, key, "value" + std::to_string(i)).ok());
  });
  std::atomic<int> bad{0};
  ParallelFor(kKeys, 8, [&](size_t i) {
    std::string key = "key" + std::to_string(i);
    auto got = cluster.Get("stress", i % 7, key);
    if (!got.ok() || *got != "value" + std::to_string(i)) bad++;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CorruptionTest, FlippedDeltaByteSurfacesAsCorruption) {
  // Build a tiny index, then corrupt one stored delta row in place and
  // verify queries report Corruption instead of returning wrong data.
  ClusterOptions copts = FastCluster(1);
  Cluster cluster(copts);
  TGIOptions opts;
  opts.events_per_timespan = 1'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 200;
  opts.micro_delta_size = 1 << 20;  // single micro-partition: easy target
  opts.num_horizontal_partitions = 1;
  TGI tgi(&cluster, opts);
  auto events = History(777, 1'500);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());

  // Corrupt every stored row of the first timespan's partition, then probe
  // a time inside that span.
  uint64_t placement = tgi::DeltaPlacement(0, 0, 1);
  auto rows = cluster.Scan(tgi::kDeltasTable, placement, "");
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  for (const KVPair& kv : *rows) {
    std::string corrupted = kv.value.ToString();
    corrupted[corrupted.size() / 2] ^= 0x08;
    ASSERT_TRUE(
        cluster.Put(tgi::kDeltasTable, placement, kv.key, corrupted).ok());
  }

  auto qm = tgi.OpenQueryManager().value();
  auto snap = qm->GetSnapshot(events[900].time);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsCorruption());
}

TEST(SharedValueLifetimeTest, LiveViewsRaceOverwritesAndEpochBumps) {
  // Readers hold SharedValue views of fetched values while a writer
  // continuously overwrites the same keys — freeing each old buffer as the
  // last view drops — and bumps the publish epoch. Under ASan/TSan this is
  // the lifetime proof for the zero-copy path: no view ever dangles, and
  // every held view stays byte-identical to what was read.
  Cluster cluster(FastCluster(2));
  constexpr int kKeys = 64;
  auto payload = [](int k, int round) {
    std::string s =
        "v" + std::to_string(k) + "-" + std::to_string(round) + "-";
    while (s.size() < 96) s += "x";  // off-SSO, so frees are real frees
    return s;
  };
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(cluster
                    .Put("life", static_cast<uint64_t>(k % 5),
                         "key" + std::to_string(k), payload(k, 0))
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    for (int round = 1; !stop.load(std::memory_order_relaxed); ++round) {
      for (int k = 0; k < kKeys; ++k) {
        // Healthy cluster: overwrites must commit (counted into `bad`
        // rather than asserted — gtest assertions aren't thread-safe).
        if (!cluster
                 .Put("life", static_cast<uint64_t>(k % 5),
                      "key" + std::to_string(k), payload(k, round))
                 .ok()) {
          bad++;
        }
      }
      cluster.BumpPublishEpoch();
    }
  });
  ParallelFor(8, 8, [&](size_t tid) {
    Rng rng(tid + 1);
    for (int iter = 0; iter < 150; ++iter) {
      // Stash views plus an immediate copy of their contents, give the
      // writer time to overwrite the keys underneath, then re-compare.
      std::vector<std::pair<SharedValue, std::string>> held;
      std::vector<MultiGetKey> keys;
      for (int j = 0; j < 8; ++j) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        keys.push_back(MultiGetKey{static_cast<uint64_t>(k % 5),
                                   "key" + std::to_string(k)});
      }
      auto got = cluster.MultiGet("life", keys);
      if (!got.ok()) {
        ++bad;
        continue;
      }
      for (auto& v : *got) {
        if (v.has_value()) held.emplace_back(*v, v->ToString());
      }
      auto scan = cluster.Scan("life", tid % 5, "");
      if (!scan.ok()) {
        ++bad;
        continue;
      }
      for (auto& kv : *scan) held.emplace_back(kv.value, kv.value.ToString());
      std::this_thread::yield();
      for (auto& [view, expect] : held) {
        if (!(view == std::string_view(expect))) ++bad;
      }
    }
  });
  stop.store(true);
  writer.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SharedValueLifetimeTest, QueriesRaceAppendBatchCacheInvalidation) {
  // Concurrent retrievals race AppendBatch's epoch bumps, which clear both
  // read-side caches while queries still hold shared decoded objects, byte
  // views, and scan entries. Tiny cache budgets force continuous eviction
  // at the same time. Queries are pinned to times inside the first,
  // completed timespan, whose rows the batch updates never rewrite, so
  // every snapshot must equal the event-log replay no matter which epoch
  // it ran against.
  auto events = History(991, 6'000);
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  opts.read_cache_bytes = 32u << 10;    // far below the working set
  opts.decoded_cache_bytes = 32u << 10;
  TGI tgi(&cluster, opts);

  const size_t first_chunk = 2'000;
  ASSERT_TRUE(
      tgi.BuildFrom({events.begin(),
                     events.begin() + static_cast<long>(first_chunk)})
          .ok());
  auto qm = tgi.OpenQueryManager(2).value();

  // Probe times within the first completed timespan only.
  std::vector<Timestamp> probes = {events[200].time, events[700].time,
                                   events[1'300].time};
  std::vector<Graph> expected;
  for (Timestamp t : probes) {
    expected.push_back(workload::ReplayToGraph(events, t));
  }

  std::atomic<int> bad{0};
  std::atomic<bool> stop{false};
  std::thread appender([&] {
    for (size_t start = first_chunk;
         start < events.size() && !stop.load(std::memory_order_relaxed);
         start += 800) {
      size_t end = std::min(events.size(), start + 800);
      std::vector<Event> batch(events.begin() + static_cast<long>(start),
                               events.begin() + static_cast<long>(end));
      if (!tgi.AppendBatch(batch).ok()) {
        ++bad;
        return;
      }
    }
  });
  ParallelFor(6, 6, [&](size_t tid) {
    Rng rng(tid + 17);
    for (int iter = 0; iter < 40; ++iter) {
      size_t p = rng.Uniform(probes.size());
      auto snap = qm->GetSnapshot(probes[p]);
      if (!snap.ok() || !(*snap == expected[p])) ++bad;
      NodeId id = static_cast<NodeId>(rng.Uniform(50));
      auto hist = qm->GetNodeHistory(id, 0, probes[p]);
      if (!hist.ok()) ++bad;
    }
  });
  stop.store(true);
  appender.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SharedValueLifetimeTest, ParallelIngestRacesReadersUnderTinyCaches) {
  // The sharded ingest pipeline (8 encode workers, group-committed puts)
  // publishes batch after batch while readers hammer the first completed
  // timespan through both cache tiers squeezed far below the working set.
  // Encode workers, node server pools, cache eviction and epoch
  // invalidation all overlap here; under TSan this is the race proof for
  // the write pipeline. Every snapshot must equal the event-log replay no
  // matter which publish epoch it raced.
  auto events = History(4411, 6'000);
  Cluster cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  opts.ingest_threads = 8;
  opts.read_cache_bytes = 32u << 10;  // continuous eviction
  opts.decoded_cache_bytes = 32u << 10;
  TGI tgi(&cluster, opts);

  const size_t first_chunk = 2'000;
  ASSERT_TRUE(
      tgi.BuildFrom({events.begin(),
                     events.begin() + static_cast<long>(first_chunk)})
          .ok());
  auto qm = tgi.OpenQueryManager(2).value();

  std::vector<Timestamp> probes = {events[300].time, events[900].time,
                                   events[1'400].time};
  std::vector<Graph> expected;
  for (Timestamp t : probes) {
    expected.push_back(workload::ReplayToGraph(events, t));
  }

  std::atomic<int> bad{0};
  std::atomic<bool> stop{false};
  std::thread appender([&] {
    for (size_t start = first_chunk;
         start < events.size() && !stop.load(std::memory_order_relaxed);
         start += 600) {
      size_t end = std::min(events.size(), start + 600);
      std::vector<Event> batch(events.begin() + static_cast<long>(start),
                               events.begin() + static_cast<long>(end));
      if (!tgi.AppendBatch(batch).ok()) {
        ++bad;
        return;
      }
    }
  });
  ParallelFor(6, 6, [&](size_t tid) {
    Rng rng(tid + 31);
    for (int iter = 0; iter < 40; ++iter) {
      size_t p = rng.Uniform(probes.size());
      auto snap = qm->GetSnapshot(probes[p]);
      if (!snap.ok() || !(*snap == expected[p])) ++bad;
      NodeId id = static_cast<NodeId>(rng.Uniform(50));
      auto hist = qm->GetNodeHistory(id, 0, probes[p]);
      if (!hist.ok()) ++bad;
    }
  });
  stop.store(true);
  appender.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(UpdateStressTest, ManySmallBatchesEqualOneBigBuild) {
  auto events = History(555, 6'000);
  Cluster incremental_cluster(FastCluster());
  Cluster bulk_cluster(FastCluster());
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;

  TGI incremental(&incremental_cluster, opts);
  for (size_t start = 0; start < events.size(); start += 700) {
    size_t end = std::min(events.size(), start + 700);
    std::vector<Event> batch(events.begin() + static_cast<long>(start),
                             events.begin() + static_cast<long>(end));
    ASSERT_TRUE(incremental.AppendBatch(batch).ok());
  }
  TGI bulk(&bulk_cluster, opts);
  ASSERT_TRUE(bulk.BuildFrom(events).ok());

  auto qm_inc = incremental.OpenQueryManager(2).value();
  auto qm_bulk = bulk.OpenQueryManager(2).value();
  for (double frac : {0.3, 0.7, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto a = qm_inc->GetSnapshot(t);
    auto b = qm_bulk->GetSnapshot(t);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(*a == *b) << "t=" << t;
    EXPECT_TRUE(*a == workload::ReplayToGraph(events, t));
  }
}

}  // namespace
}  // namespace hgs
