// Tests for the event TSV file format plus fuzz-style robustness checks for
// every deserializer in the repository: arbitrary byte strings must never
// crash a parser — they either round-trip or fail with a clean Status.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/compression.h"
#include "common/rng.h"
#include "delta/delta.h"
#include "delta/eventlist.h"
#include "tgi/metadata.h"
#include "workload/event_io.h"
#include "workload/generators.h"

namespace hgs::workload {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EventIoTest, LineRoundTripAllTypes) {
  std::vector<Event> events = {
      Event::AddNode(1, 5, Attributes{{"k", "v"}, {"name", "a b c"}}),
      Event::RemoveNode(2, 5),
      Event::AddEdge(3, 1, 2, true, Attributes{{"w", "1.5"}}),
      Event::RemoveEdge(4, 1, 2),
      Event::SetNodeAttr(5, 7, "key", "new", "old"),
      Event::DelNodeAttr(6, 7, "key", "old"),
      Event::SetEdgeAttr(7, 1, 2, "w", "2", "1.5"),
      Event::DelEdgeAttr(8, 1, 2, "w", "2"),
  };
  for (const Event& e : events) {
    auto back = EventFromTsvLine(EventToTsvLine(e));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, e);
  }
}

TEST(EventIoTest, EscapingSurvivesHostileStrings) {
  Event e = Event::SetNodeAttr(9, 1, "ta\tb", "v;a=l\nue%", "p%r;e=v");
  e.attrs.Set("k\t;=%", "v\n\t%;=");
  auto back = EventFromTsvLine(EventToTsvLine(e));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, e);
}

TEST(EventIoTest, FileRoundTripGeneratedHistory) {
  auto events = GenerateWikiGrowth({.num_events = 2'000, .seed = 5});
  std::string path = TempPath("hgs_event_io_test.tsv");
  ASSERT_TRUE(WriteEventsTsv(events, path).ok());
  auto back = ReadEventsTsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, events);
  std::remove(path.c_str());
}

TEST(EventIoTest, MissingFileIsIOError) {
  auto res = ReadEventsTsv("/nonexistent/path/events.tsv");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsIOError());
}

TEST(EventIoTest, MalformedLinesReportLineNumbers) {
  std::string path = TempPath("hgs_event_io_bad.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header\n1\tAddNode\t5\t\t0\t\t\t\t\nnot\ta\tvalid\tline\n",
               f);
    std::fclose(f);
  }
  auto res = ReadEventsTsv(path);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find(":3:"), std::string::npos)
      << res.status().ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Deserializer fuzzing: random bytes and mutated valid payloads.
// ---------------------------------------------------------------------------

class FuzzDeserializers : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string s;
  size_t n = rng->Uniform(max_len + 1);
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng->Next() & 0xFF));
  }
  return s;
}

TEST_P(FuzzDeserializers, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string junk = RandomBytes(&rng, 256);
    (void)Delta::Deserialize(junk);
    (void)EventList::Deserialize(junk);
    (void)Decompress(junk);
    (void)tgi::VersionChainSegment::Deserialize(junk);
    (void)tgi::GraphMeta::Deserialize(junk);
    (void)tgi::DeserializeMicropartBucket(junk);
    (void)EventFromTsvLine(junk);
  }
}

TEST_P(FuzzDeserializers, MutatedValidPayloadsFailCleanlyOrRoundTrip) {
  Rng rng(GetParam() + 99);
  // A real delta payload as the mutation base.
  Delta d;
  for (NodeId i = 0; i < 40; ++i) {
    d.PutNode(i, NodeRecord{.attrs = Attributes{{"a", std::to_string(i)}}});
  }
  for (NodeId i = 0; i + 1 < 40; ++i) {
    d.PutEdge(EdgeKey(i, i + 1), EdgeRecord{.src = i, .dst = i + 1, .directed = false, .attrs = {}});
  }
  std::string base = d.Serialize();
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    auto res = Delta::Deserialize(mutated);
    // The checksum makes silent acceptance of mutations (other than
    // restoring the original) essentially impossible.
    if (mutated != base) {
      EXPECT_FALSE(res.ok());
    }
  }
}

TEST_P(FuzzDeserializers, TruncatedValidPayloadsFailCleanly) {
  Rng rng(GetParam() + 7);
  EventList list(0, 100);
  for (int i = 1; i <= 50; ++i) {
    list.Append(Event::AddEdge(i, static_cast<NodeId>(i),
                               static_cast<NodeId>(i + 1)));
  }
  std::string base = list.Serialize();
  for (int i = 0; i < 100; ++i) {
    size_t cut = rng.Uniform(base.size());
    auto res = EventList::Deserialize(base.substr(0, cut));
    EXPECT_FALSE(res.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDeserializers,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace hgs::workload
