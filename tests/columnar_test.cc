// Property and corruption tests for the kColumnar block codec: random event
// workloads round-trip byte-identically through the columnar container,
// truncated / bit-flipped blocks fail with Corruption (never crash or
// over-read — this binary runs under the ASan/UBSan CI job), and the
// per-block dictionaries handle their edge cases (no attributes at all, one
// huge value, all-identical keys).

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/columnar.h"
#include "common/compression.h"
#include "common/rng.h"
#include "delta/delta.h"
#include "delta/event.h"
#include "delta/eventlist.h"
#include "tgi/metadata.h"
#include "workload/generators.h"

namespace hgs {
namespace {

// Chunks a well-formed generated stream into eventlist_size lists, the
// shape the TGI builder stores.
std::vector<EventList> MakeEventLists(uint64_t num_events, uint64_t seed,
                                      size_t chunk = 250) {
  workload::WikiGrowthOptions wopts;
  wopts.num_events = num_events;
  wopts.attr_event_prob = 0.2;
  wopts.seed = seed;
  std::vector<Event> events = workload::GenerateWikiGrowth(wopts);
  workload::ChurnOptions copts;
  copts.num_events = num_events / 2;
  copts.seed = seed + 1;
  events = workload::AugmentWithChurn(std::move(events), copts);

  std::vector<EventList> lists;
  for (size_t i = 0; i < events.size(); i += chunk) {
    size_t end = std::min(events.size(), i + chunk);
    EventList el(events[i].time - 1, events[end - 1].time);
    for (size_t j = i; j < end; ++j) el.Append(events[j]);
    lists.push_back(std::move(el));
  }
  return lists;
}

// Round-trips one legacy payload through the codec and checks every
// contract: the columnar form is chosen, Decompress is byte-exact, and
// DecompressShared is a zero-copy window that the whole-value decoder
// accepts.
template <typename T>
void ExpectColumnarRoundTrip(const T& obj, ValueSchema schema) {
  std::string legacy = obj.Serialize();
  std::string packed = Compress(legacy, CompressionKind::kColumnar, schema);
  ASSERT_FALSE(packed.empty());

  // Byte-exact materializing inverse, regardless of which arm won.
  auto raw = Decompress(packed);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(*raw, legacy);

  // Zero-copy inverse: whenever the columnar arm won the per-block size
  // race, the result must window the stored buffer. When LZ won (huge
  // repetitive values compress better byte-wise) a materializing decode is
  // the correct outcome.
  SharedValue stored{packed};
  auto shared = DecompressShared(stored);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  if (packed[0] == static_cast<char>(CompressionKind::kColumnar)) {
    EXPECT_EQ(shared->owner(), stored.owner());
  }

  // The windowed payload decodes to the original object.
  auto decoded = T::Deserialize(shared->view());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, obj);
}

TEST(ColumnarEventListTest, RandomWorkloadsRoundTrip) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    for (const EventList& el : MakeEventLists(4'000, seed)) {
      ExpectColumnarRoundTrip(el, ValueSchema::kEventList);
    }
  }
}

TEST(ColumnarEventListTest, ColumnarBeatsLzOnEventPayloads) {
  size_t columnar_wins = 0, total = 0;
  for (const EventList& el : MakeEventLists(4'000, 3)) {
    std::string legacy = el.Serialize();
    std::string packed =
        Compress(legacy, CompressionKind::kColumnar, ValueSchema::kEventList);
    std::string lz = Compress(legacy, CompressionKind::kLz);
    EXPECT_LE(packed.size(), lz.size());  // never worse by construction
    ++total;
    if (!packed.empty() &&
        packed[0] == static_cast<char>(CompressionKind::kColumnar)) {
      ++columnar_wins;
    }
  }
  // The columnar arm must actually win on typical event blocks, not just
  // fall back to LZ.
  EXPECT_GT(columnar_wins, total / 2);
}

TEST(ColumnarEventListTest, EmptyListRoundTrips) {
  ExpectColumnarRoundTrip(EventList(5, 10), ValueSchema::kEventList);
}

TEST(ColumnarDeltaTest, SnapshotAndTombstoneDeltasRoundTrip) {
  for (uint64_t seed : {1u, 9u}) {
    for (const EventList& el : MakeEventLists(3'000, seed, 500)) {
      Delta d;
      el.ApplyTo(&d);
      d.Compact();
      ExpectColumnarRoundTrip(d, ValueSchema::kDelta);
    }
  }
  // Explicit tombstones and flipped (dst < src) directed edges.
  Delta d;
  d.PutNode(1, NodeRecord{.attrs = Attributes{{"role", "hub"}}});
  d.TombstoneNode(2);
  d.PutEdge(EdgeKey(3, 4), EdgeRecord{.src = 4, .dst = 3, .directed = true, .attrs = {}});
  d.PutEdge(EdgeKey(5, 5), EdgeRecord{.src = 5, .dst = 5, .directed = false, .attrs = {}});
  d.TombstoneEdge(EdgeKey(1, 9));
  d.Compact();
  ExpectColumnarRoundTrip(d, ValueSchema::kDelta);
}

TEST(ColumnarVersionChainTest, SegmentsRoundTrip) {
  Rng rng(11);
  tgi::VersionChainSegment seg;
  seg.node = 1234;
  seg.tsid = 7;
  seg.pid = 3;
  Timestamp t = 1000;
  for (uint32_t i = 0; i < 200; ++i) {
    tgi::VersionEntry e;
    e.tsid = seg.tsid;
    e.eventlist_index = i;
    e.pid = static_cast<MicroPartitionId>(rng.Next() % 16);
    e.first_time = t;
    t += static_cast<Timestamp>(rng.Next() % 50);
    e.last_time = t;
    e.event_count = static_cast<uint32_t>(rng.Next() % 100);
    seg.entries.push_back(e);
  }
  ExpectColumnarRoundTrip(seg, ValueSchema::kVersionChain);
}

// -- dictionary edge cases ---------------------------------------------------

TEST(ColumnarDictTest, NoAttributesAtAll) {
  EventList el(0, 100);
  for (Timestamp t = 1; t <= 50; ++t) {
    el.Append(Event::AddNode(t, static_cast<NodeId>(t)));
    el.Append(Event::AddEdge(t, static_cast<NodeId>(t), 0));
  }
  el.Sort();
  ExpectColumnarRoundTrip(el, ValueSchema::kEventList);
}

TEST(ColumnarDictTest, SingleHugeValue) {
  std::string huge(1 << 20, 'x');
  huge[12345] = 'y';
  EventList el(0, 100);
  el.Append(Event::SetNodeAttr(1, 7, "payload", huge));
  ExpectColumnarRoundTrip(el, ValueSchema::kEventList);
}

TEST(ColumnarDictTest, AllIdenticalKeysAndValues) {
  EventList el(0, 10'000);
  std::string prev;
  for (Timestamp t = 1; t <= 500; ++t) {
    el.Append(Event::SetNodeAttr(t, static_cast<NodeId>(t % 7), "status",
                                 "active", prev));
    prev = "active";
  }
  std::string legacy = el.Serialize();
  std::string packed =
      Compress(legacy, CompressionKind::kColumnar, ValueSchema::kEventList);
  ExpectColumnarRoundTrip(el, ValueSchema::kEventList);
  // A 1-entry dictionary must shrink the block below the stored form.
  EXPECT_LT(packed.size(), legacy.size());
}

// -- corruption: truncation and bit flips ------------------------------------

std::string ColumnarPayloadOf(const EventList& el) {
  std::string packed = Compress(el.Serialize(), CompressionKind::kColumnar,
                                ValueSchema::kEventList);
  // Strip the compression envelope: tag byte + raw-size varint.
  SharedValue stored{packed};
  auto shared = DecompressShared(stored);
  EXPECT_TRUE(shared.ok());
  std::string payload(shared->view());
  EXPECT_TRUE(IsColumnarPayload(payload));
  return payload;
}

TEST(ColumnarCorruptionTest, EveryTruncationFailsCleanly) {
  EventList el = MakeEventLists(600, 5)[0];
  std::string payload = ColumnarPayloadOf(el);
  for (size_t len = 0; len < payload.size(); ++len) {
    auto r = EventList::Deserialize(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes decoded";
  }
}

TEST(ColumnarCorruptionTest, EveryPayloadBitFlipIsCorruption) {
  EventList el = MakeEventLists(600, 6)[0];
  std::string payload = ColumnarPayloadOf(el);
  // The container checksum covers every byte, so any single-bit flip past
  // the magic must surface as Corruption (a flip inside the magic makes the
  // payload route to the legacy decoder, whose own checksum rejects it).
  for (size_t pos = 0; pos < payload.size(); ++pos) {
    for (int bit : {0, 3, 7}) {
      std::string bad = payload;
      bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
      auto r = EventList::Deserialize(bad);
      EXPECT_FALSE(r.ok()) << "flip at " << pos << " bit " << bit;
    }
  }
}

TEST(ColumnarCorruptionTest, CompressedBlockBitFlipsNeverYieldWrongBytes) {
  EventList el = MakeEventLists(600, 8)[0];
  std::string legacy = el.Serialize();
  std::string packed =
      Compress(legacy, CompressionKind::kColumnar, ValueSchema::kEventList);
  ASSERT_EQ(packed[0], static_cast<char>(CompressionKind::kColumnar));
  // Flips in the envelope header can reroute to another codec arm, so the
  // guarantee there is "no crash, never silently the original bytes".
  for (size_t pos = 0; pos < packed.size(); ++pos) {
    std::string bad = packed;
    bad[pos] = static_cast<char>(bad[pos] ^ 1);
    auto r = Decompress(bad);
    EXPECT_TRUE(!r.ok() || *r != legacy)
        << "flip at " << pos << " still decoded to the original";
  }
}

TEST(ColumnarCorruptionTest, ForgedColumnCountsAndIdsRejected) {
  // Hand-build syntactically plausible containers with hostile fields;
  // Parse must reject them without over-reading.
  {
    // Declared column lengths exceeding the body.
    ColumnarBlockWriter w(ValueSchema::kEventList);
    w.AddColumn("abc");
    std::string ok = w.Finish();
    auto parsed = ColumnarBlockReader::Parse(ok, ValueSchema::kEventList);
    ASSERT_TRUE(parsed.ok());
    auto wrong_schema = ColumnarBlockReader::Parse(ok, ValueSchema::kDelta);
    EXPECT_FALSE(wrong_schema.ok());
    EXPECT_FALSE(parsed->Column(5).ok());  // missing column
  }
  {
    // An out-of-range dictionary id must latch the reader, not index OOB.
    StringDictBuilder b;
    b.Add("only");
    b.Build();
    std::string col = b.Serialize();
    auto dict = StringDictView::Parse(col);
    ASSERT_TRUE(dict.ok());
    BinaryReader r("");
    EXPECT_EQ(dict->Get(99, &r), std::string_view());
    EXPECT_TRUE(r.failed());
  }
}

TEST(ColumnarOpaqueTest, UnregisteredSchemaFallsBackToLz) {
  std::string input(4096, 'a');
  EXPECT_FALSE(HasColumnarCodec(ValueSchema::kOpaque));
  std::string packed =
      Compress(input, CompressionKind::kColumnar, ValueSchema::kOpaque);
  std::string lz = Compress(input, CompressionKind::kLz);
  EXPECT_EQ(packed, lz);
  auto raw = Decompress(packed);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, input);
}

TEST(ColumnarOpaqueTest, NonCanonicalPayloadFallsBack) {
  // A payload that is not a canonical EventList serialization must never be
  // rewritten columnar — the codec falls back to the byte arms.
  std::string junk = "definitely not an eventlist";
  std::string packed =
      Compress(junk, CompressionKind::kColumnar, ValueSchema::kEventList);
  auto raw = Decompress(packed);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, junk);
}

}  // namespace
}  // namespace hgs
