// Partition-scoped epoch invalidation (live-ingest MVCC).
//
// A publish used to bump one global epoch, which changed every cache key at
// once: one AppendBatch colded the entire warm set. Publishes now carry the
// exact (table, partition) scopes the writer touched, readers pin the whole
// epoch map per query, and the refresh sweeps only entries whose scope was
// re-published. These tests assert the precision of that contract — reads
// of untouched warm scopes perform zero round trips and zero Deserialize
// calls across a publish — and race pinned old-epoch readers against a
// rapid publish loop (the TSan job runs this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kvstore/cluster.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster(size_t nodes = 2) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.latency.enabled = false;
  return opts;
}

std::vector<Event> SmallHistory(uint64_t seed = 1, uint64_t n = 6'000) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 7});
}

TGIOptions SmallOptions() {
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

// ---------------------------------------------------------------------------
// Epoch-map unit tests (Cluster level).
// ---------------------------------------------------------------------------

TEST(EpochVectorTest, PublishTouchedMovesOnlyTouchedScopes) {
  Cluster cluster(FastCluster());
  EpochKey a = MakeEpochKey("deltas", 3);
  EpochKey b = MakeEpochKey("deltas", 7);
  EpochVectorRef before = cluster.epochs();
  EXPECT_EQ(before->SubEpoch(a), before->SubEpoch(b));

  cluster.PublishTouched({a});
  EpochVectorRef after = cluster.epochs();
  EXPECT_EQ(after->global, before->global + 1);
  EXPECT_EQ(after->SubEpoch(a), after->global);
  EXPECT_EQ(after->SubEpoch(b), before->SubEpoch(b));  // untouched scope
  // The pinned old map is immutable: the publish didn't mutate it.
  EXPECT_EQ(before->SubEpoch(a), before->base);
}

TEST(EpochVectorTest, BumpPublishEpochInvalidatesEveryScope) {
  Cluster cluster(FastCluster());
  EpochKey a = MakeEpochKey("deltas", 3);
  cluster.PublishTouched({a});
  EpochVectorRef scoped = cluster.epochs();
  cluster.BumpPublishEpoch();
  EpochVectorRef blanket = cluster.epochs();
  EXPECT_EQ(blanket->global, scoped->global + 1);
  // Every scope — touched before or never — moves to the new base.
  EXPECT_EQ(blanket->SubEpoch(a), blanket->global);
  EXPECT_EQ(blanket->SubEpoch(MakeEpochKey("versions", 99)), blanket->global);
}

TEST(EpochVectorTest, ConcurrentPublishesAndReadersAreSafe) {
  // Raw swap-vs-read race: every reader sees an immutable, internally
  // consistent map; globals observed by one reader never go backwards.
  Cluster cluster(FastCluster());
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        EpochVectorRef e = cluster.epochs();
        ASSERT_GE(e->global, last);
        last = e->global;
        for (uint64_t p = 0; p < 8; ++p) {
          ASSERT_LE(e->SubEpoch(MakeEpochKey("deltas", p)), e->global);
        }
      }
    });
  }
  for (uint64_t i = 0; i < 2'000; ++i) {
    cluster.PublishTouched({MakeEpochKey("deltas", i % 8),
                            MakeEpochKey("versions", i % 5)});
    if (i % 100 == 99) cluster.BumpPublishEpoch();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GE(cluster.publish_epoch(), 2'000u);
}

// ---------------------------------------------------------------------------
// Invalidation precision across AppendBatch (the acceptance criterion).
// ---------------------------------------------------------------------------

TEST(InvalidationPrecisionTest, UntouchedWarmSpanSurvivesAppendBatch) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(91, 8'000);
  size_t half = events.size() / 2;
  std::vector<Event> first(events.begin(), events.begin() + half);
  std::vector<Event> second(events.begin() + half, events.end());
  ASSERT_TRUE(tgi.BuildFrom(first).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  // Warm the first half's spans through both cache tiers.
  Timestamp t1 = first[first.size() / 2].time;
  ASSERT_TRUE(qm->GetSnapshot(t1).ok());
  FetchStats warm;
  auto snap_warm = qm->GetSnapshot(t1, &warm);
  ASSERT_TRUE(snap_warm.ok());
  ASSERT_EQ(warm.kv_batches, 0u);
  ASSERT_EQ(warm.decodes, 0u);

  // The append builds new timespans: it touches the new spans' deltas /
  // microparts partitions and its own nodes' versions partitions — none of
  // the old spans' delta scopes.
  ASSERT_TRUE(tgi.AppendBatch(second).ok());

  // The untouched warm span must still be served entirely from cache:
  // zero physical round trips, zero Deserialize calls, across the publish.
  FetchStats post;
  auto snap_post = qm->GetSnapshot(t1, &post);
  ASSERT_TRUE(snap_post.ok());
  EXPECT_EQ(post.kv_batches, 0u);
  EXPECT_EQ(post.decodes, 0u);
  EXPECT_GT(post.cache_hits, 0u);
  EXPECT_GT(post.decode_hits, 0u);
  EXPECT_TRUE(*snap_post == *snap_warm);
  // The refresh that ran inside that query swept precisely: warm entries
  // survived, and re-published scopes were dropped.
  EXPECT_GT(post.cache_entries_retained, 0u);
  EXPECT_EQ(post.cache_entries_retained, qm->CacheEntriesRetained());

  // The touched scopes do miss: the new span's rows are necessarily cold.
  Timestamp t2 = workload::EndTime(events);
  FetchStats fresh;
  auto snap_new = qm->GetSnapshot(t2, &fresh);
  ASSERT_TRUE(snap_new.ok());
  EXPECT_GT(fresh.kv_batches, 0u);
  EXPECT_GT(fresh.decodes, 0u);
  EXPECT_TRUE(*snap_new == workload::ReplayToGraph(events, t2));
}

TEST(InvalidationPrecisionTest, TouchedVersionScopeInvalidatesWarmHistory) {
  // The flip side of precision: a node written by the append sits in a
  // touched versions partition, so its warm version chain must be swept
  // (a stale chain would lose the appended events), while the old spans'
  // eventlists it references stay warm.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(93, 8'000);
  size_t half = events.size() / 2;
  ASSERT_TRUE(tgi.BuildFrom({events.begin(), events.begin() + half}).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  // A node touched in both halves.
  NodeId busy = events.front().u;
  {
    std::unordered_map<NodeId, int> touches;
    for (size_t i = 0; i < events.size(); ++i) {
      int weight = i < half ? 1 : 1'000'000;
      touches[events[i].u] += weight;
      if (events[i].IsEdgeEvent()) touches[events[i].v] += weight;
    }
    int best = 0;
    for (auto [id, cnt] : touches) {
      if (cnt > best && cnt > 1'000'000) {
        best = cnt;
        busy = id;
      }
    }
  }
  Timestamp end_first = events[half - 1].time;
  ASSERT_TRUE(qm->GetNodeHistory(busy, 0, end_first).ok());

  ASSERT_TRUE(tgi.AppendBatch({events.begin() + half, events.end()}).ok());
  FetchStats post;
  Timestamp end = workload::EndTime(events);
  auto hist = qm->GetNodeHistory(busy, 0, end, &post);
  ASSERT_TRUE(hist.ok());
  // The version scan re-ran (its partition was touched)...
  EXPECT_GT(post.kv_batches, 0u);
  EXPECT_GT(post.cache_entries_invalidated, 0u);
  // ...and the history is complete, including the appended half.
  std::vector<Event> expected;
  for (const Event& e : events) {
    if (e.time > 0 && e.time <= end && e.Touches(busy)) expected.push_back(e);
  }
  ASSERT_EQ(hist->events.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(hist->events.events()[i], expected[i]);
  }
}

TEST(InvalidationPrecisionTest, CoarsePublishColdsEverything) {
  // The baseline knob: with coarse_publish_epoch the append bumps the
  // global epoch, and even the untouched warm span re-fetches.
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOptions();
  opts.coarse_publish_epoch = true;
  TGI tgi(&cluster, opts);
  auto events = SmallHistory(95, 8'000);
  size_t half = events.size() / 2;
  ASSERT_TRUE(tgi.BuildFrom({events.begin(), events.begin() + half}).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp t1 = events[half / 2].time;
  ASSERT_TRUE(qm->GetSnapshot(t1).ok());
  FetchStats warm;
  ASSERT_TRUE(qm->GetSnapshot(t1, &warm).ok());
  ASSERT_EQ(warm.kv_batches, 0u);

  ASSERT_TRUE(tgi.AppendBatch({events.begin() + half, events.end()}).ok());
  FetchStats post;
  auto snap = qm->GetSnapshot(t1, &post);
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(post.kv_batches, 0u);  // blanket invalidation: warm set gone
  EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t1));
}

// ---------------------------------------------------------------------------
// Pinned old-epoch readers vs a rapid publish loop (TSan target).
// ---------------------------------------------------------------------------

TEST(InvalidationRaceTest, PinnedReadersRaceRapidPublishes) {
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOptions();
  opts.events_per_timespan = 1'000;
  TGI tgi(&cluster, opts);
  auto events = SmallHistory(97, 8'000);
  const size_t kBatches = 8;
  size_t seed_count = events.size() / 2;
  std::vector<Event> seed_events(events.begin(),
                                 events.begin() + seed_count);
  ASSERT_TRUE(tgi.BuildFrom(seed_events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp seed_end = seed_events.back().time;

  // Readers keep querying the seeded prefix — each query pins whatever
  // epoch map is current — while the writer appends and publishes batch
  // after batch, sweeping the caches underneath them.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Timestamp t = 1 + (r * 37 + i * 101) % seed_end;
        FetchStats stats;
        if (!qm->GetSnapshot(t, &stats).ok()) failures.fetch_add(1);
        if (!qm->GetNodeHistory(events[i % seed_count].u, 0, t).ok()) {
          failures.fetch_add(1);
        }
        ++i;
      }
    });
  }
  size_t per_batch = (events.size() - seed_count) / kBatches;
  for (size_t b = 0; b < kBatches; ++b) {
    auto begin = events.begin() + seed_count + b * per_batch;
    auto end = b + 1 == kBatches ? events.end() : begin + per_batch;
    ASSERT_TRUE(tgi.AppendBatch({begin, end}).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles, the full history reads back exactly.
  Timestamp end = workload::EndTime(events);
  auto snap = qm->GetSnapshot(end);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(*snap == workload::ReplayToGraph(events, end));
}

}  // namespace
}  // namespace hgs
