// Tests for incremental labelled-wedge pattern counting (Section 5.2's
// auxiliary-index example): the incremental state must track the brute-force
// count across every version of randomized labelled histories, including
// label churn, edge churn and node removal.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/pattern.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs::taf {
namespace {

const WedgePattern kAuthorPaperAuthor{
    .label_key = "EntityType", .center = "Paper",
    .left = "Author", .right = "Author"};

const WedgePattern kMixedWedge{
    .label_key = "EntityType", .center = "Author",
    .left = "Paper", .right = "Author"};

TEST(WedgeCountTest, BruteForceBasics) {
  Graph g;
  g.AddNode(1, Attributes{{"EntityType", "Paper"}});
  g.AddNode(2, Attributes{{"EntityType", "Author"}});
  g.AddNode(3, Attributes{{"EntityType", "Author"}});
  g.AddNode(4, Attributes{{"EntityType", "Author"}});
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(1, 4);
  // Author-Paper-Author wedges: C(3,2) = 3.
  EXPECT_DOUBLE_EQ(CountWedges(g, kAuthorPaperAuthor), 3.0);
  // Author-centered Paper×Author wedges: authors 2,3,4 have 1 paper and 0
  // author neighbors each -> 0.
  EXPECT_DOUBLE_EQ(CountWedges(g, kMixedWedge), 0.0);
  g.AddEdge(2, 3);  // now authors 2 and 3 see (1 paper × 1 author)
  EXPECT_DOUBLE_EQ(CountWedges(g, kMixedWedge), 2.0);
}

TEST(WedgeStateTest, FromGraphMatchesBruteForce) {
  auto events = workload::GenerateDblp({.num_authors = 100,
                                        .num_papers = 300,
                                        .authors_per_paper = 3,
                                        .num_attr_events = 0});
  Graph g = workload::ReplayToGraph(events, kMaxTimestamp);
  WedgeState state = WedgeState::FromGraph(g, kAuthorPaperAuthor);
  EXPECT_DOUBLE_EQ(state.count(), CountWedges(g, kAuthorPaperAuthor));
  EXPECT_GT(state.count(), 0.0);
}

class WedgeIncrementalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WedgeIncrementalTest, TracksBruteForceThroughRandomHistory) {
  // A labelled history with structure churn AND label churn.
  auto events = workload::GenerateDblp({.num_authors = 60,
                                        .num_papers = 150,
                                        .authors_per_paper = 3,
                                        .num_attr_events = 400,
                                        .seed = GetParam()});
  // Interleave edge deletions for extra churn.
  events = workload::AugmentWithChurn(std::move(events),
                                      {.num_events = 300,
                                       .delete_prob = 0.6,
                                       .seed = GetParam() + 1});

  for (const WedgePattern& pattern : {kAuthorPaperAuthor, kMixedWedge}) {
    Graph g;
    WedgeState state = WedgeState::FromGraph(g, pattern);
    int checked = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      state.ApplyEvent(g, events[i], pattern);
      ApplyEventToGraph(events[i], &g);
      // Full brute-force checks are O(E); sample them.
      if (i % 97 == 0 || i + 1 == events.size()) {
        ASSERT_DOUBLE_EQ(state.count(), CountWedges(g, pattern))
            << "event " << i << " (" << EventTypeToString(events[i].type)
            << ")";
        ++checked;
      }
    }
    EXPECT_GT(checked, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WedgeIncrementalTest,
                         ::testing::Values(3, 7, 13));

TEST(WedgePatternOnSoTSTest, IncrementalEqualsFreshOverVersions) {
  // End to end: fetch 2-hop temporal subgraphs from a TGI and run the
  // pattern counter both ways through NodeCompute{Temporal,Delta}.
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.latency.enabled = false;
  Cluster cluster(copts);
  TGIOptions topts;
  topts.events_per_timespan = 2'000;
  topts.eventlist_size = 100;
  topts.checkpoint_interval = 400;
  topts.micro_delta_size = 64;
  topts.num_horizontal_partitions = 2;
  TGI tgi(&cluster, topts);
  auto events = workload::GenerateDblp({.num_authors = 300,
                                        .num_papers = 900,
                                        .authors_per_paper = 3,
                                        .num_attr_events = 3'000,
                                        .seed = 21});
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  TAFContext ctx(qm.get(), 2);

  Timestamp end = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, end);
  std::vector<NodeId> seeds;
  final_state.ForEachNode([&](NodeId id, const NodeRecord& rec) {
    auto t = rec.attrs.Get("EntityType");
    if (t && *t == "Paper" && final_state.Neighbors(id).size() >= 3 &&
        seeds.size() < 5) {
      seeds.push_back(id);
    }
  });
  ASSERT_FALSE(seeds.empty());
  auto sots =
      ctx.Subgraphs(2).TimeRange(end / 2, end).WithSeeds(seeds).Fetch()
          .value();

  const WedgePattern& pattern = kAuthorPaperAuthor;
  std::function<double(const Graph&)> fresh = [&](const Graph& g) {
    return CountWedges(g, pattern);
  };
  // The value type of the incremental operator carries the auxiliary index.
  std::function<WedgeState(const Graph&)> seed_state = [&](const Graph& g) {
    return WedgeState::FromGraph(g, pattern);
  };
  std::function<WedgeState(const Graph&, const WedgeState&, const Event&)>
      advance = [&](const Graph& before, const WedgeState& prev,
                    const Event& e) {
        WedgeState next = prev;
        next.ApplyEvent(before, e, pattern);
        return next;
      };
  auto fresh_series = sots.NodeComputeTemporal(fresh);
  auto inc_series = sots.NodeComputeDelta(seed_state, advance);
  ASSERT_EQ(fresh_series.size(), inc_series.size());
  size_t versions_checked = 0;
  for (size_t i = 0; i < fresh_series.size(); ++i) {
    ASSERT_EQ(fresh_series[i].size(), inc_series[i].size());
    for (size_t j = 0; j < fresh_series[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(fresh_series[i][j].second,
                       inc_series[i][j].second.count())
          << "subgraph " << i << " version " << j;
      ++versions_checked;
    }
  }
  EXPECT_GT(versions_checked, 20u);
}

}  // namespace
}  // namespace hgs::taf
