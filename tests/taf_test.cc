// Tests for the Temporal Graph Analysis Framework: NodeT/SubgraphT
// semantics, SoN/SoTS operators against brute-force references, the
// incremental-vs-fresh computation equivalence (Fig 8), Compare/Evolution
// (Fig 7), temporal aggregation, and worker-count invariance.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/metrics.h"
#include "taf/operators.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs::taf {
namespace {

ClusterOptions FastCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.latency.enabled = false;
  return opts;
}

TGIOptions SmallTGI() {
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

// Shared fixture: one built index over a generated history.
class TafFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new Cluster(FastCluster());
    events_ = new std::vector<Event>(MakeHistory());
    tgi_ = new TGI(cluster_, SmallTGI());
    ASSERT_TRUE(tgi_->BuildFrom(*events_).ok());
    auto qm = tgi_->OpenQueryManager(4);
    ASSERT_TRUE(qm.ok());
    qm_ = qm->release();
  }
  static void TearDownTestSuite() {
    delete qm_;
    delete tgi_;
    delete events_;
    delete cluster_;
    qm_ = nullptr;
    tgi_ = nullptr;
    events_ = nullptr;
    cluster_ = nullptr;
  }

  static std::vector<Event> MakeHistory() {
    workload::WikiGrowthOptions w;
    w.num_events = 2'500;
    w.seed = 101;
    auto events = workload::GenerateWikiGrowth(w);
    return workload::AugmentWithChurn(std::move(events),
                                      {.num_events = 2'500, .seed = 102});
  }

  static Cluster* cluster_;
  static std::vector<Event>* events_;
  static TGI* tgi_;
  static TGIQueryManager* qm_;
};

Cluster* TafFixture::cluster_ = nullptr;
std::vector<Event>* TafFixture::events_ = nullptr;
TGI* TafFixture::tgi_ = nullptr;
TGIQueryManager* TafFixture::qm_ = nullptr;

TEST_F(TafFixture, FetchAllNodesMatchesReplayPopulation) {
  TAFContext ctx(qm_, 4);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  // Every node that ever existed is a temporal node.
  std::unordered_set<NodeId> ever;
  for (const Event& e : *events_) {
    if (e.type == EventType::kAddNode) ever.insert(e.u);
  }
  EXPECT_EQ(son->size(), ever.size());
}

TEST_F(TafFixture, NodeTStateMatchesReplayAtProbes) {
  TAFContext ctx(qm_, 4);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Rng rng(1);
  for (Timestamp t : {to / 3, to / 2, to}) {
    Graph expected = workload::ReplayToGraph(*events_, t);
    for (int trial = 0; trial < 10; ++trial) {
      const NodeT& n = son->nodes()[rng.Uniform(son->size())];
      StaticNodeView v = n.GetStateAt(t);
      EXPECT_EQ(v.exists, expected.HasNode(n.id()));
      if (v.exists) {
        EXPECT_EQ(v.Degree(), expected.Neighbors(n.id()).size());
        EXPECT_EQ(v.attrs, expected.GetNode(n.id())->attrs);
      }
    }
  }
}

TEST_F(TafFixture, VersionIteratorAgreesWithGetVersions) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  // Find a node with a few versions.
  const NodeT* busy = nullptr;
  for (const NodeT& n : son->nodes()) {
    if (n.VersionCount() >= 3) {
      busy = &n;
      break;
    }
  }
  ASSERT_NE(busy, nullptr);
  auto versions = busy->GetVersions();
  auto it = busy->GetIterator();
  size_t idx = 1;
  while (it.HasNextEvent()) {
    StaticNodeView v = it.GetNextVersion();
    ASSERT_LT(idx, versions.size());
    EXPECT_EQ(v.Degree(), versions[idx].second.Degree());
    EXPECT_EQ(v.attrs, versions[idx].second.attrs);
    ++idx;
  }
  EXPECT_EQ(idx, versions.size());
}

TEST_F(TafFixture, TimesliceProducesStaticStates) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Timestamp t = to / 2;
  SoN sliced = son->Timeslice(t);
  Graph expected = workload::ReplayToGraph(*events_, t);
  for (const NodeT& n : sliced.nodes()) {
    EXPECT_EQ(n.VersionCount(), 0u);
    StaticNodeView v = n.GetStateAt(t);
    EXPECT_EQ(v.exists, expected.HasNode(n.id()));
  }
}

TEST_F(TafFixture, GetGraphAtMatchesReplaySubgraph) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Timestamp t = to * 2 / 3;
  Graph got = son->GetGraphAt(t);
  Graph expected = workload::ReplayToGraph(*events_, t);
  EXPECT_EQ(got.NumNodes(), expected.NumNodes());
  EXPECT_EQ(got.NumEdges(), expected.NumEdges());
}

TEST_F(TafFixture, SelectByIdPredicate) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).WhereId([](NodeId id) {
    return id < 50;
  }).Fetch();
  ASSERT_TRUE(son.ok());
  for (const NodeT& n : son->nodes()) EXPECT_LT(n.id(), 50u);
  EXPECT_GT(son->size(), 0u);
}

TEST_F(TafFixture, NodeComputeDegreeMatchesBruteForce) {
  TAFContext ctx(qm_, 3);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Graph final_state = workload::ReplayToGraph(*events_, to);
  std::function<double(const NodeT&)> final_degree =
      [to](const NodeT& n) {
        return static_cast<double>(n.GetStateAt(to).Degree());
      };
  auto degrees = son->NodeCompute(final_degree);
  for (size_t i = 0; i < son->size(); ++i) {
    NodeId id = son->nodes()[i].id();
    double expected = final_state.HasNode(id)
                          ? static_cast<double>(final_state.Neighbors(id).size())
                          : 0.0;
    EXPECT_DOUBLE_EQ(degrees[i], expected) << "node " << id;
  }
}

TEST_F(TafFixture, WorkerCountDoesNotChangeResults) {
  Timestamp to = workload::EndTime(*events_);
  std::function<double(const NodeT&)> f = [](const NodeT& n) {
    return static_cast<double>(n.VersionCount());
  };
  std::vector<double> results_1, results_4;
  {
    TAFContext ctx(qm_, 1);
    auto son = ctx.Nodes().TimeRange(0, to).Fetch();
    ASSERT_TRUE(son.ok());
    results_1 = son->NodeCompute(f);
  }
  {
    TAFContext ctx(qm_, 4);
    auto son = ctx.Nodes().TimeRange(0, to).Fetch();
    ASSERT_TRUE(son.ok());
    results_4 = son->NodeCompute(f);
  }
  EXPECT_EQ(results_1, results_4);
}

TEST_F(TafFixture, NodeComputeTemporalVisitsEveryChangePoint) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  std::function<double(const StaticNodeView&)> degree =
      [](const StaticNodeView& v) { return static_cast<double>(v.Degree()); };
  auto series = son->NodeComputeTemporal(degree);
  for (size_t i = 0; i < son->size(); ++i) {
    EXPECT_EQ(series[i].size(), son->nodes()[i].VersionCount() + 1);
  }
}

TEST_F(TafFixture, CustomTimepointSelector) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  // Fig 9a: start, middle, end.
  std::function<std::vector<Timestamp>(const NodeT&)> three_points =
      [](const NodeT& n) {
        return std::vector<Timestamp>{
            n.GetStartTime(), (n.GetStartTime() + n.GetEndTime()) / 2,
            n.GetEndTime()};
      };
  std::function<double(const StaticNodeView&)> degree =
      [](const StaticNodeView& v) { return static_cast<double>(v.Degree()); };
  auto series = son->NodeComputeTemporal(degree, three_points);
  for (const auto& s : series) EXPECT_EQ(s.size(), 3u);
}

TEST_F(TafFixture, EvolutionOfDensityIsComputable) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Series evol = son->Evolution(metrics::Density, 10);
  ASSERT_EQ(evol.size(), 10u);
  EXPECT_EQ(evol.front().first, son->GetStartTime());
  EXPECT_EQ(evol.back().first, son->GetEndTime());
  for (const auto& [t, v] : evol) EXPECT_GE(v, 0.0);
}

TEST_F(TafFixture, SubgraphFetchAndVersions) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  Graph final_state = workload::ReplayToGraph(*events_, to);
  NodeId hub = algo::HighestDegreeNode(final_state);
  Timestamp from = to / 2;
  FetchStats stats;
  auto sots =
      ctx.Subgraphs(1).TimeRange(from, to).WithSeeds({hub}).Fetch(&stats);
  ASSERT_TRUE(sots.ok());
  ASSERT_EQ(sots->size(), 1u);
  // Member histories come back pre-sorted per eventlist chunk, so the merge
  // is a k-way merge over sorted runs — the fetch never re-sorts a chunk
  // from scratch.
  EXPECT_GT(stats.taf_merge_skipped_sorts, 0u);
  const SubgraphT& sg = sots->subgraphs()[0];
  // Version at window start equals the 1-hop induced subgraph then.
  Graph at_from = workload::ReplayToGraph(*events_, from);
  if (at_from.HasNode(hub)) {
    Graph v0 = sg.GetVersionAt(from);
    Graph want = algo::InducedSubgraph(
        at_from, algo::KHopNeighborhood(at_from, hub, 1));
    EXPECT_EQ(v0.NumNodes(), want.NumNodes());
  }
}

TEST_F(TafFixture, IncrementalEqualsFreshLabelCount) {
  // Fig 8's central property: NodeComputeDelta computes exactly what
  // NodeComputeTemporal computes.
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  Graph final_state = workload::ReplayToGraph(*events_, to);
  // Take a few well-connected seeds.
  std::vector<NodeId> seeds;
  for (NodeId id : final_state.NodeIds()) {
    if (final_state.Neighbors(id).size() >= 3) seeds.push_back(id);
    if (seeds.size() == 5) break;
  }
  ASSERT_FALSE(seeds.empty());
  auto sots =
      ctx.Subgraphs(1).TimeRange(to / 2, to).WithSeeds(seeds).Fetch();
  ASSERT_TRUE(sots.ok());

  std::function<double(const Graph&)> fresh = [](const Graph& g) {
    return metrics::CountLabel(g, "kind", "article");
  };
  std::function<double(const Graph&, const double&, const Event&)> inc =
      [](const Graph& before, const double& prev, const Event& e) {
        return metrics::CountLabelDelta(before, prev, e, "kind", "article");
      };
  auto fresh_series = sots->NodeComputeTemporal(fresh);
  auto inc_series = sots->NodeComputeDelta(fresh, inc);
  ASSERT_EQ(fresh_series.size(), inc_series.size());
  for (size_t i = 0; i < fresh_series.size(); ++i) {
    ASSERT_EQ(fresh_series[i].size(), inc_series[i].size()) << "subgraph " << i;
    for (size_t j = 0; j < fresh_series[i].size(); ++j) {
      EXPECT_EQ(fresh_series[i][j].first, inc_series[i][j].first);
      EXPECT_DOUBLE_EQ(fresh_series[i][j].second, inc_series[i][j].second)
          << "subgraph " << i << " version " << j;
    }
  }
}

TEST_F(TafFixture, ComparePerNodeDegrees) {
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  Timestamp t1 = to / 2;
  SoN early = son->Timeslice(t1);
  SoN late = son->Timeslice(to);
  std::function<double(const NodeT&)> deg = [](const NodeT& n) {
    return static_cast<double>(n.GetStateAt(n.GetStartTime()).Degree());
  };
  auto diffs = ComparePerNode(late, early, deg);
  // Growth-only nodes can only gain or keep degree... but churn deletes
  // edges too, so just verify the bookkeeping: same id set, finite values.
  EXPECT_EQ(diffs.size(), son->size());
  Graph g_early = workload::ReplayToGraph(*events_, t1);
  Graph g_late = workload::ReplayToGraph(*events_, to);
  for (const auto& [id, diff] : diffs) {
    double want = 0;
    if (g_late.HasNode(id)) {
      want += static_cast<double>(g_late.Neighbors(id).size());
    }
    if (g_early.HasNode(id)) {
      want -= static_cast<double>(g_early.Neighbors(id).size());
    }
    EXPECT_DOUBLE_EQ(diff, want) << "node " << id;
  }
}

TEST_F(TafFixture, CompareSeriesCommunities) {
  // Fig 7b shape: compare two attribute-defined subsets over time.
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  auto son = ctx.Nodes().TimeRange(0, to).Fetch();
  ASSERT_TRUE(son.ok());
  SoN even = son->Select([](const NodeT& n) { return n.id() % 2 == 0; });
  SoN odd = son->Select([](const NodeT& n) { return n.id() % 2 == 1; });
  auto result = CompareSeries(even, odd, CountExisting);
  ASSERT_FALSE(result.a.empty());
  ASSERT_EQ(result.a.size(), result.b.size());
  // Counts never exceed the subset sizes.
  for (const auto& [t, v] : result.a) EXPECT_LE(v, even.size());
  for (const auto& [t, v] : result.b) EXPECT_LE(v, odd.size());
}

TEST_F(TafFixture, WithIdsDeduplicatesExplicitIds) {
  // WithIds({x, x, y}) must produce one temporal node per distinct id.
  TAFContext ctx(qm_, 2);
  Timestamp to = workload::EndTime(*events_);
  NodeId a = kInvalidNodeId;
  NodeId b = kInvalidNodeId;
  for (const Event& e : *events_) {
    if (e.type != EventType::kAddNode) continue;
    if (a == kInvalidNodeId) {
      a = e.u;
    } else if (e.u != a) {
      b = e.u;
      break;
    }
  }
  ASSERT_NE(b, kInvalidNodeId);
  auto son = ctx.Nodes().TimeRange(0, to).WithIds({a, a, b, a}).Fetch();
  ASSERT_TRUE(son.ok());
  ASSERT_EQ(son->size(), 2u);
  std::unordered_set<NodeId> got;
  for (const NodeT& n : son->nodes()) got.insert(n.id());
  EXPECT_TRUE(got.contains(a));
  EXPECT_TRUE(got.contains(b));
}

TEST_F(TafFixture, FetchReportsBulkRetrievalStats) {
  TAFContext ctx(qm_, 4);
  Timestamp to = workload::EndTime(*events_);
  FetchStats stats;
  auto son = ctx.Nodes().TimeRange(0, to).Fetch(&stats);
  ASSERT_TRUE(son.ok());
  // Every temporal node was a logical history request served through the
  // bulk primitive: refs are deduplicated, scans bounded by requests. On a
  // warm manager (the suite shares one) the merged version chains can be
  // served entirely from the decoded tier — zero scans, decode hits
  // instead.
  EXPECT_EQ(stats.node_requests, son->size());
  EXPECT_LE(stats.version_scans, stats.node_requests);
  if (stats.version_scans == 0) EXPECT_GT(stats.decode_hits, 0u);
  EXPECT_LE(stats.eventlist_fetches, stats.eventlist_refs);
}

TEST(TafDedupTest, SameTimestampInternalEventsAppliedOnce) {
  // Regression: SubgraphSetSpec::Fetch used to sort member events by time
  // only before std::unique. Internal edge events arrive once per endpoint
  // history; with several distinct events sharing one timestamp the two
  // copies can be non-adjacent after the sort, survive dedup, and be
  // double-applied during replay. The triangle below interleaves the
  // copies for every member iteration order.
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallTGI();
  TGI tgi(&cluster, opts);
  std::vector<Event> events = {
      Event::AddNode(1, 1),
      Event::AddNode(1, 2),
      Event::AddNode(1, 3),
      Event::AddEdge(2, 1, 2),
      Event::AddEdge(2, 1, 3),
      Event::AddEdge(2, 2, 3),
      // Three distinct events at one timestamp: two internal edge events
      // plus a node-attr event.
      Event::SetEdgeAttr(10, 1, 2, "w", "a"),
      Event::SetNodeAttr(10, 3, "c", "d"),
      Event::SetEdgeAttr(10, 1, 3, "w", "b"),
  };
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();

  TAFContext ctx(qm.get(), 2);
  auto sots = ctx.Subgraphs(1).TimeRange(5, 20).WithSeeds({1}).Fetch();
  ASSERT_TRUE(sots.ok());
  ASSERT_EQ(sots->size(), 1u);
  const SubgraphT& sg = sots->subgraphs()[0];
  ASSERT_EQ(sg.members().size(), 3u);
  // Exactly the three distinct t=10 events — no surviving duplicates.
  EXPECT_EQ(sg.VersionCount(), 3u);
  for (Timestamp t : sg.ChangePoints()) EXPECT_EQ(t, 10);
  // Replay applies each once: final attribute values are correct.
  Graph final_state = sg.GetVersionAt(20);
  const EdgeRecord* e12 = final_state.GetEdge(1, 2);
  ASSERT_NE(e12, nullptr);
  EXPECT_EQ(e12->attrs.Get("w").value_or(""), "a");
  const EdgeRecord* e13 = final_state.GetEdge(1, 3);
  ASSERT_NE(e13, nullptr);
  EXPECT_EQ(e13->attrs.Get("w").value_or(""), "b");
  const NodeRecord* n3 = final_state.GetNode(3);
  ASSERT_NE(n3, nullptr);
  EXPECT_EQ(n3->attrs.Get("c").value_or(""), "d");
}

TEST(TempAggregationTest, MaxMinMean) {
  Series s = {{0, 1.0}, {10, 5.0}, {20, 3.0}};
  EXPECT_DOUBLE_EQ(agg::Max(s)->second, 5.0);
  EXPECT_EQ(agg::Max(s)->first, 10);
  EXPECT_DOUBLE_EQ(agg::Min(s)->second, 1.0);
  EXPECT_DOUBLE_EQ(agg::Mean(s), 3.0);
  EXPECT_FALSE(agg::Max({}).has_value());
}

TEST(TempAggregationTest, TimeWeightedMean) {
  // Value 1 for 10 ticks, then 3 for 10 ticks -> weighted mean 2.
  Series s = {{0, 1.0}, {10, 3.0}, {20, 3.0}};
  EXPECT_NEAR(agg::TimeWeightedMean(s), 2.0, 1e-9);
}

TEST(TempAggregationTest, PeakFindsLocalMaxima) {
  Series s = {{0, 1}, {1, 5}, {2, 2}, {3, 7}, {4, 3}, {5, 4}};
  auto peaks = agg::Peak(s);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1);
  EXPECT_EQ(peaks[1], 3);
}

TEST(TempAggregationTest, SaturateFindsSettlePoint) {
  Series s = {{0, 0.0}, {1, 5.0}, {2, 9.0}, {3, 9.8}, {4, 10.0}, {5, 10.0}};
  auto sat = agg::Saturate(s, 0.05);
  ASSERT_TRUE(sat.has_value());
  EXPECT_EQ(*sat, 3);  // within 5% of 10.0 from t=3 onwards
}

TEST(TempAggregationTest, SaturateEmptyAndConstant) {
  EXPECT_FALSE(agg::Saturate({}).has_value());
  Series flat = {{0, 2.0}, {5, 2.0}};
  auto sat = agg::Saturate(flat);
  ASSERT_TRUE(sat.has_value());
  EXPECT_EQ(*sat, 0);
}

}  // namespace
}  // namespace hgs::taf
