// Correctness tests for the baseline indexes (Section 4.2): every index must
// return the same answers as a direct event replay — they differ only in
// cost, which Table 1's bench measures. A parameterized suite runs the same
// assertions over all five baselines.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baselines/copy_index.h"
#include "baselines/copy_log_index.h"
#include "baselines/delta_graph_index.h"
#include "baselines/log_index.h"
#include "baselines/node_centric_index.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.latency.enabled = false;
  return opts;
}

struct IndexFixture {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<HistoricalIndex> index;
};

using Factory = std::function<IndexFixture()>;

IndexFixture Make(const std::string& which) {
  IndexFixture f;
  f.cluster = std::make_unique<Cluster>(FastCluster());
  if (which == "log") {
    f.index = std::make_unique<LogIndex>(f.cluster.get(), 200);
  } else if (which == "copy") {
    f.index = std::make_unique<CopyIndex>(f.cluster.get(), 1);
  } else if (which == "copy_sparse") {
    f.index = std::make_unique<CopyIndex>(f.cluster.get(), 64);
  } else if (which == "copylog") {
    f.index = std::make_unique<CopyLogIndex>(f.cluster.get(), 800, 100);
  } else if (which == "nodecentric") {
    f.index = std::make_unique<NodeCentricIndex>(f.cluster.get());
  } else {
    f.index = std::make_unique<DeltaGraphIndex>(f.cluster.get(), 100, 400);
  }
  return f;
}

std::vector<Event> History(uint64_t seed, uint64_t n = 2'000) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 5});
}

class BaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineTest, SnapshotsMatchReplay) {
  IndexFixture f = Make(GetParam());
  auto events = History(51);
  ASSERT_TRUE(f.index->Build(events).ok());
  for (double frac : {0.1, 0.5, 0.99}) {
    Timestamp t = events[static_cast<size_t>(events.size() * frac)].time;
    FetchStats stats;
    auto snap = f.index->GetSnapshot(t, &stats);
    ASSERT_TRUE(snap.ok()) << f.index->name() << " t=" << t;
    Graph expected = workload::ReplayToGraph(events, t);
    EXPECT_TRUE(*snap == expected)
        << f.index->name() << " snapshot mismatch at t=" << t;
    EXPECT_GT(stats.kv_requests, 0u);
  }
}

TEST_P(BaselineTest, NodeStateMatchesReplay) {
  IndexFixture f = Make(GetParam());
  auto events = History(53);
  ASSERT_TRUE(f.index->Build(events).ok());
  Timestamp t = events[events.size() * 2 / 3].time;
  Graph expected = workload::ReplayToGraph(events, t);
  Rng rng(3);
  auto ids = expected.NodeIds();
  for (int trial = 0; trial < 10; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto state = f.index->GetNodeStateDelta(id, t, nullptr);
    ASSERT_TRUE(state.ok()) << f.index->name();
    const auto* rec = state->FindNode(id);
    ASSERT_TRUE(rec != nullptr && rec->has_value())
        << f.index->name() << " node " << id;
    EXPECT_EQ((*rec)->attrs, expected.GetNode(id)->attrs) << f.index->name();
  }
}

TEST_P(BaselineTest, NodeHistoryEventsMatchLogFilter) {
  if (GetParam() == "copy" || GetParam() == "copy_sparse") {
    GTEST_SKIP() << "Copy synthesizes diffs, not raw events";
  }
  IndexFixture f = Make(GetParam());
  auto events = History(59);
  ASSERT_TRUE(f.index->Build(events).ok());
  Timestamp from = events[events.size() / 4].time;
  Timestamp to = events[events.size() * 3 / 4].time;
  Graph at_from = workload::ReplayToGraph(events, from);
  Rng rng(4);
  auto ids = at_from.NodeIds();
  for (int trial = 0; trial < 8; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hist = f.index->GetNodeHistory(id, from, to, nullptr);
    ASSERT_TRUE(hist.ok()) << f.index->name();
    std::vector<Event> expected;
    for (const Event& e : events) {
      if (e.time > from && e.time <= to && e.Touches(id)) {
        expected.push_back(e);
      }
    }
    ASSERT_EQ(hist->events.size(), expected.size())
        << f.index->name() << " node " << id;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(hist->events.events()[i], expected[i]) << f.index->name();
    }
  }
}

TEST_P(BaselineTest, OneHopMatchesReplay) {
  IndexFixture f = Make(GetParam());
  auto events = History(61);
  ASSERT_TRUE(f.index->Build(events).ok());
  Timestamp t = workload::EndTime(events);
  Graph expected = workload::ReplayToGraph(events, t);
  NodeId center = algo::HighestDegreeNode(expected);
  auto hood = f.index->GetOneHop(center, t, nullptr);
  ASSERT_TRUE(hood.ok()) << f.index->name();
  Graph want = algo::InducedSubgraph(
      expected, algo::KHopNeighborhood(expected, center, 1));
  EXPECT_EQ(hood->NumNodes(), want.NumNodes()) << f.index->name();
  for (NodeId n : expected.Neighbors(center)) {
    EXPECT_TRUE(hood->HasEdge(center, n)) << f.index->name();
  }
}

TEST_P(BaselineTest, StorageIsAccounted) {
  IndexFixture f = Make(GetParam());
  auto events = History(67, 1'000);
  ASSERT_TRUE(f.index->Build(events).ok());
  EXPECT_GT(f.index->StorageBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest,
                         ::testing::Values("log", "copy", "copy_sparse",
                                           "copylog", "nodecentric",
                                           "deltagraph"));

// Table 1's qualitative claims, asserted as relative measurements.

TEST(Table1Properties, CopyStoresMoreThanLog) {
  auto events = History(71, 1'500);
  IndexFixture log = Make("log");
  IndexFixture copy = Make("copy");
  ASSERT_TRUE(log.index->Build(events).ok());
  ASSERT_TRUE(copy.index->Build(events).ok());
  EXPECT_GT(copy.index->StorageBytes(), 10 * log.index->StorageBytes());
}

TEST(Table1Properties, CopySnapshotFetchesOneDeltaLogFetchesMany) {
  auto events = History(73, 1'500);
  IndexFixture log = Make("log");
  IndexFixture copy = Make("copy");
  ASSERT_TRUE(log.index->Build(events).ok());
  ASSERT_TRUE(copy.index->Build(events).ok());
  Timestamp t = workload::EndTime(events);
  FetchStats log_stats, copy_stats;
  ASSERT_TRUE(log.index->GetSnapshot(t, &log_stats).ok());
  ASSERT_TRUE(copy.index->GetSnapshot(t, &copy_stats).ok());
  EXPECT_EQ(copy_stats.micro_deltas, 1u);
  EXPECT_GT(log_stats.micro_deltas, 5u);
}

TEST(Table1Properties, NodeCentricVertexQueryIsOneFetch) {
  auto events = History(79, 1'500);
  IndexFixture nc = Make("nodecentric");
  ASSERT_TRUE(nc.index->Build(events).ok());
  Timestamp t = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, t);
  NodeId id = final_state.NodeIds().front();
  FetchStats stats;
  ASSERT_TRUE(nc.index->GetNodeHistory(id, 0, t, &stats).ok());
  EXPECT_EQ(stats.kv_requests, 1u);
}

TEST(Table1Properties, NodeCentricSnapshotTouchesEveryNode) {
  auto events = History(83, 1'500);
  IndexFixture nc = Make("nodecentric");
  ASSERT_TRUE(nc.index->Build(events).ok());
  Timestamp t = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, t);
  FetchStats stats;
  ASSERT_TRUE(nc.index->GetSnapshot(t, &stats).ok());
  EXPECT_GE(stats.kv_requests, final_state.NumNodes());
}

}  // namespace
}  // namespace hgs
