// Parallel-ingest determinism: whatever the worker count — and whether rows
// are committed one at a time, group-committed, or built bottom-up by
// BulkLoad — the pipeline must write byte-identical storage contents to
// fully serial ingest, and queries over the results must agree. Also covers
// the batch-validation prepass (atomic rejection, offending index in the
// error) and BulkLoad's alignment precondition. The suite runs under TSan
// in CI alongside the stress tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kvstore/cluster.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster(size_t nodes = 2) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.latency.enabled = false;
  return opts;
}

std::vector<Event> History(uint64_t seed, uint64_t n) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 9});
}

TGIOptions SmallOpts() {
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

struct BuildOutcome {
  uint64_t fingerprint = 0;
  uint64_t keys = 0;
};

BuildOutcome BuildWith(const std::vector<Event>& events, size_t threads,
                       bool group_commit, bool bulk, bool columnar = false) {
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOpts();
  opts.ingest_threads = threads;
  opts.group_commit_puts = group_commit;
  if (columnar) {
    opts.row_compression = CompressionKind::kColumnar;
    opts.eventlist_compression = CompressionKind::kColumnar;
    opts.versions_compression = CompressionKind::kColumnar;
  }
  TGI tgi(&cluster, opts);
  Status s = bulk ? tgi.BulkLoad(events) : tgi.BuildFrom(events);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return BuildOutcome{cluster.ContentFingerprint(), cluster.TotalKeys()};
}

TEST(IngestDeterminismTest, ThreadCountsAndBulkLoadAreByteIdentical) {
  auto events = History(4242, 6'000);
  BuildOutcome serial = BuildWith(events, 1, /*group_commit=*/false,
                                  /*bulk=*/false);
  ASSERT_GT(serial.keys, 0u);
  struct Config {
    size_t threads;
    bool group_commit;
    bool bulk;
  };
  const Config configs[] = {
      {1, true, false},  // group commit, serial encode
      {2, true, false},  // sharded encode
      {8, true, false},  // oversubscribed sharding
      {8, true, true},   // BulkLoad bottom-up
  };
  for (const Config& c : configs) {
    BuildOutcome got = BuildWith(events, c.threads, c.group_commit, c.bulk);
    EXPECT_EQ(got.fingerprint, serial.fingerprint)
        << "threads=" << c.threads << " group_commit=" << c.group_commit
        << " bulk=" << c.bulk;
    EXPECT_EQ(got.keys, serial.keys)
        << "threads=" << c.threads << " bulk=" << c.bulk;
  }
}

TEST(IngestDeterminismTest, ColumnarEncodingIsByteIdenticalAcrossThreads) {
  // The kColumnar choice (columnar vs LZ vs stored, per block) is a pure
  // function of the serialized bytes, so parallel ingest with the columnar
  // codec enabled must stay byte-deterministic too.
  auto events = History(5151, 6'000);
  BuildOutcome serial = BuildWith(events, 1, /*group_commit=*/false,
                                  /*bulk=*/false, /*columnar=*/true);
  ASSERT_GT(serial.keys, 0u);
  // And it must differ from the uncompressed build only in value bytes,
  // never in key count.
  BuildOutcome plain = BuildWith(events, 1, false, false, false);
  EXPECT_EQ(serial.keys, plain.keys);
  struct Config {
    size_t threads;
    bool group_commit;
    bool bulk;
  };
  const Config configs[] = {
      {1, true, false},
      {2, true, false},
      {8, true, false},
      {8, true, true},
  };
  for (const Config& c : configs) {
    BuildOutcome got = BuildWith(events, c.threads, c.group_commit, c.bulk,
                                 /*columnar=*/true);
    EXPECT_EQ(got.fingerprint, serial.fingerprint)
        << "threads=" << c.threads << " group_commit=" << c.group_commit
        << " bulk=" << c.bulk;
    EXPECT_EQ(got.keys, serial.keys)
        << "threads=" << c.threads << " bulk=" << c.bulk;
  }
}

TEST(IngestDeterminismTest, QueriesAgreeAcrossPipelines) {
  auto events = History(7878, 5'000);
  Cluster serial_cluster(FastCluster());
  Cluster parallel_cluster(FastCluster());
  Cluster bulk_cluster(FastCluster());
  TGIOptions serial_opts = SmallOpts();
  serial_opts.ingest_threads = 1;
  TGIOptions parallel_opts = SmallOpts();
  parallel_opts.ingest_threads = 8;
  TGI serial(&serial_cluster, serial_opts);
  TGI parallel(&parallel_cluster, parallel_opts);
  TGI bulk(&bulk_cluster, parallel_opts);
  ASSERT_TRUE(serial.BuildFrom(events).ok());
  ASSERT_TRUE(parallel.BuildFrom(events).ok());
  ASSERT_TRUE(bulk.BulkLoad(events).ok());

  auto qm_serial = serial.OpenQueryManager(2).value();
  auto qm_parallel = parallel.OpenQueryManager(2).value();
  auto qm_bulk = bulk.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  for (double frac : {0.25, 0.6, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto a = qm_serial->GetSnapshot(t);
    auto b = qm_parallel->GetSnapshot(t);
    auto c = qm_bulk->GetSnapshot(t);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_TRUE(*a == *b) << "t=" << t;
    EXPECT_TRUE(*a == *c) << "t=" << t;
    EXPECT_TRUE(*a == workload::ReplayToGraph(events, t)) << "t=" << t;
  }
  for (NodeId id : {NodeId{1}, NodeId{7}, NodeId{23}, NodeId{40}}) {
    auto a = qm_serial->GetNodeHistory(id, 0, end);
    auto b = qm_parallel->GetNodeHistory(id, 0, end);
    auto c = qm_bulk->GetNodeHistory(id, 0, end);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->events.size(), b->events.size()) << "node " << id;
    EXPECT_EQ(a->events.size(), c->events.size()) << "node " << id;
  }
}

TEST(IngestValidationTest, OutOfOrderBatchRejectedAtomically) {
  auto events = History(1357, 2'000);
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOpts());
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  uint64_t fingerprint = cluster.ContentFingerprint();
  uint64_t keys = cluster.TotalKeys();

  Timestamp end = workload::EndTime(events);
  std::vector<Event> batch;
  for (int i = 0; i < 6; ++i) {
    Event e;
    e.type = EventType::kAddNode;
    e.u = static_cast<NodeId>(900'000 + i);
    e.time = end + 10 + static_cast<Timestamp>(i);
    batch.push_back(e);
  }
  batch[3].time = end - 1;  // goes backwards mid-batch

  Status s = tgi.AppendBatch(batch);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  // The prepass names the offending position.
  EXPECT_NE(s.ToString().find("batch index 3"), std::string::npos)
      << s.ToString();
  // Atomic rejection: nothing of the bad batch reached storage.
  EXPECT_EQ(cluster.ContentFingerprint(), fingerprint);
  EXPECT_EQ(cluster.TotalKeys(), keys);

  // The corrected batch is accepted and queryable.
  batch[3].time = end + 13;
  ASSERT_TRUE(tgi.AppendBatch(batch).ok());
  auto qm = tgi.OpenQueryManager().value();
  auto snap = qm->GetSnapshot(end + 20);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->HasNode(static_cast<NodeId>(900'003)));
}

TEST(IngestValidationTest, BatchBeforeLastIngestedTimeRejected) {
  auto events = History(2468, 2'000);
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOpts());
  ASSERT_TRUE(tgi.BuildFrom(events).ok());

  Event stale;
  stale.type = EventType::kAddNode;
  stale.u = static_cast<NodeId>(900'000);
  stale.time = 0;
  Status s = tgi.AppendBatch({stale});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("batch index 0"), std::string::npos)
      << s.ToString();
}

TEST(BulkLoadTest, RequiresTimespanAlignedState) {
  auto events = History(9753, 2'000);
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOpts();
  TGI tgi(&cluster, opts);
  // A partial batch below the span size leaves events pending.
  std::vector<Event> partial(events.begin(), events.begin() + 100);
  ASSERT_TRUE(tgi.builder()->Ingest(partial).ok());
  Status s = tgi.BulkLoad({events.begin() + 100, events.end()});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace hgs
